#include "server/server.h"

#include <utility>

namespace prometheus::server {

Server::Server(Database* db, Options options)
    : db_(db),
      engine_(db, options.indexes),
      executor_(ThreadPoolExecutor::Options{options.worker_threads,
                                            options.queue_capacity}),
      sessions_(this) {}

Server::~Server() { Shutdown(/*drain=*/true); }

void Server::Shutdown(bool drain) {
  // Stop admission first so sessions racing Shutdown resolve as kShutdown
  // or kRejected, never hang.
  stopped_.store(true, std::memory_order_release);
  sessions_.CloseAll();
  executor_.Shutdown(drain);
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = executor_.rejected();
  s.queries = queries_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::future<Response> Server::Enqueue(Request req) {
  const RequestId id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  auto respond_unrun = [promise, id](ResponseCode code, Status status) {
    Response resp;
    resp.id = id;
    resp.code = code;
    resp.status = std::move(status);
    promise->set_value(std::move(resp));
  };

  if (stopped_.load(std::memory_order_acquire)) {
    respond_unrun(ResponseCode::kShutdown,
                  Status::FailedPrecondition("server is shut down"));
    return future;
  }

  // The request moves into the job via shared_ptr: std::function requires
  // copyable targets, and a Request (its closure, its inits) should not be
  // deep-copied per hop.
  auto boxed = std::make_shared<Request>(std::move(req));
  ThreadPoolExecutor::Job job = [this, id, promise, boxed](bool run) {
    if (!run) {
      Response resp;
      resp.id = id;
      resp.code = ResponseCode::kShutdown;
      resp.status =
          Status::FailedPrecondition("server shut down before execution");
      promise->set_value(std::move(resp));
      return;
    }
    promise->set_value(Execute(id, *boxed));
  };

  if (!executor_.Submit(std::move(job))) {
    respond_unrun(
        ResponseCode::kRejected,
        Status::FailedPrecondition("work queue full (backpressure)"));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

Response Server::Execute(RequestId id, const Request& req) {
  Response resp;
  switch (req.kind) {
    case RequestKind::kPing:
      resp.id = id;
      resp.epoch = db_->epoch();
      break;
    case RequestKind::kQuery:
      resp = ExecuteQuery(id, req);
      queries_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kMutation:
      resp = ExecuteMutation(id, req);
      mutations_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (!resp.status.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

Response Server::ExecuteQuery(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  // Shared lock: concurrent with other queries, excluded from mutations.
  // The guard pins the epoch, so the whole evaluation sees one snapshot.
  Database::ReadGuard guard(*db_);
  resp.epoch = guard.epoch();
  Result<pool::ResultSet> result = engine_.Execute(req.query);
  if (result.ok()) {
    resp.result = std::move(result).value();
  } else {
    resp.status = result.status();
  }
  return resp;
}

Response Server::ExecuteMutation(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  Database::WriteGuard guard(*db_);
  resp.epoch = db_->epoch();
  const MutationOp& op = req.mutation;
  switch (op.kind) {
    case MutationOp::Kind::kCreateObject: {
      Result<Oid> r = db_->CreateObject(op.type_name, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetAttribute:
      resp.status = db_->SetAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteObject:
      resp.status = db_->DeleteObject(op.target);
      break;
    case MutationOp::Kind::kCreateLink: {
      Result<Oid> r = db_->CreateLink(op.type_name, op.source, op.dest,
                                      op.context, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetLinkAttribute:
      resp.status = db_->SetLinkAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteLink:
      resp.status = db_->DeleteLink(op.target);
      break;
    case MutationOp::Kind::kCustom:
      if (op.custom == nullptr) {
        resp.status =
            Status::InvalidArgument("custom mutation without a body");
      } else {
        resp.status = op.custom(*db_);
        // A transaction must not outlive its request: the write guard is
        // released when this response is produced, and a dangling open
        // transaction would poison every later writer.
        if (db_->in_transaction()) {
          (void)db_->Abort();
          if (resp.status.ok()) {
            resp.status = Status::FailedPrecondition(
                "custom mutation left a transaction open (rolled back)");
          }
        }
      }
      break;
  }
  return resp;
}

}  // namespace prometheus::server
