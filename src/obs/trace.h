#ifndef PROMETHEUS_OBS_TRACE_H_
#define PROMETHEUS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace prometheus::obs {

/// One span of a per-query execution trace: a named stage with wall time,
/// an optional cardinality, a human-readable detail, and child stages.
/// This is the EXPLAIN-style profile tree `PROFILE <select>` and
/// `QueryEngine::ExecuteProfiled` return — plain data, so callers can walk
/// it, render it, or ship it over the stats surface.
struct TraceNode {
  std::string name;     ///< stage name ("parse", "plan", "execute", ...)
  std::string detail;   ///< free-form annotation (strategy, extent name)
  double micros = 0;    ///< wall time spent in this stage
  std::int64_t rows = -1;  ///< cardinality produced; -1 = not applicable
  std::vector<TraceNode> children;

  TraceNode() = default;
  explicit TraceNode(std::string n) : name(std::move(n)) {}

  /// Appends and returns a child stage. The returned pointer is valid
  /// until the next AddChild on the same parent (vector growth) — finish
  /// one child before opening a sibling.
  TraceNode* AddChild(std::string child_name);

  /// Locates a direct child by name (tests, assertions); nullptr if absent.
  const TraceNode* Child(const std::string& child_name) const;
};

/// Renders the tree as indented text, one stage per line:
///   execute                 812.4us  rows=120
///     range s: extent scan of Species   rows=4000
std::string RenderTree(const TraceNode& root);

/// Renders the tree as a nested JSON object ({name, micros, rows, detail,
/// children}).
std::string RenderJson(const TraceNode& root);

/// Measures wall time into a TraceNode. When constructed with nullptr the
/// whole object is inert (the unprofiled execution path passes nullptr and
/// pays only the null checks).
class SpanTimer {
 public:
  explicit SpanTimer(TraceNode* node) : node_(node) {
    if (node_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SpanTimer() { Stop(); }

  /// Stops early (idempotent); the destructor then does nothing.
  void Stop() {
    if (node_ == nullptr) return;
    node_->micros += std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    node_ = nullptr;
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceNode* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace prometheus::obs

#endif  // PROMETHEUS_OBS_TRACE_H_
