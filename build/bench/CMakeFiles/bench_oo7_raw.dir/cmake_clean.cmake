file(REMOVE_RECURSE
  "CMakeFiles/bench_oo7_raw.dir/bench_oo7_raw.cc.o"
  "CMakeFiles/bench_oo7_raw.dir/bench_oo7_raw.cc.o.d"
  "bench_oo7_raw"
  "bench_oo7_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oo7_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
