// E14 — concurrent query serving (the src/server/ service layer standing in
// for the thesis' omitted §6.1.7 front-end). Builds the OO7 small module,
// wraps it in a `server::Server`, and drives it with a multi-threaded
// in-process load generator:
//
//   1. read-only sweep: 8 client threads issuing POOL range-scan queries,
//      worker pool swept over 1/2/4/8 threads — read throughput should
//      scale with workers (shared-lock readers) up to the core count;
//   2. mixed load: 7 reader clients + 1 writer client (SetAttribute
//      mutations under the exclusive lock) at 4 workers.
//
// Reports throughput and p50/p95/p99 latency per sweep and writes the
// machine-readable BENCH_server.json next to the binary's working dir.
//
// Usage: bench_server [requests_per_client]   (default 150)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "oo7/oo7.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using prometheus::Oid;
using prometheus::Value;
using prometheus::bench::JsonWriter;
using prometheus::bench::LatencyStats;
using prometheus::bench::SummarizeLatencies;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;
using prometheus::server::Client;
using prometheus::server::Server;

using Clock = std::chrono::steady_clock;

constexpr int kClientThreads = 8;
constexpr int kWorkerSweep[] = {1, 2, 4, 8};

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Q2-style selective range scan over the atomic-part extent — enough work
/// per request (~1000-object scan with predicate evaluation) that locking
/// and dispatch overhead are a small fraction.
std::string ReadQuery(std::mt19937& rng) {
  std::uniform_int_distribution<int> lo_dist(0, 1800);
  const int lo = lo_dist(rng);
  const int hi = lo + 200;
  return "select a.id from AtomicPart a where a.build_date >= " +
         std::to_string(lo) + " and a.build_date <= " + std::to_string(hi);
}

struct SweepResult {
  int workers = 0;
  int reader_clients = 0;
  int writer_clients = 0;
  std::size_t requests = 0;
  std::size_t failed = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  LatencyStats read_lat;
  LatencyStats write_lat;
  std::uint64_t rejected = 0;
};

/// Drives `server` with `readers` query clients and `writers` mutation
/// clients, each issuing `requests_per_client` blocking calls.
SweepResult RunLoad(Server& server, const std::vector<Oid>& parts, int workers,
                    int readers, int writers, int requests_per_client) {
  SweepResult result;
  result.workers = workers;
  result.reader_clients = readers;
  result.writer_clients = writers;

  std::vector<std::vector<double>> read_lats(
      static_cast<std::size_t>(readers));
  std::vector<std::vector<double>> write_lats(
      static_cast<std::size_t>(writers));
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers + writers));

  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(1000u + static_cast<unsigned>(c));
      auto& lats = read_lats[static_cast<std::size_t>(c)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string q = ReadQuery(rng);
        const Clock::time_point t0 = Clock::now();
        auto r = client.Query(q);
        lats.push_back(MillisSince(t0));
        if (!r.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Client client(&server);
      std::mt19937 rng(9000u + static_cast<unsigned>(w));
      std::uniform_int_distribution<std::size_t> pick(0, parts.size() - 1);
      auto& lats = write_lats[static_cast<std::size_t>(w)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const Oid oid = parts[pick(rng)];
        const Clock::time_point t0 = Clock::now();
        auto st = client.SetAttribute(oid, "x", Value::Int(i));
        lats.push_back(MillisSince(t0));
        if (!st.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ms = MillisSince(wall_start);

  std::vector<double> all_reads;
  for (auto& v : read_lats) {
    all_reads.insert(all_reads.end(), v.begin(), v.end());
  }
  std::vector<double> all_writes;
  for (auto& v : write_lats) {
    all_writes.insert(all_writes.end(), v.begin(), v.end());
  }
  result.requests = all_reads.size() + all_writes.size();
  result.failed = failed.load();
  result.throughput_rps =
      result.wall_ms > 0
          ? static_cast<double>(result.requests) / (result.wall_ms / 1000.0)
          : 0;
  result.read_lat = SummarizeLatencies(all_reads);
  result.write_lat = SummarizeLatencies(all_writes);
  result.rejected = server.stats().rejected;
  return result;
}

void PrintRow(const SweepResult& r, const char* label) {
  std::printf(
      "  %-12s w=%d  %6zu req  %8.1f rps   p50 %7.3f  p95 %7.3f  p99 %7.3f "
      "ms%s\n",
      label, r.workers, r.requests, r.throughput_rps, r.read_lat.p50,
      r.read_lat.p95, r.read_lat.p99, r.failed != 0 ? "  [FAILURES]" : "");
}

void EmitSweepJson(JsonWriter& json, const SweepResult& r) {
  json.BeginObject();
  json.Key("workers").Int(r.workers);
  json.Key("reader_clients").Int(r.reader_clients);
  json.Key("writer_clients").Int(r.writer_clients);
  json.Key("requests").Int(static_cast<long long>(r.requests));
  json.Key("failed").Int(static_cast<long long>(r.failed));
  json.Key("rejected").Int(static_cast<long long>(r.rejected));
  json.Key("wall_ms").Number(r.wall_ms);
  json.Key("throughput_rps").Number(r.throughput_rps);
  json.Key("read_p50_ms").Number(r.read_lat.p50);
  json.Key("read_p95_ms").Number(r.read_lat.p95);
  json.Key("read_p99_ms").Number(r.read_lat.p99);
  json.Key("read_max_ms").Number(r.read_lat.max);
  json.Key("write_p50_ms").Number(r.write_lat.p50);
  json.Key("write_p95_ms").Number(r.write_lat.p95);
  json.Key("write_p99_ms").Number(r.write_lat.p99);
  json.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const int requests_per_client = argc > 1 ? std::atoi(argv[1]) : 150;
  const unsigned cores = std::thread::hardware_concurrency();

  Config config;  // OO7 small module: 50 composites, 1000 atomic parts
  std::printf("bench_server: OO7 small module (%d atomic parts), %d client "
              "threads, %d requests/client, %u hardware threads\n",
              config.total_atomic_parts(), kClientThreads,
              requests_per_client, cores);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("server");
  json.Key("hardware_concurrency").Int(cores);
  json.Key("atomic_parts").Int(config.total_atomic_parts());
  json.Key("requests_per_client").Int(requests_per_client);

  // ---- read-only sweep over worker counts ------------------------------
  prometheus::bench::PrintTableHeader(
      "E14a: read-only query serving (8 clients, workers swept)",
      "  phase        workers  requests  throughput   latency");
  json.Key("read_sweep").BeginArray();
  double rps_at_1 = 0;
  double rps_at_4 = 0;
  for (int workers : kWorkerSweep) {
    PrometheusOo7 oo7(config);  // fresh, identical database per sweep
    Server::Options options;
    options.worker_threads = workers;
    options.queue_capacity = 4096;
    Server server(&oo7.db(), options);
    SweepResult r = RunLoad(server, {}, workers, kClientThreads,
                            /*writers=*/0, requests_per_client);
    server.Shutdown();
    PrintRow(r, "read-only");
    EmitSweepJson(json, r);
    if (workers == 1) rps_at_1 = r.throughput_rps;
    if (workers == 4) rps_at_4 = r.throughput_rps;
  }
  json.EndArray();
  const double scaling = rps_at_1 > 0 ? rps_at_4 / rps_at_1 : 0;
  json.Key("scaling_4v1").Number(scaling);
  std::printf("  read scaling 4 workers vs 1: %.2fx", scaling);
  if (cores < 4) {
    std::printf("  (only %u hardware thread%s — scaling is bounded by the "
                "host, expect ~1x)",
                cores, cores == 1 ? "" : "s");
  }
  std::printf("\n");

  // ---- mixed read/write load ------------------------------------------
  prometheus::bench::PrintTableHeader(
      "E14b: mixed load (7 readers + 1 writer, 4 workers)",
      "  phase        workers  requests  throughput   read latency");
  json.Key("mixed").BeginArray();
  {
    PrometheusOo7 oo7(config);
    const std::vector<Oid> parts = oo7.db().Extent("AtomicPart");
    Server::Options options;
    options.worker_threads = 4;
    options.queue_capacity = 4096;
    Server server(&oo7.db(), options);
    SweepResult r = RunLoad(server, parts, 4, kClientThreads - 1,
                            /*writers=*/1, requests_per_client);
    server.Shutdown();
    PrintRow(r, "mixed");
    std::printf("               write latency: p50 %7.3f  p95 %7.3f  p99 "
                "%7.3f ms\n",
                r.write_lat.p50, r.write_lat.p95, r.write_lat.p99);
    EmitSweepJson(json, r);
  }
  json.EndArray();
  json.EndObject();

  const std::string out = "BENCH_server.json";
  if (!prometheus::bench::WriteTextFile(out, json.str() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
