// The contention-observability layer (src/obs/wait_profiler.*): epoch-guard
// wait/hold instrumentation, the per-request wait breakdown, per-request
// journal attribution, windowed contention reports, and trace-context
// propagation through the server core.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/wait_profiler.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/recovery.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::obs::GuardInstruments;
using prometheus::obs::Histogram;
using prometheus::obs::Registry;
using prometheus::obs::RenderContentionJson;
using prometheus::obs::RenderContentionText;
using prometheus::obs::SnapshotDelta;
using prometheus::obs::ThreadWait;
using prometheus::obs::WaitInstruments;
using prometheus::obs::WaitState;
using prometheus::obs::WaitStateName;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::RetryPolicy;
using prometheus::server::Server;
using prometheus::storage::DurableStore;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::unique_ptr<Database> MakePartsDb(int rows = 8) {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt)})
                  .ok());
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(db->CreateObject("Part",
                                 {{"name", Value::String("p" +
                                                         std::to_string(i))},
                                  {"a", Value::Int(i)}})
                    .ok());
  }
  return db;
}

// --------------------------------------------------- guard instrumentation

TEST(GuardInstrumentationTest, BlockedReaderObservesSharedWait) {
  Registry().ResetForTest();
  Database db;
  const GuardInstruments& g = GuardInstruments::Get();

  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread writer([&] {
    Database::WriteGuard guard(db);
    held.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!held.load()) std::this_thread::yield();

  // While the writer holds the guard, a reader must show up blocked.
  std::thread reader([&] { Database::ReadGuard guard(db); });
  // Wait until the blocked-readers gauge registers it (bounded).
  bool saw_blocked = false;
  for (int i = 0; i < 2000 && !saw_blocked; ++i) {
    saw_blocked = g.blocked_readers->value() > 0;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(saw_blocked);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.store(true);
  writer.join();
  reader.join();

  // The reader's wait and both holds were observed; the gauges returned
  // to idle.
  EXPECT_GE(g.shared_wait->snapshot().count, 1u);
  EXPECT_GT(g.shared_wait->snapshot().sum, 0.0);
  EXPECT_GE(g.shared_hold->snapshot().count, 1u);
  EXPECT_GE(g.exclusive_hold->snapshot().count, 1u);
  EXPECT_GT(g.writer_last_hold_micros->value(), 0);
  EXPECT_EQ(g.blocked_readers->value(), 0);
  EXPECT_EQ(g.blocked_writers->value(), 0);
  EXPECT_EQ(g.writer_held->value(), 0);
}

TEST(GuardInstrumentationTest, BlockedWriterObservesExclusiveWait) {
  Registry().ResetForTest();
  Database db;
  const GuardInstruments& g = GuardInstruments::Get();

  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    Database::ReadGuard guard(db);
    held.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!held.load()) std::this_thread::yield();

  std::thread writer([&] { Database::WriteGuard guard(db); });
  bool saw_blocked = false;
  for (int i = 0; i < 2000 && !saw_blocked; ++i) {
    saw_blocked = g.blocked_writers->value() > 0;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(saw_blocked);
  release.store(true);
  reader.join();
  writer.join();

  EXPECT_GE(g.exclusive_wait->snapshot().count, 1u);
  EXPECT_GT(g.exclusive_wait->snapshot().sum, 0.0);
  EXPECT_EQ(g.blocked_writers->value(), 0);
}

TEST(GuardInstrumentationTest, UncontendedGuardsSkipBlockedGauges) {
  Registry().ResetForTest();
  Database db;
  const GuardInstruments& g = GuardInstruments::Get();
  {
    Database::ReadGuard guard(db);
    EXPECT_EQ(g.blocked_readers->value(), 0);
  }
  {
    Database::WriteGuard guard(db);
    EXPECT_EQ(g.blocked_writers->value(), 0);
    EXPECT_EQ(g.writer_held->value(), 1);
  }
  EXPECT_EQ(g.writer_held->value(), 0);
  // Uncontended acquisitions still observe (zero-ish) waits and holds.
  EXPECT_GE(g.shared_wait->snapshot().count, 1u);
  EXPECT_GE(g.exclusive_wait->snapshot().count, 1u);
}

// ------------------------------------------------------- snapshot algebra

TEST(SnapshotDeltaTest, SubtractsBucketwise) {
  Registry().ResetForTest();
  Histogram* h = Registry().GetHistogram("delta_test_micros", "test");
  h->Observe(5);
  h->Observe(50);
  Histogram::Snapshot then = h->snapshot();
  h->Observe(500);
  h->Observe(5000);
  Histogram::Snapshot now = h->snapshot();

  Histogram::Snapshot delta = SnapshotDelta(now, then);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_DOUBLE_EQ(delta.sum, 5500.0);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : delta.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, 2u);

  // Delta of a snapshot with itself is empty.
  Histogram::Snapshot zero = SnapshotDelta(now, now);
  EXPECT_EQ(zero.count, 0u);
  EXPECT_DOUBLE_EQ(zero.sum, 0.0);
}

TEST(ThreadWaitAccumulatorTest, ResetsAndAccumulatesPerThread) {
  ThreadWait().Reset();
  ThreadWait().journal_append_micros += 10;
  ThreadWait().journal_sync_micros += 20;
  EXPECT_DOUBLE_EQ(ThreadWait().journal_append_micros, 10.0);

  std::thread other([] {
    // A fresh thread sees its own zeroed accumulator.
    EXPECT_DOUBLE_EQ(ThreadWait().journal_append_micros, 0.0);
    ThreadWait().journal_append_micros += 99;
  });
  other.join();
  EXPECT_DOUBLE_EQ(ThreadWait().journal_append_micros, 10.0);
  ThreadWait().Reset();
  EXPECT_DOUBLE_EQ(ThreadWait().journal_sync_micros, 0.0);
}

// ----------------------------------------------------- contention report

TEST(ContentionReportTest, JsonListsEveryWaitState) {
  Registry().ResetForTest();
  const std::string json = RenderContentionJson(/*windowed=*/false);
  for (WaitState s :
       {WaitState::kAdmission, WaitState::kQueue, WaitState::kGuardShared,
        WaitState::kGuardExclusive, WaitState::kExecute,
        WaitState::kJournalAppend, WaitState::kJournalSync,
        WaitState::kSerialize}) {
    EXPECT_NE(json.find("\"" + std::string(WaitStateName(s)) + "\""),
              std::string::npos)
        << json;
  }
  EXPECT_NE(json.find("\"windowed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"blocked_readers\""), std::string::npos);
  EXPECT_NE(json.find("\"writer_last_hold_micros\""), std::string::npos);
}

TEST(ContentionReportTest, WindowedReportCoversOnlyTheInterval) {
  Registry().ResetForTest();
  const WaitInstruments& w = WaitInstruments::Get();
  w.execute->Observe(100);
  (void)RenderContentionJson(/*windowed=*/true);  // consume the window
  const std::string empty_window = RenderContentionJson(/*windowed=*/true);
  // Nothing happened between the two windowed calls: execute reports 0.
  EXPECT_NE(empty_window.find("\"execute\":{\"count\":0"), std::string::npos)
      << empty_window;

  w.execute->Observe(250);
  const std::string busy_window = RenderContentionJson(/*windowed=*/true);
  EXPECT_NE(busy_window.find("\"execute\":{\"count\":1"), std::string::npos)
      << busy_window;
}

TEST(ContentionReportTest, TextTableRendersAllStatesAndGuardLine) {
  Registry().ResetForTest();
  const std::string text = RenderContentionText(/*windowed=*/false);
  EXPECT_NE(text.find("guard_shared"), std::string::npos);
  EXPECT_NE(text.find("journal_sync"), std::string::npos);
  EXPECT_NE(text.find("blocked_readers="), std::string::npos);
}

// -------------------------------------------- server-side wait breakdown

TEST(WaitBreakdownTest, QueryResponseCarriesWaitAttribution) {
  Registry().ResetForTest();
  std::unique_ptr<Database> db = MakePartsDb(16);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  Response resp = client.Call(Request::Query("select p from Part p"));
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.trace_id.empty());
  EXPECT_GE(resp.waits.queue_micros, 0.0);
  EXPECT_GE(resp.waits.guard_wait_micros, 0.0);
  EXPECT_GT(resp.waits.execute_micros, 0.0);

  // The server-side wait histograms saw the request.
  const WaitInstruments& w = WaitInstruments::Get();
  EXPECT_GE(w.admission->snapshot().count, 1u);
  EXPECT_GE(w.queue->snapshot().count, 1u);
  EXPECT_GE(w.execute->snapshot().count, 1u);
  server.Shutdown();
}

TEST(WaitBreakdownTest, MutationJournalTimeIsAttributedPerRequest) {
  Registry().ResetForTest();
  const std::string dir = ::testing::TempDir() + "/prometheus_contention";
  fs::remove_all(dir);
  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) {
    return db->DefineClass("Doc", {}, {Attr("title", ValueType::kString)})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());
  {
    Server::Options options;
    options.store = store.value().get();
    Server server(&store.value()->db(), options);
    Client client(&server);

    Response resp = client.Call(
        Request::CreateObject("Doc", {{"title", Value::String("x")}}));
    ASSERT_TRUE(resp.ok());
    // The journal appended under this request; its time is attributed.
    EXPECT_GT(resp.waits.journal_append_micros, 0.0);
    EXPECT_GT(resp.waits.guard_wait_micros + resp.waits.execute_micros, 0.0);

    // The same attribution reached the flight recorder entry.
    server.Shutdown();
    auto entries = server.flight_recorder().Snapshot();
    ASSERT_FALSE(entries.empty());
    const auto& last = entries.back();
    EXPECT_EQ(last.type, "mutation");
    EXPECT_GT(last.journal_micros, 0.0);
    EXPECT_EQ(last.trace_id, resp.trace_id);

    // The process-wide journal histograms grew too.
    Histogram* append = Registry().GetHistogram(
        "journal_append_micros", "Latency of framed journal file appends");
    EXPECT_GE(append->snapshot().count, 1u);
  }
  fs::remove_all(dir);
}

TEST(WaitBreakdownTest, SlowQueryLogCarriesTraceAndBreakdown) {
  std::unique_ptr<Database> db = MakePartsDb(32);
  Server::Options options;
  options.slow_query_micros = 0;  // record everything
  Server server(db.get(), options);
  Client client(&server);

  Response resp = client.Call(
      Request::Query("select p.name from Part p where p.a >= 0")
          .WithTraceId("slow-trace-1"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.trace_id, "slow-trace-1");
  server.Shutdown();

  auto entries = server.slow_query_log().entries();
  ASSERT_FALSE(entries.empty());
  const auto& e = entries.back();
  EXPECT_EQ(e.trace_id, "slow-trace-1");
  EXPECT_GE(e.queue_micros, 0.0);
  EXPECT_GE(e.guard_wait_micros, 0.0);
  EXPECT_GT(e.execute_micros, 0.0);
}

// ------------------------------------------------------ trace propagation

TEST(TraceContextTest, ServerAssignsEpochPrefixedIdWhenAbsent) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  Response resp = client.Call(Request::Query("select p from Part p"));
  ASSERT_TRUE(resp.ok());
  const std::string prefix = std::to_string(server.server_epoch()) + "-";
  EXPECT_EQ(resp.trace_id.rfind(prefix, 0), 0u)
      << "trace id " << resp.trace_id << " lacks epoch prefix " << prefix;

  // Distinct requests get distinct ids.
  Response again = client.Call(Request::Query("select p from Part p"));
  EXPECT_NE(resp.trace_id, again.trace_id);
  server.Shutdown();
}

TEST(TraceContextTest, CallerProvidedIdIsPreservedEverywhere) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  Response miss = client.Call(
      Request::Query("select p from Part p").WithTraceId("t-123"));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.trace_id, "t-123");

  // A result-cache hit (Enqueue fast path) keeps the caller's id too.
  Response hit = client.Call(
      Request::Query("select p from Part p").WithTraceId("t-456"));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.trace_id, "t-456");
  server.Shutdown();

  // Both executions are retrievable from the flight recorder by id.
  int found = 0;
  for (const auto& e : server.flight_recorder().Snapshot()) {
    if (e.trace_id == "t-123" || e.trace_id == "t-456") ++found;
  }
  EXPECT_EQ(found, 2);
}

TEST(TraceContextTest, RefusedRequestsEchoTheTraceId) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server::Options options;
  options.read_only = true;
  Server server(db.get(), options);
  Client client(&server);

  Response refused = client.Call(
      Request::CreateObject("Part", {{"name", Value::String("x")}})
          .WithTraceId("t-refused"));
  EXPECT_EQ(refused.code, ResponseCode::kUnavailable);
  EXPECT_EQ(refused.trace_id, "t-refused");
  server.Shutdown();
}

TEST(TraceContextTest, CallWithRetryPinsOneIdAcrossAttempts) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  RetryPolicy policy;
  Response resp =
      client.CallWithRetry(Request::Query("select p from Part p"), policy);
  ASSERT_TRUE(resp.ok());
  // The client assigned the id before submitting, so the response carries
  // the client-side retry id, not a server-stamped one.
  EXPECT_EQ(resp.trace_id.rfind("retry-", 0), 0u) << resp.trace_id;

  // An explicit id survives the retry wrapper untouched.
  Response tagged = client.CallWithRetry(
      Request::Query("select p from Part p").WithTraceId("t-retry"), policy);
  EXPECT_EQ(tagged.trace_id, "t-retry");
  server.Shutdown();
}

}  // namespace
