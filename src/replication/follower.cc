#include "replication/follower.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <sstream>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "storage/journal.h"
#include "storage/snapshot.h"

namespace prometheus::replication {

namespace {

bool ParseU64(std::string_view text, std::uint64_t* value) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

std::uint64_t HeaderU64(const net::HttpResponse& resp, const std::string& name) {
  const std::string* value = resp.Header(name);
  std::uint64_t v = 0;
  if (value != nullptr) (void)ParseU64(*value, &v);
  return v;
}

/// Maps a follower id (often a directory path) into the trace-id alphabet
/// the HTTP plane accepts ([A-Za-z0-9._:-]).
std::string SanitizeTraceComponent(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.' || c == ':';
    out.push_back(ok ? c : '-');
  }
  if (out.empty()) out = "follower";
  if (out.size() > 64) out.resize(64);
  return out;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Per-follower instruments, labelled by follower id so several replicas in
/// one process (tests, benchmarks) stay distinguishable.
struct Follower::FollowerMetrics {
  obs::Gauge* lag_records;
  obs::Gauge* lag_bytes;
  obs::Gauge* connected;
  obs::Counter* applied_records;
  obs::Counter* reconnects;
  obs::Counter* rebootstraps;
  obs::Counter* corrupt_frames;
  obs::Counter* dropped_bytes;
  obs::Counter* catchup_replayed;
  obs::Counter* catchup_dropped_records;
  obs::Counter* catchup_dropped_bytes;
  obs::Counter* catchup_torn_tails;

  explicit FollowerMetrics(const std::string& id) {
    const std::string label =
        "{follower=\"" + obs::EscapeLabelValue(id) + "\"}";
    obs::MetricsRegistry& reg = obs::Registry();
    lag_records =
        reg.GetGauge("replication_lag_records" + label,
                     "Committed leader records not yet applied here "
                     "(exact while tailing the live journal)");
    lag_bytes = reg.GetGauge(
        "replication_lag_bytes" + label,
        "Journal bytes between this replica's boundary and the leader tail");
    connected = reg.GetGauge("replication_connected" + label,
                             "1 while the leader is reachable");
    applied_records =
        reg.GetCounter("replication_applied_records_total" + label,
                       "Mutation records applied from the stream");
    reconnects = reg.GetCounter("replication_reconnects_total" + label,
                                "Fetch-loop reconnects after an error");
    rebootstraps =
        reg.GetCounter("replication_rebootstraps_total" + label,
                       "Full re-downloads from the leader's snapshot");
    corrupt_frames = reg.GetCounter(
        "replication_corrupt_frames_total" + label,
        "Stream frames that failed CRC/framing and were re-fetched");
    dropped_bytes =
        reg.GetCounter("replication_dropped_bytes_total" + label,
                       "Unverified stream bytes discarded by rewinds");
    catchup_replayed = reg.GetCounter(
        "replication_catchup_replayed_records_total" + label,
        "Records replayed from the local mirror during catch-up recovery");
    catchup_dropped_records = reg.GetCounter(
        "replication_catchup_dropped_records_total" + label,
        "Records dropped from torn local-mirror tails during catch-up");
    catchup_dropped_bytes = reg.GetCounter(
        "replication_catchup_dropped_bytes_total" + label,
        "Torn-tail bytes dropped from the local mirror during catch-up");
    catchup_torn_tails = reg.GetCounter(
        "replication_catchup_torn_tails_total" + label,
        "Catch-up recoveries that found a torn local-mirror tail");
  }
};

Follower::Follower(Options options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : storage::Env::Default()),
      db_(std::make_unique<Database>()) {}

Result<std::unique_ptr<Follower>> Follower::Start(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("follower needs a mirror directory");
  }
  if (options.leader_port <= 0) {
    return Status::InvalidArgument("follower needs the leader's port");
  }
  if (options.follower_id.empty()) options.follower_id = options.dir;
  std::unique_ptr<Follower> follower(new Follower(std::move(options)));
  PROMETHEUS_RETURN_IF_ERROR(follower->LocalRecover());

  server::Server::Options server_options;
  server_options.worker_threads = follower->options_.worker_threads;
  server_options.read_only = true;
  Follower* raw = follower.get();
  server_options.replication_probe = [raw] { return raw->ProgressJson(); };
  server_options.replication_rows = [raw] { return raw->ProgressRows(); };
  follower->server_ = std::make_unique<server::Server>(
      follower->db_.get(), std::move(server_options));

  if (follower->options_.serve_http) {
    net::HttpFrontEnd::Options http_options;
    http_options.bind_address = follower->options_.bind_address;
    http_options.port = follower->options_.http_port;
    follower->front_ = std::make_unique<net::HttpFrontEnd>(
        follower->server_.get(), std::move(http_options));
    PROMETHEUS_RETURN_IF_ERROR(follower->front_->Start());
  }

  follower->fetcher_ = std::thread([raw] { raw->FetchLoop(); });
  return follower;
}

Follower::~Follower() { Stop(); }

void Follower::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (fetcher_.joinable()) fetcher_.join();
  if (front_ != nullptr) front_->Stop();
  if (server_ != nullptr) server_->Shutdown();
  mirror_.reset();
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = true;
  }
}

Result<std::unique_ptr<storage::DurableStore>> Follower::Promote() {
  Stop();
  // The mirror holds only committed units (a byte-identical prefix of the
  // leader's history), so this is an ordinary recovery: newest snapshot +
  // journal replays + live-journal truncation to the committed boundary.
  storage::DurableStore::Options store_options;
  store_options.env = options_.env;  // nullptr selects the default env
  return storage::DurableStore::Open(options_.dir, std::move(store_options));
}

Follower::Progress Follower::progress() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return progress_;
}

void Follower::UpdateProgress(const Progress& p) {
  std::lock_guard<std::mutex> lock(progress_mu_);
  progress_ = p;
}

std::string Follower::ProgressJson() const {
  const Progress p = progress();
  std::ostringstream out;
  out << "{\"connected\":" << (p.connected ? "true" : "false")
      << ",\"caught_up\":" << (p.caught_up ? "true" : "false")
      << ",\"generation\":" << p.generation
      << ",\"journal_seq\":" << p.journal_seq << ",\"offset\":" << p.offset
      << ",\"records_applied\":" << p.records_applied
      << ",\"lag_records\":" << p.lag_records
      << ",\"lag_bytes\":" << p.lag_bytes
      << ",\"reconnects\":" << p.reconnects
      << ",\"rebootstraps\":" << p.rebootstraps
      << ",\"corrupt_frames\":" << p.corrupt_frames << "}";
  return out.str();
}

std::vector<Value> Follower::ProgressRows() const {
  const Progress p = progress();
  auto u64 = [](std::uint64_t v) {
    return Value::Int(static_cast<std::int64_t>(v));
  };
  std::vector<Value> rows;
  rows.push_back(Value::MakeStruct({{"role", Value::String("follower")},
                                    {"connected", Value::Bool(p.connected)},
                                    {"caught_up", Value::Bool(p.caught_up)},
                                    {"generation", u64(p.generation)},
                                    {"journal_seq", u64(p.journal_seq)},
                                    {"offset", u64(p.offset)},
                                    {"records_applied", u64(p.records_applied)},
                                    {"lag_records", u64(p.lag_records)},
                                    {"lag_bytes", u64(p.lag_bytes)},
                                    {"reconnects", u64(p.reconnects)},
                                    {"rebootstraps", u64(p.rebootstraps)},
                                    {"corrupt_frames", u64(p.corrupt_frames)},
                                    {"polls", u64(p.polls)}}));
  return rows;
}

bool Follower::WaitCaughtUp(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // A caught-up verdict from before this call may predate the caller's
  // last write; only a poll issued after entry proves the tail is current.
  const std::uint64_t polls_at_entry = progress().polls;
  for (;;) {
    const Progress p = progress();
    if (p.connected && p.caught_up && p.polls > polls_at_entry) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (StopRequestedWithin(5)) return false;
  }
}

bool Follower::StopRequestedWithin(int ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                           [this] { return stop_; });
}

Status Follower::OpenMirror(std::uint64_t seq, bool truncate) {
  mirror_.reset();
  const std::string path =
      options_.dir + "/" + storage::JournalFileName(seq);
  PROMETHEUS_ASSIGN_OR_RETURN(mirror_,
                              env_->NewWritableFile(path, truncate));
  journal_seq_ = seq;
  return Status::Ok();
}

Status Follower::LocalRecover() {
  FollowerMetrics metrics(options_.follower_id);
  PROMETHEUS_RETURN_IF_ERROR(env_->CreateDir(options_.dir));
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                              env_->ListDir(options_.dir));
  std::map<std::uint64_t, std::string> snapshots;
  std::map<std::uint64_t, std::string> journals;
  for (const std::string& name : entries) {
    std::uint64_t seq = 0;
    if (storage::ParseSnapshotFileName(name, &seq)) {
      snapshots[seq] = name;
    } else if (storage::ParseJournalFileName(name, &seq)) {
      journals[seq] = name;
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      (void)env_->RemoveFile(options_.dir + "/" + name);  // torn download
    }
  }

  // Newest snapshot that validates wins, exactly like DurableStore::Open.
  generation_ = 0;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto fresh = std::make_unique<Database>();
    if (storage::LoadSnapshot(fresh.get(), options_.dir + "/" + it->second)
            .ok()) {
      db_ = std::move(fresh);
      generation_ = it->first;
      break;
    }
  }

  storage::Journal::ReplayReport last_report;
  std::uint64_t last_seq = 0;
  std::string last_path;
  for (const auto& [seq, name] : journals) {
    if (seq <= generation_) continue;
    storage::Journal::ReplayReport report;
    const std::string path = options_.dir + "/" + name;
    PROMETHEUS_RETURN_IF_ERROR(
        storage::Journal::ReplayTail(db_.get(), path, &report));
    // Satellite: every catch-up replay is visible in /metrics, so silent
    // mirror corruption shows up as dropped bytes, not as quiet divergence.
    metrics.catchup_replayed->Increment(report.applied_records);
    metrics.catchup_dropped_records->Increment(report.dropped_records);
    metrics.catchup_dropped_bytes->Increment(report.dropped_bytes);
    if (report.torn_tail) metrics.catchup_torn_tails->Increment();
    last_report = report;
    last_seq = seq;
    last_path = path;
  }

  applier_ = std::make_unique<JournalStreamApplier>(
      db_.get(), [this](std::string_view bytes) -> Status {
        PROMETHEUS_RETURN_IF_ERROR(mirror_->Append(bytes));
        return mirror_->Flush();
      });

  if (last_seq != 0 && last_report.resumable) {
    // Cut the mirror back to the committed boundary (drops torn tails and,
    // when the leader closed this journal, its END marker — the stream
    // will re-deliver whatever follows) and resume appending there.
    PROMETHEUS_RETURN_IF_ERROR(
        env_->TruncateFile(last_path, last_report.append_offset));
    PROMETHEUS_RETURN_IF_ERROR(OpenMirror(last_seq, /*truncate=*/false));
    applier_->ResumeJournal(last_report.append_offset,
                            last_report.applied_records);
  } else if (last_seq != 0) {
    // Header never fully landed: the file holds nothing applied. Drop it
    // and re-fetch the journal from offset 0.
    (void)env_->RemoveFile(last_path);
    PROMETHEUS_RETURN_IF_ERROR(OpenMirror(last_seq, /*truncate=*/true));
    applier_->StartJournal(/*expect_full=*/generation_ == 0 && last_seq == 1);
  } else if (generation_ != 0) {
    // Snapshot only: tail the journal that continues it.
    PROMETHEUS_RETURN_IF_ERROR(
        OpenMirror(generation_ + 1, /*truncate=*/true));
    applier_->StartJournal(/*expect_full=*/false);
  } else {
    // Nothing local: bootstrap from the leader on first contact.
    need_bootstrap_ = true;
  }

  Progress p;
  p.generation = generation_;
  p.journal_seq = journal_seq_;
  p.offset = applier_ != nullptr ? applier_->boundary() : 0;
  p.records_applied = applier_ != nullptr ? applier_->records_applied() : 0;
  UpdateProgress(p);
  return Status::Ok();
}

std::string Follower::NextFetchTraceId() {
  return "repl-" + SanitizeTraceComponent(options_.follower_id) + "-" +
         std::to_string(++fetch_trace_seq_);
}

void Follower::RecordFetchTrace(const std::string& trace_id,
                                const std::string& what, std::size_t bytes,
                                double micros) {
  if (server_ == nullptr || !server_->flight_recorder().enabled()) return;
  obs::FlightRecorder::Entry entry;
  entry.trace_id = trace_id;
  entry.type = "repl_fetch";
  entry.code = "ok";
  entry.ok = true;
  entry.executed = true;
  entry.total_micros = micros;
  entry.detail = what + " (" + std::to_string(bytes) + " bytes)";
  server_->flight_recorder().Record(std::move(entry));
}

Result<Follower::Manifest> Follower::FetchManifest(net::HttpConnection* conn) {
  const std::string trace_id = NextFetchTraceId();
  const auto start = std::chrono::steady_clock::now();
  PROMETHEUS_ASSIGN_OR_RETURN(
      net::HttpResponse resp,
      conn->RoundTrip("GET", "/repl/manifest", "",
                      {{"X-Trace-Id", trace_id}}));
  if (resp.status_code != 200) {
    return Status::IoError("manifest fetch failed: HTTP " +
                           std::to_string(resp.status_code));
  }
  RecordFetchTrace(trace_id, "GET /repl/manifest", resp.body.size(),
                   MicrosSince(start));
  Manifest m;
  std::istringstream in(resp.body);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "generation") {
      fields >> m.generation;
    } else if (key == "live_seq") {
      fields >> m.live_seq;
    } else if (key == "live_records") {
      fields >> m.live_records;
    } else if (key == "snapshot" || key == "journal") {
      std::uint64_t seq = 0, size = 0;
      fields >> seq >> size;
      if (!fields.fail()) {
        (key == "snapshot" ? m.snapshots : m.journals)[seq] = size;
      }
    }
  }
  return m;
}

Status Follower::Bootstrap(net::HttpConnection* conn,
                           const Manifest& manifest) {
  FollowerMetrics metrics(options_.follower_id);
  metrics.rebootstraps->Increment();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++progress_.rebootstraps;
    progress_.caught_up = false;
  }
  mirror_.reset();

  std::string snapshot_name;
  if (manifest.generation != 0) {
    // Download the newest snapshot in chunks to a staging file, then
    // rename — a crash mid-download leaves only a .tmp that recovery
    // deletes.
    snapshot_name = storage::SnapshotFileName(manifest.generation);
    const std::string path = options_.dir + "/" + snapshot_name;
    const std::string tmp = path + ".tmp";
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::WritableFile> out,
                                env_->NewWritableFile(tmp, /*truncate=*/true));
    std::uint64_t offset = 0;
    for (;;) {
      const std::string target =
          "/repl/snapshot?gen=" + std::to_string(manifest.generation) +
          "&offset=" + std::to_string(offset) +
          "&limit=" + std::to_string(options_.fetch_limit_bytes) +
          "&follower=" + options_.follower_id;
      const std::string trace_id = NextFetchTraceId();
      const auto fetch_start = std::chrono::steady_clock::now();
      PROMETHEUS_ASSIGN_OR_RETURN(
          net::HttpResponse resp,
          conn->RoundTrip("GET", target, "", {{"X-Trace-Id", trace_id}}));
      RecordFetchTrace(trace_id, "GET /repl/snapshot", resp.body.size(),
                       MicrosSince(fetch_start));
      if (resp.status_code == 410) {
        // Pruned under us (we were silent past the pin expiry): the next
        // session starts over from a fresh manifest.
        return Status::Unavailable("snapshot pruned mid-download");
      }
      if (resp.status_code != 200) {
        return Status::IoError("snapshot fetch failed: HTTP " +
                               std::to_string(resp.status_code));
      }
      const std::uint64_t total = HeaderU64(resp, "x-repl-total-size");
      if (!resp.body.empty()) {
        PROMETHEUS_RETURN_IF_ERROR(out->Append(resp.body));
        offset += resp.body.size();
      }
      if (offset >= total) break;
      if (resp.body.empty()) {
        return Status::IoError("snapshot stream stalled short of its size");
      }
    }
    PROMETHEUS_RETURN_IF_ERROR(out->Sync());
    PROMETHEUS_RETURN_IF_ERROR(out->Close());
    PROMETHEUS_RETURN_IF_ERROR(env_->RenameFile(tmp, path));
  }

  // Swap the database to the snapshot state in place: the read-only server
  // keeps its `Database*`, queries before/after the guard see the old or
  // the new world, never a mix.
  {
    Database::WriteGuard guard(*db_);
    PROMETHEUS_RETURN_IF_ERROR(db_->Clear());
    if (manifest.generation != 0) {
      Status st = storage::LoadSnapshot(db_.get(),
                                        options_.dir + "/" + snapshot_name);
      if (!st.ok()) {
        // A corrupt download must not leave readers a partial prefix; the
        // next session downloads again into an empty database.
        (void)db_->Clear();
        (void)env_->RemoveFile(options_.dir + "/" + snapshot_name);
        return st;
      }
    }
  }
  generation_ = manifest.generation;
  // The epoch bump from the write guard above already invalidated every
  // cached result, but a wholesale rebootstrap also obsoletes cached plans
  // whose schema analysis predates the new snapshot — drop both tiers.
  if (server_ != nullptr) server_->query_cache().Clear();

  // Prune mirror files from the superseded history so a promoted follower
  // never resurrects (or leaks) generations the leader no longer has.
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                              env_->ListDir(options_.dir));
  for (const std::string& name : entries) {
    std::uint64_t seq = 0;
    if (storage::ParseSnapshotFileName(name, &seq)) {
      if (name != snapshot_name) {
        (void)env_->RemoveFile(options_.dir + "/" + name);
      }
    } else if (storage::ParseJournalFileName(name, &seq)) {
      (void)env_->RemoveFile(options_.dir + "/" + name);
    }
  }

  // Tail the oldest journal after the snapshot (the one that continues
  // it). Generation 0 means the leader never checkpointed: its first
  // journal is `full` and carries the schema prologue.
  std::uint64_t next_seq = 0;
  for (const auto& [seq, size] : manifest.journals) {
    if (seq > generation_) {
      next_seq = seq;
      break;
    }
  }
  if (next_seq == 0) {
    return Status::Unavailable("leader manifest lists no journal to tail");
  }
  PROMETHEUS_RETURN_IF_ERROR(OpenMirror(next_seq, /*truncate=*/true));
  applier_->StartJournal(/*expect_full=*/generation_ == 0 && next_seq == 1);
  corrupt_repeats_ = 0;
  return Status::Ok();
}

Status Follower::RunSession(bool* made_progress) {
  FollowerMetrics metrics(options_.follower_id);
  PROMETHEUS_ASSIGN_OR_RETURN(
      std::unique_ptr<net::HttpConnection> conn,
      net::HttpConnection::Connect(options_.leader_host, options_.leader_port,
                                   options_.fetch_timeout_ms));

  // Validate the local chain against the leader before tailing: the mirror
  // must be a prefix of *this* leader's history.
  {
    PROMETHEUS_ASSIGN_OR_RETURN(Manifest m, FetchManifest(conn.get()));
    *made_progress = true;
    bool chain_ok = !need_bootstrap_;
    if (chain_ok && generation_ > m.generation) chain_ok = false;  // diverged
    if (chain_ok && journal_seq_ != 0 &&
        m.journals.find(journal_seq_) == m.journals.end() &&
        journal_seq_ <= m.live_seq) {
      chain_ok = false;  // our journal was pruned
    }
    if (!chain_ok) {
      need_bootstrap_ = true;
      PROMETHEUS_RETURN_IF_ERROR(Bootstrap(conn.get(), m));
      need_bootstrap_ = false;
    }
  }

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_) return Status::Ok();
    }
    const std::string target =
        "/repl/journal?seq=" + std::to_string(journal_seq_) +
        "&offset=" + std::to_string(applier_->fetch_offset()) +
        "&limit=" + std::to_string(options_.fetch_limit_bytes) +
        "&follower=" + options_.follower_id;
    const std::string trace_id = NextFetchTraceId();
    const auto fetch_start = std::chrono::steady_clock::now();
    PROMETHEUS_ASSIGN_OR_RETURN(
        net::HttpResponse resp,
        conn->RoundTrip("GET", target, "", {{"X-Trace-Id", trace_id}}));
    // Only fetches that moved bytes are recorded: a caught-up follower
    // polls forever, and empty polls would wash every useful trace out of
    // the bounded ring.
    if (!resp.body.empty()) {
      RecordFetchTrace(trace_id, "GET /repl/journal", resp.body.size(),
                       MicrosSince(fetch_start));
    }
    if (resp.status_code == 410 || resp.status_code == 416) {
      // Pruned or divergent: rebootstrap from the leader's newest
      // snapshot, on this same connection.
      PROMETHEUS_ASSIGN_OR_RETURN(Manifest m, FetchManifest(conn.get()));
      PROMETHEUS_RETURN_IF_ERROR(Bootstrap(conn.get(), m));
      need_bootstrap_ = false;
      continue;
    }
    if (resp.status_code != 200) {
      return Status::IoError("journal fetch failed: HTTP " +
                             std::to_string(resp.status_code));
    }
    *made_progress = true;
    const std::uint64_t file_size = HeaderU64(resp, "x-repl-size");
    const std::uint64_t live_seq = HeaderU64(resp, "x-repl-live-seq");
    const std::uint64_t live_records = HeaderU64(resp, "x-repl-live-records");

    const std::uint64_t before = applier_->records_applied();
    if (!resp.body.empty()) {
      Status st = applier_->Feed(resp.body);
      if (!st.ok()) {
        // Mirror write or apply failure: this copy of the journal cannot
        // be trusted any more. Start over from a snapshot.
        metrics.dropped_bytes->Increment(applier_->fetch_offset() -
                                         applier_->boundary());
        need_bootstrap_ = true;
        return st;
      }
    }
    metrics.applied_records->Increment(applier_->records_applied() - before);

    if (applier_->state() == JournalStreamApplier::State::kCorrupt) {
      metrics.corrupt_frames->Increment();
      {
        std::lock_guard<std::mutex> lock(progress_mu_);
        ++progress_.corrupt_frames;
      }
      metrics.dropped_bytes->Increment(applier_->fetch_offset() -
                                       applier_->boundary());
      if (applier_->boundary() == corrupt_boundary_) {
        if (++corrupt_repeats_ >= 3) {
          // Persistent corruption at one offset is not a torn tail — the
          // leader's file (or our mirror) is damaged. Rebootstrap.
          PROMETHEUS_ASSIGN_OR_RETURN(Manifest m, FetchManifest(conn.get()));
          PROMETHEUS_RETURN_IF_ERROR(Bootstrap(conn.get(), m));
          need_bootstrap_ = false;
          continue;
        }
      } else {
        corrupt_boundary_ = applier_->boundary();
        corrupt_repeats_ = 1;
      }
      applier_->Rewind();
      continue;
    }

    if (applier_->state() == JournalStreamApplier::State::kEnd) {
      // This journal closed cleanly. Its successor appears in the manifest
      // once the leader's checkpoint finishes; until then, poll.
      PROMETHEUS_ASSIGN_OR_RETURN(Manifest m, FetchManifest(conn.get()));
      std::uint64_t next_seq = 0;
      for (const auto& [seq, size] : m.journals) {
        if (seq > journal_seq_) {
          next_seq = seq;
          break;
        }
      }
      if (next_seq != 0) {
        generation_ = m.generation;
        PROMETHEUS_RETURN_IF_ERROR(OpenMirror(next_seq, /*truncate=*/true));
        applier_->StartJournal(/*expect_full=*/false);
        continue;
      }
      if (StopRequestedWithin(options_.poll_interval_ms)) return Status::Ok();
      applier_->Rewind();  // drop the unconsumed END; re-fetch will confirm
      continue;
    }

    // Lag accounting. On the live journal both gauges are exact; on an
    // older journal the byte gauge covers the remainder of this file (an
    // underestimate) and the record gauge is unknowable until we catch up.
    const bool on_live = journal_seq_ == live_seq;

    if (!on_live && resp.body.empty() &&
        applier_->fetch_offset() >= file_size) {
      // A non-live journal is immutable on the leader, so consuming it to
      // its full size is equivalent to reaching END. This is the *only*
      // rotation signal when the leader is itself a promoted mirror:
      // mirrors never carry END markers (see the applier's END rule).
      if (applier_->fetch_offset() != applier_->boundary()) {
        // The immutable file ends inside a frame: damaged history.
        metrics.dropped_bytes->Increment(applier_->fetch_offset() -
                                         applier_->boundary());
        need_bootstrap_ = true;
        return Status::IoError("closed journal ends mid-frame");
      }
      PROMETHEUS_ASSIGN_OR_RETURN(Manifest m, FetchManifest(conn.get()));
      std::uint64_t next_seq = 0;
      for (const auto& [seq, size] : m.journals) {
        if (seq > journal_seq_) {
          next_seq = seq;
          break;
        }
      }
      if (next_seq != 0) {
        generation_ = m.generation;
        PROMETHEUS_RETURN_IF_ERROR(OpenMirror(next_seq, /*truncate=*/true));
        applier_->StartJournal(/*expect_full=*/false);
        continue;
      }
      if (StopRequestedWithin(options_.poll_interval_ms)) return Status::Ok();
      continue;
    }
    const std::uint64_t lag_bytes =
        file_size > applier_->boundary() ? file_size - applier_->boundary()
                                         : 0;
    const std::uint64_t lag_records =
        on_live && live_records > applier_->records_applied()
            ? live_records - applier_->records_applied()
            : 0;
    const bool caught_up =
        on_live && resp.body.empty() && applier_->fetch_offset() >= file_size;
    metrics.lag_bytes->Set(static_cast<std::int64_t>(lag_bytes));
    metrics.lag_records->Set(static_cast<std::int64_t>(lag_records));
    metrics.connected->Set(1);

    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      progress_.connected = true;
      progress_.caught_up = caught_up;
      ++progress_.polls;
      progress_.generation = generation_;
      progress_.journal_seq = journal_seq_;
      progress_.offset = applier_->boundary();
      progress_.records_applied = applier_->records_applied();
      progress_.lag_records = lag_records;
      progress_.lag_bytes = lag_bytes;
    }

    if (resp.body.empty()) {
      // Caught up: poll at the configured cadence.
      if (StopRequestedWithin(options_.poll_interval_ms)) return Status::Ok();
    }
  }
}

void Follower::FetchLoop() {
  FollowerMetrics metrics(options_.follower_id);
  std::mt19937_64 rng(std::random_device{}());
  int attempt = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_) return;
    }
    bool made_progress = false;
    Status st = RunSession(&made_progress);
    if (made_progress) attempt = 0;
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_) return;
    }
    if (st.ok()) continue;  // clean exit paths loop straight back

    // Disconnected (leader down, killed mid-stream, network fault): any
    // buffered unverified bytes are dropped and re-fetched from the
    // committed boundary after a jittered exponential backoff.
    applier_->Rewind();
    metrics.reconnects->Increment();
    metrics.connected->Set(0);
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      progress_.connected = false;
      progress_.caught_up = false;
      ++progress_.reconnects;
    }
    double backoff_us = static_cast<double>(
        options_.retry.initial_backoff.count());
    for (int i = 0; i < attempt; ++i) backoff_us *= options_.retry.multiplier;
    backoff_us = std::min(
        backoff_us, static_cast<double>(options_.retry.max_backoff.count()));
    // Full jitter: uniform in [0, backoff]. Followers hammering a
    // restarted leader in lockstep is exactly what this avoids.
    std::uniform_real_distribution<double> jitter(0.0, backoff_us);
    const int sleep_ms =
        std::max(1, static_cast<int>(jitter(rng) / 1000.0));
    if (StopRequestedWithin(sleep_ms)) return;
    ++attempt;
  }
}

}  // namespace prometheus::replication
