file(REMOVE_RECURSE
  "libprometheus_taxonomy.a"
)
