file(REMOVE_RECURSE
  "libprometheus_event.a"
)
