#ifndef PROMETHEUS_COMMON_OID_H_
#define PROMETHEUS_COMMON_OID_H_

#include <cstdint>
#include <functional>

namespace prometheus {

/// Database-wide stable object identifier.
///
/// A single Oid space covers objects, relationship instances (links) and
/// classifications, matching the thesis' treatment of relationships as
/// first-class citizens: anything addressable in the database has an Oid and
/// can appear in a query result. Oid 0 is never allocated.
using Oid = std::uint64_t;

/// The null / "no object" identifier.
inline constexpr Oid kNullOid = 0;

}  // namespace prometheus

#endif  // PROMETHEUS_COMMON_OID_H_
