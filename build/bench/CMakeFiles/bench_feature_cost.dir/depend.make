# Empty dependencies file for bench_feature_cost.
# This may be replaced when dependencies are built.
