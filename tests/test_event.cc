#include <gtest/gtest.h>

#include <vector>

#include "event/event_bus.h"

namespace prometheus {
namespace {

Event MakeEvent(EventKind kind) { return Event(kind); }

TEST(EventKindTest, Names) {
  EXPECT_STREQ(EventKindName(EventKind::kBeforeCreateObject),
               "BeforeCreateObject");
  EXPECT_STREQ(EventKindName(EventKind::kAfterCommit), "AfterCommit");
}

TEST(EventKindTest, BeforeClassification) {
  EXPECT_TRUE(IsBeforeEvent(EventKind::kBeforeCreateLink));
  EXPECT_TRUE(IsBeforeEvent(EventKind::kBeforeCommit));
  EXPECT_FALSE(IsBeforeEvent(EventKind::kAfterCreateLink));
  EXPECT_FALSE(IsBeforeEvent(EventKind::kTransactionBegin));
}

TEST(EventBusTest, DeliversToAllListeners) {
  EventBus bus;
  int calls = 0;
  bus.Subscribe([&](const Event&) {
    ++calls;
    return Status::Ok();
  });
  bus.Subscribe([&](const Event&) {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(bus.Publish(MakeEvent(EventKind::kAfterCreateObject)).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(bus.published_count(), 1u);
}

TEST(EventBusTest, BeforeEventVetoShortCircuits) {
  EventBus bus;
  int later_calls = 0;
  bus.Subscribe(
      [&](const Event&) { return Status::ConstraintViolation("no"); },
      /*priority=*/10);
  bus.Subscribe([&](const Event&) {
    ++later_calls;
    return Status::Ok();
  });
  Status st = bus.Publish(MakeEvent(EventKind::kBeforeDeleteObject));
  EXPECT_EQ(st.code(), Status::Code::kConstraintViolation);
  EXPECT_EQ(later_calls, 0);
}

TEST(EventBusTest, AfterEventDeliversToAllThenReportsFirstViolation) {
  EventBus bus;
  int later_calls = 0;
  bus.Subscribe(
      [&](const Event&) { return Status::ConstraintViolation("no"); },
      /*priority=*/10);
  bus.Subscribe([&](const Event&) {
    ++later_calls;
    return Status::Ok();
  });
  Status st = bus.Publish(MakeEvent(EventKind::kAfterDeleteObject));
  EXPECT_EQ(st.code(), Status::Code::kConstraintViolation);
  EXPECT_EQ(later_calls, 1);  // no short-circuit for after events
}

TEST(EventBusTest, PriorityOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.Subscribe([&](const Event&) {
    order.push_back(1);
    return Status::Ok();
  });
  bus.Subscribe(
      [&](const Event&) {
        order.push_back(2);
        return Status::Ok();
      },
      /*priority=*/100);
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(EventBusTest, Unsubscribe) {
  EventBus bus;
  int calls = 0;
  ListenerId id = bus.Subscribe([&](const Event&) {
    ++calls;
    return Status::Ok();
  });
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  bus.Unsubscribe(id);
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.listener_count(), 0u);
}

TEST(EventBusTest, ListenerMayUnsubscribeDuringDelivery) {
  EventBus bus;
  ListenerId self = 0;
  int calls = 0;
  self = bus.Subscribe([&](const Event&) {
    ++calls;
    bus.Unsubscribe(self);
    return Status::Ok();
  });
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  EXPECT_EQ(calls, 1);
}

TEST(EventBusTest, ListenerMaySubscribeDuringDelivery) {
  EventBus bus;
  int second_calls = 0;
  bus.Subscribe([&](const Event&) {
    if (bus.listener_count() == 1) {
      bus.Subscribe([&](const Event&) {
        ++second_calls;
        return Status::Ok();
      });
    }
    return Status::Ok();
  });
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  bus.Publish(MakeEvent(EventKind::kAfterCreateObject));
  // The listener added mid-delivery sees at least the second publish.
  EXPECT_GE(second_calls, 1);
}

TEST(EventBusTest, EqualPriorityPreservesSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    bus.Subscribe(
        [&order, i](const Event&) {
          order.push_back(i);
          return Status::Ok();
        },
        /*priority=*/7);
  }
  bus.Publish(Event(EventKind::kAfterCreateObject));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventBusTest, CompensatingDefaultsToFalse) {
  Event ev(EventKind::kAfterDeleteObject);
  EXPECT_FALSE(ev.compensating);
}

TEST(EventBusTest, EventPayloadReachesListener) {
  EventBus bus;
  Event seen;
  bus.Subscribe([&](const Event& e) {
    seen = e;
    return Status::Ok();
  });
  Event ev(EventKind::kAfterSetAttribute);
  ev.subject = 42;
  ev.type_name = "Taxon";
  ev.attribute = "rank";
  ev.old_value = Value::String("Genus");
  ev.new_value = Value::String("Species");
  bus.Publish(ev);
  EXPECT_EQ(seen.subject, 42u);
  EXPECT_EQ(seen.type_name, "Taxon");
  EXPECT_EQ(seen.attribute, "rank");
  EXPECT_TRUE(seen.old_value.Equals(Value::String("Genus")));
  EXPECT_TRUE(seen.new_value.Equals(Value::String("Species")));
}

}  // namespace
}  // namespace prometheus
