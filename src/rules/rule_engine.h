#ifndef PROMETHEUS_RULES_RULE_ENGINE_H_
#define PROMETHEUS_RULES_RULE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "query/query_engine.h"

namespace prometheus {

/// Identifier of an installed rule.
using RuleId = std::uint64_t;

/// When a rule's condition is checked (thesis 5.2.2.1, scheduling):
/// immediate rules run as part of the triggering operation; deferred rules
/// are queued and run at commit (or at once outside a transaction).
enum class RuleTiming : std::uint8_t {
  kImmediate,
  kDeferred,
};

/// What happens when a rule's condition fails (thesis 5.2.2.2, error
/// handling):
///  - kAbort: the operation is vetoed / the transaction aborts;
///  - kWarn: the violation is recorded but the operation proceeds;
///  - kInteractive: the registered handler decides (the thesis' interactive
///    rules, used by taxonomists to override the ICBN knowingly).
enum class RuleAction : std::uint8_t {
  kAbort,
  kWarn,
  kInteractive,
};

/// Which event(s) a rule reacts to: an event kind plus an optional type
/// filter (class name for object events, relationship name for link events;
/// subclasses / sub-relationships match).
struct RuleEventSelector {
  EventKind kind;
  std::string type_filter;  ///< empty = any type
};

/// Declarative specification of an ECA rule (thesis 5.2.1: Event,
/// Condition of applicability, Condition, action).
///
/// Conditions are POOL boolean expressions evaluated with these bindings:
///   `self`     — the subject object (or the link, for link events)
///   `link`     — the link (link events only)
///   `source`, `target`, `context` — link participants (link events)
///   `attribute` — attribute name (attribute events, as a string)
///   `old`, `new` — attribute values (attribute events)
///   `event`    — the event kind name (string)
/// A rule fires when `applicability` (if any) evaluates true; it is
/// violated when `condition` then evaluates false (or fails to evaluate —
/// abort rules fail closed).
struct RuleSpec {
  std::string name;
  std::vector<RuleEventSelector> events;
  std::string applicability;  ///< POOL expr; empty = always applicable
  std::string condition;      ///< POOL expr; must evaluate true
  RuleTiming timing = RuleTiming::kImmediate;
  RuleAction action = RuleAction::kAbort;
  std::string message;        ///< human-readable violation text

  /// Composite event (thesis 5.2.1.1): when true the selectors form a
  /// *conjunction* — the rule fires only once every selector has matched
  /// within the current transaction (evaluated at commit, with the
  /// bindings of the last matching event). When false (the default) the
  /// selectors are a disjunction: any match fires the rule.
  bool composite = false;
};

/// A recorded violation (for kWarn rules and diagnostics).
struct RuleViolation {
  std::string rule_name;
  std::string message;
  Oid subject = kNullOid;
};

/// The rule layer (thesis 5.2, architecture 6.1.6): subscribes to the
/// database's event bus and evaluates ECA rules.
///
/// Immediate abort rules on before-events veto the operation; on
/// after-events their violation status makes the database undo the
/// auto-committed operation (or surfaces to the caller inside a
/// transaction). Deferred rules are queued per transaction and checked when
/// the database publishes kBeforeCommit; a violation aborts the commit.
class RuleEngine {
 public:
  /// Handler for kInteractive rules: returns true to allow the operation
  /// despite the violated condition.
  using InteractiveHandler = std::function<bool(const RuleViolation&)>;

  /// Subscribes to `db`'s bus (priority below the built-in layers so rules
  /// observe consistent derived state). `db` must outlive the engine.
  explicit RuleEngine(Database* db);
  ~RuleEngine();

  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  /// Installs a rule. Both expressions are parsed now; parse errors are
  /// reported here, not at event time.
  Result<RuleId> AddRule(const RuleSpec& spec);

  /// Removes / disables / enables a rule.
  Status RemoveRule(RuleId id);
  Status SetRuleEnabled(RuleId id, bool enabled);

  /// Convenience factories for the thesis' rule taxonomy (5.2.1.4).
  /// Invariant: must hold after every creation of / attribute change to an
  /// instance of `class_name`.
  Result<RuleId> AddInvariant(const std::string& name,
                              const std::string& class_name,
                              const std::string& condition,
                              const std::string& message,
                              RuleTiming timing = RuleTiming::kImmediate,
                              RuleAction action = RuleAction::kAbort);

  /// Pre-condition: must hold before deleting an instance of `class_name`.
  Result<RuleId> AddDeletePrecondition(const std::string& name,
                                       const std::string& class_name,
                                       const std::string& condition,
                                       const std::string& message);

  /// Relationship rule: must hold after creating a link of `rel_name`
  /// (vetoes the link when violated — evaluated on the before event so the
  /// half-created link never becomes visible).
  Result<RuleId> AddRelationshipRule(const std::string& name,
                                     const std::string& rel_name,
                                     const std::string& condition,
                                     const std::string& message,
                                     RuleAction action = RuleAction::kAbort);

  /// Registers the handler consulted by kInteractive rules. Without a
  /// handler, interactive violations abort.
  void set_interactive_handler(InteractiveHandler handler) {
    interactive_ = std::move(handler);
  }

  /// Violations recorded by kWarn rules (and allowed interactive ones).
  const std::vector<RuleViolation>& warnings() const { return warnings_; }
  void clear_warnings() { warnings_.clear(); }

  /// Counters for the rule-overhead benchmark (E10).
  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t violations() const { return violations_; }

  /// Number of installed (enabled or disabled) rules.
  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct CompiledRule {
    RuleId id;
    RuleSpec spec;
    std::unique_ptr<pool::Expr> applicability;  // null = always
    std::unique_ptr<pool::Expr> condition;
    bool enabled = true;
  };

  struct DeferredCheck {
    const CompiledRule* rule;
    pool::Environment env;
  };

  /// Progress of a composite rule within the current transaction.
  struct CompositeProgress {
    std::vector<bool> matched;  ///< one flag per selector
    pool::Environment last_env;
  };

  Status OnEvent(const Event& event);
  Status EvaluateRule(const CompiledRule& rule, const pool::Environment& env);
  static pool::Environment BindEnvironment(const Event& event);
  bool Matches(const CompiledRule& rule, const Event& event) const;
  bool SelectorMatches(const RuleEventSelector& selector,
                       const Event& event) const;

  Database* db_;
  pool::QueryEngine engine_;
  ListenerId listener_ = 0;
  std::vector<std::unique_ptr<CompiledRule>> rules_;
  std::vector<DeferredCheck> deferred_;
  std::unordered_map<const CompiledRule*, CompositeProgress> composites_;
  std::vector<RuleViolation> warnings_;
  InteractiveHandler interactive_;
  RuleId next_id_ = 1;
  std::uint64_t evaluations_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace prometheus

#endif  // PROMETHEUS_RULES_RULE_ENGINE_H_
