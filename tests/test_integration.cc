// Whole-stack integration: one revision scenario driven through the
// taxonomy API with every layer attached at once — ICBN rules, an
// attribute index, a materialised view, and a journal — verifying that
// they stay mutually consistent through transactions, aborts and replay.

#include <gtest/gtest.h>

#include "index/index_manager.h"
#include "storage/journal.h"
#include "taxonomy/taxonomy_db.h"
#include "views/view_manager.h"

namespace prometheus {
namespace {

using taxonomy::Rank;
using taxonomy::TaxonomyDatabase;
using taxonomy::TypeKind;

class FullStackFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(tdb.InstallIcbnRules().ok());
    indexes = std::make_unique<IndexManager>(&tdb.db());
    ASSERT_TRUE(
        indexes->CreateIndex(taxonomy::kNameClass, "name_element").ok());
    views = std::make_unique<ViewManager>(&tdb.db());
    ViewDef def;
    def.name = "genera_names";
    def.class_name = taxonomy::kNameClass;
    def.predicate = "self.rank = 'Genus'";
    ASSERT_TRUE(views->DefineMaterialized(def).ok());
    journal_path = ::testing::TempDir() + "/integration_journal.log";
    auto opened = storage::Journal::Open(&tdb.db(), journal_path,
                                         storage::Journal::OpenMode::kTruncate);
    ASSERT_TRUE(opened.ok());
    journal = std::move(opened).value();
  }

  TaxonomyDatabase tdb;
  std::unique_ptr<IndexManager> indexes;
  std::unique_ptr<ViewManager> views;
  std::unique_ptr<storage::Journal> journal;
  std::string journal_path;
};

TEST_F(FullStackFixture, RevisionScenarioKeepsEveryLayerConsistent) {
  // --- Published nomenclature (journalled, indexed, viewed, checked). ---
  Oid apium =
      tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  Oid graveolens =
      tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).value();
  ASSERT_TRUE(tdb.RecordPlacement(graveolens, apium).ok());
  Oid type_specimen =
      tdb.AddSpecimen("Linnaeus", "BM", "Herb.Cliff.107").value();
  ASSERT_TRUE(
      tdb.Typify(graveolens, type_specimen, TypeKind::kLectotype).ok());
  ASSERT_TRUE(tdb.Typify(apium, graveolens, TypeKind::kHolotype).ok());

  // ICBN rules are live: a lowercase genus is vetoed everywhere at once.
  EXPECT_FALSE(tdb.PublishName("broken", Rank::kGenus, "X.", 1800).ok());
  // The veto left no trace in index or view.
  EXPECT_TRUE(indexes
                  ->Lookup(taxonomy::kNameClass, "name_element",
                           Value::String("broken"))
                  .value()
                  .empty());
  EXPECT_EQ(views->Evaluate("genera_names").value(),
            std::vector<Oid>{apium});

  // --- A speculative revision that is abandoned. It classifies a fresh,
  // never-typified specimen, so derivation must publish a brand-new genus
  // name ("Draftia").
  ASSERT_TRUE(tdb.db().Begin().ok());
  Oid fresh_specimen = tdb.AddSpecimen("Me", "E", "draft-1").value();
  Oid draft = tdb.NewClassification("draft", "me", 2001).value();
  Oid g = tdb.NewTaxon(draft, Rank::kGenus, "Draftia").value();
  ASSERT_TRUE(tdb.Circumscribe(draft, g, fresh_specimen).ok());
  ASSERT_TRUE(tdb.DeriveAllNames(draft, "me", 2001).ok());
  // The speculative genus name is visible mid-transaction...
  EXPECT_EQ(views->Evaluate("genera_names").value().size(), 2u);
  ASSERT_TRUE(tdb.db().Abort().ok());
  // ...and fully retracted afterwards, in the view AND the index.
  EXPECT_EQ(views->Evaluate("genera_names").value(),
            std::vector<Oid>{apium});
  EXPECT_TRUE(indexes
                  ->Lookup(taxonomy::kNameClass, "name_element",
                           Value::String("Draftia"))
                  .value()
                  .empty());

  // --- The committed revision. ---
  ASSERT_TRUE(tdb.db().Begin().ok());
  Oid revision = tdb.NewClassification("revision", "me", 2002).value();
  Oid genus_taxon = tdb.NewTaxon(revision, Rank::kGenus, "Taxon A").value();
  Oid species_taxon =
      tdb.NewTaxon(revision, Rank::kSpecies, "Taxon B").value();
  ASSERT_TRUE(tdb.PlaceTaxon(revision, genus_taxon, species_taxon,
                             "umbel form")
                  .ok());
  ASSERT_TRUE(tdb.Circumscribe(revision, species_taxon, type_specimen).ok());
  ASSERT_TRUE(tdb.DeriveAllNames(revision, "me", 2002).ok());
  ASSERT_TRUE(tdb.db().Commit().ok());

  // Derivation reused the published names via the type hierarchy.
  EXPECT_EQ(tdb.CalculatedNameOf(genus_taxon), apium);
  EXPECT_EQ(tdb.CalculatedNameOf(species_taxon), graveolens);

  // POOL sees a consistent picture through the index.
  pool::QueryEngine engine(&tdb.db(), indexes.get());
  auto rs = engine.Execute(
      "select n from NomenclaturalTaxon n where n.name_element = 'Apium'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);

  // --- Journal replay reproduces the committed state exactly. ---
  journal.reset();  // close
  Database replica;
  ASSERT_TRUE(storage::Journal::Replay(&replica, journal_path).ok());
  EXPECT_EQ(replica.object_count(), tdb.db().object_count());
  EXPECT_EQ(replica.link_count(), tdb.db().link_count());
  // The abandoned draft left nothing in the journal either.
  for (Oid name : replica.Extent(taxonomy::kNameClass)) {
    auto element = replica.GetAttribute(name, "name_element");
    ASSERT_TRUE(element.ok());
    EXPECT_FALSE(element.value().Equals(Value::String("Draftia")));
  }
}

}  // namespace
}  // namespace prometheus
