file(REMOVE_RECURSE
  "libprometheus_common.a"
)
