#ifndef PROMETHEUS_REPLICATION_APPLIER_H_
#define PROMETHEUS_REPLICATION_APPLIER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus::replication {

/// Incremental consumer of a journal byte stream shipped from a leader.
///
/// The stream is the leader's journal file verbatim — header line plus CRC
/// frames — fetched in arbitrary chunks. The applier re-verifies every
/// frame's CRC on receipt and advances in *durable units*:
///
///   - a `cont` header alone;
///   - a `full` header + schema prologue + EOS, as one unit;
///   - one standalone mutation record;
///   - a whole TXB..records..TXC transaction, applied atomically under a
///     single write guard (TXB/TXC atomicity is preserved on the follower:
///     a connection cut mid-transaction leaves no partial state).
///
/// Each completed unit is first *mirrored* (the caller appends the raw
/// bytes to its local copy of the journal) and then *applied* to the
/// database. `boundary()` — the end offset of the last completed unit —
/// only ever advances over mirrored-and-applied units, so the local file is
/// always a byte-identical prefix of the leader's journal truncated at a
/// committed boundary: exactly what `DurableStore::Open` recovers from on a
/// follower restart or promotion.
///
/// Torn input is never applied: a partial frame reports no progress (the
/// caller re-fetches from `fetch_offset()`), a CRC mismatch or framing
/// contradiction parks the applier in `kCorrupt` until `Rewind()` drops the
/// suspect buffer and the caller re-fetches from the boundary. The END
/// marker is never consumed or mirrored — a restarted leader truncates END
/// and appends over it, so a follower that mirrored it would diverge.
class JournalStreamApplier {
 public:
  enum class State {
    kHeader,     ///< expecting the journal header line
    kStreaming,  ///< consuming frames
    kEnd,        ///< saw END: journal closed cleanly; await the successor
    kCorrupt,    ///< current buffer cannot be trusted; Rewind() to retry
  };

  /// `db` must outlive the applier. `mirror` receives each completed
  /// unit's raw bytes before the unit is applied; a failed mirror aborts
  /// the feed with that status and the unit is not applied.
  using MirrorFn = std::function<Status(std::string_view bytes)>;
  JournalStreamApplier(Database* db, MirrorFn mirror);

  /// Positions at offset 0 of a fresh journal. A `full` journal (the
  /// leader's first, schema prologue included) may only be streamed into an
  /// empty database.
  void StartJournal(bool expect_full);

  /// Resumes mid-journal: the local mirror already holds `offset` bytes
  /// (header and, for full journals, the whole prologue included) whose
  /// records are already applied. `records_applied` is how many mutation
  /// records that prefix held (for lag accounting).
  void ResumeJournal(std::uint64_t offset, std::uint64_t records_applied);

  /// Drops buffered unverified bytes after a disconnect or a corrupt
  /// frame; the caller re-fetches from `fetch_offset()` (== `boundary()`
  /// again after the rewind). Clears kEnd/kCorrupt.
  void Rewind();

  /// Parses, mirrors and applies every completed unit in `bytes` (appended
  /// to the internal buffer). Returns non-OK only for local failures
  /// (mirror write, apply) — those are fatal for this journal copy; wire
  /// damage is reported through `state() == kCorrupt` instead.
  Status Feed(std::string_view bytes);

  State state() const { return state_; }

  /// End offset of the last mirrored-and-applied unit.
  std::uint64_t boundary() const { return boundary_; }

  /// Offset the next fetch should start at (boundary + buffered bytes).
  std::uint64_t fetch_offset() const { return boundary_ + buffer_.size(); }

  /// Mutation records applied in this journal (prologue/markers excluded;
  /// matches the leader's `Journal::record_count()` for the same prefix).
  std::uint64_t records_applied() const { return records_applied_; }

 private:
  /// Mirrors buffer_[0, unit_end) and applies `pending_` atomically.
  Status CompleteUnit(std::size_t unit_end, bool count_records);

  Database* db_;
  MirrorFn mirror_;
  State state_ = State::kHeader;
  bool expect_full_ = false;
  bool in_prologue_ = false;  ///< inside a full journal's schema prologue
  bool in_txn_ = false;       ///< between TXB and TXC
  std::uint64_t boundary_ = 0;
  std::uint64_t records_applied_ = 0;
  std::string buffer_;   ///< bytes past the boundary, not yet durable
  std::size_t scan_ = 0; ///< parse position inside the current unit
  std::vector<std::string> pending_;  ///< records of the open unit
};

}  // namespace prometheus::replication

#endif  // PROMETHEUS_REPLICATION_APPLIER_H_
