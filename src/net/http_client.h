#ifndef PROMETHEUS_NET_HTTP_CLIENT_H_
#define PROMETHEUS_NET_HTTP_CLIENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/http.h"

namespace prometheus::net {

/// A blocking HTTP/1.1 client connection over a POSIX socket — enough for
/// the test suite and the remote-overhead benchmark (E17) to exercise the
/// front-end the way curl does, including keep-alive reuse.
class HttpConnection {
 public:
  /// Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1").
  /// `timeout_ms` bounds connect and each subsequent receive.
  static Result<std::unique_ptr<HttpConnection>> Connect(
      const std::string& host, int port, int timeout_ms = 5000);

  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Sends one request and reads one response. Reusable while the server
  /// keeps the connection alive; fails once either side closed it.
  Result<HttpResponse> RoundTrip(
      const std::string& method, const std::string& target,
      std::string_view body = {},
      const std::vector<std::pair<std::string, std::string>>& headers = {});

 private:
  explicit HttpConnection(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;  ///< bytes received beyond the last response
};

/// One-shot convenience: connect, round-trip, close.
Result<HttpResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& target, std::string_view body = {},
    const std::vector<std::pair<std::string, std::string>>& headers = {},
    int timeout_ms = 5000);

}  // namespace prometheus::net

#endif  // PROMETHEUS_NET_HTTP_CLIENT_H_
