// prometheus_shell — an interactive POOL console over a Prometheus
// database, standing in for the thesis prototype's interactive front end
// (the HTTP layer of 6.1.7 played this role remotely).
//
//   ./build/examples/prometheus_shell [snapshot.pdb]
//
// Commands:
//   .help                    this text
//   .classes                 list classes
//   .relationships           list relationship classes
//   .extent <name>           count + first members of an extent
//   .rule <pcl statement>    install a PCL constraint
//   .warnings                show rule warnings
//   .save <file> / .load <file>
//   .demo                    load a small demonstration taxonomy
//   .quit
// Anything else is run as a POOL query, e.g.:
//   select t.name from Taxon t where t.rank = 'Genus'
// Prefix a query with `profile` to also print its per-stage span tree.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "index/index_manager.h"
#include "obs/trace.h"
#include "query/query_engine.h"
#include "rules/pcl.h"
#include "rules/rule_engine.h"
#include "storage/snapshot.h"

using namespace prometheus;

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void PrintResultSet(const pool::ResultSet& rs) {
  // Column widths from headers and cells.
  std::vector<std::size_t> widths;
  for (const std::string& c : rs.columns) widths.push_back(c.size());
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : rs.rows) {
    std::vector<std::string> line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string text = row[i].ToString();
      if (i < widths.size() && text.size() > widths[i]) {
        widths[i] = text.size();
      }
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < rs.columns.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), rs.columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& line : cells) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), line[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", rs.rows.size());
}

void LoadDemo(Database* db) {
  if (db->FindClass("Taxon") == nullptr) {
    (void)db->DefineClass("Taxon", {},
                          {Attr("name", ValueType::kString),
                           Attr("rank", ValueType::kString),
                           Attr("year", ValueType::kInt)});
    (void)db->DefineRelationship("placed_in", "Taxon", "Taxon", {},
                                 {Attr("motivation", ValueType::kString)});
  }
  auto mk = [&](const char* name, const char* rank, int year) {
    return db->CreateObject("Taxon", {{"name", Value::String(name)},
                                      {"rank", Value::String(rank)},
                                      {"year", Value::Int(year)}})
        .value_or(kNullOid);
  };
  Oid apiaceae = mk("Apiaceae", "Familia", 1789);
  Oid apium = mk("Apium", "Genus", 1753);
  Oid helio = mk("Heliosciadium", "Genus", 1824);
  Oid graveolens = mk("graveolens", "Species", 1753);
  Oid repens = mk("repens", "Species", 1821);
  (void)db->CreateLink("placed_in", apiaceae, apium);
  (void)db->CreateLink("placed_in", apiaceae, helio);
  (void)db->CreateLink("placed_in", apium, graveolens);
  (void)db->CreateLink("placed_in", helio, repens);
  std::printf("demo taxonomy loaded: %zu taxa, %zu placements\n",
              db->object_count(), db->link_count());
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (argc > 1) {
    Status st = storage::LoadSnapshot(&db, argv[1]);
    if (!st.ok()) {
      std::printf("cannot load %s: %s\n", argv[1], st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %zu objects, %zu links\n", argv[1],
                db.object_count(), db.link_count());
  }
  IndexManager indexes(&db);
  RuleEngine rules(&db);
  pool::QueryEngine engine(&db, &indexes);

  std::printf("Prometheus shell — type .help for commands, .quit to exit\n");
  std::string line;
  while (std::printf("pool> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    // Trim.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            ".classes .relationships .extent <name> .explain <query> "
            ".rule <pcl> .warnings .save <f> .load <f> .demo .quit\n"
            "anything else runs as POOL\n");
      } else if (cmd == ".classes") {
        for (const ClassDef* cls : db.classes()) {
          std::printf("%s%s (%zu attributes)\n", cls->name().c_str(),
                      cls->is_abstract() ? " [abstract]" : "",
                      cls->attributes().size());
        }
      } else if (cmd == ".relationships") {
        for (const RelationshipDef* rel : db.relationships()) {
          std::printf("%s: %s -> %s\n", rel->name().c_str(),
                      rel->source_class()->name().c_str(),
                      rel->target_class()->name().c_str());
        }
      } else if (cmd == ".extent") {
        std::string name;
        in >> name;
        std::vector<Oid> extent = db.FindClass(name) != nullptr
                                      ? db.Extent(name)
                                      : db.LinkExtent(name);
        std::printf("%zu members", extent.size());
        for (std::size_t i = 0; i < extent.size() && i < 10; ++i) {
          std::printf(" @%llu", static_cast<unsigned long long>(extent[i]));
        }
        std::printf("\n");
      } else if (cmd == ".explain") {
        std::string q = line.substr(9);
        auto plan = engine.Explain(q);
        std::printf("%s", plan.ok() ? plan.value().c_str()
                                    : (plan.status().ToString() + "\n")
                                          .c_str());
      } else if (cmd == ".rule") {
        std::string pcl = line.substr(5);
        auto installed = InstallPcl(&rules, pcl);
        std::printf("%s\n", installed.ok()
                                ? "rule installed"
                                : installed.status().ToString().c_str());
      } else if (cmd == ".warnings") {
        for (const RuleViolation& v : rules.warnings()) {
          std::printf("%s: %s\n", v.rule_name.c_str(), v.message.c_str());
        }
        std::printf("(%zu warnings)\n", rules.warnings().size());
      } else if (cmd == ".save") {
        std::string path;
        in >> path;
        Status st = storage::SaveSnapshot(db, path);
        std::printf("%s\n", st.ToString().c_str());
      } else if (cmd == ".load") {
        std::string path;
        in >> path;
        Status st = storage::LoadSnapshot(&db, path);
        std::printf("%s\n", st.ToString().c_str());
      } else if (cmd == ".demo") {
        LoadDemo(&db);
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }
    if (pool::IsProfileQuery(line)) {
      auto profiled = engine.ExecuteProfiled(line);
      if (profiled.ok()) {
        PrintResultSet(profiled.value().rows);
        std::printf("%s", obs::RenderTree(profiled.value().trace).c_str());
      } else {
        std::printf("error: %s\n", profiled.status().ToString().c_str());
      }
      continue;
    }
    auto rs = engine.Execute(line);
    if (rs.ok()) {
      PrintResultSet(rs.value());
    } else {
      std::printf("error: %s\n", rs.status().ToString().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
