file(REMOVE_RECURSE
  "CMakeFiles/test_import.dir/test_import.cc.o"
  "CMakeFiles/test_import.dir/test_import.cc.o.d"
  "test_import"
  "test_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
