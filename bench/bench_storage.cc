// Ablation — storage substrate throughput: snapshot save/load and journal
// write/replay over OO7-shaped databases. Expected shape: snapshot cost is
// linear in database size; journal appends add a small constant per
// mutation; replay costs roughly one Create* call per record.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "bench_util.h"
#include "oo7/oo7.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace {

using prometheus::Database;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  config.assembly_levels = 4;
  return config;
}

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "Ablation: storage substrate (snapshot & journal)",
      "  comps  objects  links   save_ms   load_ms   journal_ms  replay_ms");
  for (int comps : {10, 40}) {
    Config config = MakeConfig(comps);
    PrometheusOo7 prom(config);
    Database& db = prom.db();

    std::string snapshot_text;
    double save_ms = prometheus::bench::MedianMillis(
        [&] {
          std::ostringstream out;
          benchmark::DoNotOptimize(
              prometheus::storage::SaveSnapshot(db, out).ok());
          snapshot_text = out.str();
        },
        3);
    double load_ms = prometheus::bench::MedianMillis(
        [&] {
          Database fresh;
          std::istringstream in(snapshot_text);
          benchmark::DoNotOptimize(
              prometheus::storage::LoadSnapshot(&fresh, in).ok());
        },
        3);
    // Journal: time only the journalled S1 workload (database build and
    // journal open are outside the timed region).
    const std::string journal_path = "/tmp/prometheus_bench_journal.log";
    double journal_ms;
    {
      std::vector<double> samples;
      for (int rep = 0; rep < 3; ++rep) {
        PrometheusOo7 tmp(config);
        auto journal = prometheus::storage::Journal::Open(
            &tmp.db(), journal_path,
            prometheus::storage::Journal::OpenMode::kTruncate);
        samples.push_back(prometheus::bench::MedianMillis(
            [&] { benchmark::DoNotOptimize(tmp.InsertS1(5).ok()); }, 1));
      }
      std::sort(samples.begin(), samples.end());
      journal_ms = samples[samples.size() / 2];
    }
    double replay_ms = prometheus::bench::MedianMillis(
        [&] {
          Database fresh;
          benchmark::DoNotOptimize(
              prometheus::storage::Journal::Replay(&fresh, journal_path)
                  .ok());
        },
        3);
    std::printf("  %5d  %7zu  %5zu   %7.3f   %7.3f   %9.3f  %8.3f\n", comps,
                db.object_count(), db.link_count(), save_ms, load_ms,
                journal_ms, replay_ms);
  }
}

/// Checkpoint + crash-recovery cost over a `DurableStore`: populate N
/// journalled objects, time `Checkpoint()` (atomic snapshot + journal
/// rotation) and then time a cold `Open()` of the same directory (snapshot
/// load + journal tail replay).
void PrintDurableSeries() {
  prometheus::bench::PrintTableHeader(
      "Durability: checkpoint & recovery (DurableStore)",
      "  objects   checkpoint_ms   recover_ms   recover_tail_ms");
  namespace st = prometheus::storage;
  for (int objects : {1000, 5000}) {
    const std::string dir = "/tmp/prometheus_bench_store";
    st::DurableStore::Options options;
    options.bootstrap = [](Database* db) {
      prometheus::AttributeDef attr;
      attr.name = "n";
      attr.type = prometheus::ValueType::kInt;
      return db->DefineClass("Node", {}, {attr}).status();
    };
    double checkpoint_ms = 0, recover_ms = 0, tail_ms = 0;
    std::filesystem::remove_all(dir);
    {
      auto store = st::DurableStore::Open(dir, options);
      if (!store.ok()) continue;
      for (int i = 0; i < objects; ++i) {
        (void)store.value()->db().CreateObject(
            "Node", {{"n", prometheus::Value::Int(i)}});
      }
      checkpoint_ms = prometheus::bench::MedianMillis(
          [&] { benchmark::DoNotOptimize(store.value()->Checkpoint().ok()); },
          3);
      // Leave a journal tail behind the last snapshot so recovery pays for
      // both the snapshot load and a replay.
      for (int i = 0; i < objects / 10; ++i) {
        (void)store.value()->db().CreateObject(
            "Node", {{"n", prometheus::Value::Int(-i)}});
      }
    }
    recover_ms = prometheus::bench::MedianMillis(
        [&] {
          auto reopened = st::DurableStore::Open(dir, options);
          benchmark::DoNotOptimize(reopened.ok());
        },
        3);
    // Tail-only recovery: a fresh store that never checkpointed.
    std::filesystem::remove_all(dir);
    {
      auto store = st::DurableStore::Open(dir, options);
      if (!store.ok()) continue;
      for (int i = 0; i < objects; ++i) {
        (void)store.value()->db().CreateObject(
            "Node", {{"n", prometheus::Value::Int(i)}});
      }
    }
    tail_ms = prometheus::bench::MedianMillis(
        [&] {
          auto reopened = st::DurableStore::Open(dir, options);
          benchmark::DoNotOptimize(reopened.ok());
        },
        3);
    std::printf("  %7d   %13.3f   %10.3f   %15.3f\n", objects, checkpoint_ms,
                recover_ms, tail_ms);
    std::filesystem::remove_all(dir);
  }
}

void BM_SnapshotSave(benchmark::State& state) {
  PrometheusOo7 prom(MakeConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::ostringstream out;
    benchmark::DoNotOptimize(
        prometheus::storage::SaveSnapshot(prom.db(), out).ok());
  }
}
BENCHMARK(BM_SnapshotSave)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  PrometheusOo7 prom(MakeConfig(static_cast<int>(state.range(0))));
  std::ostringstream out;
  (void)prometheus::storage::SaveSnapshot(prom.db(), out);
  std::string text = out.str();
  for (auto _ : state) {
    Database fresh;
    std::istringstream in(text);
    benchmark::DoNotOptimize(
        prometheus::storage::LoadSnapshot(&fresh, in).ok());
  }
}
BENCHMARK(BM_SnapshotLoad)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_JournalledCreate(benchmark::State& state) {
  // Per-object creation cost with (1) / without (0) a journal attached.
  Database db;
  prometheus::AttributeDef attr;
  attr.name = "n";
  attr.type = prometheus::ValueType::kInt;
  (void)db.DefineClass("Node", {}, {attr});
  std::unique_ptr<prometheus::storage::Journal> journal;
  if (state.range(0) == 1) {
    auto opened = prometheus::storage::Journal::Open(
        &db, "/tmp/prometheus_bench_journal2.log",
        prometheus::storage::Journal::OpenMode::kTruncate);
    if (opened.ok()) journal = std::move(opened).value();
  }
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.CreateObject("Node", {{"n", prometheus::Value::Int(i++)}}).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalledCreate)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  PrintDurableSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
