# Empty compiler generated dependencies file for bench_oo7_t5.
# This may be replaced when dependencies are built.
