#ifndef PROMETHEUS_OBS_WAIT_PROFILER_H_
#define PROMETHEUS_OBS_WAIT_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace prometheus::obs {

// --------------------------------------------------------- wait attribution
//
// The contention-observability layer: every request's lifetime decomposes
// into named wait states, each exported as its own histogram family. The
// server observes admission/queue/execute/serialize; the epoch guard in
// core/database.h observes guard acquisition and hold times; the journal
// observes append and fsync latency. `/debug/contention` and the shell's
// `.contention` render the assembled report, optionally windowed (deltas
// since the previous windowed report) so an operator watching a live
// incident sees the last interval, not the lifetime average.

/// The named wait states a request's lifetime decomposes into. Used as the
/// `state` label of `request_wait_micros` and as keys of the contention
/// report; guard and journal states map to their own metric families
/// (`guard_wait_micros{mode=...}`, `journal_*_micros`).
enum class WaitState : std::uint8_t {
  kAdmission,       ///< Enqueue-side work before the queue (incl. cache probe)
  kQueue,           ///< admission -> worker pickup
  kGuardShared,     ///< ReadGuard acquisition (blocked behind a writer)
  kGuardExclusive,  ///< WriteGuard acquisition (blocked behind readers/writer)
  kExecute,         ///< pure execution (guard + journal time subtracted)
  kJournalAppend,   ///< file append of framed journal records
  kJournalSync,     ///< explicit fsync barriers
  kSerialize,       ///< response rendering on the HTTP handler thread
};

const char* WaitStateName(WaitState state);

/// Guard instrumentation points the epoch guard calls into. One relaxed
/// branch when metrics are disabled (callers check `MetricsEnabled()`
/// before reading the clock); pointer loads are cached in a static.
struct GuardInstruments {
  Histogram* shared_wait;      ///< guard_wait_micros{mode="shared"}
  Histogram* exclusive_wait;   ///< guard_wait_micros{mode="exclusive"}
  Histogram* shared_hold;      ///< guard_hold_micros{mode="shared"}
  Histogram* exclusive_hold;   ///< guard_hold_micros{mode="exclusive"}
  Gauge* blocked_readers;      ///< readers currently blocked in lock_shared
  Gauge* blocked_writers;      ///< writers currently blocked in lock
  Gauge* writer_held;          ///< 1 while a writer holds the guard
  Gauge* writer_last_hold_micros;  ///< duration of the last exclusive hold
  Gauge* writer_longest_wait;  ///< guard_writer_longest_wait_micros

  static const GuardInstruments& Get();
};

/// Per-thread accumulator for journal time spent inside the current
/// request. A request executes wholly on one worker thread, so the server
/// zeroes this before dispatching and reads it after — turning the
/// journal's process-wide histograms into per-request attribution without
/// threading a context object through the event bus.
struct ThreadWaitAccumulator {
  double journal_append_micros = 0;
  double journal_sync_micros = 0;

  void Reset() {
    journal_append_micros = 0;
    journal_sync_micros = 0;
  }
};

/// The calling thread's accumulator.
ThreadWaitAccumulator& ThreadWait();

/// Server-side wait-state histograms (admission/queue/execute/serialize).
struct WaitInstruments {
  Histogram* admission;
  Histogram* queue;
  Histogram* execute;
  Histogram* serialize;

  static const WaitInstruments& Get();
};

/// Computes the difference of two histogram snapshots taken from the same
/// histogram (same bounds): per-bucket counts, total count and sum. The
/// building block of windowed reporting — callers keep the previous
/// snapshot and render percentiles of the delta.
Histogram::Snapshot SnapshotDelta(const Histogram::Snapshot& now,
                                  const Histogram::Snapshot& then);

/// Assembles the contention report: one JSON object per wait state
/// (count, total micros, mean, p50/p95/p99) plus the guard gauges. With
/// `windowed`, each state reports the delta since the previous windowed
/// call (the first windowed call reports since process start) — the
/// windows are kept per-process under a mutex, matching the process-wide
/// registry the states live in.
std::string RenderContentionJson(bool windowed);

/// The same report as a fixed-width text table (the shell's `.contention`).
/// Windowed reads share the JSON renderer's window store.
std::string RenderContentionText(bool windowed);

/// One wait state's cumulative statistics — the structured face of the
/// contention report (`sys.contention` rows). Deliberately cumulative-only:
/// a structured read must never consume the shared windowed delta store the
/// HTTP route and shell advance.
struct ContentionStat {
  std::string state;
  std::uint64_t count = 0;
  double total_micros = 0;
  double mean_micros = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
};

/// Cumulative per-state statistics in report display order. Shares the
/// histogram sources with the JSON/text renderers, so names and numbers can
/// never drift between `/debug/contention` and `sys.contention`.
std::vector<ContentionStat> SnapshotContention();

}  // namespace prometheus::obs

#endif  // PROMETHEUS_OBS_WAIT_PROFILER_H_
