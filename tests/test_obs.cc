// The observability subsystem (src/obs/): registry get-or-create
// semantics, histogram bucket arithmetic, concurrent snapshotting (the
// TSan target), rendering, span traces, the PROFILE / kStats server
// surfaces, the slow-query log and the metrics kill switch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "prometheus_text_parser.h"
#include "query/query_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/recovery.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::obs::Counter;
using prometheus::obs::Gauge;
using prometheus::obs::Histogram;
using prometheus::obs::MetricsRegistry;
using prometheus::obs::MetricsSnapshot;
using prometheus::obs::Registry;
using prometheus::obs::SlowQueryLog;
using prometheus::obs::TraceNode;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::Server;
using prometheus::server::StatsFormat;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

/// Fresh database with a tiny schema plus a few rows.
std::unique_ptr<Database> MakePartsDb(int rows = 8) {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt)})
                  .ok());
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(db->CreateObject("Part",
                                 {{"name", Value::String("p" +
                                                         std::to_string(i))},
                                  {"a", Value::Int(i)}})
                    .ok());
  }
  return db;
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, GetOrCreateReturnsSameObjectForSameName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "first registration wins");
  Counter* b = reg.GetCounter("x_total", "ignored");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);

  Gauge* g = reg.GetGauge("depth");
  EXPECT_EQ(g, reg.GetGauge("depth"));
  Histogram* h = reg.GetHistogram("lat_micros");
  EXPECT_EQ(h, reg.GetHistogram("lat_micros"));
  EXPECT_EQ(reg.metric_count(), 3u);
}

TEST(MetricsRegistryTest, SnapshotCarriesEveryKind) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Increment(7);
  reg.GetGauge("g")->Set(-4);
  reg.GetHistogram("h", "", {10, 100})->Observe(50);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterOr0("c_total"), 7u);
  EXPECT_EQ(snap.CounterOr0("absent"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.sum, 50);
}

TEST(MetricsRegistryTest, ResetForTestZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c_total");
  c->Increment(9);
  reg.ResetForTest();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_EQ(reg.GetCounter("c_total"), c);
}

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1, 10, 100});
  // A value equal to a bound lands in that bound's bucket.
  h.Observe(1);            // bucket 0 (<=1)
  h.Observe(1.5);          // bucket 1 (<=10)
  h.Observe(10);           // bucket 1
  h.Observe(99.9);         // bucket 2 (<=100)
  h.Observe(100);          // bucket 2
  h.Observe(100.01);       // overflow
  h.Observe(1e9);          // overflow

  Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 2u);
  EXPECT_EQ(snap.count, 7u);
}

TEST(HistogramTest, PercentileInterpolatesAndOverflowSaturates) {
  Histogram h({10, 20});
  for (int i = 0; i < 10; ++i) h.Observe(5);  // all in the first bucket
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_GT(snap.Percentile(50), 0.0);
  EXPECT_LE(snap.Percentile(50), 10.0);
  EXPECT_LE(snap.Percentile(99), 10.0);

  Histogram over({10});
  over.Observe(1000);  // only the overflow bucket
  // The overflow bucket has no upper bound; the estimate reports its
  // lower bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(over.snapshot().Percentile(99), 10.0);
}

TEST(HistogramTest, LogSpacedBoundsAreGeometricAndHitEndpoints) {
  const std::vector<double> bounds = Histogram::LogSpacedBounds(1.0, 1e7, 5);
  // 7 decades * 5 per decade = 35 steps, 36 bounds including both ends.
  ASSERT_EQ(bounds.size(), 36u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e7);
  const double ratio = std::pow(10.0, 0.2);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]) << "bounds must strictly increase";
    EXPECT_NEAR(bounds[i] / bounds[i - 1], ratio, 1e-9);
  }
  // Degenerate inputs yield no bounds rather than garbage.
  EXPECT_TRUE(Histogram::LogSpacedBounds(0.0, 10.0, 5).empty());
  EXPECT_TRUE(Histogram::LogSpacedBounds(10.0, 10.0, 5).empty());
  EXPECT_TRUE(Histogram::LogSpacedBounds(1.0, 10.0, 0).empty());
  // The registry default is exactly this shape.
  EXPECT_EQ(Histogram::DefaultLatencyBoundsMicros(), bounds);
}

TEST(HistogramTest, LogSpacedDefaultsBoundPercentileInterpolationError) {
  // With geometric buckets of ratio r, linear interpolation inside the
  // containing bucket can miss the true percentile by at most (r - 1) of
  // the bucket's lower bound — the same *relative* error everywhere in
  // the range. Check it empirically at several magnitudes.
  const double ratio = std::pow(10.0, 0.2);  // ~1.585
  for (double true_value : {3.0, 47.0, 512.0, 8200.0, 123456.0, 2.5e6}) {
    Histogram h(Histogram::DefaultLatencyBoundsMicros());
    for (int i = 0; i < 1000; ++i) h.Observe(true_value);
    const double est = h.snapshot().Percentile(50);
    EXPECT_GT(est, true_value / ratio)
        << "p50 of a point mass at " << true_value;
    EXPECT_LT(est, true_value * ratio)
        << "p50 of a point mass at " << true_value;
    // Relative error never exceeds ratio - 1 (~58.5%), and in practice is
    // about half that since interpolation lands mid-bucket.
    EXPECT_LT(std::abs(est - true_value) / true_value, ratio - 1.0);
  }
}

TEST(HistogramTest, SnapshotWhileMutatingIsSafe) {
  // The TSan target: writers hammer a counter and a histogram while a
  // reader loops snapshots and renders. No synchronisation beyond the
  // metrics' own atomics.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("spin_total");
  Histogram* h = reg.GetHistogram("spin_micros", "", {1, 10, 100, 1000});
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        c->Increment();
        h->Observe(static_cast<double>((i * (t + 1)) % 1500));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = reg.Snapshot();
      std::string json = RenderJson(snap);
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c->value(), 80000u);
  Histogram::Snapshot snap = h->snapshot();
  EXPECT_EQ(snap.count, 80000u);
}

// ------------------------------------------------------------- rendering

TEST(RenderingTest, PrometheusTextCarriesLabelsAndBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("req_total{worker=\"3\"}", "per-worker")->Increment(2);
  reg.GetHistogram("lat_micros{type=\"query\"}", "latency", {5, 50})
      ->Observe(7);
  std::string text = reg.RenderPrometheusText();

  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{worker=\"3\"} 2"), std::string::npos);
  // Existing labels merge with le= on bucket lines.
  EXPECT_NE(text.find("lat_micros_bucket{type=\"query\",le=\"50\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{type=\"query\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_count{type=\"query\"} 1"),
            std::string::npos);
}

TEST(RenderingTest, JsonSnapshotIsWellFormedEnough) {
  MetricsRegistry reg;
  reg.GetCounter("a_total")->Increment();
  reg.GetGauge("b")->Set(5);
  reg.GetHistogram("c_micros")->Observe(3);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(RenderingTest, JsonExtraLeadingMembersStayValidOnEmptySnapshot) {
  // The server composes `server_epoch` through this parameter; with an
  // empty registry the old string-splice produced `{"server_epoch":N,}`.
  prometheus::obs::MetricsSnapshot empty;
  const std::string json =
      prometheus::obs::RenderJson(empty, {{"server_epoch", 42}});
  EXPECT_EQ(json,
            "{\"server_epoch\":42,\"counters\":{},\"gauges\":{},"
            "\"histograms\":{}}");
}

// ----------------------------------------------------------- kill switch

TEST(KillSwitchTest, DisabledMetricsRecordNothing) {
#ifndef PROMETHEUS_OBS_DISABLED
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("guarded_total");
  Histogram* h = reg.GetHistogram("guarded_micros");
  prometheus::obs::SetMetricsEnabled(false);
  c->Increment(100);
  h->Observe(42);
  {
    prometheus::obs::ScopedTimer timer(h);  // must not read the clock
  }
  prometheus::obs::SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->snapshot().count, 0u);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
#else
  GTEST_SKIP() << "metrics compiled out";
#endif
}

// ----------------------------------------------------------------- trace

TEST(TraceTest, RenderTreeShowsStagesAndCardinalities) {
  TraceNode root("query");
  root.micros = 120.5;
  root.rows = 3;
  TraceNode parse("parse");
  parse.micros = 10;
  root.children.push_back(parse);
  TraceNode plan("plan");
  TraceNode range("range t");
  range.detail = "extent scan of class Part";
  range.rows = 8;
  plan.children.push_back(range);
  root.children.push_back(plan);

  std::string tree = RenderTree(root);
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("  parse"), std::string::npos);
  EXPECT_NE(tree.find("    range t"), std::string::npos);
  EXPECT_NE(tree.find("extent scan of class Part"), std::string::npos);
  EXPECT_NE(tree.find("rows=8"), std::string::npos);
  EXPECT_EQ(root.Child("plan")->children.size(), 1u);
}

TEST(TraceTest, ExecuteProfiledReturnsPerStageTree) {
  std::unique_ptr<Database> db = MakePartsDb(10);
  prometheus::pool::QueryEngine engine(db.get());

  auto profiled = engine.ExecuteProfiled(
      "profile select p.name from Part p where p.a < 5 order by p.name");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  const prometheus::pool::QueryProfile& profile = profiled.value();
  EXPECT_EQ(profile.rows.rows.size(), 5u);

  const TraceNode& trace = profile.trace;
  EXPECT_EQ(trace.name, "query");
  EXPECT_EQ(trace.rows, 5);
  ASSERT_NE(trace.Child("parse"), nullptr);
  const TraceNode* plan = trace.Child("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->children.size(), 1u);
  EXPECT_EQ(plan->children[0].name, "range p");
  EXPECT_NE(plan->children[0].detail.find("extent scan"), std::string::npos);
  EXPECT_EQ(plan->children[0].rows, 10);
  const TraceNode* exec = trace.Child("execute");
  ASSERT_NE(exec, nullptr);
  EXPECT_NE(exec->detail.find("10 bindings"), std::string::npos);
  EXPECT_NE(trace.Child("sort"), nullptr);
  ASSERT_NE(trace.Child("project"), nullptr);
  EXPECT_EQ(trace.Child("project")->rows, 5);
}

TEST(TraceTest, ProfileKeywordDetectionAndStripping) {
  using prometheus::pool::IsProfileQuery;
  using prometheus::pool::StripProfileKeyword;
  EXPECT_TRUE(IsProfileQuery("profile select 1"));
  EXPECT_TRUE(IsProfileQuery("  PROFILE select 1"));
  EXPECT_FALSE(IsProfileQuery("profiler select 1"));
  EXPECT_FALSE(IsProfileQuery("select 1"));
  EXPECT_EQ(StripProfileKeyword("profile select 1"), "select 1");
  EXPECT_EQ(StripProfileKeyword("select 1"), "select 1");
}

// ---------------------------------------------------------------- server

TEST(ServerObsTest, StatsRoundTripAfterMixedWorkload) {
  Registry().ResetForTest();
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  ASSERT_TRUE(client.Query("select p.name from Part p").ok());
  ASSERT_TRUE(client.CreateObject("Part", {{"name", Value::String("new")},
                                           {"a", Value::Int(99)}})
                  .ok());

  auto json = client.Stats();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  // Query, event, and server families all appear after a mixed workload.
  EXPECT_NE(json.value().find("pool_queries_total"), std::string::npos);
  EXPECT_NE(json.value().find("events_published_total"), std::string::npos);
  EXPECT_NE(json.value().find("server_requests_total"), std::string::npos);
  EXPECT_NE(json.value().find("server_worker_requests_total"),
            std::string::npos);

  auto text = client.Stats(StatsFormat::kPrometheusText);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("# TYPE pool_queries_total counter"),
            std::string::npos);

  server.Shutdown();
}

TEST(ServerObsTest, ProfileQueryThroughServerReturnsStageTable) {
  std::unique_ptr<Database> db = MakePartsDb(6);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  auto profiled = client.Profile("select p.name from Part p where p.a > 1");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  ASSERT_EQ(profiled.value().stages.columns.size(), 4u);
  EXPECT_EQ(profiled.value().stages.columns[0], "stage");
  // Root plus at least parse/plan/execute/project.
  EXPECT_GE(profiled.value().stages.rows.size(), 5u);
  EXPECT_NE(profiled.value().tree.find("query"), std::string::npos);
  EXPECT_NE(profiled.value().tree.find("execute"), std::string::npos);

  // The raw envelope also carries both renderings.
  Response resp =
      client.Call(Request::Query("profile select p from Part p"));
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.text.empty());
  EXPECT_EQ(resp.result.columns[0], "stage");

  server.Shutdown();
}

TEST(ServerObsTest, SlowQueryLogRecordsOverThreshold) {
  std::unique_ptr<Database> db = MakePartsDb(64);
  Server::Options options;
  options.slow_query_micros = 0;  // everything is "slow"
  Server server(db.get(), options);
  Client client(&server);

  ASSERT_TRUE(client.Query("select p.name from Part p where p.a >= 0").ok());
  ASSERT_TRUE(client.Profile("select p from Part p").ok());
  server.Shutdown();

  const SlowQueryLog& log = server.slow_query_log();
  EXPECT_TRUE(log.enabled());
  ASSERT_EQ(log.recorded_total(), 2u);
  std::vector<SlowQueryLog::Entry> entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(entries[0].query.find("select p.name"), std::string::npos);
  // The unprofiled entry carries the plan; the profiled one the full tree.
  EXPECT_NE(entries[0].profile.find("extent scan"), std::string::npos);
  EXPECT_NE(entries[1].profile.find("execute"), std::string::npos);
  EXPECT_GE(entries[1].micros, 0.0);
}

TEST(ServerObsTest, SlowQueryLogDisabledByDefault) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);
  ASSERT_TRUE(client.Query("select p from Part p").ok());
  server.Shutdown();
  EXPECT_FALSE(server.slow_query_log().enabled());
  EXPECT_EQ(server.slow_query_log().recorded_total(), 0u);
}

// ------------------------------------------------------------ durability

TEST(DurableStoreObsTest, StatsExposeJournalBytesSyncsAndCheckpoints) {
  using prometheus::storage::DurableStore;
  std::string dir =
      ::testing::TempDir() + "/prometheus_obs_store";
  std::filesystem::remove_all(dir);

  DurableStore::Options options;
  options.bootstrap = [](Database* db) -> Status {
    return db->DefineClass("Part", {}, {Attr("a", ValueType::kInt)})
        .status();
  };
  auto opened = DurableStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableStore& store = *opened.value();

  DurableStore::Stats before = store.stats();
  EXPECT_EQ(before.journal_records, 0u);
  EXPECT_EQ(before.journal_syncs, 0u);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        store.db().CreateObject("Part", {{"a", Value::Int(i)}}).ok());
  }
  ASSERT_TRUE(store.Sync().ok());

  DurableStore::Stats after = store.stats();
  EXPECT_EQ(after.journal_records, 3u);
  EXPECT_GT(after.journal_bytes, 0u);
  EXPECT_EQ(after.journal_syncs, 1u);
  EXPECT_EQ(after.checkpoints, 0u);

  ASSERT_TRUE(store.Checkpoint().ok());
  DurableStore::Stats rotated = store.stats();
  EXPECT_EQ(rotated.checkpoints, 1u);
  EXPECT_GT(rotated.generation, 0u);
  // The rotation swapped in a fresh continuation journal.
  EXPECT_EQ(rotated.journal_records, 0u);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, RingKeepsLastNOldestFirst) {
  prometheus::obs::FlightRecorder recorder(/*capacity=*/3);
  EXPECT_TRUE(recorder.enabled());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    prometheus::obs::FlightRecorder::Entry e;
    e.request_id = i;
    e.type = "query";
    recorder.Record(std::move(e));
  }
  EXPECT_EQ(recorder.recorded_total(), 5u);
  auto entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].request_id, 3u);
  EXPECT_EQ(entries[2].request_id, 5u);
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording) {
  prometheus::obs::FlightRecorder recorder(/*capacity=*/0);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record({});
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.recorded_total(), 0u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndSnapshotsStayConsistent) {
  // The TSan target: writers claim slots with an atomic counter while a
  // reader snapshots concurrently; every observed entry must be intact
  // (id and type agree — a torn entry would mix them).
  prometheus::obs::FlightRecorder recorder(/*capacity=*/16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& e : recorder.Snapshot()) {
        EXPECT_EQ(e.type, "w" + std::to_string(e.request_id % kWriters));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        prometheus::obs::FlightRecorder::Entry e;
        e.request_id = static_cast<std::uint64_t>(i * kWriters + w);
        e.type = "w" + std::to_string(w);
        recorder.Record(std::move(e));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.recorded_total(),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(recorder.Snapshot().size(), 16u);
}

TEST(FlightRecorderTest, WrapKeepsNewerEntryWhenOlderWriterLandsLast) {
  // The wrap race: seq 1 and seq 3 share a slot (capacity 2); the older
  // claimant can reach the slot lock after the newer writer already
  // installed. The stale write must be dropped, not surface in the window.
  prometheus::obs::FlightRecorder recorder(/*capacity=*/2);
  prometheus::obs::FlightRecorder::Entry e;
  e.request_id = 102;
  recorder.InstallForTest(2, e);  // slot 0
  e.request_id = 103;
  recorder.InstallForTest(3, e);  // slot 1, the newer write lands first
  e.request_id = 101;
  recorder.InstallForTest(1, e);  // slot 1 again, but with an older seq
  auto entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].request_id, 102u);
  EXPECT_EQ(entries[1].request_id, 103u);  // 101 was dropped as stale
}

TEST(ServerObsTest, FlightRecorderTracesServedRequests) {
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  ASSERT_TRUE(client.Query("select p.name from Part p").ok());
  ASSERT_TRUE(client.Profile("select p from Part p").ok());
  ASSERT_TRUE(client.CreateObject("Part", {{"name", Value::String("x")},
                                           {"a", Value::Int(1)}})
                  .ok());
  server.Shutdown();

  auto entries = server.flight_recorder().Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].type, "query");
  EXPECT_EQ(entries[0].code, "ok");
  EXPECT_TRUE(entries[0].executed);
  EXPECT_NE(entries[0].detail.find("select p.name"), std::string::npos);
  EXPECT_GE(entries[0].total_micros, 0.0);
  EXPECT_GE(entries[0].queue_wait_micros, 0.0);
  // The profiled query keeps its rendered span tree.
  EXPECT_NE(entries[1].stages.find("execute"), std::string::npos);
  EXPECT_EQ(entries[2].type, "mutation");
  EXPECT_NE(entries[2].detail.find("create Part"), std::string::npos);

  const std::string json =
      prometheus::obs::RenderFlightRecorderJson(entries);
  EXPECT_NE(json.find("\"type\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
}

// ----------------------------------------------- exposition conformance

TEST(ServerObsTest, PrometheusStatsAreConformantAndCarryServerEpoch) {
  Registry().ResetForTest();
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);
  ASSERT_TRUE(client.Query("select p from Part p").ok());

  auto text = client.Stats(StatsFormat::kPrometheusText);
  ASSERT_TRUE(text.ok());
  prometheus::testing::PromExposition exposition;
  const std::string error =
      prometheus::testing::ParsePrometheusText(text.value(), &exposition);
  EXPECT_TRUE(error.empty()) << error << "\n--- payload ---\n"
                             << text.value();
  const auto* epoch = exposition.FindSample("server_epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->value, static_cast<double>(server.server_epoch()));
  EXPECT_NE(exposition.Find("prometheus_build_info"), nullptr);
  EXPECT_NE(exposition.Find("process_uptime_seconds"), nullptr);
  server.Shutdown();
}

TEST(ServerObsTest, StatsResolveWhileWriterHoldsExclusiveGuard) {
  // kStats reads only the registry and the lock-free epoch counter; it
  // must resolve while another thread holds the exclusive guard.
  std::unique_ptr<Database> db = MakePartsDb(4);
  Server server(db.get(), Server::Options{});
  Client client(&server);

  std::atomic<bool> release{false};
  std::thread writer([&] {
    Database::WriteGuard guard(*db);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  auto text = client.Stats(StatsFormat::kPrometheusText);
  EXPECT_TRUE(text.ok());
  Response health = client.Call(Request::Health());
  EXPECT_TRUE(health.ok());

  release.store(true);
  writer.join();
  server.Shutdown();
}

TEST(SlowQueryLogTest, RingEvictsOldestAndCountsTotal) {
  SlowQueryLog log(/*threshold_micros=*/10, /*capacity=*/2);
  EXPECT_FALSE(log.ShouldRecord(5));
  EXPECT_TRUE(log.ShouldRecord(10));
  log.Record({1, "t-1", "q1", 20, ""});
  log.Record({2, "t-2", "q2", 30, ""});
  log.Record({3, "t-3", "q3", 40, ""});
  EXPECT_EQ(log.recorded_total(), 3u);
  std::vector<SlowQueryLog::Entry> entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "q2");
  EXPECT_EQ(entries[1].query, "q3");
}

}  // namespace
