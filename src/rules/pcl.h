#ifndef PROMETHEUS_RULES_PCL_H_
#define PROMETHEUS_RULES_PCL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rules/rule_engine.h"

namespace prometheus {

/// PCL — the Prometheus Constraint Language (thesis 5.2.3), an OCL-inspired
/// surface syntax that compiles to ECA rules (figure 25's translation).
///
/// Statement forms:
///
///   context <Class> [deferred] [warn|interactive] inv [<name>]: <cond>
///       — invariant over a class: checked after creation and after every
///         attribute change; `self` is the instance.
///
///   context <Rel> [deferred] [warn|interactive] relinv [<name>]: <cond>
///       — relationship rule: checked after link creation and link
///         attribute changes; `link`, `source`, `target`, `context` bound.
///
///   context <Class>::<create|update|delete> pre [<name>]: <cond>
///       — pre-condition: checked before the operation; a false condition
///         vetoes it.
///
///   context <Class>::<create|update|delete> post [<name>]: <cond>
///       — post-condition: checked after the operation.
///
/// The condition is a POOL boolean expression. PCL extends OCL with the
/// thesis' *condition of applicability*: a condition of the form
/// `if <A> then <C>` compiles to applicability `A` and condition `C`, so
/// the rule is simply not applicable (rather than violated) when `A` is
/// false.
///
/// `CompilePcl` translates one statement into a `RuleSpec`;
/// `CompilePclProgram` accepts several statements separated by `;`.
Result<RuleSpec> CompilePcl(const std::string& source);

/// Compiles a `;`-separated sequence of PCL statements.
Result<std::vector<RuleSpec>> CompilePclProgram(const std::string& source);

/// Compiles `source` and installs every resulting rule into `engine`.
Result<std::vector<RuleId>> InstallPcl(RuleEngine* engine,
                                       const std::string& source);

}  // namespace prometheus

#endif  // PROMETHEUS_RULES_PCL_H_
