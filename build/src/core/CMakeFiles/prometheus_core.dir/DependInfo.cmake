
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/prometheus_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/prometheus_core.dir/database.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/prometheus_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/prometheus_core.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prometheus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/prometheus_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
