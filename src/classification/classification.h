#ifndef PROMETHEUS_CLASSIFICATION_CLASSIFICATION_H_
#define PROMETHEUS_CLASSIFICATION_CLASSIFICATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus {

/// Name of the built-in class that classification objects instantiate.
/// Defined by `ClassificationManager` on first use (attributes: `name`,
/// `author`, `year`, `publication`).
inline constexpr char kClassificationClassName[] = "Classification";

/// Degree of overlap between two classified groups, computed from the
/// objective fixed points — their leaf sets (thesis 2.1.3: specimens are the
/// only objective information; synonymous leaves are unified first).
enum class SynonymyKind {
  kNone,      ///< disjoint leaf sets
  kProParte,  ///< partial overlap ("pro parte" synonyms)
  kFull,      ///< identical leaf sets (full synonyms)
};

/// Result of comparing the leaf sets of two groups.
struct OverlapReport {
  SynonymyKind kind = SynonymyKind::kNone;
  /// Canonical leaf oids present under both groups.
  std::vector<Oid> shared;
  /// Canonical leaf oids only under the first / second group.
  std::vector<Oid> only_a;
  std::vector<Oid> only_b;
};

/// Management of multiple overlapping classifications (thesis 4.6).
///
/// A classification is an ordinary database object (so it can be queried,
/// carries author/publication data, and serves as the *context* of links).
/// The classified structure is the set of links created in that context:
/// classification is orthogonal to the classified data (requirement 12) —
/// the same objects may participate in any number of classifications
/// through different link sets, which is exactly how the thesis represents
/// multiple overlapping taxonomies.
///
/// Edge convention: classification links run from the classifying group
/// (parent) to its members (children).
class ClassificationManager {
 public:
  /// Binds to `db` and defines the `Classification` class if absent.
  /// `db` must outlive the manager.
  explicit ClassificationManager(Database* db);

  ClassificationManager(const ClassificationManager&) = delete;
  ClassificationManager& operator=(const ClassificationManager&) = delete;

  /// Creates a classification entity. `year` uses 0 for "unknown".
  Result<Oid> Create(const std::string& name, const std::string& author,
                     std::int64_t year = 0,
                     const std::string& publication = "");

  /// Adds a parent→child edge of relationship class `rel_name` inside
  /// `classification`. `motivation` (traceability, requirement 4) is stored
  /// on the link when the relationship class declares a `motivation`
  /// attribute; otherwise it must be empty.
  Result<Oid> AddEdge(Oid classification, const std::string& rel_name,
                      Oid parent, Oid child,
                      const std::string& motivation = "");

  /// Removes an edge (the link must belong to `classification`).
  Status RemoveEdge(Oid classification, Oid link);

  /// All links of the classification.
  const std::vector<Oid>& Edges(Oid classification) const;

  /// All distinct objects participating in the classification.
  std::vector<Oid> Members(Oid classification) const;

  /// Objects that appear as parents but never as children (the tops of the
  /// hierarchy) within the classification.
  std::vector<Oid> Roots(Oid classification) const;

  /// Direct children of `node` within the classification.
  std::vector<Oid> Children(Oid classification, Oid node) const;

  /// Direct parents of `node` within the classification.
  std::vector<Oid> Parents(Oid classification, Oid node) const;

  /// Every object reachable downward from `node` (excluding `node`).
  std::vector<Oid> Descendants(Oid classification, Oid node) const;

  /// Descendants of `node` (or `node` itself) with no children in the
  /// classification — for taxonomy, the specimens (requirement 9's
  /// "recurse until specimens are found").
  std::vector<Oid> Leaves(Oid classification, Oid node) const;

  /// True when the classification's edges form a forest free of cycles
  /// (every node reachable from a root, no back edges).
  bool IsHierarchy(Oid classification) const;

  /// Compares two groups by canonical leaf sets; synonymous leaves
  /// (Database::DeclareSynonym) are unified before comparison.
  OverlapReport Compare(Oid classification_a, Oid node_a,
                        Oid classification_b, Oid node_b) const;

  /// Convenience wrapper around `Compare` returning only the kind.
  SynonymyKind Synonymy(Oid classification_a, Oid node_a,
                        Oid classification_b, Oid node_b) const;

  /// Copies every edge of `source` into a brand-new classification (same
  /// classified objects, fresh links) — the "copy a classification to begin
  /// a revision" operation of requirement 1. Link attributes are copied.
  Result<Oid> Clone(Oid source, const std::string& new_name,
                    const std::string& new_author, std::int64_t year = 0,
                    const std::string& publication = "");

  /// Copies only the subtree of `source` rooted at `node` (the node, its
  /// descendants, and the edges between them) into the existing
  /// classification `target` — partial revisions work on one group at a
  /// time. Link attributes are copied.
  Status CloneSubtree(Oid source, Oid node, Oid target);

  /// One correspondence found by `Align`.
  struct Alignment {
    Oid taxon_a = kNullOid;
    /// Best-matching group of the other classification; kNullOid when no
    /// group shares any leaf.
    Oid taxon_b = kNullOid;
    /// Jaccard similarity of the canonical leaf sets (0..1).
    double similarity = 0;
    SynonymyKind kind = SynonymyKind::kNone;
  };

  /// Aligns two overlapping classifications: for every internal (non-leaf)
  /// group of `a`, the internal group of `b` whose canonical leaf set is
  /// most similar. This is the system-side of the thesis' "compare and
  /// contrast existing and new classifications" goal — synonym candidates
  /// fall out as the high-similarity pairs.
  std::vector<Alignment> Align(Oid a, Oid b) const;

  /// Structural difference between two classifications over the same
  /// objects (e.g. a clone and its revised copy): edges of `a` with no
  /// structural counterpart — same relationship class, source and target —
  /// in `b`, and vice versa. Link oids are reported so attributes can be
  /// inspected.
  struct DiffReport {
    std::vector<Oid> only_a;
    std::vector<Oid> only_b;
  };
  DiffReport Diff(Oid a, Oid b) const;

  /// Deletes a classification: removes its links, then the classification
  /// object itself. The classified objects are untouched (orthogonality).
  Status Destroy(Oid classification);

  /// All classification objects in the database.
  std::vector<Oid> All() const;

  /// True when `oid` designates a classification object.
  bool IsClassification(Oid oid) const;

 private:
  Status RequireClassification(Oid oid) const;

  Database* db_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CLASSIFICATION_CLASSIFICATION_H_
