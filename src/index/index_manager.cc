#include "index/index_manager.h"

#include <algorithm>

#include "obs/metrics.h"

namespace prometheus {

namespace {

/// Process-wide index counters: lookups that found an index vs. requests
/// for a class/attribute pair with no index, plus incremental maintenance
/// work triggered by mutation events.
struct IndexMetrics {
  obs::Counter* lookup_hits;
  obs::Counter* lookup_misses;
  obs::Counter* maintenance;

  static const IndexMetrics& Get() {
    static const IndexMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      IndexMetrics im;
      im.lookup_hits = reg.GetCounter(
          "index_lookup_hits_total",
          "Index lookups served by an existing index");
      im.lookup_misses = reg.GetCounter(
          "index_lookup_misses_total",
          "Index lookups for class/attribute pairs with no index");
      im.maintenance = reg.GetCounter(
          "index_maintenance_updates_total",
          "Index entries inserted/removed by mutation events");
      return im;
    }();
    return m;
  }
};

}  // namespace

IndexManager::OrderedKey IndexManager::OrderedKey::FromValue(const Value& v) {
  OrderedKey key;
  switch (v.type()) {
    case ValueType::kInt:
    case ValueType::kDouble:
      key.is_numeric = true;
      key.num = v.ToNumeric().value();
      break;
    case ValueType::kString:
      key.str = v.AsString();
      break;
    default:
      // Nulls and other types sort as the empty string.
      break;
  }
  return key;
}

IndexManager::IndexManager(Database* db) : db_(db) {
  listener_ = db_->bus().Subscribe(
      [this](const Event& e) {
        OnEvent(e);
        return Status::Ok();
      },
      /*priority=*/50);
}

IndexManager::~IndexManager() { db_->bus().Unsubscribe(listener_); }

Status IndexManager::CreateIndex(const std::string& class_name,
                                 const std::string& attr, bool ordered) {
  const ClassDef* cls = db_->FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown class '" + class_name + "'");
  }
  if (cls->FindAttribute(attr) == nullptr) {
    return Status::NotFound("class '" + class_name + "' has no attribute '" +
                            attr + "'");
  }
  if (HasIndex(class_name, attr)) {
    return Status::InvalidArgument("index on " + class_name + "." + attr +
                                   " already exists");
  }
  auto index = std::make_unique<Index>();
  index->cls = cls;
  index->attr = attr;
  index->ordered = ordered;
  // Backfill from the deep extent. The new index only reflects the state
  // at the pending epoch; older snapshots must not consult it.
  index->dirty_epoch = db_->pending_epoch();
  for (Oid oid : db_->Extent(class_name)) {
    auto v = db_->GetAttribute(oid, attr);
    if (v.ok()) InsertEntry(index.get(), oid, v.value());
  }
  std::unique_lock lock(mu_);
  indexes_.push_back(std::move(index));
  return Status::Ok();
}

Status IndexManager::DropIndex(const std::string& class_name,
                               const std::string& attr) {
  const ClassDef* cls = db_->FindClass(class_name);
  std::unique_lock lock(mu_);
  auto it = std::find_if(indexes_.begin(), indexes_.end(),
                         [&](const std::unique_ptr<Index>& ix) {
                           return ix->cls == cls && ix->attr == attr;
                         });
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + class_name + "." + attr);
  }
  indexes_.erase(it);
  return Status::Ok();
}

bool IndexManager::HasIndex(const std::string& class_name,
                            const std::string& attr) const {
  std::shared_lock lock(mu_);
  return FindIndex(class_name, attr) != nullptr;
}

/// Caller must hold mu_ (shared suffices).
const IndexManager::Index* IndexManager::FindIndex(
    const std::string& class_name, const std::string& attr) const {
  const ClassDef* cls = db_->FindClass(class_name);
  if (cls == nullptr) return nullptr;
  for (const auto& ix : indexes_) {
    if (ix->cls == cls && ix->attr == attr) return ix.get();
  }
  return nullptr;
}

Result<std::vector<Oid>> IndexManager::Lookup(const std::string& class_name,
                                              const std::string& attr,
                                              const Value& value,
                                              std::uint64_t as_of) const {
  std::shared_lock lock(mu_);
  const Index* ix = FindIndex(class_name, attr);
  if (ix == nullptr) {
    IndexMetrics::Get().lookup_misses->Increment();
    return Status::NotFound("no index on " + class_name + "." + attr);
  }
  if (ix->dirty_epoch > as_of) {
    return Status::Unavailable("index on " + class_name + "." + attr +
                               " has run ahead of snapshot epoch");
  }
  IndexMetrics::Get().lookup_hits->Increment();
  std::vector<Oid> out;
  if (ix->ordered) {
    auto [lo, hi] = ix->tree.equal_range(OrderedKey::FromValue(value));
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  } else {
    auto [lo, hi] = ix->hash.equal_range(value.IndexKey());
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  }
  return out;
}

Result<std::vector<Oid>> IndexManager::RangeLookup(
    const std::string& class_name, const std::string& attr, const Value& lo,
    const Value& hi, std::uint64_t as_of) const {
  std::shared_lock lock(mu_);
  const Index* ix = FindIndex(class_name, attr);
  if (ix == nullptr) {
    IndexMetrics::Get().lookup_misses->Increment();
    return Status::NotFound("no index on " + class_name + "." + attr);
  }
  if (ix->dirty_epoch > as_of) {
    return Status::Unavailable("index on " + class_name + "." + attr +
                               " has run ahead of snapshot epoch");
  }
  IndexMetrics::Get().lookup_hits->Increment();
  if (!ix->ordered) {
    return Status::FailedPrecondition("index on " + class_name + "." + attr +
                                      " is a hash index; range lookups "
                                      "require an ordered index");
  }
  auto begin = lo.is_null()
                   ? ix->tree.begin()
                   : ix->tree.lower_bound(OrderedKey::FromValue(lo));
  auto end = hi.is_null() ? ix->tree.end()
                          : ix->tree.upper_bound(OrderedKey::FromValue(hi));
  std::vector<Oid> out;
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

std::size_t IndexManager::total_entries() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& ix : indexes_) {
    n += ix->ordered ? ix->tree.size() : ix->hash.size();
  }
  return n;
}

std::vector<std::string> IndexManager::IndexedAttributes(
    const std::string& class_name) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& ix : indexes_) {
    if (ix->cls != nullptr && ix->cls->name() == class_name) {
      out.push_back(ix->attr);
    }
  }
  return out;
}

void IndexManager::InsertEntry(Index* index, Oid oid, const Value& value) {
  if (index->ordered) {
    index->tree.emplace(OrderedKey::FromValue(value), oid);
  } else {
    index->hash.emplace(value.IndexKey(), oid);
  }
  index->current[oid] = value;
}

void IndexManager::RemoveEntry(Index* index, Oid oid) {
  auto cur = index->current.find(oid);
  if (cur == index->current.end()) return;
  if (index->ordered) {
    auto [lo, hi] = index->tree.equal_range(OrderedKey::FromValue(cur->second));
    for (auto it = lo; it != hi; ++it) {
      if (it->second == oid) {
        index->tree.erase(it);
        break;
      }
    }
  } else {
    auto [lo, hi] = index->hash.equal_range(cur->second.IndexKey());
    for (auto it = lo; it != hi; ++it) {
      if (it->second == oid) {
        index->hash.erase(it);
        break;
      }
    }
  }
  index->current.erase(cur);
}

void IndexManager::OnEvent(const Event& event) {
  std::unique_lock lock(mu_);
  switch (event.kind) {
    case EventKind::kAfterCreateObject: {
      for (auto& ix : indexes_) {
        if (!db_->IsInstanceOf(event.subject, ix->cls->name())) continue;
        auto v = db_->GetAttribute(event.subject, ix->attr);
        if (v.ok()) {
          InsertEntry(ix.get(), event.subject, v.value());
          ix->dirty_epoch = db_->pending_epoch();
          IndexMetrics::Get().maintenance->Increment();
        }
      }
      break;
    }
    case EventKind::kAfterDeleteObject: {
      for (auto& ix : indexes_) {
        if (ix->current.count(event.subject) != 0) {
          ix->dirty_epoch = db_->pending_epoch();
          IndexMetrics::Get().maintenance->Increment();
        }
        RemoveEntry(ix.get(), event.subject);
      }
      break;
    }
    case EventKind::kAfterSetAttribute: {
      for (auto& ix : indexes_) {
        if (ix->attr != event.attribute) continue;
        if (!ix->current.count(event.subject)) continue;
        RemoveEntry(ix.get(), event.subject);
        InsertEntry(ix.get(), event.subject, event.new_value);
        ix->dirty_epoch = db_->pending_epoch();
        IndexMetrics::Get().maintenance->Increment();
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace prometheus
