#ifndef PROMETHEUS_INDEX_INDEX_MANAGER_H_
#define PROMETHEUS_INDEX_INDEX_MANAGER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus {

/// The index layer (thesis 6.1.4): secondary attribute indexes over class
/// extents, kept consistent through the event layer. The query layer
/// (6.1.5.2) consults these indexes to replace extent scans by lookups.
///
/// Two flavours:
///  - hash indexes: exact-match lookup, any value type;
///  - ordered indexes: additionally range lookup, for int/double/string.
///
/// Indexes follow transactions: rollback publishes compensating events,
/// which the manager applies like ordinary mutations.
///
/// Snapshot consistency: indexes are maintained against the live database,
/// not against MVCC snapshots. Each index carries a `dirty_epoch` — the
/// epoch its contents will be visible under (stamped from
/// `Database::pending_epoch()` at every mutation). A snapshot reader
/// passes its epoch as `as_of`; if the index has been touched past that
/// epoch the lookup reports kUnavailable and the caller falls back to an
/// extent scan over the snapshot. Structures are guarded by a shared
/// mutex: lookups take it shared (they run off snapshot threads with no
/// database guard held), maintenance takes it exclusive (it runs on the
/// writer thread via the event bus).
class IndexManager {
 public:
  /// Subscribes to `db`'s event bus. `db` must outlive the manager.
  explicit IndexManager(Database* db);
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Creates an index on `class_name.attr` (covering subclasses) and
  /// backfills it from the current extent. `ordered` selects the range-
  /// capable flavour.
  Status CreateIndex(const std::string& class_name, const std::string& attr,
                     bool ordered = false);

  /// Drops an index. Unknown indexes report kNotFound.
  Status DropIndex(const std::string& class_name, const std::string& attr);

  /// True when `class_name.attr` is indexed.
  bool HasIndex(const std::string& class_name, const std::string& attr) const;

  /// Exact-match lookup. Returns kNotFound when no such index exists;
  /// kUnavailable when the index has been mutated past `as_of` (the
  /// caller's snapshot epoch) — fall back to an extent scan.
  Result<std::vector<Oid>> Lookup(
      const std::string& class_name, const std::string& attr,
      const Value& value,
      std::uint64_t as_of = std::numeric_limits<std::uint64_t>::max()) const;

  /// Range lookup over an ordered index: lo <= value <= hi; a null bound is
  /// open. Returns kFailedPrecondition on a hash index; kUnavailable when
  /// the index has been mutated past `as_of`.
  Result<std::vector<Oid>> RangeLookup(
      const std::string& class_name, const std::string& attr, const Value& lo,
      const Value& hi,
      std::uint64_t as_of = std::numeric_limits<std::uint64_t>::max()) const;

  /// Number of entries across all indexes (diagnostics).
  std::size_t total_entries() const;

  /// Attributes indexed for `class_name` (diagnostics; feeds the
  /// `sys.storage` index-coverage column). The class's own indexes only —
  /// indexes on superclasses cover this extent too but are reported on
  /// their defining class.
  std::vector<std::string> IndexedAttributes(const std::string& class_name)
      const;

 private:
  /// Ordering key for ordered indexes: numerics sort before strings;
  /// other types are not range-indexable and use only hash indexes.
  struct OrderedKey {
    bool is_numeric = false;
    double num = 0;
    std::string str;

    static OrderedKey FromValue(const Value& v);
    bool operator<(const OrderedKey& o) const {
      if (is_numeric != o.is_numeric) return is_numeric;  // numerics first
      if (is_numeric) return num < o.num;
      return str < o.str;
    }
  };

  struct Index {
    const ClassDef* cls = nullptr;
    std::string attr;
    bool ordered = false;
    std::unordered_multimap<std::string, Oid> hash;
    std::multimap<OrderedKey, Oid> tree;
    /// Current indexed key per object, for removal on delete/update.
    std::unordered_map<Oid, Value> current;
    /// Epoch this index's contents become visible under: the database's
    /// pending epoch at the last mutation. A snapshot at epoch E may use
    /// the index only when dirty_epoch <= E.
    std::uint64_t dirty_epoch = 0;
  };

  void OnEvent(const Event& event);
  void InsertEntry(Index* index, Oid oid, const Value& value);
  void RemoveEntry(Index* index, Oid oid);
  const Index* FindIndex(const std::string& class_name,
                         const std::string& attr) const;

  Database* db_;
  ListenerId listener_ = 0;
  /// Shared for lookups (snapshot readers, no db guard held), exclusive
  /// for create/drop and event-driven maintenance (writer thread).
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_INDEX_INDEX_MANAGER_H_
