#include "obs/flight_recorder.h"

#include "common/stats.h"

namespace prometheus::obs {

std::string RenderFlightRecorderJson(
    const std::vector<FlightRecorder::Entry>& entries) {
  stats::JsonWriter json;
  json.BeginArray();
  for (const FlightRecorder::Entry& e : entries) {
    json.BeginObject();
    json.Key("id").Uint(e.request_id);
    json.Key("trace_id").String(e.trace_id);
    json.Key("type").String(e.type);
    json.Key("priority").String(e.priority);
    json.Key("code").String(e.code);
    json.Key("ok").Bool(e.ok);
    json.Key("executed").Bool(e.executed);
    json.Key("epoch").Uint(e.epoch);
    json.Key("queue_wait_micros").Number(e.queue_wait_micros);
    json.Key("total_micros").Number(e.total_micros);
    json.Key("guard_wait_micros").Number(e.guard_wait_micros);
    json.Key("execute_micros").Number(e.execute_micros);
    json.Key("journal_micros").Number(e.journal_micros);
    json.Key("detail").String(e.detail);
    if (!e.stages.empty()) json.Key("stages").String(e.stages);
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

}  // namespace prometheus::obs
