#ifndef PROMETHEUS_OBS_FLIGHT_RECORDER_H_
#define PROMETHEUS_OBS_FLIGHT_RECORDER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace prometheus::obs {

/// Always-on bounded ring of the last N *completed* request traces — the
/// "what just happened" window the per-query tracer cannot provide (it only
/// answers for queries someone thought to PROFILE in advance). The server
/// records every admitted request's disposition here: type, priority,
/// queue wait, total time, transport code, and — for profiled queries —
/// the rendered span tree.
///
/// Lock-cheap by construction: writers claim a slot with one relaxed
/// fetch_add and then lock only that slot's mutex, so concurrent writers
/// contend only when they hash to the same slot (capacity writers apart).
/// Readers lock each slot briefly in turn; a snapshot is consistent per
/// entry, not across entries — fine for a diagnostic window.
///
/// A capacity of 0 disables recording entirely (`Record` is then a single
/// branch).
class FlightRecorder {
 public:
  struct Entry {
    std::uint64_t request_id = 0;
    std::string trace_id;   ///< trace-context id (`/debug/requests?id=`)
    std::string type;       ///< "ping", "query", "mutation", "stats", ...
    std::string priority;   ///< "low", "normal", "high"
    std::string code;       ///< transport outcome ("ok", "timed_out", ...)
    bool ok = false;        ///< executed and the database reported success
    bool executed = false;  ///< false: shed from the queue, never ran
    /// Database epoch the request observed: for queries, the pinned MVCC
    /// snapshot's epoch (which snapshot the read fleet was on); for
    /// mutations, the pre-commit epoch. 0 when the request never ran.
    std::uint64_t epoch = 0;
    double queue_wait_micros = 0;  ///< admission -> worker pickup
    double total_micros = 0;       ///< time on the worker (0 if never ran)
    /// Wait-state attribution (zeros when timing was off or not a
    /// guarded/journaled request).
    double guard_wait_micros = 0;    ///< epoch-guard acquisition
    double execute_micros = 0;       ///< pure execution (waits subtracted)
    double journal_micros = 0;       ///< journal appends + fsyncs
    std::string detail;  ///< query text (truncated) or mutation kind
    std::string stages;  ///< rendered span tree (profiled queries only)
  };

  explicit FlightRecorder(std::size_t capacity = 128)
      : capacity_(capacity),
        slots_(capacity == 0 ? nullptr : std::make_unique<Slot[]>(capacity)) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  void Record(Entry entry) {
    if (capacity_ == 0) return;
    Install(next_.fetch_add(1, std::memory_order_relaxed), std::move(entry));
  }

  /// Test-only: installs `entry` as if it had claimed `seq` (0-based),
  /// without touching the claim counter — reproduces the wrap race (an
  /// older claimant reaching the slot lock last) deterministically.
  void InstallForTest(std::uint64_t seq, Entry entry) {
    if (capacity_ == 0) return;
    Install(seq, std::move(entry));
  }

  /// Copies the retained entries, oldest first. At most `capacity` long;
  /// entries overwritten mid-snapshot may appear with their new content
  /// (each slot is copied under its own lock).
  std::vector<Entry> Snapshot() const {
    std::vector<Entry> out;
    if (capacity_ == 0) return out;
    std::vector<std::pair<std::uint64_t, Entry>> tagged;
    tagged.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      Slot& slot = slots_[i];
      std::lock_guard<std::mutex> lock(slot.mu);
      if (slot.seq != 0) tagged.emplace_back(slot.seq, slot.entry);
    }
    std::sort(tagged.begin(), tagged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(tagged.size());
    for (auto& [seq, entry] : tagged) out.push_back(std::move(entry));
    return out;
  }

  /// Total recorded since construction (including overwritten entries).
  std::uint64_t recorded_total() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    mutable std::mutex mu;
    std::uint64_t seq = 0;  ///< 1-based write sequence; 0 = unused
    Entry entry;
  };

  void Install(std::uint64_t seq, Entry entry) {
    Slot& slot = slots_[seq % capacity_];
    std::lock_guard<std::mutex> lock(slot.mu);
    // On ring wrap a writer holding an older seq can reach the slot lock
    // after a newer writer; install monotonically so the stale entry is
    // dropped instead of overwriting the fresher one.
    if (slot.seq > seq + 1) return;
    slot.entry = std::move(entry);
    slot.seq = seq + 1;  // 0 stays "never written"
  }

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// Renders a snapshot as a JSON array, oldest first.
std::string RenderFlightRecorderJson(const std::vector<FlightRecorder::Entry>& entries);

}  // namespace prometheus::obs

#endif  // PROMETHEUS_OBS_FLIGHT_RECORDER_H_
