// E15 — instrumentation overhead. The observability hooks stay compiled
// into every hot path (query engine, event bus, journal), so their cost
// must be provably negligible. Three modes over identical work:
//
//   off       runtime kill switch engaged (each hook = one branch)
//   on        metrics recording (counters + histograms, the default)
//   profiled  metrics on + span tracing (PROFILE path; queries only)
//
// Workloads: OO7 T1 (read traversal through the object graph), OO7 T5
// (update traversal — publishes events, exercising the event-bus and rule
// hooks) and a POOL range query (the instrumented parse/plan/execute
// pipeline). Reports median wall time per mode and the on-vs-off overhead
// percentage; writes BENCH_obs.json.
//
// Usage: bench_obs [reps]   (default 7)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "obs/metrics.h"
#include "oo7/oo7.h"
#include "query/query_engine.h"

namespace {

using prometheus::bench::JsonWriter;
using prometheus::bench::MedianMillis;
using prometheus::obs::SetMetricsEnabled;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;
using prometheus::pool::QueryEngine;

constexpr char kQuery[] =
    "select a.id from AtomicPart a "
    "where a.build_date >= 500 and a.build_date <= 900";

double OverheadPercent(double off_ms, double on_ms) {
  return off_ms <= 0 ? 0 : (on_ms - off_ms) / off_ms * 100.0;
}

void PrintRow(const char* workload, double off_ms, double on_ms,
              double profiled_ms) {
  std::printf("  %-12s %9.3f  %9.3f  %+7.2f%%", workload, off_ms, on_ms,
              OverheadPercent(off_ms, on_ms));
  if (profiled_ms > 0) {
    std::printf("  %9.3f  %+7.2f%%", profiled_ms,
                OverheadPercent(off_ms, profiled_ms));
  }
  std::printf("\n");
}

void EmitWorkload(JsonWriter& json, const char* name, double off_ms,
                  double on_ms, double profiled_ms) {
  json.BeginObject();
  json.Key("workload").String(name);
  json.Key("off_ms").Number(off_ms);
  json.Key("on_ms").Number(on_ms);
  json.Key("overhead_on_pct").Number(OverheadPercent(off_ms, on_ms));
  if (profiled_ms > 0) {
    json.Key("profiled_ms").Number(profiled_ms);
    json.Key("overhead_profiled_pct")
        .Number(OverheadPercent(off_ms, profiled_ms));
  }
  json.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 7;

  Config config;  // OO7 small
  PrometheusOo7 oo7(config);
  QueryEngine engine(&oo7.db());

  prometheus::bench::PrintTableHeader(
      "E15: instrumentation overhead (median ms; off = kill switch)",
      "  workload       off(ms)     on(ms)  overhead  prof(ms)  overhead");

  // Warm-up: touch every lazily-registered metric so registration cost
  // (a one-time mutex acquisition) doesn't land in a timed region.
  (void)oo7.TraverseT1();
  (void)oo7.TraverseT5(1);
  (void)engine.Execute(kQuery);
  (void)engine.ExecuteProfiled(kQuery);

  // --- T1: read traversal ------------------------------------------------
  SetMetricsEnabled(false);
  const double t1_off = MedianMillis([&] { (void)oo7.TraverseT1(); }, reps);
  SetMetricsEnabled(true);
  const double t1_on = MedianMillis([&] { (void)oo7.TraverseT1(); }, reps);
  PrintRow("oo7_t1", t1_off, t1_on, 0);

  // --- T5: update traversal (events, rules, index maintenance hooks) -----
  std::int64_t stamp = 1;
  SetMetricsEnabled(false);
  const double t5_off =
      MedianMillis([&] { (void)oo7.TraverseT5(stamp++); }, reps);
  SetMetricsEnabled(true);
  const double t5_on =
      MedianMillis([&] { (void)oo7.TraverseT5(stamp++); }, reps);
  PrintRow("oo7_t5", t5_off, t5_on, 0);

  // --- POOL query: parse/plan/execute pipeline ---------------------------
  SetMetricsEnabled(false);
  const double q_off = MedianMillis([&] { (void)engine.Execute(kQuery); }, reps);
  SetMetricsEnabled(true);
  const double q_on = MedianMillis([&] { (void)engine.Execute(kQuery); }, reps);
  const double q_profiled =
      MedianMillis([&] { (void)engine.ExecuteProfiled(kQuery); }, reps);
  PrintRow("pool_query", q_off, q_on, q_profiled);

  const double worst_overhead =
      std::max({OverheadPercent(t1_off, t1_on), OverheadPercent(t5_off, t5_on),
                OverheadPercent(q_off, q_on)});
  std::printf("  worst metrics-on overhead: %+.2f%% (target <= 5%%)\n",
              worst_overhead);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("obs");
  json.Key("reps").Int(reps);
  json.Key("atomic_parts").Int(config.total_atomic_parts());
  json.Key("workloads").BeginArray();
  EmitWorkload(json, "oo7_t1", t1_off, t1_on, 0);
  EmitWorkload(json, "oo7_t5", t5_off, t5_on, 0);
  EmitWorkload(json, "pool_query", q_off, q_on, q_profiled);
  json.EndArray();
  json.Key("worst_overhead_on_pct").Number(worst_overhead);
  json.Key("target_overhead_pct").Number(5.0);
  json.EndObject();

  const std::string out = "BENCH_obs.json";
  if (!prometheus::bench::WriteTextFile(out, json.str() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
