#ifndef PROMETHEUS_CACHE_PLAN_CACHE_H_
#define PROMETHEUS_CACHE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prometheus::pool {
struct SelectQuery;
struct Expr;
}  // namespace prometheus::pool

namespace prometheus::cache {

/// A cached query plan: the parsed AST plus the structural access-path
/// analysis the optimiser derives from it. Both are pure functions of the
/// query text, so one entry serves every execution of that text.
///
/// The plan deliberately stops at *structure*: per range it records every
/// `var.attr = literal` equality conjunct as a candidate, without checking
/// whether an index exists. `HasIndex` is re-checked at execution, so an
/// index created or dropped after the plan was cached is picked up
/// immediately — index DDL does not raise schema events and must not need
/// to. Schema DDL (class/template/relationship definition) *does* raise
/// events, which bump the cache's generation and lazily drop stale plans.
struct PlanEntry {
  /// The immutable AST. Shared so concurrent executions and the cache can
  /// hold it together; nothing mutates a SelectQuery after parse.
  std::shared_ptr<const pool::SelectQuery> ast;

  struct EqConjunct {
    std::string attribute;        ///< the path attribute (`var.attr`)
    const pool::Expr* literal;    ///< the literal side, owned by *ast
  };
  /// Per-range candidates, keyed by the `FromRange`'s address inside
  /// `*ast` — stable because the AST is immutable and shared. Execution
  /// takes the first candidate with a live index; an absent key means the
  /// where-clause pins nothing for that range (extent scan).
  std::unordered_map<const void*, std::vector<EqConjunct>> eq_conjuncts;
};

/// Text -> PlanEntry map with count-bounded LRU eviction, keyed on
/// (query text, schema generation).
///
/// Invalidation is event-driven and lazy: DDL listeners call
/// `OnSchemaChange()`, which is one relaxed atomic increment — safe from
/// under the database's write guard. Entries remember the generation they
/// were planned under; a lookup that finds an older generation erases the
/// entry and reports a miss. Nothing scans the map on DDL.
///
/// Thread-safe; one mutex (plan lookups are off the per-binding hot path —
/// at most one per query — so a single lock is plenty).
class PlanCache {
 public:
  struct Config {
    std::size_t max_entries = 512;
    bool enabled = true;
  };

  explicit PlanCache(const Config& config);

  /// The cached plan for `text` at the current schema generation, or null
  /// (disabled / absent / stale).
  std::shared_ptr<const PlanEntry> Lookup(const std::string& text);

  /// Stores `entry` under `text`, stamped with the current generation.
  void Insert(const std::string& text, std::shared_ptr<const PlanEntry> entry);

  /// Lock-free generation bump — every cached plan becomes stale. Safe to
  /// call from an event listener running under the write guard.
  void OnSchemaChange();

  std::uint64_t schema_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  void Clear();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;      ///< LRU capacity drops
    std::uint64_t invalidations = 0;  ///< stale-generation drops
    std::uint64_t schema_generation = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const PlanEntry> entry;
    std::uint64_t generation = 0;
    std::list<std::string>::iterator lru_it;
  };

  const std::size_t max_entries_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> generation_{0};

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  ///< front = most recently used

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace prometheus::cache

#endif  // PROMETHEUS_CACHE_PLAN_CACHE_H_
