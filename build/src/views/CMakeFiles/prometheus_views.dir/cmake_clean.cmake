file(REMOVE_RECURSE
  "CMakeFiles/prometheus_views.dir/view_manager.cc.o"
  "CMakeFiles/prometheus_views.dir/view_manager.cc.o.d"
  "libprometheus_views.a"
  "libprometheus_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
