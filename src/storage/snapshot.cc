#include "storage/snapshot.h"

#include <fstream>
#include <map>
#include <sstream>

namespace prometheus::storage {

namespace {

constexpr char kMagic[] = "PROMETHEUS-SNAPSHOT-1";

/// Length-prefixed string: "<n>:<bytes>".
std::string EncodeString(const std::string& s) {
  return std::to_string(s.size()) + ":" + s;
}

Result<std::string> DecodeString(const std::string& text, std::size_t* pos) {
  std::size_t colon = text.find(':', *pos);
  if (colon == std::string::npos) {
    return Status::IoError("corrupt record: missing string length");
  }
  std::size_t len = 0;
  for (std::size_t i = *pos; i < colon; ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::IoError("corrupt record: bad string length");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (colon + 1 + len > text.size()) {
    return Status::IoError("corrupt record: truncated string");
  }
  std::string out = text.substr(colon + 1, len);
  *pos = colon + 1 + len;
  return out;
}

/// Sorted attribute view for deterministic output.
std::map<std::string, Value> Sorted(
    const std::unordered_map<std::string, Value>& m) {
  return {m.begin(), m.end()};
}

void WriteAttributeDef(std::ostream& out, const AttributeDef& attr) {
  out << " " << EncodeString(attr.name) << " " << static_cast<int>(attr.type)
      << " " << EncodeString(attr.ref_class) << " "
      << EncodeValue(attr.default_value);
}

Result<AttributeDef> ReadAttributeDef(const std::string& line,
                                      std::size_t* pos) {
  auto skip_space = [&] {
    while (*pos < line.size() && line[*pos] == ' ') ++(*pos);
  };
  AttributeDef attr;
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.name, DecodeString(line, pos));
  skip_space();
  std::size_t end = line.find(' ', *pos);
  if (end == std::string::npos) {
    return Status::IoError("corrupt record: attribute type");
  }
  attr.type = static_cast<ValueType>(std::stoi(line.substr(*pos, end - *pos)));
  *pos = end;
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.ref_class, DecodeString(line, pos));
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.default_value, DecodeValue(line, pos));
  return attr;
}

struct LineCursor;
Result<RelationshipSemantics> ReadSemantics(LineCursor* cur);

/// Cursor helpers for reading a record line after its tag.
struct LineCursor {
  const std::string& line;
  std::size_t pos;

  void SkipSpace() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
  }
  std::string Word() {
    SkipSpace();
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    std::string w = line.substr(pos, end - pos);
    pos = end;
    return w;
  }
  Result<std::string> Str() {
    SkipSpace();
    return DecodeString(line, &pos);
  }
  Result<Value> Val() {
    SkipSpace();
    return DecodeValue(line, &pos);
  }
  Result<std::vector<AttrInit>> Attrs(std::size_t count) {
    std::vector<AttrInit> attrs;
    attrs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string name, Str());
      PROMETHEUS_ASSIGN_OR_RETURN(Value v, Val());
      attrs.emplace_back(std::move(name), std::move(v));
    }
    return attrs;
  }
};

Result<RelationshipSemantics> ReadSemantics(LineCursor* cur) {
  RelationshipSemantics sem;
  sem.kind = static_cast<RelationshipKind>(std::stoi(cur->Word()));
  sem.exclusive = cur->Word() == "1";
  PROMETHEUS_ASSIGN_OR_RETURN(sem.exclusivity_group, cur->Str());
  sem.shareable = cur->Word() == "1";
  sem.lifetime_dependent = cur->Word() == "1";
  sem.constant = cur->Word() == "1";
  sem.inherit_attributes = cur->Word() == "1";
  sem.directed = cur->Word() == "1";
  sem.max_out = static_cast<std::uint32_t>(std::stoul(cur->Word()));
  sem.max_in = static_cast<std::uint32_t>(std::stoul(cur->Word()));
  sem.min_out = static_cast<std::uint32_t>(std::stoul(cur->Word()));
  sem.min_in = static_cast<std::uint32_t>(std::stoul(cur->Word()));
  return sem;
}

}  // namespace

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kBool:
      return value.AsBool() ? "b1" : "b0";
    case ValueType::kInt:
      return "i" + EncodeString(std::to_string(value.AsInt()));
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << value.AsDouble();
      return "d" + EncodeString(os.str());
    }
    case ValueType::kString:
      return "s" + EncodeString(value.AsString());
    case ValueType::kRef:
      return "r" + EncodeString(std::to_string(value.AsRef()));
    case ValueType::kList: {
      std::string out = "l" + std::to_string(value.AsList().size()) + ":";
      for (const Value& v : value.AsList()) out += EncodeValue(v);
      return out;
    }
  }
  return "n";
}

Result<Value> DecodeValue(const std::string& text, std::size_t* pos) {
  if (*pos >= text.size()) {
    return Status::IoError("corrupt record: truncated value");
  }
  char tag = text[(*pos)++];
  switch (tag) {
    case 'n':
      return Value::Null();
    case 'b': {
      if (*pos >= text.size()) {
        return Status::IoError("corrupt record: truncated bool");
      }
      char b = text[(*pos)++];
      return Value::Bool(b == '1');
    }
    case 'i': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      return Value::Int(std::stoll(s));
    }
    case 'd': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      return Value::Double(std::stod(s));
    }
    case 's': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      return Value::String(std::move(s));
    }
    case 'r': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      return Value::Ref(std::stoull(s));
    }
    case 'l': {
      std::size_t colon = text.find(':', *pos);
      if (colon == std::string::npos) {
        return Status::IoError("corrupt record: bad list length");
      }
      std::size_t count = std::stoull(text.substr(*pos, colon - *pos));
      *pos = colon + 1;
      Value::List items;
      items.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, DecodeValue(text, pos));
        items.push_back(std::move(v));
      }
      return Value::MakeList(std::move(items));
    }
    default:
      return Status::IoError("corrupt record: unknown value tag");
  }
}

namespace {

void WriteSemantics(std::ostream& out, const RelationshipSemantics& sem) {
  out << static_cast<int>(sem.kind) << " " << (sem.exclusive ? 1 : 0) << " "
      << EncodeString(sem.exclusivity_group) << " " << (sem.shareable ? 1 : 0)
      << " " << (sem.lifetime_dependent ? 1 : 0) << " "
      << (sem.constant ? 1 : 0) << " " << (sem.inherit_attributes ? 1 : 0)
      << " " << (sem.directed ? 1 : 0) << " " << sem.max_out << " "
      << sem.max_in << " " << sem.min_out << " " << sem.min_in;
}

}  // namespace

Status WriteSchemaRecords(const Database& db, std::ostream& out) {
  for (const ClassDef* cls : db.classes()) {
    out << "CLASS " << EncodeString(cls->name()) << " "
        << (cls->is_abstract() ? 1 : 0) << " " << cls->supers().size();
    for (const ClassDef* s : cls->supers()) {
      out << " " << EncodeString(s->name());
    }
    out << " " << cls->attributes().size();
    for (const AttributeDef& a : cls->attributes()) {
      WriteAttributeDef(out, a);
    }
    out << " " << cls->methods().size();
    for (const MethodDef& m : cls->methods()) {
      out << " " << EncodeString(m.name) << " "
          << EncodeString(m.return_type) << " " << m.parameters.size();
      for (const auto& [type, pname] : m.parameters) {
        out << " " << EncodeString(type) << " " << EncodeString(pname);
      }
    }
    out << "\n";
  }
  for (const std::string& name : db.relationship_templates()) {
    const RelationshipSemantics* sem = db.FindTemplateSemantics(name);
    const std::vector<AttributeDef>* attrs = db.FindTemplateAttributes(name);
    if (sem == nullptr || attrs == nullptr) continue;
    out << "TMPL " << EncodeString(name) << " ";
    WriteSemantics(out, *sem);
    out << " " << attrs->size();
    for (const AttributeDef& a : *attrs) {
      WriteAttributeDef(out, a);
    }
    out << "\n";
  }
  for (const RelationshipDef* rel : db.relationships()) {
    out << "REL " << EncodeString(rel->name()) << " "
        << EncodeString(rel->source_class()->name()) << " "
        << EncodeString(rel->target_class()->name()) << " ";
    WriteSemantics(out, rel->semantics());
    out << " " << rel->supers().size();
    for (const RelationshipDef* s : rel->supers()) {
      out << " " << EncodeString(s->name());
    }
    out << " " << rel->attributes().size();
    for (const AttributeDef& a : rel->attributes()) {
      WriteAttributeDef(out, a);
    }
    out << "\n";
  }
  if (!out.good()) return Status::IoError("write failure");
  return Status::Ok();
}

std::string ObjectRecord(const Database& db, Oid oid) {
  const Object* obj = db.GetObject(oid);
  if (obj == nullptr) return "";
  std::ostringstream out;
  out << "OBJ " << oid << " " << EncodeString(obj->cls->name()) << " "
      << obj->attrs.size();
  for (const auto& [name, value] : Sorted(obj->attrs)) {
    out << " " << EncodeString(name) << " " << EncodeValue(value);
  }
  return out.str();
}

std::string LinkRecord(const Database& db, Oid oid) {
  const Link* link = db.GetLink(oid);
  if (link == nullptr) return "";
  std::ostringstream out;
  out << "LINK " << oid << " " << EncodeString(link->def->name()) << " "
      << link->source << " " << link->target << " " << link->context << " "
      << link->attrs.size();
  for (const auto& [name, value] : Sorted(link->attrs)) {
    out << " " << EncodeString(name) << " " << EncodeValue(value);
  }
  return out.str();
}

Status ApplyRecord(Database* db, const std::string& line, bool* end) {
  *end = false;
  if (line.empty()) return Status::Ok();
  std::size_t space = line.find(' ');
  std::string tag = space == std::string::npos ? line : line.substr(0, space);
  LineCursor cur{line, space == std::string::npos ? line.size() : space};
  if (tag == "END") {
    *end = true;
    return Status::Ok();
  }
  if (tag == "CLASS") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    bool is_abstract = cur.Word() == "1";
    std::size_t nsupers = std::stoull(cur.Word());
    std::vector<std::string> supers;
    for (std::size_t i = 0; i < nsupers; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, cur.Str());
      supers.push_back(std::move(s));
    }
    std::size_t nattrs = std::stoull(cur.Word());
    std::vector<AttributeDef> attrs;
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass(name, supers, std::move(attrs), is_abstract)
            .status());
    // Method signatures (optional trailing section).
    cur.SkipSpace();
    if (cur.pos < line.size()) {
      std::size_t nmethods = std::stoull(cur.Word());
      for (std::size_t i = 0; i < nmethods; ++i) {
        MethodDef method;
        PROMETHEUS_ASSIGN_OR_RETURN(method.name, cur.Str());
        PROMETHEUS_ASSIGN_OR_RETURN(method.return_type, cur.Str());
        std::size_t nparams = std::stoull(cur.Word());
        for (std::size_t p = 0; p < nparams; ++p) {
          PROMETHEUS_ASSIGN_OR_RETURN(std::string type, cur.Str());
          PROMETHEUS_ASSIGN_OR_RETURN(std::string pname, cur.Str());
          method.parameters.emplace_back(std::move(type), std::move(pname));
        }
        PROMETHEUS_RETURN_IF_ERROR(db->DefineMethod(name, std::move(method)));
      }
    }
    return Status::Ok();
  }
  if (tag == "TMPL") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(RelationshipSemantics sem,
                                ReadSemantics(&cur));
    std::size_t nattrs = std::stoull(cur.Word());
    std::vector<AttributeDef> attrs;
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    return db->DefineRelationshipTemplate(name, sem, std::move(attrs));
  }
  if (tag == "REL") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string src, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string dst, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(RelationshipSemantics sem,
                                ReadSemantics(&cur));
    std::size_t nsupers = std::stoull(cur.Word());
    std::vector<std::string> supers;
    for (std::size_t i = 0; i < nsupers; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, cur.Str());
      supers.push_back(std::move(s));
    }
    std::size_t nattrs = std::stoull(cur.Word());
    std::vector<AttributeDef> attrs;
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    return db->DefineRelationship(name, src, dst, sem, std::move(attrs),
                                  supers)
        .status();
  }
  if (tag == "OBJ") {
    Oid oid = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string cls, cur.Str());
    std::size_t nattrs = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<AttrInit> attrs,
                                cur.Attrs(nattrs));
    return db->RestoreObjectRaw(oid, cls, std::move(attrs));
  }
  if (tag == "LINK") {
    Oid oid = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, cur.Str());
    Oid src = std::stoull(cur.Word());
    Oid dst = std::stoull(cur.Word());
    Oid ctx = std::stoull(cur.Word());
    std::size_t nattrs = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<AttrInit> attrs,
                                cur.Attrs(nattrs));
    return db->RestoreLinkRaw(oid, rel, src, dst, ctx, std::move(attrs));
  }
  if (tag == "SYN") {
    Oid child = std::stoull(cur.Word());
    Oid parent = std::stoull(cur.Word());
    return db->RestoreSynonymRaw(child, parent);
  }
  if (tag == "DELO") {
    Oid oid = std::stoull(cur.Word());
    if (db->GetObject(oid) == nullptr) return Status::Ok();  // cascaded
    return db->DeleteObject(oid);
  }
  if (tag == "DELL") {
    Oid oid = std::stoull(cur.Word());
    if (db->GetLink(oid) == nullptr) return Status::Ok();  // cascaded
    return db->DeleteLink(oid);
  }
  if (tag == "SETA") {
    Oid oid = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, cur.Val());
    return db->SetAttribute(oid, name, std::move(v));
  }
  if (tag == "SETL") {
    Oid oid = std::stoull(cur.Word());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, cur.Val());
    return db->SetLinkAttribute(oid, name, std::move(v));
  }
  return Status::IoError("unknown record '" + tag + "'");
}

Status SaveSnapshot(const Database& db, std::ostream& out) {
  out << kMagic << "\n";
  PROMETHEUS_RETURN_IF_ERROR(WriteSchemaRecords(db, out));
  // Objects first (contexts are objects, so link records resolve), then
  // links, then synonym edges.
  for (const ClassDef* cls : db.classes()) {
    for (Oid oid : db.Extent(cls->name(), /*include_subclasses=*/false)) {
      out << ObjectRecord(db, oid) << "\n";
    }
  }
  for (const RelationshipDef* rel : db.relationships()) {
    for (Oid oid :
         db.LinkExtent(rel->name(), /*include_subrelationships=*/false)) {
      out << LinkRecord(db, oid) << "\n";
    }
  }
  for (const ClassDef* cls : db.classes()) {
    for (Oid oid : db.Extent(cls->name(), /*include_subclasses=*/false)) {
      Oid root = db.CanonicalOf(oid);
      if (root != oid) out << "SYN " << oid << " " << root << "\n";
    }
  }
  out << "END\n";
  if (!out.good()) return Status::IoError("write failure");
  return Status::Ok();
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  return SaveSnapshot(db, out);
}

Status LoadSnapshot(Database* db, std::istream& in) {
  if (!db->classes().empty() || db->object_count() != 0) {
    return Status::FailedPrecondition(
        "snapshots load into an empty database");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::IoError("not a Prometheus snapshot");
  }
  bool end = false;
  while (!end && std::getline(in, line)) {
    PROMETHEUS_RETURN_IF_ERROR(ApplyRecord(db, line, &end));
  }
  if (!end) return Status::IoError("truncated snapshot (no END record)");
  return Status::Ok();
}

Status LoadSnapshot(Database* db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return LoadSnapshot(db, in);
}

}  // namespace prometheus::storage
