file(REMOVE_RECURSE
  "libprometheus_views.a"
)
