#include "query/system_catalog.h"

#include <cctype>

namespace prometheus::pool {

bool SystemCatalog::IsCatalogName(const std::string& name) {
  return name.size() > 4 && name.compare(0, 4, "sys.") == 0;
}

void SystemCatalog::Register(std::string name, std::string help,
                             std::vector<std::string> attributes,
                             Provider provider) {
  Entry e;
  e.info.name = std::move(name);
  e.info.help = std::move(help);
  e.info.attributes = std::move(attributes);
  e.provider = std::move(provider);
  infos_.push_back(e.info);
  entries_.push_back(std::move(e));
}

bool SystemCatalog::Has(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) return true;
  }
  return false;
}

std::vector<Value> SystemCatalog::Materialize(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) return e.provider();
  }
  return {};
}

bool QueryTouchesCatalog(const std::string& text) {
  bool in_string = false;
  char quote = '\0';
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == quote) {
        in_string = false;
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      in_string = true;
      quote = c;
      continue;
    }
    if ((c == 's' || c == 'S') && i + 3 < n) {
      // Word-boundary check on the left so `census.metrics` doesn't match.
      if (i > 0) {
        char prev = text[i - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_' ||
            prev == '.') {
          continue;
        }
      }
      char c1 = text[i + 1];
      char c2 = text[i + 2];
      if ((c1 == 'y' || c1 == 'Y') && (c2 == 's' || c2 == 'S') &&
          text[i + 3] == '.') {
        return true;
      }
    }
  }
  return false;
}

ExtentHeat& ExtentHeat::Instance() {
  static ExtentHeat* heat = new ExtentHeat();  // leaked: process lifetime
  return *heat;
}

ExtentHeat::Slot* ExtentHeat::FindOrInsert(const std::string& class_name) {
  std::size_t h = std::hash<std::string>{}(class_name);
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    std::size_t idx = (h + probe) & (kSlots - 1);
    Slot* slot = slots_[idx].load(std::memory_order_acquire);
    if (slot == nullptr) {
      auto* fresh = new Slot();
      fresh->name = class_name;
      if (slots_[idx].compare_exchange_strong(slot, fresh,
                                              std::memory_order_acq_rel)) {
        return fresh;
      }
      delete fresh;  // lost the race; `slot` now holds the winner
    }
    if (slot->name == class_name) return slot;
  }
  return nullptr;  // table full: drop the sample rather than block
}

void ExtentHeat::RecordScan(const std::string& class_name,
                            std::uint64_t rows) {
  if (Slot* slot = FindOrInsert(class_name)) {
    slot->scans.fetch_add(1, std::memory_order_relaxed);
    slot->rows_scanned.fetch_add(rows, std::memory_order_relaxed);
  }
}

void ExtentHeat::RecordIndexHit(const std::string& class_name,
                               std::uint64_t rows) {
  if (Slot* slot = FindOrInsert(class_name)) {
    slot->index_hits.fetch_add(1, std::memory_order_relaxed);
    slot->rows_scanned.fetch_add(rows, std::memory_order_relaxed);
  }
}

std::vector<ExtentHeat::Counters> ExtentHeat::Snapshot() const {
  std::vector<Counters> out;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot* slot = slots_[i].load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    Counters c;
    c.class_name = slot->name;
    c.scans = slot->scans.load(std::memory_order_relaxed);
    c.index_hits = slot->index_hits.load(std::memory_order_relaxed);
    c.rows_scanned = slot->rows_scanned.load(std::memory_order_relaxed);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace prometheus::pool
