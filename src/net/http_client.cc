#include "net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prometheus::net {

namespace {

/// Arms both directions: a stalled peer must not be able to hang us in
/// `recv` *or* in `send` (a full socket buffer against a dead reader blocks
/// send() just as effectively as silence blocks recv()).
void SetIoTimeouts(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Connects with a deadline: non-blocking connect + poll. A blocking
/// `::connect` against a black-holed address waits for the kernel's SYN
/// retry cycle (minutes) — a replication follower or shell must fail fast
/// instead. Returns 0 on success, an errno value on failure.
int ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len, int ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int rc = ::connect(fd, addr, len);
  if (rc < 0 && errno != EINPROGRESS) return errno;
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
      rc = ::poll(&pfd, 1, ms);
      if (rc >= 0 || errno != EINTR) break;
    }
    if (rc < 0) return errno;
    if (rc == 0) return ETIMEDOUT;
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return errno;
    }
    if (err != 0) return err;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) return errno;
  return 0;
}

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HttpConnection>> HttpConnection::Connect(
    const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int rc = ConnectWithTimeout(
      fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr), timeout_ms);
  if (rc != 0) {
    const std::string err =
        rc == ETIMEDOUT ? "timed out" : std::strerror(rc);
    ::close(fd);
    return Status::IoError("connect(" + host + ":" + std::to_string(port) +
                           "): " + err);
  }
  SetIoTimeouts(fd, timeout_ms);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return std::unique_ptr<HttpConnection>(new HttpConnection(fd));
}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Result<HttpResponse> HttpConnection::RoundTrip(
    const std::string& method, const std::string& target,
    std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  if (fd_ < 0) return Status::IoError("connection is closed");
  if (!SendAll(fd_, SerializeHttpRequest(method, target, body, headers))) {
    ::close(fd_);
    fd_ = -1;
    return Status::IoError("send failed (peer closed the connection?)");
  }
  char chunk[8192];
  for (;;) {
    HttpResponse resp;
    std::size_t consumed = 0;
    std::string error;
    const ParseResult pr = ParseHttpResponse(buffer_, &consumed, &resp,
                                             &error);
    if (pr == ParseResult::kComplete) {
      buffer_.erase(0, consumed);
      return resp;
    }
    if (pr != ParseResult::kIncomplete) {
      ::close(fd_);
      fd_ = -1;
      return Status::ParseError("bad HTTP response: " + error);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    ::close(fd_);
    fd_ = -1;
    if (n == 0) return Status::IoError("connection closed mid-response");
    return Status::IoError(std::string("recv(): ") + std::strerror(errno));
  }
}

Result<HttpResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& target, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    int timeout_ms) {
  auto conn = HttpConnection::Connect(host, port, timeout_ms);
  if (!conn.ok()) return conn.status();
  return conn.value()->RoundTrip(method, target, body, headers);
}

}  // namespace prometheus::net
