#ifndef PROMETHEUS_SERVER_CLIENT_H_
#define PROMETHEUS_SERVER_CLIENT_H_

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/server.h"

namespace prometheus::server {

/// Client-side retry policy: exponential backoff with full jitter and a
/// per-call retry budget. `CallWithRetry` applies it to the *transport*
/// outcomes that are provably safe to resubmit:
///
///  - `kRejected` — admission refused the request; it never ran.
///  - `kTimedOut` with `executed == false` — shed from the queue; never ran.
///
/// Everything else is final: an executed request (even one that timed out
/// mid-execution) may have had effects, `kUnavailable` needs an operator
/// action (checkpoint) rather than patience, and `kShutdown` means the
/// server is gone. Mutations are therefore never retried after execution
/// began — the policy cannot double-apply a write.
struct RetryPolicy {
  /// Total tries (first call + retries). 1 disables retrying.
  int max_attempts = 4;
  /// Backoff before retry k (1-based): jitter(initial * multiplier^(k-1)),
  /// capped at `max_backoff`. "Full jitter": uniform in [0, that].
  std::chrono::microseconds initial_backoff{1000};
  std::chrono::microseconds max_backoff{100000};
  double multiplier = 2.0;
  /// Upper bound on time spent across all attempts and backoffs. The
  /// request's own deadline (when set) also bounds retrying — whichever is
  /// tighter wins.
  std::chrono::microseconds budget{1000000};
};

/// In-process client: the convenience face tests, examples and the load
/// generator program against — and the exact surface a future wire
/// protocol will serve remotely. Owns one session; the typed methods are
/// blocking RPCs that fold the transport envelope back into the library's
/// `Status`/`Result` vocabulary (a rejected or shutdown request surfaces
/// as `kFailedPrecondition` with the transport detail in the message).
///
/// Thread-safe: one Client may be shared by several threads, or each
/// thread can connect its own (each Client is one logical session).
///
/// Under overload the transport codes surface distinctly: `kRejected` and
/// queue-shed `kTimedOut` are retryable (see `CallWithRetry`), while
/// `kUnavailable` (degraded read-only mode) calls for `Checkpoint()`.
class Client {
 public:
  /// Connects a new session. `server` must outlive the client.
  explicit Client(Server* server);

  /// Closes the session.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Blocking typed RPCs.
  Result<pool::ResultSet> Query(const std::string& pool_text);
  Result<Oid> CreateObject(std::string class_name,
                           std::vector<AttrInit> inits = {});
  Status SetAttribute(Oid oid, std::string attribute, Value value);
  Status DeleteObject(Oid oid);
  Result<Oid> CreateLink(std::string rel_name, Oid source, Oid dest,
                         Oid context = kNullOid,
                         std::vector<AttrInit> inits = {});
  Status SetLinkAttribute(Oid oid, std::string attribute, Value value);
  Status DeleteLink(Oid oid);

  /// Multi-step write executed atomically on the server (exclusive lock).
  Status Mutate(std::function<Status(Database&)> fn);

  /// Liveness probe; returns the database epoch at execution.
  Result<std::uint64_t> Ping();

  /// Live metrics snapshot, rendered as JSON or Prometheus text.
  Result<std::string> Stats(StatsFormat format = StatsFormat::kJson);

  /// Overload/degradation summary (see Server::Health), as rendered JSON.
  /// Executes at high priority and takes no database lock, so it answers
  /// even when the server is overloaded or degraded.
  Result<std::string> Health();

  /// Typed variant of `Health()`. In-process convenience: reads the
  /// server's health snapshot directly (no queueing), so it cannot be
  /// starved by the very overload it reports on.
  Server::Health HealthInfo();

  /// Operator action: checkpoint the attached DurableStore (snapshot +
  /// journal rotation under the exclusive lock). A success re-arms a
  /// degraded server. Fails kFailedPrecondition without a store.
  Status Checkpoint();

  /// A query executed with span tracing (a `profile` prefix is optional).
  struct ProfiledQuery {
    pool::ResultSet stages;  ///< {stage, micros, rows, detail} table
    std::string tree;        ///< the same trace rendered as an indented tree
  };
  Result<ProfiledQuery> Profile(const std::string& pool_text);

  // Envelope-level access for callers that need the full Response.
  Response Call(Request req);
  std::future<Response> Submit(Request req);

  /// `Call` with the retry policy applied (see RetryPolicy for what is
  /// retryable). The request is copied per attempt; an absolute deadline
  /// on it naturally bounds the retrying.
  Response CallWithRetry(Request req, const RetryPolicy& policy = {});

  /// Blocking query with retries folded in — the convenience most load
  /// generators want under overload.
  Result<pool::ResultSet> QueryWithRetry(const std::string& pool_text,
                                         const RetryPolicy& policy = {});

  /// True when `resp` is an outcome `CallWithRetry` would resubmit.
  static bool Retryable(const Response& resp);

  Session& session() { return *session_; }

 private:
  /// Folds a non-executed transport outcome into a Status.
  static Status TransportStatus(const Response& resp);

  Server* server_;
  std::shared_ptr<Session> session_;
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_CLIENT_H_
