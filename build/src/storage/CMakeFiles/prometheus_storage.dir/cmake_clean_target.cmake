file(REMOVE_RECURSE
  "libprometheus_storage.a"
)
