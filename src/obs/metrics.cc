#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace prometheus::obs {

#ifndef PROMETHEUS_OBS_DISABLED
namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal
#endif

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

std::vector<double> Histogram::LogSpacedBounds(double lo, double hi,
                                               int per_decade) {
  std::vector<double> bounds;
  if (!(lo > 0) || !(hi > lo) || per_decade < 1) return bounds;
  const double step = std::log10(hi / lo) * per_decade;
  const int buckets = static_cast<int>(std::ceil(step - 1e-9));
  bounds.reserve(static_cast<std::size_t>(buckets) + 1);
  for (int i = 0; i < buckets; ++i) {
    bounds.push_back(lo * std::pow(10.0, static_cast<double>(i) / per_decade));
  }
  bounds.push_back(hi);  // exact endpoint, never a rounding casualty
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMicros() {
  // 1µs .. 10s, 5 per decade: 36 bounds, adjacent ratio 10^0.2 ≈ 1.585.
  static const std::vector<double> kBounds = LogSpacedBounds(1.0, 1e7, 5);
  return kBounds;
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // First bucket whose upper bound contains the value; past-the-end is the
  // overflow bucket.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Percentile(double p) const {
  // Total from the bucket counts themselves: under concurrent mutation the
  // `count` member may be slightly ahead of or behind the buckets, and the
  // estimate must stay within the observed distribution.
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = (p / 100.0) * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = i == 0 ? 0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // overflow bucket: lower bound
    const double hi = bounds[i];
    const double frac =
        counts[i] == 0 ? 0
                       : (target - before) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return bounds.empty() ? 0 : bounds.back();
}

// ---------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<Counter>();
    if (entry.help.empty()) entry.help = help;
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<Gauge>();
    if (entry.help.empty()) entry.help = help;
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultLatencyBoundsMicros()
                       : std::move(bounds));
    if (entry.help.empty()) entry.help = help;
  }
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    if (entry.counter != nullptr) {
      snap.counters.push_back({name, entry.counter->value(), entry.help});
    }
    if (entry.gauge != nullptr) {
      snap.gauges.push_back({name, entry.gauge->value(), entry.help});
    }
    if (entry.histogram != nullptr) {
      snap.histograms.push_back({name, entry.histogram->snapshot(),
                                 entry.help});
    }
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string MetricsRegistry::RenderJson() const {
  return obs::RenderJson(Snapshot());
}

std::string MetricsRegistry::RenderPrometheusText() const {
  return obs::RenderPrometheusText(Snapshot());
}

std::uint64_t MetricsSnapshot::CounterOr0(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// --------------------------------------------------------------- rendering

std::string RenderJson(
    const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::uint64_t>>&
        extra_members) {
  stats::JsonWriter json;
  json.BeginObject();
  for (const auto& [key, value] : extra_members) {
    json.Key(key).Uint(value);
  }
  json.Key("counters").BeginObject();
  for (const auto& c : snap.counters) {
    json.Key(c.name).Uint(c.value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& g : snap.gauges) {
    json.Key(g.name).Int(g.value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& h : snap.histograms) {
    json.Key(h.name).BeginObject();
    json.Key("count").Uint(h.hist.count);
    json.Key("sum").Number(h.hist.sum);
    json.Key("mean").Number(h.hist.mean());
    json.Key("p50").Number(h.hist.Percentile(50));
    json.Key("p95").Number(h.hist.Percentile(95));
    json.Key("p99").Number(h.hist.Percentile(99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

namespace {

/// `name{label="x"}` -> base `name` + the label block (empty when absent).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

void FormatNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

/// Escapes a # HELP text: the format requires `\\` and `\n` escaping in
/// help lines (a raw newline would start a new, malformed line).
void AppendEscapedHelp(std::string* out, const std::string& help) {
  for (char c : help) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// Emits the # HELP / # TYPE preamble once per base metric name.
void Preamble(std::string* out, std::string* last_base,
              const std::string& base, const std::string& help,
              const char* type) {
  if (base == *last_base) return;
  *last_base = base;
  if (!help.empty()) {
    *out += "# HELP " + base + " ";
    AppendEscapedHelp(out, help);
    *out += "\n";
  }
  *out += "# TYPE " + base + " ";
  *out += type;
  *out += "\n";
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snap) {
  // The snapshot's vectors are name-ordered (registry map order), so
  // labelled series of one base metric are contiguous and share one
  // # TYPE preamble.
  std::string out;
  std::string last_base;
  std::string base, labels;
  for (const auto& c : snap.counters) {
    SplitLabels(c.name, &base, &labels);
    Preamble(&out, &last_base, base, c.help, "counter");
    out += base + labels + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    SplitLabels(g.name, &base, &labels);
    Preamble(&out, &last_base, base, g.help, "gauge");
    out += base + labels + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    SplitLabels(h.name, &base, &labels);
    Preamble(&out, &last_base, base, h.help, "histogram");
    // Cumulative buckets, as the exposition format requires; an existing
    // label block gains the `le` label.
    const std::string label_prefix =
        labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.hist.counts.size(); ++i) {
      cumulative += h.hist.counts[i];
      out += base + "_bucket" + label_prefix + "le=\"";
      if (i < h.hist.bounds.size()) {
        FormatNumber(&out, h.hist.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += base + "_sum" + labels + " ";
    FormatNumber(&out, h.hist.sum);
    out += "\n";
    out += base + "_count" + labels + " " + std::to_string(h.hist.count) +
           "\n";
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// --------------------------------------------------------- process metrics

namespace {

/// Monotonic anchor for uptime; pinned by the first RegisterProcessMetrics.
std::chrono::steady_clock::time_point& ProcessStart() {
  static std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

Gauge*& UptimeGauge() {
  static Gauge* gauge = nullptr;
  return gauge;
}

}  // namespace

const char* BuildVersion() { return "0.5.0"; }

void RegisterProcessMetrics() {
  static std::once_flag once;
  std::call_once(once, [] {
    (void)ProcessStart();
    MetricsRegistry& reg = Registry();
#if defined(__VERSION__)
    const std::string compiler = EscapeLabelValue(__VERSION__);
#else
    const std::string compiler = "unknown";
#endif
    reg.GetGauge("prometheus_build_info{version=\"" +
                     EscapeLabelValue(BuildVersion()) + "\",compiler=\"" +
                     compiler + "\"}",
                 "Build metadata; the value is always 1")
        ->Set(1);
    reg.GetGauge("process_start_time_seconds",
                 "Unix time the process started, for restart detection")
        ->Set(static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count()));
    UptimeGauge() = reg.GetGauge(
        "process_uptime_seconds",
        "Seconds since process start (refreshed per scrape)");
    UpdateProcessUptime();
  });
}

void UpdateProcessUptime() {
  Gauge* gauge = UptimeGauge();
  if (gauge == nullptr) return;
  gauge->Set(std::chrono::duration_cast<std::chrono::seconds>(
                 std::chrono::steady_clock::now() - ProcessStart())
                 .count());
}

}  // namespace prometheus::obs
