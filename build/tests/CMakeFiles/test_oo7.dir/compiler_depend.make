# Empty compiler generated dependencies file for test_oo7.
# This may be replaced when dependencies are built.
