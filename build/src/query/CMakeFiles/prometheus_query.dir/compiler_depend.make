# Empty compiler generated dependencies file for prometheus_query.
# This may be replaced when dependencies are built.
