#ifndef PROMETHEUS_STORAGE_SNAPSHOT_H_
#define PROMETHEUS_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus::storage {

class Env;

/// Serialises a Value into the storage wire format (type tag +
/// length-prefixed payload; lists recurse). Exposed for tests.
std::string EncodeValue(const Value& value);

/// Parses a Value from `text` starting at `*pos`; advances `*pos`. All
/// parsing in this layer is exception-free: corrupt bytes yield a clean
/// `kIoError`, never a throw.
Result<Value> DecodeValue(const std::string& text, std::size_t* pos);

/// One-line records shared by snapshots and journals:
///   CLASS/TMPL/REL — schema definitions
///   OBJ/LINK   — full object / link state (used for creations)
///   SETA/SETL  — single attribute updates
///   DELO/DELL  — deletions
///   SYN        — synonym declaration
///   END        — end of stream
/// `SchemaRecords` renders the CLASS/TMPL/REL prologue as one string per
/// record; `WriteSchemaRecords` streams them; `ObjectRecord` / `LinkRecord`
/// render one instance; `ApplyRecord` parses and applies any record to a
/// database (with semantic checks suspended — records describe
/// already-validated history).
std::vector<std::string> SchemaRecords(const Database& db);
Status WriteSchemaRecords(const Database& db, std::ostream& out);
std::string ObjectRecord(const Database& db, Oid oid);
std::string LinkRecord(const Database& db, Oid oid);
/// Render one schema entity by name (empty string when absent) — the
/// journal uses these to make runtime DDL durable as it happens.
std::string ClassRecord(const Database& db, const std::string& name);
std::string TemplateRecord(const Database& db, const std::string& name);
std::string RelationshipRecord(const Database& db, const std::string& name);

/// Applies one record line. Returns true in `*end` for the END record.
/// DELO/DELL of already-absent targets are ignored (cascades may have
/// removed them first).
Status ApplyRecord(Database* db, const std::string& line, bool* end);

/// The storage substrate (the role POET played under the thesis'
/// prototype): full-database snapshots.
///
/// `SaveSnapshot` writes schema, all live objects and links (with their
/// classification contexts and attributes) and the synonym sets.
/// `LoadSnapshot` restores them into an *empty* database, preserving every
/// Oid, so persisted references stay valid across processes.
///
/// Durability contract:
///  - The path overloads write atomically: the snapshot is staged in
///    `<path>.tmp`, fsynced, then renamed over `path` — a crash mid-save
///    never damages an existing snapshot at `path`.
///  - `LoadSnapshot` verifies the stream is complete (END record present)
///    *before* applying anything, so a truncated snapshot reports
///    `kIoError` and leaves the target database untouched.
Status SaveSnapshot(const Database& db, const std::string& path);
Status SaveSnapshot(const Database& db, const std::string& path, Env* env);
Status SaveSnapshot(const Database& db, std::ostream& out);
Status LoadSnapshot(Database* db, const std::string& path);
Status LoadSnapshot(Database* db, std::istream& in);

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_SNAPSHOT_H_
