file(REMOVE_RECURSE
  "CMakeFiles/apium_revision.dir/apium_revision.cpp.o"
  "CMakeFiles/apium_revision.dir/apium_revision.cpp.o.d"
  "apium_revision"
  "apium_revision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apium_revision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
