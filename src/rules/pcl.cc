#include "rules/pcl.h"

#include <cctype>
#include <sstream>

namespace prometheus {

namespace {

/// Splits `header` into whitespace-separated words.
std::vector<std::string> Words(const std::string& header) {
  std::vector<std::string> out;
  std::istringstream in(header);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Finds the header/body separator: the first ':' that is not part of '::'.
std::size_t FindSeparator(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != ':') continue;
    if (i + 1 < s.size() && s[i + 1] == ':') {
      ++i;  // skip the second ':' of '::'
      continue;
    }
    return i;
  }
  return std::string::npos;
}

/// Splits `if A then C` sugar into applicability + condition. The keywords
/// are recognised only at the very start / at depth 0 so conditions may
/// contain parenthesised sub-expressions freely.
void SplitApplicability(const std::string& body, std::string* applicability,
                        std::string* condition) {
  std::string text = Trim(body);
  if (text.rfind("if ", 0) != 0) {
    *condition = text;
    return;
  }
  int depth = 0;
  for (std::size_t i = 3; i + 6 <= text.size(); ++i) {
    char c = text[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0 && text.compare(i, 6, " then ") == 0) {
      *applicability = Trim(text.substr(3, i - 3));
      *condition = Trim(text.substr(i + 6));
      return;
    }
  }
  *condition = text;  // no 'then': treat the whole text as the condition
}

}  // namespace

Result<RuleSpec> CompilePcl(const std::string& source) {
  std::size_t sep = FindSeparator(source);
  if (sep == std::string::npos) {
    return Status::ParseError("PCL statement lacks ':' separator");
  }
  std::string header = Trim(source.substr(0, sep));
  std::string body = Trim(source.substr(sep + 1));
  if (body.empty()) {
    return Status::ParseError("PCL statement has an empty condition");
  }
  std::vector<std::string> words = Words(header);
  std::size_t i = 0;
  if (words.size() < 2 || words[i] != "context") {
    return Status::ParseError("PCL statement must start with 'context'");
  }
  ++i;
  std::string target = words[i++];
  // `Class::op` form for pre/post conditions.
  std::string op;
  std::size_t scope = target.find("::");
  if (scope != std::string::npos) {
    op = target.substr(scope + 2);
    target = target.substr(0, scope);
    if (op != "create" && op != "update" && op != "delete") {
      return Status::ParseError("unknown operation '" + op +
                                "' (use create, update or delete)");
    }
  }

  RuleSpec spec;
  // Modifiers.
  while (i < words.size() &&
         (words[i] == "deferred" || words[i] == "warn" ||
          words[i] == "interactive")) {
    if (words[i] == "deferred") spec.timing = RuleTiming::kDeferred;
    if (words[i] == "warn") spec.action = RuleAction::kWarn;
    if (words[i] == "interactive") spec.action = RuleAction::kInteractive;
    ++i;
  }
  if (i >= words.size()) {
    return Status::ParseError("PCL statement lacks a kind (inv, relinv, "
                              "pre or post)");
  }
  std::string kind = words[i++];
  if (i < words.size()) {
    spec.name = words[i++];
  } else {
    spec.name = target + "_" + kind;
  }
  if (i != words.size()) {
    return Status::ParseError("unexpected token '" + words[i] +
                              "' in PCL header");
  }

  SplitApplicability(body, &spec.applicability, &spec.condition);
  spec.message = "PCL " + kind + " " + spec.name + " violated";

  if (kind == "inv") {
    if (!op.empty()) {
      return Status::ParseError("'inv' does not take an operation");
    }
    spec.events = {{EventKind::kAfterCreateObject, target},
                   {EventKind::kAfterSetAttribute, target}};
  } else if (kind == "relinv") {
    if (!op.empty()) {
      return Status::ParseError("'relinv' does not take an operation");
    }
    spec.events = {{EventKind::kAfterCreateLink, target},
                   {EventKind::kAfterSetLinkAttribute, target}};
  } else if (kind == "pre" || kind == "post") {
    if (op.empty()) {
      return Status::ParseError("'" + kind +
                                "' requires 'Class::operation'");
    }
    // The compiler does not know whether `target` names a class or a
    // relationship, so it selects both the object and the link event for
    // the operation — type filters keep the wrong one from ever matching.
    const bool pre = kind == "pre";
    EventKind obj_ev;
    EventKind link_ev;
    if (op == "create") {
      obj_ev = pre ? EventKind::kBeforeCreateObject
                   : EventKind::kAfterCreateObject;
      link_ev =
          pre ? EventKind::kBeforeCreateLink : EventKind::kAfterCreateLink;
    } else if (op == "update") {
      obj_ev = pre ? EventKind::kBeforeSetAttribute
                   : EventKind::kAfterSetAttribute;
      link_ev = pre ? EventKind::kBeforeSetLinkAttribute
                    : EventKind::kAfterSetLinkAttribute;
    } else {
      obj_ev = pre ? EventKind::kBeforeDeleteObject
                   : EventKind::kAfterDeleteObject;
      link_ev =
          pre ? EventKind::kBeforeDeleteLink : EventKind::kAfterDeleteLink;
    }
    spec.events = {{obj_ev, target}, {link_ev, target}};
  } else {
    return Status::ParseError("unknown PCL kind '" + kind + "'");
  }
  return spec;
}

Result<std::vector<RuleSpec>> CompilePclProgram(const std::string& source) {
  std::vector<RuleSpec> specs;
  std::size_t start = 0;
  while (start < source.size()) {
    std::size_t end = source.find(';', start);
    std::string stmt =
        Trim(end == std::string::npos ? source.substr(start)
                                      : source.substr(start, end - start));
    if (!stmt.empty()) {
      PROMETHEUS_ASSIGN_OR_RETURN(RuleSpec spec, CompilePcl(stmt));
      specs.push_back(std::move(spec));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  if (specs.empty()) {
    return Status::ParseError("PCL program contains no statements");
  }
  return specs;
}

Result<std::vector<RuleId>> InstallPcl(RuleEngine* engine,
                                       const std::string& source) {
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<RuleSpec> specs,
                              CompilePclProgram(source));
  std::vector<RuleId> ids;
  ids.reserve(specs.size());
  for (const RuleSpec& spec : specs) {
    PROMETHEUS_ASSIGN_OR_RETURN(RuleId id, engine->AddRule(spec));
    ids.push_back(id);
  }
  return ids;
}

}  // namespace prometheus
