// E7 — feature-cost ablation (thesis 7.2.1.3 / chapter 4 features): what
// each layer of the Prometheus model costs on the hot path (link
// creation), isolated by switching layers off:
//   raw          — semantics and events disabled
//   +semantics   — type checks, exclusivity/cardinality scans
//   +events      — event publication (no listeners)
//   +index       — an attribute index subscribed to the bus
//   +rules       — five ECA rules subscribed
// Expected shape: each layer adds a bounded per-operation cost; rules are
// the most expensive layer (condition evaluation).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "bench_util.h"
#include "core/database.h"
#include "index/index_manager.h"
#include "rules/rule_engine.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::IndexManager;
using prometheus::Oid;
using prometheus::RuleEngine;
using prometheus::Value;
using prometheus::ValueType;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

struct Fixture {
  explicit Fixture(int objects) {
    (void)db.DefineClass("Node", {},
                         {Attr("id", ValueType::kInt),
                          Attr("weight", ValueType::kInt)});
    (void)db.DefineRelationship("edge", "Node", "Node", {},
                                {Attr("length", ValueType::kInt)});
    for (int i = 0; i < objects; ++i) {
      nodes.push_back(
          db.CreateObject("Node", {{"id", Value::Int(i)}}).value());
    }
  }

  Database db;
  std::vector<Oid> nodes;
  std::size_t next = 0;
  // Optional layers; destroyed before `db` (reverse declaration order).
  std::unique_ptr<IndexManager> index;
  std::unique_ptr<RuleEngine> rules;

  void CreateOneLink() {
    Oid a = nodes[next % nodes.size()];
    Oid b = nodes[(next * 7 + 1) % nodes.size()];
    ++next;
    benchmark::DoNotOptimize(
        db.CreateLink("edge", a, b, prometheus::kNullOid,
                      {{"length", Value::Int(static_cast<std::int64_t>(
                            next))}})
            .ok());
  }
};

constexpr int kNodes = 1000;

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "E7: feature-cost ablation (creating 20000 links between 1000 nodes)",
      "  configuration        ms       vs_raw");
  double raw_ms = 0;
  auto run = [&](const char* label, auto&& setup) {
    // Fixture construction (1000 objects) happens outside the timed
    // region; only the 5000 link creations are measured.
    std::vector<double> samples;
    for (int rep = 0; rep < 5; ++rep) {
      Fixture fx(kNodes);
      setup(fx);
      samples.push_back(prometheus::bench::MedianMillis(
          [&] {
            for (int i = 0; i < 20000; ++i) fx.CreateOneLink();
          },
          1));
    }
    std::sort(samples.begin(), samples.end());
    double ms = samples[samples.size() / 2];
    if (raw_ms == 0) raw_ms = ms;
    std::printf("  %-18s %8.3f   %5.2fx\n", label, ms, ms / raw_ms);
  };
  run("raw", [](Fixture& fx) {
    fx.db.set_semantics_enabled(false);
    fx.db.set_events_enabled(false);
  });
  run("+semantics", [](Fixture& fx) { fx.db.set_events_enabled(false); });
  run("+events", [](Fixture&) {});
  run("+index", [](Fixture& fx) {
    fx.index = std::make_unique<IndexManager>(&fx.db);
    (void)fx.index->CreateIndex("Node", "id");
  });
  run("+rules", [](Fixture& fx) {
    fx.rules = std::make_unique<RuleEngine>(&fx.db);
    for (int i = 0; i < 5; ++i) {
      (void)fx.rules->AddRelationshipRule(
          "edge_rule_" + std::to_string(i), "edge", "source != target",
          "no self edges");
    }
  });
}

void BM_LinkCreate(benchmark::State& state) {
  // state.range(0): 0=raw, 1=+semantics, 2=+events, 3=+rules.
  Fixture fx(kNodes);
  std::unique_ptr<RuleEngine> rules;
  switch (state.range(0)) {
    case 0:
      fx.db.set_semantics_enabled(false);
      fx.db.set_events_enabled(false);
      break;
    case 1:
      fx.db.set_events_enabled(false);
      break;
    case 2:
      break;
    case 3:
      rules = std::make_unique<RuleEngine>(&fx.db);
      for (int i = 0; i < 5; ++i) {
        (void)rules->AddRelationshipRule("r" + std::to_string(i), "edge",
                                         "source != target", "m");
      }
      break;
  }
  for (auto _ : state) {
    fx.CreateOneLink();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkCreate)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_AttributeInheritanceRead(benchmark::State& state) {
  // The role mechanism (4.4.5): reading a link-inherited attribute vs a
  // plain attribute.
  Database db;
  (void)db.DefineClass("Person", {}, {Attr("name", ValueType::kInt)});
  prometheus::RelationshipSemantics sem;
  sem.inherit_attributes = true;
  (void)db.DefineRelationship("married_to", "Person", "Person", sem,
                              {Attr("wedding", ValueType::kInt)});
  Oid a = db.CreateObject("Person").value();
  Oid b = db.CreateObject("Person").value();
  (void)db.CreateLink("married_to", a, b, prometheus::kNullOid,
                      {{"wedding", Value::Int(1999)}});
  const bool inherited = state.range(0) == 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.GetAttribute(b, inherited ? "wedding" : "name").ok());
  }
}
BENCHMARK(BM_AttributeInheritanceRead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
