#ifndef PROMETHEUS_COMMON_VALUE_H_
#define PROMETHEUS_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/oid.h"
#include "common/result.h"

namespace prometheus {

/// The dynamic type of a `Value`.
///
/// These are the atomic ODMG literal types the thesis' model builds on
/// (section 4.2) plus `kRef` (an object reference, used by POOL results and
/// by attributes that point at other objects), `kList` (an ordered
/// collection, the thesis' `Collection` built-in, section 4.4.6) and
/// `kStruct` (an ordered set of named fields — the row shape of the virtual
/// `sys.*` system catalog, which has no Oids to hand out).
enum class ValueType : std::uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kRef,
  kList,
  kStruct,
};

/// Returns the canonical name of a value type ("int", "string", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed attribute value.
///
/// Objects, relationship instances and POOL expressions all manipulate
/// `Value`s. The class is a small tagged union; copies are value copies
/// (lists copy their elements). Object references are held as bare Oids —
/// a `Value` never owns database storage.
class Value {
 public:
  /// List payload type.
  using List = std::vector<Value>;

  /// Struct payload type: an ordered sequence of named fields. Field order is
  /// preserved (it is the declaration order of the producing catalog class),
  /// and names are unique by construction.
  using Struct = std::vector<std::pair<std::string, Value>>;

  /// Constructs a null value.
  Value() : data_(std::monostate{}) {}

  /// Typed factories. A plain `Oid` would be ambiguous with `int64_t`, so
  /// references are built with `Value::Ref`.
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(std::int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Ref(Oid oid) { return Value(Payload(RefTag{oid})); }
  static Value MakeList(List v) { return Value(Payload(std::move(v))); }
  static Value MakeStruct(Struct v) { return Value(Payload(std::move(v))); }

  /// The dynamic type tag.
  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; each must only be called when `type()` matches.
  bool AsBool() const { return std::get<bool>(data_); }
  std::int64_t AsInt() const { return std::get<std::int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  Oid AsRef() const { return std::get<RefTag>(data_).oid; }
  const List& AsList() const { return std::get<List>(data_); }
  List& AsList() { return std::get<List>(data_); }
  const Struct& AsStruct() const { return std::get<Struct>(data_); }
  Struct& AsStruct() { return std::get<Struct>(data_); }

  /// Looks up a struct field by name. Returns null if the value is not a
  /// struct; callers that need typo diagnostics check `HasField` first.
  const Value* Field(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// Numeric coercion: int and double convert to double; anything else is an
  /// error. Used by POOL arithmetic and comparisons.
  Result<double> ToNumeric() const;

  /// Structural equality. Int/double compare numerically (so `1 == 1.0`);
  /// null equals only null.
  bool Equals(const Value& other) const;

  /// Three-way ordering for order-comparable values (numerics, strings,
  /// bools, refs). Returns an error for nulls, lists, or mixed
  /// incomparable types. `-1`, `0`, `1`.
  Result<int> Compare(const Value& other) const;

  /// Renders the value for diagnostics and benchmark/report output.
  std::string ToString() const;

  /// A stable key usable in hash indexes. Values with different types have
  /// different keys except for numerically equal int/double pairs.
  std::string IndexKey() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Equals(b);
  }

 private:
  /// Wrapper so Oid refs occupy a distinct variant alternative from ints.
  struct RefTag {
    Oid oid;
    bool operator==(const RefTag& o) const { return oid == o.oid; }
  };

  using Payload = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, RefTag, List, Struct>;

  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_COMMON_VALUE_H_
