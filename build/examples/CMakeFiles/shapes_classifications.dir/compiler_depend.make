# Empty compiler generated dependencies file for shapes_classifications.
# This may be replaced when dependencies are built.
