file(REMOVE_RECURSE
  "CMakeFiles/bench_oo7_t5.dir/bench_oo7_t5.cc.o"
  "CMakeFiles/bench_oo7_t5.dir/bench_oo7_t5.cc.o.d"
  "bench_oo7_t5"
  "bench_oo7_t5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oo7_t5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
