#ifndef PROMETHEUS_CORE_INSTANCE_H_
#define PROMETHEUS_CORE_INSTANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/oid.h"
#include "common/value.h"
#include "core/schema.h"

namespace prometheus {

/// A stored object instance. Owned by the `Database`; pointers returned by
/// lookups are non-owning and become dangling when the object is deleted.
struct Object {
  Oid oid = kNullOid;
  const ClassDef* cls = nullptr;

  /// Attribute slots; attributes left at default are stored explicitly on
  /// creation so reads never miss.
  std::unordered_map<std::string, Value> attrs;

  /// Incident links (both endpoints index their links for O(degree)
  /// traversal — thesis 6.1.4, relationship indexes).
  std::vector<Oid> out_links;
  std::vector<Oid> in_links;

  /// Position inside the class extent vector (swap-remove bookkeeping).
  std::size_t extent_pos = 0;
};

/// A stored relationship instance — a *link* (thesis 4.3). Links are
/// first-class: they have an Oid, carry attributes, can be queried by POOL,
/// and may belong to a classification context (thesis 4.6.2).
struct Link {
  Oid oid = kNullOid;
  const RelationshipDef* def = nullptr;
  Oid source = kNullOid;
  Oid target = kNullOid;

  /// The classification this link belongs to, or kNullOid when the link is
  /// context-free. Classifications are themselves objects, so this is an
  /// ordinary Oid.
  Oid context = kNullOid;

  /// Link attributes (e.g. the "placement motivation" that provides the
  /// traceability requirement 4).
  std::unordered_map<std::string, Value> attrs;

  /// Position inside the relationship-class extent (swap-remove bookkeeping).
  std::size_t extent_pos = 0;

  /// Position inside the context index (swap-remove bookkeeping); only
  /// meaningful when `context != kNullOid`.
  std::size_t ctx_pos = 0;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_INSTANCE_H_
