#ifndef PROMETHEUS_CORE_OID_TRIE_H_
#define PROMETHEUS_CORE_OID_TRIE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/oid.h"

namespace prometheus {

/// A persistent (path-copying) 64-ary radix trie keyed by Oid, the version
/// store behind MVCC snapshot reads (the weaseldb-style pattern: mutations
/// produce a new root that structurally shares every untouched subtree with
/// the previous version, so publishing a snapshot is one shared_ptr copy and
/// updating k records costs O(k * depth) node clones, never O(N)).
///
/// Oids are allocated densely from 1, so the trie stays shallow: height 3
/// covers 262k ids, height 4 covers 16.7M. Interior levels use `child`,
/// the leaf level uses `value`; a node carries both arrays for simplicity
/// (~2 KB per node, amortised ~32 bytes per stored entry).
///
/// Concurrency contract: `Set`/`Erase` are called by the single writer only.
/// Readers traverse roots reached through a published snapshot; the publish
/// itself (a mutex-protected shared_ptr store) provides the happens-before.
/// The writer mutates a node in place only when `use_count() == 1` — a node
/// reachable from any published snapshot always has an extra owner (its
/// retained parent in that snapshot), and parents are copied before children
/// on the way down, so a shared node is cloned, never mutated. A concurrent
/// snapshot destruction can only *drop* a count, making the check
/// conservative (worst case: one unnecessary clone).
template <typename T>
class OidTrie {
 public:
  using ValuePtr = std::shared_ptr<const T>;

  OidTrie() = default;
  OidTrie(const OidTrie&) = default;             // O(1): shares the root
  OidTrie& operator=(const OidTrie&) = default;  // O(1)
  OidTrie(OidTrie&&) noexcept = default;
  OidTrie& operator=(OidTrie&&) noexcept = default;

  /// Current version under `oid`; nullptr when absent. Safe to call
  /// concurrently with a writer mutating a *different* trie that shares
  /// structure with this one.
  const T* Find(Oid oid) const {
    const Node* n = root_.get();
    if (n == nullptr || !Fits(oid)) return nullptr;
    for (int level = height_ - 1; level > 0; --level) {
      n = n->child[Slot(oid, level)].get();
      if (n == nullptr) return nullptr;
    }
    return n->value[Slot(oid, 0)].get();
  }

  /// Installs `value` under `oid` (null erases), path-copying every node
  /// shared with a published snapshot. Single-writer only.
  void Set(Oid oid, ValuePtr value) {
    while (!Fits(oid)) GrowRoot();
    root_ = SetRec(std::move(root_), height_ - 1, oid, std::move(value));
  }

  void Erase(Oid oid) {
    if (Fits(oid) && Find(oid) != nullptr) Set(oid, nullptr);
  }

  bool empty() const { return root_ == nullptr; }

 private:
  static constexpr int kBits = 6;
  static constexpr int kFan = 1 << kBits;

  struct Node {
    std::array<std::shared_ptr<Node>, kFan> child;
    std::array<ValuePtr, kFan> value;
  };
  using NodePtr = std::shared_ptr<Node>;

  static std::size_t Slot(Oid oid, int level) {
    return static_cast<std::size_t>(oid >> (level * kBits)) &
           static_cast<std::size_t>(kFan - 1);
  }

  bool Fits(Oid oid) const {
    const int bits = height_ * kBits;
    return bits >= 64 || (oid >> bits) == 0;
  }

  void GrowRoot() {
    if (root_ != nullptr) {
      auto n = std::make_shared<Node>();
      n->child[0] = std::move(root_);
      root_ = std::move(n);
    }
    ++height_;
  }

  /// The writer's copy-on-write gate. `n` arrives by move so the count it
  /// reports is the count held by snapshots and the live path, not a
  /// call-site temporary.
  static NodePtr Mutable(NodePtr n) {
    if (n == nullptr) return std::make_shared<Node>();
    if (n.use_count() == 1) return n;
    return std::make_shared<Node>(*n);
  }

  static NodePtr SetRec(NodePtr n, int level, Oid oid, ValuePtr value) {
    NodePtr m = Mutable(std::move(n));
    if (level == 0) {
      m->value[Slot(oid, 0)] = std::move(value);
    } else {
      NodePtr& slot = m->child[Slot(oid, level)];
      slot = SetRec(std::move(slot), level - 1, oid, std::move(value));
    }
    return m;
  }

  NodePtr root_;    // null == empty trie
  int height_ = 1;  // levels; capacity = 64^height_
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_OID_TRIE_H_
