#ifndef PROMETHEUS_COMMON_EXEC_CONTEXT_H_
#define PROMETHEUS_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace prometheus {

/// Cooperative cancellation / deadline token threaded through long-running
/// engine loops (query scans, traversals). The executing code calls
/// `Check()` at each natural unit of work (one binding, one edge) and
/// unwinds with the returned non-OK status when the budget is spent —
/// aborting mid-execution instead of holding the shared lock past the
/// request's deadline.
///
/// Cost model: `Check()` is one relaxed atomic load when no deadline is
/// set; with a deadline it amortises the clock read over `kClockStride`
/// calls, so a tight scan loop pays ~one branch per iteration either way.
///
/// Thread model: one executing thread calls `Check()`; any thread may call
/// `RequestCancel()`. The amortisation counter is intentionally unshared
/// state of the executing thread.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel for "no deadline".
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// Clock reads are amortised: at most one per this many Check() calls.
  static constexpr std::uint32_t kClockStride = 128;

  ExecutionContext() = default;
  explicit ExecutionContext(Clock::time_point deadline)
      : deadline_(deadline) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Clock::time_point deadline() const { return deadline_; }
  bool has_deadline() const { return deadline_ != kNoDeadline; }

  /// Asks the executing code to unwind at its next Check(). Thread-safe.
  void RequestCancel() {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once a Check() observed the deadline in the past.
  bool expired() const { return expired_.load(std::memory_order_relaxed); }

  /// Cooperative check, called once per unit of work. Returns OK to keep
  /// going, `kAborted` on cancellation, `kDeadlineExceeded` once the
  /// deadline passes (sticky: later calls keep failing without reading the
  /// clock again).
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Aborted("execution cancelled");
    }
    if (deadline_ == kNoDeadline) return Status::Ok();
    if (expired_.load(std::memory_order_relaxed)) return Expired();
    if (ticks_++ % kClockStride != 0) return Status::Ok();
    if (Clock::now() >= deadline_) {
      expired_.store(true, std::memory_order_relaxed);
      return Expired();
    }
    return Status::Ok();
  }

 private:
  static Status Expired() {
    return Status::DeadlineExceeded("request deadline exceeded mid-execution");
  }

  const Clock::time_point deadline_ = kNoDeadline;
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> expired_{false};
  /// Check() call counter for clock amortisation; owned by the executing
  /// thread (not shared), hence deliberately not atomic.
  mutable std::uint32_t ticks_ = 0;
};

}  // namespace prometheus

#endif  // PROMETHEUS_COMMON_EXEC_CONTEXT_H_
