#include "query/token.h"

#include <cctype>
#include <unordered_map>

namespace prometheus::pool {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto& kMap = *new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},   {"distinct", TokenKind::kDistinct},
      {"from", TokenKind::kFrom},       {"where", TokenKind::kWhere},
      {"order", TokenKind::kOrder},     {"by", TokenKind::kBy},
      {"group", TokenKind::kGroup},     {"having", TokenKind::kHaving},
      {"asc", TokenKind::kAsc},         {"desc", TokenKind::kDesc},
      {"limit", TokenKind::kLimit},     {"as", TokenKind::kAs},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},         {"in", TokenKind::kIn},
      {"like", TokenKind::kLike},       {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},     {"null", TokenKind::kNull},
  };
  return kMap;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  auto push = [&](TokenKind kind, std::size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_' || source[j] == '$')) {
        ++j;
      }
      std::string word = source.substr(i, j - i);
      auto kw = Keywords().find(ToLower(word));
      Token t;
      t.offset = start;
      if (kw != Keywords().end()) {
        t.kind = kw->second;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = std::move(word);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      if (j < n && source[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          ++j;
        }
      }
      Token t;
      t.offset = start;
      std::string num = source.substr(i, j - i);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;  // escape
        text += source[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace prometheus::pool
