#ifndef PROMETHEUS_CACHE_RESULT_SIZE_H_
#define PROMETHEUS_CACHE_RESULT_SIZE_H_

#include <cstddef>

#include "common/value.h"
#include "query/query_engine.h"

namespace prometheus::cache {

/// Approximate heap footprint of a Value for the result cache's byte
/// budget. A fixed per-value overhead (the variant + vector bookkeeping)
/// plus the variable payloads; deliberately cheap rather than exact — the
/// budget bounds memory, it does not meter it.
inline std::size_t ApproxValueBytes(const Value& v) {
  std::size_t bytes = sizeof(Value);
  switch (v.type()) {
    case ValueType::kString:
      bytes += v.AsString().size();
      break;
    case ValueType::kList:
      for (const Value& item : v.AsList()) bytes += ApproxValueBytes(item);
      break;
    case ValueType::kStruct:
      for (const auto& [name, field] : v.AsStruct()) {
        bytes += name.size() + ApproxValueBytes(field);
      }
      break;
    default:
      break;
  }
  return bytes;
}

/// Approximate footprint of a materialized ResultSet. Header-only so the
/// cache library itself stays link-independent of the query layer.
inline std::size_t ApproxResultBytes(const pool::ResultSet& rs) {
  std::size_t bytes = sizeof(pool::ResultSet);
  for (const std::string& c : rs.columns) bytes += sizeof(std::string) + c.size();
  for (const auto& row : rs.rows) {
    bytes += sizeof(row);
    for (const Value& v : row) bytes += ApproxValueBytes(v);
  }
  return bytes;
}

}  // namespace prometheus::cache

#endif  // PROMETHEUS_CACHE_RESULT_SIZE_H_
