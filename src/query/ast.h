#ifndef PROMETHEUS_QUERY_AST_H_
#define PROMETHEUS_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace prometheus::pool {

/// Expression node kinds of the POOL AST.
enum class ExprKind : std::uint8_t {
  kLiteral,    ///< constant Value
  kVariable,   ///< range variable or rule binding ($self, $link, ...)
  kPath,       ///< base '.' member (attribute / source / target / context)
  kDowncast,   ///< base '[' ClassName ']' — selective downcast (5.1.1.2)
  kUnary,      ///< not / negation
  kBinary,     ///< arithmetic, comparison, boolean, like, in
  kCall,       ///< function call (traverse, count, exists, ...)
  kSubquery,   ///< nested select, evaluated to a list
};

/// Binary operators.
enum class BinaryOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,
  kIn,
};

/// Unary operators.
enum class UnaryOp : std::uint8_t {
  kNot,
  kNeg,
};

struct SelectQuery;

/// A POOL expression tree node. Plain data; evaluation lives in the
/// evaluator so the same tree can serve queries, views and rules.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;
  // kVariable
  std::string name;
  // kPath / kDowncast / kUnary: operand in children[0]; kPath uses `name`
  // as the member, kDowncast uses `name` as the class.
  // kBinary: children[0], children[1].
  // kCall: `name` is the function, children are arguments.
  std::vector<std::unique_ptr<Expr>> children;
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;
  // kSubquery
  std::unique_ptr<SelectQuery> subquery;
};

/// One entry of a FROM list.
///
/// If `source_name` names a class, the variable ranges over its deep
/// extent; if it names a relationship class, over its link extent (POOL's
/// uniform treatment of objects and relationships, 5.1.1.2). Otherwise
/// `source_expr` is set and is evaluated per binding of the ranges to its
/// left — it must yield a list (dependent join, the idiom POOL uses for
/// graph navigation in FROM position).
struct FromRange {
  std::string variable;
  std::string source_name;            ///< extent name; empty for expressions
  std::unique_ptr<Expr> source_expr;  ///< dependent range; null for extents
};

/// One projected column.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< output column name (derived when not given)
};

/// A parsed `select` query.
struct SelectQuery {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<FromRange> from;
  std::unique_ptr<Expr> where;      ///< null when absent
  /// Grouping expressions; when non-empty the select list, `having` and
  /// `order by` are evaluated per group, with `count`/`sum`/`min`/`max`/
  /// `avg` calls aggregating over the group's bindings.
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;     ///< null when absent
  /// Sort keys, outermost first; each with its own direction.
  struct OrderKey {
    std::unique_ptr<Expr> expr;
    bool desc = false;
  };
  std::vector<OrderKey> order_by;
  std::int64_t limit = -1;          ///< -1: no limit
};

}  // namespace prometheus::pool

#endif  // PROMETHEUS_QUERY_AST_H_
