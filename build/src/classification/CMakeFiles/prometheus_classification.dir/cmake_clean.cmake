file(REMOVE_RECURSE
  "CMakeFiles/prometheus_classification.dir/classification.cc.o"
  "CMakeFiles/prometheus_classification.dir/classification.cc.o.d"
  "libprometheus_classification.a"
  "libprometheus_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
