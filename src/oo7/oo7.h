#ifndef PROMETHEUS_OO7_OO7_H_
#define PROMETHEUS_OO7_OO7_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus::oo7 {

/// Parameters of the OO7-derived benchmark database (thesis 7.2.1.1,
/// figures 41–43: the benchmark schema follows OO7's design hierarchy —
/// module → complex assemblies → base assemblies → composite parts →
/// atomic parts with typed connections — scaled to laptop sizes).
struct Config {
  /// Composite parts in the library.
  int composite_parts = 50;
  /// Atomic parts per composite part (OO7 small: 20).
  int atomic_per_composite = 20;
  /// Outgoing connections per atomic part (OO7: 3, 6 or 9).
  int connections_per_atomic = 3;
  /// Fan-out of complex assemblies.
  int assembly_fanout = 3;
  /// Levels of the assembly tree (leaves are base assemblies).
  int assembly_levels = 4;
  /// Composite parts referenced by each base assembly.
  int components_per_base = 3;
  /// RNG seed; identical seeds produce identical databases in both the
  /// Prometheus and the baseline build.
  unsigned seed = 42;

  /// Number of atomic parts this configuration generates.
  int total_atomic_parts() const {
    return composite_parts * atomic_per_composite;
  }
};

/// Counters shared by the traversal/query/structural operations so the
/// benchmark can verify both implementations did the same work.
struct OpCounts {
  std::uint64_t visited = 0;
  std::uint64_t updated = 0;
};

/// The OO7 workload on **Prometheus**: atomic/composite parts and
/// assemblies are objects, connections and design references are
/// first-class links with semantics (aggregation, lifetime dependency,
/// exclusivity), exactly the features whose cost the thesis measures
/// against the underlying plain store.
class PrometheusOo7 {
 public:
  /// Builds schema and data. Deterministic in `config.seed`.
  explicit PrometheusOo7(const Config& config);

  Database& db() { return db_; }
  const Config& config() const { return config_; }

  /// T1: raw traversal — walk the assembly tree, and from every referenced
  /// composite part depth-first over atomic-part connections. Returns the
  /// number of atomic-part visits.
  std::uint64_t TraverseT1() const;

  /// T5 (figure 44): T1 plus an update of one attribute per visited atomic
  /// part.
  OpCounts TraverseT5(std::int64_t new_value);

  /// Q1: exact-match lookups of `n` random atomic parts by id; returns the
  /// number found. Uses extent scan or POOL+index externally; this is the
  /// hand-coded API variant.
  std::uint64_t LookupQ1(int n, std::uint32_t* checksum) const;

  /// Q2: range scan — atomic parts with build_date in [lo, hi].
  std::uint64_t RangeQ2(std::int64_t lo, std::int64_t hi) const;

  /// Q4: reverse traversal — from `n` random atomic parts climb to their
  /// composite part and the base assemblies using it.
  std::uint64_t ReverseQ4(int n) const;

  /// S1 (figure 45): structural insert — create `k` composite parts (with
  /// their atomic parts and connections) and attach each to a random base
  /// assembly.
  Status InsertS1(int k);

  /// S2 (figure 46): structural delete — delete `k` composite parts;
  /// lifetime-dependent aggregation cascades over their atomic parts and
  /// documents.
  Status DeleteS2(int k);

  /// Oids for external (POOL) querying.
  const std::vector<Oid>& composite_parts() const { return composites_; }
  const std::vector<Oid>& base_assemblies() const { return bases_; }
  Oid module() const { return module_; }

 private:
  Result<Oid> BuildCompositePart(int id);
  Oid BuildAssembly(int level, int* next_id);

  Config config_;
  Database db_;
  std::mt19937 rng_;
  Oid module_ = kNullOid;
  std::vector<Oid> composites_;
  std::vector<Oid> bases_;
  int next_part_id_ = 0;
};

/// The OO7 workload on the **plain baseline store**: the same shapes held
/// as concrete structs with raw pointers, standing in for the underlying
/// storage system (POET in the thesis) — no events, no semantics, no undo.
/// The benchmark reports Prometheus cost relative to this.
class BaselineOo7 {
 public:
  explicit BaselineOo7(const Config& config);

  std::uint64_t TraverseT1() const;
  OpCounts TraverseT5(std::int64_t new_value);
  std::uint64_t LookupQ1(int n, std::uint32_t* checksum) const;
  std::uint64_t RangeQ2(std::int64_t lo, std::int64_t hi) const;
  std::uint64_t ReverseQ4(int n) const;
  Status InsertS1(int k);
  Status DeleteS2(int k);

  const Config& config() const { return config_; }
  std::size_t atomic_part_count() const { return atomic_count_; }

 private:
  struct AtomicPart;
  struct CompositePart;
  struct Assembly;

  struct Connection {
    AtomicPart* to = nullptr;
    std::int64_t length = 0;
  };

  struct AtomicPart {
    int id = 0;
    std::int64_t x = 0;
    std::int64_t build_date = 0;
    CompositePart* owner = nullptr;
    std::vector<Connection> out;
    std::vector<AtomicPart*> in;
  };

  struct CompositePart {
    int id = 0;
    std::int64_t build_date = 0;
    std::string document;
    std::vector<std::unique_ptr<AtomicPart>> parts;
    AtomicPart* root = nullptr;
    std::vector<Assembly*> used_by;
    bool alive = true;
  };

  struct Assembly {
    int id = 0;
    bool is_base = false;
    std::vector<Assembly*> subs;
    std::vector<CompositePart*> components;
  };

  CompositePart* BuildCompositePart(int id);
  Assembly* BuildAssembly(int level, int* next_id);

  Config config_;
  std::mt19937 rng_;
  std::deque<std::unique_ptr<CompositePart>> composites_;
  std::deque<Assembly> assemblies_;
  Assembly* root_ = nullptr;
  std::vector<Assembly*> bases_;
  std::unordered_map<int, AtomicPart*> atomic_by_id_;
  std::size_t atomic_count_ = 0;
  int next_part_id_ = 0;
};

}  // namespace prometheus::oo7

#endif  // PROMETHEUS_OO7_OO7_H_
