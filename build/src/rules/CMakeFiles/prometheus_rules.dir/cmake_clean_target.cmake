file(REMOVE_RECURSE
  "libprometheus_rules.a"
)
