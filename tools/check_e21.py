#!/usr/bin/env python3
"""CI gate over the E21 MVCC section of BENCH_server.json.

Three checks, in decreasing strictness:

  1. guard_shared_waits == 0  (always enforced): snapshot readers never
     take the shared guard, on any host. A single shared-mode wait during
     the churn phase means a read path regressed onto the lock.
  2. scaling_4v1 >= 1.5  (>= 4 cores, not host_bounded): lock-free reads
     must scale with workers; a regression here means readers serialize
     somewhere again.
  3. read_p99_ratio  (>= 4 cores, not host_bounded): reader p99 under a
     400-write-transaction churn writer, relative to reader-only. Target
     is <= 1.2; we warn above that and only fail above 1.5 because shared
     CI runners are noisy.

Usage: check_e21.py path/to/BENCH_server.json
"""

import json
import sys

SCALING_FLOOR = 1.5
RATIO_TARGET = 1.2
RATIO_CEILING = 1.5


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} BENCH_server.json", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        bench = json.load(f)

    e21 = bench.get("e21")
    if e21 is None:
        print("FAIL: no 'e21' section in bench output", file=sys.stderr)
        return 1

    failures = []

    waits = e21.get("guard_shared_waits", -1)
    if waits != 0:
        failures.append(
            f"guard_shared_waits = {waits} (expected 0: MVCC snapshot "
            "readers must never block on the shared guard)"
        )
    else:
        print("ok: guard_shared_waits == 0 under writer churn")

    cores = bench.get("hardware_concurrency", 0)
    host_bounded = bool(e21.get("host_bounded", cores < 4))
    if host_bounded or cores < 4:
        print(
            f"skip: scaling/latency gates (host has {cores} hardware "
            "threads; E21 marked host_bounded)"
        )
    else:
        scaling = float(e21.get("scaling_4v1", 0.0))
        if scaling < SCALING_FLOOR:
            failures.append(
                f"scaling_4v1 = {scaling:.2f} (floor {SCALING_FLOOR}): "
                "read throughput no longer scales with workers"
            )
        else:
            print(f"ok: scaling_4v1 = {scaling:.2f} (floor {SCALING_FLOOR})")

        ratio = float(e21.get("read_p99_ratio", 0.0))
        if ratio > RATIO_CEILING:
            failures.append(
                f"read_p99_ratio = {ratio:.2f} (ceiling {RATIO_CEILING}): "
                "writer churn is back in the read latency path"
            )
        elif ratio > RATIO_TARGET:
            print(
                f"warn: read_p99_ratio = {ratio:.2f} above the "
                f"{RATIO_TARGET} target (tolerated up to {RATIO_CEILING} "
                "for runner noise)"
            )
        else:
            print(f"ok: read_p99_ratio = {ratio:.2f} (target {RATIO_TARGET})")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
