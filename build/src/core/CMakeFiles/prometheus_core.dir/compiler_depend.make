# Empty compiler generated dependencies file for prometheus_core.
# This may be replaced when dependencies are built.
