#include <gtest/gtest.h>

#include <algorithm>

#include "classification/classification.h"

namespace prometheus {
namespace {

bool Contains(const std::vector<Oid>& v, Oid x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

AttributeDef StrAttr(std::string name) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = ValueType::kString;
  return a;
}

/// Builds the "shapes" scenario of thesis figure 4: a pool of specimen
/// objects classified independently by several taxonomists.
class ClassificationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mgr = std::make_unique<ClassificationManager>(&db);
    ASSERT_TRUE(db.DefineClass("Specimen", {}, {StrAttr("shape")}).ok());
    ASSERT_TRUE(db.DefineClass("Taxon", {}, {StrAttr("label")}).ok());
    ASSERT_TRUE(db.DefineRelationship("classified_in", "Taxon", "Specimen",
                                      {}, {StrAttr("motivation")})
                    .ok());
    ASSERT_TRUE(db.DefineRelationship("placed_in", "Taxon", "Taxon", {},
                                      {StrAttr("motivation")})
                    .ok());
  }

  Oid NewSpecimen(const std::string& shape) {
    return db.CreateObject("Specimen", {{"shape", Value::String(shape)}})
        .value();
  }

  Oid NewTaxon(const std::string& label) {
    return db.CreateObject("Taxon", {{"label", Value::String(label)}})
        .value();
  }

  Database db;
  std::unique_ptr<ClassificationManager> mgr;
};

TEST_F(ClassificationFixture, CreateCarriesMetadata) {
  auto c = mgr->Create("Shapes 1890", "Linnaeus", 1890, "Species Plantarum");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(mgr->IsClassification(c.value()));
  EXPECT_TRUE(db.GetAttribute(c.value(), "author")
                  .value()
                  .Equals(Value::String("Linnaeus")));
  EXPECT_TRUE(
      db.GetAttribute(c.value(), "year").value().Equals(Value::Int(1890)));
  EXPECT_EQ(mgr->All().size(), 1u);
}

TEST_F(ClassificationFixture, EdgesMembersRootsChildren) {
  Oid c = mgr->Create("C", "t1").value();
  Oid genus = NewTaxon("Shapes");
  Oid squares = NewTaxon("Squares");
  Oid s1 = NewSpecimen("square");
  Oid s2 = NewSpecimen("square");
  ASSERT_TRUE(mgr->AddEdge(c, "placed_in", genus, squares).ok());
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", squares, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", squares, s2).ok());
  EXPECT_EQ(mgr->Edges(c).size(), 3u);
  EXPECT_EQ(mgr->Members(c).size(), 4u);
  EXPECT_EQ(mgr->Roots(c), std::vector<Oid>{genus});
  EXPECT_EQ(mgr->Children(c, genus), std::vector<Oid>{squares});
  EXPECT_EQ(mgr->Parents(c, s1), std::vector<Oid>{squares});
  std::vector<Oid> desc = mgr->Descendants(c, genus);
  EXPECT_EQ(desc.size(), 3u);
  std::vector<Oid> leaves = mgr->Leaves(c, genus);
  EXPECT_EQ(leaves.size(), 2u);
  EXPECT_TRUE(Contains(leaves, s1));
  EXPECT_TRUE(Contains(leaves, s2));
}

TEST_F(ClassificationFixture, MotivationTraceability) {
  Oid c = mgr->Create("C", "t1").value();
  Oid a = NewTaxon("A");
  Oid s = NewSpecimen("oval");
  auto link = mgr->AddEdge(c, "classified_in", a, s, "leaf shape is ovoid");
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(db.GetLinkAttribute(link.value(), "motivation")
                  .value()
                  .Equals(Value::String("leaf shape is ovoid")));
}

TEST_F(ClassificationFixture, MotivationRequiresDeclaredAttribute) {
  ASSERT_TRUE(db.DefineRelationship("bare", "Taxon", "Specimen").ok());
  Oid c = mgr->Create("C", "t1").value();
  Oid a = NewTaxon("A");
  Oid s = NewSpecimen("x");
  EXPECT_EQ(mgr->AddEdge(c, "bare", a, s, "why").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(mgr->AddEdge(c, "bare", a, s).ok());
}

TEST_F(ClassificationFixture, OverlappingClassificationsAreIndependent) {
  // Two taxonomists classify the same specimens differently (figure 4).
  Oid s_square = NewSpecimen("square");
  Oid s_oval = NewSpecimen("oval");
  Oid s_tri = NewSpecimen("triangle");

  Oid c1 = mgr->Create("by shape", "t1").value();
  Oid angled1 = NewTaxon("Angled");
  Oid round1 = NewTaxon("Round");
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", angled1, s_square).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", angled1, s_tri).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", round1, s_oval).ok());

  Oid c2 = mgr->Create("by brightness", "t2").value();
  Oid light2 = NewTaxon("Light");
  Oid dark2 = NewTaxon("Dark");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", light2, s_square).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", light2, s_oval).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", dark2, s_tri).ok());

  // Context-restricted structure: same specimen, different parents.
  EXPECT_EQ(mgr->Parents(c1, s_square), std::vector<Oid>{angled1});
  EXPECT_EQ(mgr->Parents(c2, s_square), std::vector<Oid>{light2});
  // Each classification sees only its own edges.
  EXPECT_EQ(mgr->Edges(c1).size(), 3u);
  EXPECT_EQ(mgr->Edges(c2).size(), 3u);
}

TEST_F(ClassificationFixture, SynonymyDetectionFromLeafSets) {
  Oid s1 = NewSpecimen("a");
  Oid s2 = NewSpecimen("b");
  Oid s3 = NewSpecimen("c");

  Oid c1 = mgr->Create("C1", "t1").value();
  Oid g1 = NewTaxon("G1");
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1, s2).ok());

  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g_full = NewTaxon("Gfull");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g_full, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g_full, s2).ok());
  Oid g_partial = NewTaxon("Gpartial");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g_partial, s2).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g_partial, s3).ok());
  Oid g_disjoint = NewTaxon("Gdisjoint");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g_disjoint, s3).ok());

  EXPECT_EQ(mgr->Synonymy(c1, g1, c2, g_full), SynonymyKind::kFull);
  EXPECT_EQ(mgr->Synonymy(c1, g1, c2, g_partial), SynonymyKind::kProParte);
  EXPECT_EQ(mgr->Synonymy(c1, g1, c2, g_disjoint), SynonymyKind::kNone);

  OverlapReport rep = mgr->Compare(c1, g1, c2, g_partial);
  EXPECT_EQ(rep.shared, std::vector<Oid>{s2});
  EXPECT_EQ(rep.only_a, std::vector<Oid>{s1});
  EXPECT_EQ(rep.only_b, std::vector<Oid>{s3});
}

TEST_F(ClassificationFixture, SynonymousSpecimensUnifyBeforeComparison) {
  // Two herbaria hold duplicates of the same collection (instance synonyms,
  // thesis 4.5); groups circumscribed over either duplicate must compare
  // as full synonyms.
  Oid dup1 = NewSpecimen("x");
  Oid dup2 = NewSpecimen("x");
  ASSERT_TRUE(db.DeclareSynonym(dup1, dup2).ok());

  Oid c1 = mgr->Create("C1", "t1").value();
  Oid g1 = NewTaxon("G1");
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1, dup1).ok());
  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g2 = NewTaxon("G2");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g2, dup2).ok());

  EXPECT_EQ(mgr->Synonymy(c1, g1, c2, g2), SynonymyKind::kFull);
}

TEST_F(ClassificationFixture, CloneProducesIndependentCopy) {
  Oid c1 = mgr->Create("original", "t1").value();
  Oid g = NewTaxon("G");
  Oid s = NewSpecimen("x");
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g, s, "original reason").ok());

  auto c2 = mgr->Clone(c1, "revision", "t2", 2001);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ(mgr->Edges(c2.value()).size(), 1u);
  // Same classified objects...
  EXPECT_EQ(mgr->Parents(c2.value(), s), std::vector<Oid>{g});
  // ...but link attributes were copied,
  Oid copied_link = mgr->Edges(c2.value())[0];
  EXPECT_TRUE(db.GetLinkAttribute(copied_link, "motivation")
                  .value()
                  .Equals(Value::String("original reason")));
  // and edits to the copy do not affect the original.
  ASSERT_TRUE(mgr->RemoveEdge(c2.value(), copied_link).ok());
  EXPECT_EQ(mgr->Edges(c1).size(), 1u);
  EXPECT_EQ(mgr->Edges(c2.value()).size(), 0u);
}

TEST_F(ClassificationFixture, CloneSubtreeCopiesOnlyTheSubtree) {
  Oid src = mgr->Create("src", "t1").value();
  Oid root = NewTaxon("Root");
  Oid left = NewTaxon("Left");
  Oid right = NewTaxon("Right");
  Oid s1 = NewSpecimen("a");
  Oid s2 = NewSpecimen("b");
  ASSERT_TRUE(mgr->AddEdge(src, "placed_in", root, left).ok());
  ASSERT_TRUE(mgr->AddEdge(src, "placed_in", root, right).ok());
  ASSERT_TRUE(mgr->AddEdge(src, "classified_in", left, s1, "why").ok());
  ASSERT_TRUE(mgr->AddEdge(src, "classified_in", right, s2).ok());

  Oid dst = mgr->Create("dst", "t2").value();
  ASSERT_TRUE(mgr->CloneSubtree(src, left, dst).ok());
  // Only the left subtree's edge came across.
  EXPECT_EQ(mgr->Edges(dst).size(), 1u);
  EXPECT_EQ(mgr->Leaves(dst, left), std::vector<Oid>{s1});
  // Attributes were copied.
  EXPECT_TRUE(db.GetLinkAttribute(mgr->Edges(dst)[0], "motivation")
                  .value()
                  .Equals(Value::String("why")));
  // The source is untouched.
  EXPECT_EQ(mgr->Edges(src).size(), 4u);
}

TEST_F(ClassificationFixture, AlignFindsBestMatches) {
  Oid s1 = NewSpecimen("1");
  Oid s2 = NewSpecimen("2");
  Oid s3 = NewSpecimen("3");
  Oid s4 = NewSpecimen("4");

  Oid c1 = mgr->Create("C1", "t1").value();
  Oid g1a = NewTaxon("G1a");  // {s1, s2}
  Oid g1b = NewTaxon("G1b");  // {s3, s4}
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1a, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1a, s2).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1b, s3).ok());
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1b, s4).ok());

  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g2a = NewTaxon("G2a");  // {s1, s2} — full match of g1a
  Oid g2b = NewTaxon("G2b");  // {s3} — partial match of g1b
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g2a, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g2a, s2).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g2b, s3).ok());

  std::vector<ClassificationManager::Alignment> alignment =
      mgr->Align(c1, c2);
  ASSERT_EQ(alignment.size(), 2u);  // the two internal nodes of c1
  for (const auto& entry : alignment) {
    if (entry.taxon_a == g1a) {
      EXPECT_EQ(entry.taxon_b, g2a);
      EXPECT_DOUBLE_EQ(entry.similarity, 1.0);
      EXPECT_EQ(entry.kind, SynonymyKind::kFull);
    } else {
      EXPECT_EQ(entry.taxon_a, g1b);
      EXPECT_EQ(entry.taxon_b, g2b);
      EXPECT_DOUBLE_EQ(entry.similarity, 0.5);  // {s3} of {s3,s4}
      EXPECT_EQ(entry.kind, SynonymyKind::kProParte);
    }
  }
}

TEST_F(ClassificationFixture, AlignReportsUnmatchedGroups) {
  Oid s1 = NewSpecimen("1");
  Oid s2 = NewSpecimen("2");
  Oid c1 = mgr->Create("C1", "t1").value();
  Oid g1 = NewTaxon("G1");
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g1, s1).ok());
  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g2 = NewTaxon("G2");
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g2, s2).ok());
  auto alignment = mgr->Align(c1, c2);
  ASSERT_EQ(alignment.size(), 1u);
  EXPECT_EQ(alignment[0].taxon_b, kNullOid);
  EXPECT_EQ(alignment[0].kind, SynonymyKind::kNone);
}

TEST_F(ClassificationFixture, DiffAgainstARevisedClone) {
  Oid original = mgr->Create("original", "t1").value();
  Oid g = NewTaxon("G");
  Oid s1 = NewSpecimen("a");
  Oid s2 = NewSpecimen("b");
  Oid kept = mgr->AddEdge(original, "classified_in", g, s1).value();
  Oid dropped = mgr->AddEdge(original, "classified_in", g, s2).value();
  Oid revision = mgr->Clone(original, "revision", "t2").value();
  // The revision drops s2 and adds s3.
  for (Oid lid : mgr->Edges(revision)) {
    if (db.GetLink(lid)->target == s2) {
      ASSERT_TRUE(mgr->RemoveEdge(revision, lid).ok());
    }
  }
  Oid s3 = NewSpecimen("c");
  Oid added = mgr->AddEdge(revision, "classified_in", g, s3).value();

  ClassificationManager::DiffReport diff = mgr->Diff(original, revision);
  EXPECT_EQ(diff.only_a, std::vector<Oid>{dropped});
  EXPECT_EQ(diff.only_b, std::vector<Oid>{added});
  // Identical classifications diff empty.
  ClassificationManager::DiffReport self_diff =
      mgr->Diff(original, original);
  EXPECT_TRUE(self_diff.only_a.empty());
  EXPECT_TRUE(self_diff.only_b.empty());
  (void)kept;
}

TEST_F(ClassificationFixture, DestroyRemovesEdgesButNotObjects) {
  Oid c = mgr->Create("C", "t1").value();
  Oid g = NewTaxon("G");
  Oid s = NewSpecimen("x");
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", g, s).ok());
  ASSERT_TRUE(mgr->Destroy(c).ok());
  EXPECT_FALSE(mgr->IsClassification(c));
  EXPECT_NE(db.GetObject(g), nullptr);
  EXPECT_NE(db.GetObject(s), nullptr);
  EXPECT_EQ(db.link_count(), 0u);
}

TEST_F(ClassificationFixture, IsHierarchyDetectsCycles) {
  Oid c = mgr->Create("C", "t1").value();
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  Oid d = NewTaxon("D");
  ASSERT_TRUE(mgr->AddEdge(c, "placed_in", a, b).ok());
  ASSERT_TRUE(mgr->AddEdge(c, "placed_in", b, d).ok());
  EXPECT_TRUE(mgr->IsHierarchy(c));
  ASSERT_TRUE(mgr->AddEdge(c, "placed_in", d, a).ok());
  EXPECT_FALSE(mgr->IsHierarchy(c));
}

TEST_F(ClassificationFixture, RemoveEdgeValidatesOwnership) {
  Oid c1 = mgr->Create("C1", "t1").value();
  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g = NewTaxon("G");
  Oid s = NewSpecimen("x");
  Oid l = mgr->AddEdge(c1, "classified_in", g, s).value();
  EXPECT_EQ(mgr->RemoveEdge(c2, l).code(), Status::Code::kNotFound);
  EXPECT_TRUE(mgr->RemoveEdge(c1, l).ok());
}

TEST_F(ClassificationFixture, AbortRestoresClassificationEdges) {
  Oid c = mgr->Create("C", "t1").value();
  Oid g = NewTaxon("G");
  Oid s = NewSpecimen("x");
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", g, s).ok());
  ASSERT_TRUE(db.Begin().ok());
  Oid s2 = NewSpecimen("y");
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", g, s2).ok());
  EXPECT_EQ(mgr->Edges(c).size(), 2u);
  ASSERT_TRUE(db.Abort().ok());
  // The context index was rolled back with the data.
  EXPECT_EQ(mgr->Edges(c).size(), 1u);
  EXPECT_EQ(mgr->Leaves(c, g), std::vector<Oid>{s});
}

}  // namespace
}  // namespace prometheus
