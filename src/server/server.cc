#include "server/server.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "cache/result_size.h"
#include "common/exec_context.h"
#include "core/read_view.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_profiler.h"
#include "query/system_catalog.h"

namespace prometheus::server {

namespace {

/// Per-request-type latency histograms plus the executed/error counters
/// the kStats snapshot surfaces; registered once, pointers cached.
struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* timed_out;
  obs::Counter* unavailable;
  obs::Gauge* degraded;
  obs::Histogram* ping_micros;
  obs::Histogram* query_micros;
  obs::Histogram* mutation_micros;
  obs::Histogram* stats_micros;
  obs::Histogram* health_micros;
  obs::Histogram* cache_micros;

  obs::Histogram* ForKind(RequestKind kind) const {
    switch (kind) {
      case RequestKind::kPing:
        return ping_micros;
      case RequestKind::kQuery:
        return query_micros;
      case RequestKind::kMutation:
        return mutation_micros;
      case RequestKind::kStats:
        return stats_micros;
      case RequestKind::kHealth:
        return health_micros;
      case RequestKind::kCacheControl:
        return cache_micros;
    }
    return ping_micros;
  }

  static const ServerMetrics& Get() {
    static const ServerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      const char* help = "Request latency on the worker (microseconds)";
      ServerMetrics sm;
      sm.requests = reg.GetCounter("server_requests_total",
                                   "Requests executed by the server");
      sm.errors = reg.GetCounter(
          "server_request_errors_total",
          "Requests that executed with a non-OK status");
      sm.timed_out = reg.GetCounter(
          "server_requests_timed_out_total",
          "Requests resolved kTimedOut (at admission, at dequeue or "
          "mid-execution)");
      sm.unavailable = reg.GetCounter(
          "server_requests_unavailable_total",
          "Mutations refused while in degraded read-only mode");
      sm.degraded = reg.GetGauge(
          "server_degraded",
          "1 while in degraded read-only mode (store durability broken)");
      sm.ping_micros =
          reg.GetHistogram("server_request_micros{type=\"ping\"}", help);
      sm.query_micros =
          reg.GetHistogram("server_request_micros{type=\"query\"}", help);
      sm.mutation_micros =
          reg.GetHistogram("server_request_micros{type=\"mutation\"}", help);
      sm.stats_micros =
          reg.GetHistogram("server_request_micros{type=\"stats\"}", help);
      sm.health_micros =
          reg.GetHistogram("server_request_micros{type=\"health\"}", help);
      sm.cache_micros =
          reg.GetHistogram("server_request_micros{type=\"cache\"}", help);
      return sm;
    }();
    return m;
  }
};

/// Flattens a span tree into the {stage, micros, rows, detail} table a
/// PROFILE response carries: one row per node, nesting shown by indenting
/// the stage name.
void FlattenTrace(const obs::TraceNode& node, int depth,
                  pool::ResultSet* out) {
  std::vector<Value> row;
  row.push_back(
      Value::String(std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                    node.name));
  row.push_back(Value::Double(node.micros));
  row.push_back(node.rows >= 0 ? Value::Int(node.rows) : Value::Null());
  row.push_back(Value::String(node.detail));
  out->rows.push_back(std::move(row));
  for (const obs::TraceNode& child : node.children) {
    FlattenTrace(child, depth + 1, out);
  }
}

pool::ResultSet ProfileTable(const obs::TraceNode& trace) {
  pool::ResultSet table;
  table.columns = {"stage", "micros", "rows", "detail"};
  FlattenTrace(trace, 0, &table);
  return table;
}

const char* KindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kQuery:
      return "query";
    case RequestKind::kMutation:
      return "mutation";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kHealth:
      return "health";
    case RequestKind::kCacheControl:
      return "cache";
  }
  return "unknown";
}

const char* CacheOpName(CacheOp op) {
  switch (op) {
    case CacheOp::kStats:
      return "stats";
    case CacheOp::kClear:
      return "clear";
    case CacheOp::kDisable:
      return "off";
    case CacheOp::kEnable:
      return "on";
  }
  return "unknown";
}

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "unknown";
}

const char* CodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk:
      return "ok";
    case ResponseCode::kRejected:
      return "rejected";
    case ResponseCode::kShutdown:
      return "shutdown";
    case ResponseCode::kTimedOut:
      return "timed_out";
    case ResponseCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

/// What the flight recorder stores as the "what ran" column: the (bounded)
/// query text, or the mutation kind.
std::string FlightDetail(const Request& req) {
  switch (req.kind) {
    case RequestKind::kQuery: {
      constexpr std::size_t kMaxDetail = 200;
      if (req.query.size() <= kMaxDetail) return req.query;
      return req.query.substr(0, kMaxDetail) + "…";
    }
    case RequestKind::kMutation:
      switch (req.mutation.kind) {
        case MutationOp::Kind::kCreateObject:
          return "create " + req.mutation.type_name;
        case MutationOp::Kind::kSetAttribute:
          return "set " + req.mutation.attribute;
        case MutationOp::Kind::kDeleteObject:
          return "delete object";
        case MutationOp::Kind::kCreateLink:
          return "link " + req.mutation.type_name;
        case MutationOp::Kind::kSetLinkAttribute:
          return "set link " + req.mutation.attribute;
        case MutationOp::Kind::kDeleteLink:
          return "delete link";
        case MutationOp::Kind::kCustom:
          return "custom";
        case MutationOp::Kind::kCheckpoint:
          return "checkpoint";
      }
      return "mutation";
    case RequestKind::kCacheControl:
      return std::string(".cache ") + CacheOpName(req.cache_op);
    default:
      return "";
  }
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string Server::Health::ToJson() const {
  std::string out = "{";
  out += "\"server_epoch\":" + std::to_string(server_epoch);
  out += ",\"degraded\":" + std::string(degraded ? "true" : "false");
  out += ",\"read_only\":" + std::string(read_only ? "true" : "false");
  if (!replication.empty()) out += ",\"replication\":" + replication;
  out += ",\"store_status\":\"" + JsonEscape(store_status.ToString()) + "\"";
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"queue_capacity\":" + std::to_string(queue_capacity);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"estimated_wait_micros\":" +
         std::to_string(static_cast<std::int64_t>(estimated_wait_micros));
  out += ",\"accepted\":" + std::to_string(stats.accepted);
  out += ",\"rejected\":" + std::to_string(stats.rejected);
  out += ",\"timed_out\":" + std::to_string(stats.timed_out);
  out += ",\"shed\":" + std::to_string(stats.shed);
  out += ",\"unavailable\":" + std::to_string(stats.unavailable);
  out += ",\"errors\":" + std::to_string(stats.errors);
  out += ",\"sessions_active\":" + std::to_string(sessions_active);
  out += "}";
  return out;
}

Server::Server(Database* db, Options options)
    : db_(db),
      query_cache_(options.cache),
      engine_(db, options.indexes),
      slow_log_(options.slow_query_micros, options.slow_query_capacity),
      flight_recorder_(options.flight_recorder_capacity),
      executor_(ThreadPoolExecutor::Options{options.worker_threads,
                                            options.queue_capacity,
                                            options.admission}),
      sessions_(this),
      store_(options.store),
      indexes_(options.indexes),
      read_only_(options.read_only),
      writer_wait_warn_micros_(options.writer_wait_warn_micros),
      replication_probe_(std::move(options.replication_probe)),
      replication_rows_(std::move(options.replication_rows)),
      server_epoch_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())) {
  // Scrape targets need the restart-detection gauges from the first
  // exposition on; registering here keeps every embedding in sync.
  obs::RegisterProcessMetrics();
  // Construction is single-threaded: reading the store directly is safe
  // here (workers exist but have no jobs yet).
  if (store_ != nullptr) {
    store_status_ = store_->status();
    if (!store_status_.ok()) {
      degraded_.store(true, std::memory_order_release);
    }
  }
  ServerMetrics::Get().degraded->Set(degraded_.load() ? 1 : 0);
  // Cached plans embed schema analysis; any committed definition makes
  // them stale. Registration happens here while construction is still
  // single-threaded (EventBus registration is not thread-safe); the
  // listener body is one relaxed atomic add, safe to run under the write
  // guard. Result entries need no listener — epoch validation covers them.
  engine_.set_plan_cache(&query_cache_.plans());
  // The virtual system catalog: registration is single-threaded here; the
  // providers run on query workers against internally synchronized state.
  RegisterSystemCatalog();
  engine_.set_system_catalog(&catalog_);
  ddl_listener_ = db_->bus().Subscribe([this](const Event& e) {
    switch (e.kind) {
      case EventKind::kAfterDefineClass:
      case EventKind::kAfterDefineTemplate:
      case EventKind::kAfterDefineRelationship:
        query_cache_.OnSchemaChange();
        break;
      default:
        break;
    }
    return Status::Ok();
  });
  // Engage MVCC publication now, while construction is still
  // single-threaded: the first AcquireSnapshot pays the full materialized
  // build (it quiesces via a ReadGuard), and doing it here keeps that cost
  // off the first query's latency — and off any code path that might
  // otherwise first acquire while a writer churns.
  (void)db_->AcquireSnapshot();
}

namespace {

/// Rough in-memory footprint of one stored attribute value, for the
/// `sys.storage` approx_bytes column. An estimate, not an audit: strings
/// and collections dominate, fixed-size payloads count as one Value slot.
std::size_t ApproxValueBytes(const Value& v) {
  std::size_t n = sizeof(Value);
  switch (v.type()) {
    case ValueType::kString:
      n += v.AsString().size();
      break;
    case ValueType::kList:
      for (const Value& e : v.AsList()) n += ApproxValueBytes(e);
      break;
    case ValueType::kStruct:
      for (const auto& [name, field] : v.AsStruct()) {
        n += name.size() + ApproxValueBytes(field);
      }
      break;
    default:
      break;
  }
  return n;
}

/// The read view catalog providers resolve against: the thread's installed
/// view when a query pinned a snapshot, else the live database. Matches
/// QueryEngine::view() so `sys.classes` / `sys.storage` rows are computed
/// under the same MVCC cut as the query's other ranges.
const ReadView& ProviderView(const Database* db) {
  const ReadView* v = CurrentReadView();
  return v != nullptr ? *v : static_cast<const ReadView&>(*db);
}

Value StringList(const std::vector<std::string>& items) {
  Value::List out;
  out.reserve(items.size());
  for (const std::string& s : items) out.push_back(Value::String(s));
  return Value::MakeList(std::move(out));
}

}  // namespace

void Server::RegisterSystemCatalog() {
  using pool::SystemCatalog;
  // sys.catalog — the catalog's own listing (registered first so it can
  // describe itself; materialization runs after every Register call).
  catalog_.Register(
      "sys.catalog", "Every sys.* class: name, help, attributes",
      {"class", "help", "attributes"}, [this]() {
        std::vector<Value> rows;
        for (const SystemCatalog::ClassInfo& info : catalog_.ListClasses()) {
          rows.push_back(Value::MakeStruct({{"class", Value::String(info.name)},
                                            {"help", Value::String(info.help)},
                                            {"attributes",
                                             StringList(info.attributes)}}));
        }
        return rows;
      });

  // sys.metrics — the registry flattened to one row per instrument. Every
  // row carries every field; inapplicable ones are null (counters have no
  // percentiles, histograms no single value).
  catalog_.Register(
      "sys.metrics",
      "Every registered metric: counters, gauges and histogram summaries",
      {"name", "kind", "value", "count", "sum", "p50", "p95", "p99", "help"},
      []() {
        obs::UpdateProcessUptime();
        const obs::MetricsSnapshot snap = obs::Registry().Snapshot();
        std::vector<Value> rows;
        rows.reserve(snap.counters.size() + snap.gauges.size() +
                     snap.histograms.size());
        for (const auto& c : snap.counters) {
          rows.push_back(Value::MakeStruct(
              {{"name", Value::String(c.name)},
               {"kind", Value::String("counter")},
               {"value", Value::Int(static_cast<std::int64_t>(c.value))},
               {"count", Value::Null()},
               {"sum", Value::Null()},
               {"p50", Value::Null()},
               {"p95", Value::Null()},
               {"p99", Value::Null()},
               {"help", Value::String(c.help)}}));
        }
        for (const auto& g : snap.gauges) {
          rows.push_back(Value::MakeStruct({{"name", Value::String(g.name)},
                                            {"kind", Value::String("gauge")},
                                            {"value", Value::Int(g.value)},
                                            {"count", Value::Null()},
                                            {"sum", Value::Null()},
                                            {"p50", Value::Null()},
                                            {"p95", Value::Null()},
                                            {"p99", Value::Null()},
                                            {"help", Value::String(g.help)}}));
        }
        for (const auto& h : snap.histograms) {
          rows.push_back(Value::MakeStruct(
              {{"name", Value::String(h.name)},
               {"kind", Value::String("histogram")},
               {"value", Value::Null()},
               {"count",
                Value::Int(static_cast<std::int64_t>(h.hist.count))},
               {"sum", Value::Double(h.hist.sum)},
               {"p50", Value::Double(h.hist.Percentile(50))},
               {"p95", Value::Double(h.hist.Percentile(95))},
               {"p99", Value::Double(h.hist.Percentile(99))},
               {"help", Value::String(h.help)}}));
        }
        return rows;
      });

  // sys.requests — the flight recorder, oldest first.
  catalog_.Register(
      "sys.requests",
      "The flight recorder: the last N completed requests, oldest first",
      {"request_id", "trace_id", "type", "priority", "code", "ok", "executed",
       "epoch", "queue_wait_micros", "total_micros", "guard_wait_micros",
       "execute_micros", "journal_micros", "detail"},
      [this]() {
        std::vector<Value> rows;
        for (const obs::FlightRecorder::Entry& e :
             flight_recorder_.Snapshot()) {
          rows.push_back(Value::MakeStruct(
              {{"request_id",
                Value::Int(static_cast<std::int64_t>(e.request_id))},
               {"trace_id", Value::String(e.trace_id)},
               {"type", Value::String(e.type)},
               {"priority", Value::String(e.priority)},
               {"code", Value::String(e.code)},
               {"ok", Value::Bool(e.ok)},
               {"executed", Value::Bool(e.executed)},
               {"epoch", Value::Int(static_cast<std::int64_t>(e.epoch))},
               {"queue_wait_micros", Value::Double(e.queue_wait_micros)},
               {"total_micros", Value::Double(e.total_micros)},
               {"guard_wait_micros", Value::Double(e.guard_wait_micros)},
               {"execute_micros", Value::Double(e.execute_micros)},
               {"journal_micros", Value::Double(e.journal_micros)},
               {"detail", Value::String(e.detail)}}));
        }
        return rows;
      });

  // sys.contention — cumulative wait-state statistics. Cumulative only:
  // a catalog read must never consume the windowed delta the HTTP route
  // and the shell share.
  catalog_.Register(
      "sys.contention",
      "Cumulative wait-state statistics (the contention report)",
      {"state", "count", "total_micros", "mean_micros", "p50_micros",
       "p95_micros", "p99_micros"},
      []() {
        std::vector<Value> rows;
        for (const obs::ContentionStat& s : obs::SnapshotContention()) {
          rows.push_back(Value::MakeStruct(
              {{"state", Value::String(s.state)},
               {"count", Value::Int(static_cast<std::int64_t>(s.count))},
               {"total_micros", Value::Double(s.total_micros)},
               {"mean_micros", Value::Double(s.mean_micros)},
               {"p50_micros", Value::Double(s.p50_micros)},
               {"p95_micros", Value::Double(s.p95_micros)},
               {"p99_micros", Value::Double(s.p99_micros)}}));
        }
        return rows;
      });

  // sys.cache — the canonical QueryCacheStats::Fields() rows, shared with
  // `.cache stats` so the two surfaces can never drift.
  catalog_.Register(
      "sys.cache", "Query-cache statistics (both tiers), field/value rows",
      {"field", "value"}, [this]() {
        std::vector<Value> rows;
        for (auto& [field, value] : query_cache_.Stats().Fields()) {
          rows.push_back(
              Value::MakeStruct({{"field", Value::String(field)},
                                 {"value", Value::String(std::move(value))}}));
        }
        return rows;
      });

  // sys.replication — structured lag rows; empty on a leader/standalone.
  catalog_.Register(
      "sys.replication",
      "Replication link state (one row per link; empty when not replicating)",
      {"role", "connected", "caught_up", "generation", "journal_seq", "offset",
       "records_applied", "lag_records", "lag_bytes", "reconnects",
       "rebootstraps", "corrupt_frames", "polls"},
      [this]() {
        return replication_rows_ ? replication_rows_()
                                 : std::vector<Value>{};
      });

  // sys.snapshots — MVCC retention/pinning, one row.
  catalog_.Register(
      "sys.snapshots",
      "MVCC snapshot state: retained versions, live/pinned snapshots",
      {"retained_versions", "live_snapshots", "pinned_snapshots",
       "oldest_pinned_epoch", "epoch"},
      [this]() {
        std::vector<Value> rows;
        rows.push_back(Value::MakeStruct(
            {{"retained_versions",
              Value::Int(static_cast<std::int64_t>(mvcc::RetainedVersions()))},
             {"live_snapshots",
              Value::Int(static_cast<std::int64_t>(mvcc::LiveSnapshots()))},
             {"pinned_snapshots",
              Value::Int(static_cast<std::int64_t>(db_->pinned_snapshots()))},
             {"oldest_pinned_epoch",
              Value::Int(
                  static_cast<std::int64_t>(db_->oldest_pinned_epoch()))},
             {"epoch", Value::Int(static_cast<std::int64_t>(
                           ProviderView(db_).epoch()))}}));
        return rows;
      });

  // sys.classes — the schema, through the query's read view (a catalog
  // query joining sys.classes against real extents sees one MVCC cut).
  catalog_.Register(
      "sys.classes", "Every class definition in the schema",
      {"name", "abstract", "supers", "subclasses", "attributes"}, [this]() {
        const ReadView& view = ProviderView(db_);
        std::vector<Value> rows;
        for (const ClassDef* cls : view.classes()) {
          std::vector<std::string> supers, subs, attrs;
          for (const ClassDef* s : cls->supers()) supers.push_back(s->name());
          for (const ClassDef* s : cls->subclasses()) {
            subs.push_back(s->name());
          }
          for (const AttributeDef& a : cls->attributes()) {
            attrs.push_back(a.name);
          }
          rows.push_back(
              Value::MakeStruct({{"name", Value::String(cls->name())},
                                 {"abstract", Value::Bool(cls->is_abstract())},
                                 {"supers", StringList(supers)},
                                 {"subclasses", StringList(subs)},
                                 {"attributes", StringList(attrs)}}));
        }
        return rows;
      });

  // sys.storage — per-class extent statistics: deep cardinality, rough
  // bytes, index coverage, and the engine's lock-free heat counters. The
  // evidence base the ROADMAP's partitioned-extents planner will consume.
  catalog_.Register(
      "sys.storage",
      "Per-class extent statistics: cardinality, approx bytes, index "
      "coverage, scan/index heat",
      {"class", "rows", "approx_bytes", "indexes", "scans", "index_hits",
       "rows_scanned"},
      [this]() {
        const ReadView& view = ProviderView(db_);
        std::vector<pool::ExtentHeat::Counters> heat =
            pool::ExtentHeat::Instance().Snapshot();
        auto heat_for = [&heat](const std::string& name) {
          for (const pool::ExtentHeat::Counters& c : heat) {
            if (c.class_name == name) return c;
          }
          return pool::ExtentHeat::Counters{};
        };
        std::vector<Value> rows;
        for (const ClassDef* cls : view.classes()) {
          const std::vector<Oid> extent = view.Extent(cls->name());
          std::size_t bytes = 0;
          for (Oid oid : extent) {
            const Object* obj = view.GetObject(oid);
            if (obj == nullptr) continue;
            bytes += sizeof(Object) +
                     (obj->out_links.size() + obj->in_links.size()) *
                         sizeof(Oid);
            for (const auto& [name, value] : obj->attrs) {
              bytes += name.size() + ApproxValueBytes(value);
            }
          }
          const pool::ExtentHeat::Counters c = heat_for(cls->name());
          std::vector<std::string> indexed;
          if (indexes_ != nullptr) {
            indexed = indexes_->IndexedAttributes(cls->name());
          }
          rows.push_back(Value::MakeStruct(
              {{"class", Value::String(cls->name())},
               {"rows", Value::Int(static_cast<std::int64_t>(extent.size()))},
               {"approx_bytes",
                Value::Int(static_cast<std::int64_t>(bytes))},
               {"indexes", StringList(indexed)},
               {"scans", Value::Int(static_cast<std::int64_t>(c.scans))},
               {"index_hits",
                Value::Int(static_cast<std::int64_t>(c.index_hits))},
               {"rows_scanned",
                Value::Int(static_cast<std::int64_t>(c.rows_scanned))}}));
        }
        return rows;
      });
}

Server::~Server() { Shutdown(/*drain=*/true); }

void Server::Shutdown(bool drain) {
  // Stop admission first so sessions racing Shutdown resolve as kShutdown
  // or kRejected, never hang.
  stopped_.store(true, std::memory_order_release);
  sessions_.CloseAll();
  executor_.Shutdown(drain);
  // Workers are joined; bus registration is single-threaded again. This
  // must happen here, not in the destructor: callers may tear down the
  // database between an explicit Shutdown() and ~Server, so the first
  // shutdown is the last point the bus is guaranteed alive.
  if (ddl_listener_ != 0) {
    db_->bus().Unsubscribe(ddl_listener_);
    ddl_listener_ = 0;
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = executor_.rejected();
  s.queries = queries_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.shed = executor_.shed();
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  return s;
}

Server::Health Server::health() const {
  Health h;
  h.server_epoch = server_epoch_;
  h.degraded = degraded_.load(std::memory_order_acquire);
  h.read_only = read_only_;
  if (replication_probe_) h.replication = replication_probe_();
  {
    std::lock_guard<std::mutex> lock(store_status_mu_);
    h.store_status = store_status_;
  }
  h.queue_depth = executor_.queue_depth();
  h.queue_capacity = executor_.queue_capacity();
  h.workers = executor_.threads();
  h.estimated_wait_micros = executor_.admission().EstimatedQueueWaitMicros(
      h.queue_depth, h.workers);
  h.stats = stats();
  h.sessions_active = sessions_.active();
  return h;
}

void Server::ObserveStoreStatus() {
  if (store_ == nullptr) return;
  Status st = store_->status();
  {
    std::lock_guard<std::mutex> lock(store_status_mu_);
    store_status_ = st;
  }
  if (!st.ok() && !degraded_.exchange(true, std::memory_order_acq_rel)) {
    ServerMetrics::Get().degraded->Set(1);
  }
}

std::future<Response> Server::Enqueue(Request req) {
  const RequestId id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // Trace context: accept the caller's id or assign one. The epoch prefix
  // keeps ids unique across restarts (and across the servers of a fleet),
  // so `/debug/requests?id=` lookups never alias.
  if (req.trace_id.empty()) {
    req.trace_id = std::to_string(server_epoch_) + "-" + std::to_string(id);
  }
  const bool timing = obs::MetricsEnabled() || flight_recorder_.enabled();
  std::chrono::steady_clock::time_point admit_start;
  if (timing) admit_start = std::chrono::steady_clock::now();
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  auto respond_unrun = [promise, id, trace_id = req.trace_id](
                           ResponseCode code, Status status) {
    Response resp;
    resp.id = id;
    resp.trace_id = trace_id;
    resp.code = code;
    resp.status = std::move(status);
    promise->set_value(std::move(resp));
  };

  if (stopped_.load(std::memory_order_acquire)) {
    respond_unrun(ResponseCode::kShutdown,
                  Status::FailedPrecondition("server is shut down"));
    return future;
  }

  // Deadline already in the past: fail before touching the queue.
  if (req.deadline != kNoDeadline && DeadlineClock::now() >= req.deadline) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().timed_out->Increment();
    respond_unrun(
        ResponseCode::kTimedOut,
        Status::DeadlineExceeded("deadline expired before admission"));
    return future;
  }

  // Result-cache fast path: a hit resolves right here on the submitting
  // thread — no queue, no worker, no epoch guard. Placed after the
  // deadline check (an expired request stays expired) and before the
  // read-only / degraded refusals, which only concern mutations: cached
  // reads keep serving on a follower and in degraded mode.
  if (req.kind == RequestKind::kQuery) {
    Response hit;
    if (TryServeFromCache(id, req, &hit)) {
      promise->set_value(std::move(hit));
      return future;
    }
  }

  // Follower role: every mutation is refused — including kCheckpoint,
  // which on a follower would race the replication applier's own file
  // management. There is no re-arm path; promotion replaces the server.
  if (read_only_ && req.kind == RequestKind::kMutation) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().unavailable->Increment();
    respond_unrun(ResponseCode::kUnavailable,
                  Status::Unavailable(
                      "read-only replica: mutations must go to the leader"));
    return future;
  }

  // Degraded read-only mode: fail mutations fast — except the checkpoint
  // that re-arms the store.
  if (req.kind == RequestKind::kMutation &&
      req.mutation.kind != MutationOp::Kind::kCheckpoint &&
      degraded_.load(std::memory_order_acquire)) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().unavailable->Increment();
    Status store_status;
    {
      std::lock_guard<std::mutex> lock(store_status_mu_);
      store_status = store_status_;
    }
    respond_unrun(ResponseCode::kUnavailable,
                  Status::Unavailable(
                      "degraded read-only mode (durability failure: " +
                      store_status.ToString() +
                      "); mutations refused until a checkpoint re-arms "
                      "the store"));
    return future;
  }

  // The request moves into the job via shared_ptr: std::function requires
  // copyable targets, and a Request (its closure, its inits) should not be
  // deep-copied per hop.
  auto boxed = std::make_shared<Request>(std::move(req));
  const auto enqueued_at = std::chrono::steady_clock::now();
  ThreadPoolExecutor::Job job =
      [this, id, promise, boxed,
       enqueued_at](ThreadPoolExecutor::Disposition d) {
        // With timing fully disabled the job path pays one branch, not a
        // clock read.
        const bool job_timing =
            obs::MetricsEnabled() || flight_recorder_.enabled();
        const double queue_wait_micros =
            job_timing ? std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - enqueued_at)
                             .count()
                       : 0;
        switch (d) {
          case ThreadPoolExecutor::Disposition::kRun:
            obs::WaitInstruments::Get().queue->Observe(queue_wait_micros);
            promise->set_value(Execute(id, *boxed, queue_wait_micros));
            return;
          case ThreadPoolExecutor::Disposition::kShutdown: {
            Response resp;
            resp.id = id;
            resp.trace_id = boxed->trace_id;
            resp.code = ResponseCode::kShutdown;
            resp.status =
                Status::FailedPrecondition("server shut down before execution");
            RecordFlight(id, *boxed, resp, queue_wait_micros, 0);
            promise->set_value(std::move(resp));
            return;
          }
          case ThreadPoolExecutor::Disposition::kExpired: {
            timed_out_.fetch_add(1, std::memory_order_relaxed);
            ServerMetrics::Get().timed_out->Increment();
            Response resp;
            resp.id = id;
            resp.trace_id = boxed->trace_id;
            resp.code = ResponseCode::kTimedOut;
            resp.status = Status::DeadlineExceeded(
                "deadline expired while queued (shed at dequeue)");
            RecordFlight(id, *boxed, resp, queue_wait_micros, 0);
            promise->set_value(std::move(resp));
            return;
          }
          case ThreadPoolExecutor::Disposition::kShed: {
            Response resp;
            resp.id = id;
            resp.trace_id = boxed->trace_id;
            resp.code = ResponseCode::kRejected;
            resp.status = Status::FailedPrecondition(
                "evicted from the work queue by higher-priority work");
            RecordFlight(id, *boxed, resp, queue_wait_micros, 0);
            promise->set_value(std::move(resp));
            return;
          }
        }
      };

  ThreadPoolExecutor::JobInfo info;
  info.priority = boxed->priority;
  info.deadline = boxed->deadline;
  switch (executor_.Submit(std::move(job), info)) {
    case ThreadPoolExecutor::Admission::kAccepted:
      break;
    case ThreadPoolExecutor::Admission::kQueueFull:
      respond_unrun(
          ResponseCode::kRejected,
          Status::FailedPrecondition("work queue full (backpressure)"));
      return future;
    case ThreadPoolExecutor::Admission::kWouldExpire:
      respond_unrun(ResponseCode::kRejected,
                    Status::FailedPrecondition(
                        "estimated queue wait exceeds the request deadline"));
      return future;
    case ThreadPoolExecutor::Admission::kShutdown:
      respond_unrun(ResponseCode::kShutdown,
                    Status::FailedPrecondition("server is shut down"));
      return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (timing && obs::MetricsEnabled()) {
    // Admission cost: deadline check, cache probe, mode refusal checks and
    // the executor's admission decision — everything before the queue.
    obs::WaitInstruments::Get().admission->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - admit_start)
            .count());
  }
  return future;
}

Response Server::Execute(RequestId id, const Request& req,
                         double queue_wait_micros) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Increment();
  // One explicit clock pair instead of a ScopedTimer: the elapsed value
  // feeds both the latency histogram and the flight recorder.
  const bool timing =
      obs::MetricsEnabled() || flight_recorder_.enabled();
  std::chrono::steady_clock::time_point start;
  // Per-request journal attribution: the journal adds its append/fsync
  // time into this thread-local slot while the request runs (the whole
  // request executes on this one worker thread), and the breakdown below
  // reads it back out — no context threading through the event bus.
  obs::ThreadWaitAccumulator& tw = obs::ThreadWait();
  if (timing) {
    start = std::chrono::steady_clock::now();
    tw.Reset();
  }
  Response resp;
  switch (req.kind) {
    case RequestKind::kPing:
      resp.id = id;
      resp.epoch = db_->epoch();
      break;
    case RequestKind::kQuery:
      resp = ExecuteQuery(id, req, queue_wait_micros);
      queries_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kMutation:
      resp = ExecuteMutation(id, req);
      mutations_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kStats:
      resp = ExecuteStats(id, req);
      break;
    case RequestKind::kHealth:
      resp = ExecuteHealth(id, req);
      break;
    case RequestKind::kCacheControl:
      resp = ExecuteCacheControl(id, req);
      break;
  }
  resp.executed = true;
  resp.trace_id = req.trace_id;
  if (!resp.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
  }
  if (timing) {
    const double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    metrics.ForKind(req.kind)->Observe(micros);
    resp.waits.queue_micros = queue_wait_micros;
    resp.waits.journal_append_micros = tw.journal_append_micros;
    resp.waits.journal_sync_micros = tw.journal_sync_micros;
    // Pure execution = worker time minus the waits attributed elsewhere;
    // clamped because the guard/journal clocks are read independently of
    // the outer pair.
    double pure = micros - resp.waits.guard_wait_micros -
                  resp.waits.journal_append_micros -
                  resp.waits.journal_sync_micros;
    if (pure < 0) pure = 0;
    resp.waits.execute_micros = pure;
    obs::WaitInstruments::Get().execute->Observe(pure);
    RecordFlight(id, req, resp, queue_wait_micros, micros);
  }
  return resp;
}

void Server::RecordFlight(RequestId id, const Request& req,
                          const Response& resp, double queue_wait_micros,
                          double total_micros) {
  if (!flight_recorder_.enabled()) return;
  obs::FlightRecorder::Entry entry;
  entry.request_id = id;
  entry.trace_id = req.trace_id;
  entry.type = KindName(req.kind);
  entry.priority = PriorityName(req.priority);
  entry.code = CodeName(resp.code);
  entry.ok = resp.code == ResponseCode::kOk && resp.status.ok();
  entry.executed = resp.executed;
  entry.epoch = resp.epoch;
  entry.queue_wait_micros = queue_wait_micros;
  entry.total_micros = total_micros;
  entry.guard_wait_micros = resp.waits.guard_wait_micros;
  entry.execute_micros = resp.waits.execute_micros;
  entry.journal_micros =
      resp.waits.journal_append_micros + resp.waits.journal_sync_micros;
  entry.detail = resp.cache_hit ? "[cache hit] " + FlightDetail(req)
                                : FlightDetail(req);
  // PROFILE queries already rendered their span tree into the response;
  // keep it so `.recent` / /debug/requests shows per-stage structure.
  if (req.kind == RequestKind::kQuery && pool::IsProfileQuery(req.query)) {
    entry.stages = resp.text;
  }
  flight_recorder_.Record(std::move(entry));
}

bool Server::TryServeFromCache(RequestId id, const Request& req,
                               Response* out) {
  if (!query_cache_.results().enabled()) return false;
  // Catalog queries describe live server internals, not an epoch-stable
  // database state: a cached sys.* result would validate as fresh while
  // the metrics/requests/heat it rendered moved on. Bypass lookup (and,
  // symmetrically, insert in ExecuteQuery). A false positive here only
  // costs the bypass.
  if (pool::QueryTouchesCatalog(req.query)) return false;
  const bool profiled = pool::IsProfileQuery(req.query);
  // PROFILE and plain runs of the same select share one entry: the rows
  // are identical, only the rendering differs.
  const std::string key =
      profiled ? pool::StripProfileKeyword(req.query) : req.query;
  const bool timing = obs::MetricsEnabled() || flight_recorder_.enabled();
  std::chrono::steady_clock::time_point start;
  if (timing) start = std::chrono::steady_clock::now();
  // Lock-free validation: the entry serves only if its materialization
  // epoch is *still* the database's current epoch — every committed write
  // (local or replicated) bumps it, so a hit is indistinguishable from
  // re-executing under a fresh read guard.
  const std::uint64_t epoch = db_->epoch();
  std::shared_ptr<const pool::ResultSet> rows =
      query_cache_.results().Lookup(key, epoch);
  if (rows == nullptr) return false;

  Response resp;
  resp.id = id;
  resp.trace_id = req.trace_id;
  resp.epoch = epoch;
  resp.executed = true;
  resp.cache_checked = true;
  resp.cache_hit = true;
  double micros = 0;
  if (timing) {
    micros = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  }
  if (profiled) {
    // Synthesize the span tree a cached PROFILE run has: the whole query
    // collapses into one cache stage.
    obs::TraceNode trace("query");
    trace.detail = key;
    trace.micros = micros;
    trace.rows = static_cast<std::int64_t>(rows->rows.size());
    obs::TraceNode* span = trace.AddChild("cache");
    span->detail = "result hit (epoch " + std::to_string(epoch) +
                   "; parse, plan and execute skipped)";
    span->micros = micros;
    span->rows = trace.rows;
    resp.result = ProfileTable(trace);
    resp.text = obs::RenderTree(trace);
  } else {
    resp.result = *rows;
  }

  // A hit is an accepted, executed query — the books must not distinguish
  // it from one that took the worker path.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Increment();
  if (timing) {
    metrics.ForKind(RequestKind::kQuery)->Observe(micros);
    RecordFlight(id, req, resp, /*queue_wait_micros=*/0, micros);
  }
  *out = std::move(resp);
  return true;
}

Response Server::ExecuteCacheControl(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  // Touches only the server-side cache — no database lock, so it stays
  // answerable on a follower, in degraded mode, and under write pressure.
  resp.epoch = db_->epoch();
  switch (req.cache_op) {
    case CacheOp::kStats:
      break;
    case CacheOp::kClear:
      query_cache_.Clear();
      break;
    case CacheOp::kDisable:
      query_cache_.SetEnabled(false);
      break;
    case CacheOp::kEnable:
      query_cache_.SetEnabled(true);
      break;
  }
  // Every op reports the post-op state, so `.cache clear` shows the
  // emptied cache it produced.
  resp.text = query_cache_.StatsJson();
  // One canonical rendering shared with `sys.cache`: the rows here are
  // exactly QueryCacheStats::Fields(), so the two surfaces cannot drift.
  resp.result.columns = {"field", "value"};
  for (auto& [field, value] : query_cache_.Stats().Fields()) {
    resp.result.rows.push_back(
        {Value::String(field), Value::String(std::move(value))});
  }
  return resp;
}

Response Server::ExecuteQuery(RequestId id, const Request& req,
                              double queue_wait_micros) {
  Response resp;
  resp.id = id;
  // MVCC read path: pin the latest published snapshot and execute against
  // it with no shared lock at all. Writers proceed concurrently; this
  // query sees one consistent cut for its whole evaluation, and a writer
  // stalled mid-commit (e.g. in journal_sync) cannot delay it.
  SnapshotHandle snap = db_->AcquireSnapshot();
  resp.epoch = snap->epoch();
  resp.waits.guard_wait_micros = 0;  // readers take no guard under MVCC
  // The Enqueue-side lookup already missed (or the cache is off). Catalog
  // queries are never cached at all — their rows track live internals, so
  // both the lookup (TryServeFromCache) and the inserts below skip them.
  resp.cache_checked = query_cache_.results().enabled() &&
                       !pool::QueryTouchesCatalog(req.query);

  // Cooperative deadline: the engine checks this context per enumerated
  // binding, so a query that outlives its budget aborts instead of holding
  // the shared lock indefinitely.
  ExecutionContext ctx(req.deadline);
  const ExecutionContext* ctx_ptr = req.deadline != kNoDeadline ? &ctx : nullptr;

  auto finish_status = [this, &resp](const Status& st) {
    if (st.code() == Status::Code::kDeadlineExceeded) {
      resp.code = ResponseCode::kTimedOut;
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().timed_out->Increment();
    }
    resp.status = st;
  };

  if (pool::IsProfileQuery(req.query)) {
    Result<pool::QueryProfile> result =
        engine_.ExecuteProfiled(req.query, *snap, ctx_ptr);
    if (!result.ok()) {
      finish_status(result.status());
      return resp;
    }
    pool::QueryProfile& profile = result.value();
    resp.result = ProfileTable(profile.trace);
    resp.text = obs::RenderTree(profile.trace);
    if (slow_log_.ShouldRecord(profile.trace.micros)) {
      obs::SlowQueryLog::Entry slow;
      slow.request_id = id;
      slow.trace_id = req.trace_id;
      slow.query = pool::StripProfileKeyword(req.query);
      slow.micros = profile.trace.micros;
      slow.profile = resp.text;
      slow.queue_micros = queue_wait_micros;
      slow.guard_wait_micros = 0;
      slow.execute_micros = profile.trace.micros;
      slow_log_.Record(std::move(slow));
    }
    if (resp.cache_checked) {
      // Cache under the stripped key so the next plain run of the same
      // select hits too. The entry carries the epoch the query actually
      // ran against — the snapshot's, NOT the database's current epoch,
      // which a concurrent writer may have advanced since this query
      // pinned its snapshot. Stamping the current epoch here would launder
      // stale rows as fresh; stamping the snapshot epoch means a
      // committed-since write makes the entry validate as stale, exactly
      // as if the query re-ran.
      auto rows = std::make_shared<const pool::ResultSet>(
          std::move(profile.rows));
      query_cache_.results().Insert(pool::StripProfileKeyword(req.query),
                                    snap->epoch(), rows,
                                    cache::ApproxResultBytes(*rows));
    }
    return resp;
  }

  // The clock is only read when the slow-query log wants it.
  std::chrono::steady_clock::time_point start;
  if (slow_log_.enabled()) start = std::chrono::steady_clock::now();
  Result<pool::ResultSet> result = engine_.Execute(req.query, *snap, ctx_ptr);
  if (result.ok()) {
    resp.result = std::move(result).value();
    if (resp.cache_checked) {
      // Insert stamped with the snapshot epoch the rows were computed at
      // (see the profiled branch above for why the *current* epoch would
      // be wrong here). Failed or timed-out queries are never cached.
      auto rows = std::make_shared<const pool::ResultSet>(resp.result);
      query_cache_.results().Insert(req.query, snap->epoch(), rows,
                                    cache::ApproxResultBytes(*rows));
    }
  } else {
    finish_status(result.status());
  }
  if (slow_log_.enabled()) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (slow_log_.ShouldRecord(micros)) {
      // Re-plan for the log entry: the slow path has already paid far more
      // than an Explain costs, and the plan is the diagnostic that matters.
      // Explained against the same pinned snapshot so the logged plan
      // reflects the schema the query actually saw.
      Result<std::string> plan = [&] {
        ScopedReadView scope(snap.get());
        return engine_.Explain(req.query);
      }();
      obs::SlowQueryLog::Entry slow;
      slow.request_id = id;
      slow.trace_id = req.trace_id;
      slow.query = req.query;
      slow.micros = micros;
      slow.profile =
          plan.ok() ? std::move(plan).value() : plan.status().ToString();
      slow.queue_micros = queue_wait_micros;
      slow.guard_wait_micros = 0;
      slow.execute_micros = micros;
      slow_log_.Record(std::move(slow));
    }
  }
  return resp;
}

Response Server::ExecuteStats(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  resp.epoch = db_->epoch();
  // The registry synchronises itself; no database lock is needed, so a
  // stats probe never queues behind a long mutation's write guard.
  obs::UpdateProcessUptime();
  obs::MetricsSnapshot snap = obs::Registry().Snapshot();
  if (req.stats_format == StatsFormat::kPrometheusText) {
    // `server_epoch` rides along as its own gauge block so a scraper can
    // tell a restarted server from an in-place counter reset.
    resp.text = obs::RenderPrometheusText(snap) +
                "# HELP server_epoch Wall-clock microseconds at server "
                "construction; changes on restart\n"
                "# TYPE server_epoch gauge\n"
                "server_epoch " +
                std::to_string(server_epoch_) + "\n";
  } else {
    // The epoch rides as the object's first member so a scraper can tell a
    // restarted server from an in-place counter reset.
    resp.text = obs::RenderJson(snap, {{"server_epoch", server_epoch_}});
  }
  return resp;
}

Response Server::ExecuteHealth(RequestId id, const Request&) {
  Response resp;
  resp.id = id;
  resp.epoch = db_->epoch();
  // Reads only server-cached state (atomics + the cached store status) —
  // like kStats it never queues behind a writer's lock, so it stays
  // answerable exactly when things go wrong.
  Health h = health();
  resp.text = h.ToJson();
  resp.result.columns = {"field", "value"};
  auto row = [&resp](const char* k, std::string v) {
    resp.result.rows.push_back(
        {Value::String(k), Value::String(std::move(v))});
  };
  row("server_epoch", std::to_string(h.server_epoch));
  row("degraded", h.degraded ? "true" : "false");
  row("read_only", h.read_only ? "true" : "false");
  if (!h.replication.empty()) row("replication", h.replication);
  row("store_status", h.store_status.ToString());
  row("queue_depth", std::to_string(h.queue_depth) + "/" +
                         std::to_string(h.queue_capacity));
  row("estimated_wait_micros",
      std::to_string(static_cast<std::int64_t>(h.estimated_wait_micros)));
  row("accepted", std::to_string(h.stats.accepted));
  row("rejected", std::to_string(h.stats.rejected));
  row("timed_out", std::to_string(h.stats.timed_out));
  row("shed", std::to_string(h.stats.shed));
  row("unavailable", std::to_string(h.stats.unavailable));
  row("sessions_active", std::to_string(h.sessions_active));
  return resp;
}

Response Server::ExecuteMutation(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  Database::WriteGuard guard(*db_);
  resp.waits.guard_wait_micros = guard.wait_micros();
  resp.epoch = db_->epoch();
  // Writer-starvation watchdog: under MVCC readers never hold the guard,
  // so a long exclusive wait means a *writer* ahead of this one stalled
  // (journal sync, giant transaction). Surface it in the slow-query log —
  // where an operator is already looking when latency spikes — alongside
  // the guard_writer_longest_wait_micros gauge the guard keeps.
  if (writer_wait_warn_micros_ >= 0 &&
      guard.wait_micros() >= writer_wait_warn_micros_) {
    obs::SlowQueryLog::Entry slow;
    slow.request_id = id;
    slow.trace_id = req.trace_id;
    slow.query = "[writer-wait] " + FlightDetail(req);
    slow.micros = guard.wait_micros();
    slow.guard_wait_micros = guard.wait_micros();
    slow_log_.Record(std::move(slow));
  }
  const MutationOp& op = req.mutation;
  switch (op.kind) {
    case MutationOp::Kind::kCreateObject: {
      Result<Oid> r = db_->CreateObject(op.type_name, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetAttribute:
      resp.status = db_->SetAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteObject:
      resp.status = db_->DeleteObject(op.target);
      break;
    case MutationOp::Kind::kCreateLink: {
      Result<Oid> r = db_->CreateLink(op.type_name, op.source, op.dest,
                                      op.context, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetLinkAttribute:
      resp.status = db_->SetLinkAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteLink:
      resp.status = db_->DeleteLink(op.target);
      break;
    case MutationOp::Kind::kCustom:
      if (op.custom == nullptr) {
        resp.status =
            Status::InvalidArgument("custom mutation without a body");
      } else {
        resp.status = op.custom(*db_);
        // A transaction must not outlive its request: the write guard is
        // released when this response is produced, and a dangling open
        // transaction would poison every later writer.
        if (db_->in_transaction()) {
          (void)db_->Abort();
          if (resp.status.ok()) {
            resp.status = Status::FailedPrecondition(
                "custom mutation left a transaction open (rolled back)");
          }
        }
      }
      break;
    case MutationOp::Kind::kCheckpoint:
      if (store_ == nullptr) {
        resp.status = Status::FailedPrecondition(
            "no durable store attached to this server");
      } else {
        // Checkpoint requires exclusive access — the write guard held here
        // provides it. A success supersedes any broken journal with a full
        // snapshot and a fresh journal, so it also lifts degraded mode.
        resp.status = store_->Checkpoint();
        if (resp.status.ok() &&
            degraded_.exchange(false, std::memory_order_acq_rel)) {
          ServerMetrics::Get().degraded->Set(0);
        }
      }
      break;
  }
  ObserveStoreStatus();
  return resp;
}

}  // namespace prometheus::server
