// prometheus_shell — an interactive POOL console over a Prometheus
// database, standing in for the thesis prototype's interactive front end
// (the HTTP layer of 6.1.7 played this role remotely).
//
// The shell is a client of the src/server/ service layer: every query and
// mutation travels through a `server::Client`, so the console surfaces the
// same overload/degradation vocabulary a remote front end would see —
// rejected, timed-out and read-only-mode outcomes each get a distinct,
// actionable message instead of a generic error.
//
//   ./build/examples/prometheus_shell [snapshot.pdb]
//   ./build/examples/prometheus_shell --store <dir>    (durable mode)
//   ./build/examples/prometheus_shell --listen <port>  (+ HTTP telemetry)
//   ./build/examples/prometheus_shell --listen <port> --serve   (headless)
//   ./build/examples/prometheus_shell --store <dir> --follow <host:port>
//                                                      (read replica)
//
// With --listen the shell also mounts the remote telemetry plane
// (src/net/): GET /metrics /stats /health /slowlog /debug/requests and
// POST /query /profile on the given port, serving concurrently with the
// console. --serve skips the console loop entirely and serves until
// SIGINT/SIGTERM — the mode the CI smoke job and a scrape target use.
//
// A durable leader with --listen additionally serves /repl/* (manifest,
// snapshot and journal bytes), so another shell started with
// `--store <mirror-dir> --follow <host:port>` replicates from it: the
// follower bootstraps from the leader's newest snapshot, tails its
// journal, and serves read-only queries (mutations answer kUnavailable).
// `.lag` shows replication progress; `.promote` ends replication and
// turns the mirror into a standalone writable leader in place — with
// --listen the promoted shell starts serving /repl/* itself, so
// surviving replicas can be re-pointed at it.
//
// Commands:
//   .help                    this text
//   .classes                 list classes
//   .relationships           list relationship classes
//   .extent <name>           count + first members of an extent
//   .rule <pcl statement>    install a PCL constraint
//   .warnings                show rule warnings
//   .save <file> / .load <file>
//   .demo                    load a small demonstration taxonomy
//   .health                  overload/degradation summary (server-side)
//   .recent                  flight recorder: last completed requests
//   .contention [window]     wait-state breakdown: where request time goes
//                            (queue, guard, execute, journal, ...); with
//                            `window`, deltas since the last windowed call
//   .cache [stats|clear|off|on]
//                            query-cache administration (plan + result
//                            tiers); works on followers and degraded
//                            servers alike
//   .checkpoint              snapshot + journal rotation; re-arms a
//                            degraded store (durable mode)
//   .deadline <ms>           deadline applied to subsequent queries
//                            (0 = none)
//   .lag                     replication progress (follower mode)
//   .promote                 follower -> standalone writable leader
//   .quit
// Anything else is run as a POOL query, e.g.:
//   select t.name from Taxon t where t.rank = 'Genus'
// Prefix a query with `profile` to also print its per-stage span tree.

#include <csignal>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "index/index_manager.h"
#include "net/http_server.h"
#include "obs/wait_profiler.h"
#include "query/query_engine.h"
#include "replication/follower.h"
#include "replication/source.h"
#include "rules/pcl.h"
#include "rules/rule_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

using namespace prometheus;

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void PrintResultSet(const pool::ResultSet& rs) {
  // Column widths from headers and cells.
  std::vector<std::size_t> widths;
  for (const std::string& c : rs.columns) widths.push_back(c.size());
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : rs.rows) {
    std::vector<std::string> line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string text = row[i].ToString();
      if (i < widths.size() && text.size() > widths[i]) {
        widths[i] = text.size();
      }
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < rs.columns.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), rs.columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& line : cells) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), line[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", rs.rows.size());
}

void PrintHealth(const server::Server::Health& h) {
  std::printf("degraded:        %s\n", h.degraded ? "YES (read-only)" : "no");
  if (!h.store_status.ok()) {
    std::printf("store status:    %s\n", h.store_status.ToString().c_str());
  }
  std::printf("queue:           %zu/%zu  (est. wait %.0f us, %d workers)\n",
              h.queue_depth, h.queue_capacity, h.estimated_wait_micros,
              h.workers);
  std::printf("requests:        accepted %llu, rejected %llu, timed out "
              "%llu, shed %llu, unavailable %llu\n",
              static_cast<unsigned long long>(h.stats.accepted),
              static_cast<unsigned long long>(h.stats.rejected),
              static_cast<unsigned long long>(h.stats.timed_out),
              static_cast<unsigned long long>(h.stats.shed),
              static_cast<unsigned long long>(h.stats.unavailable));
  std::printf("sessions:        %zu active\n", h.sessions_active);
}

/// The transport outcomes a remote client would have to handle, each with
/// a shell-appropriate course of action. Returns true when `resp` carried
/// an executed result the caller should go on to print.
bool ExplainTransport(server::Client& client, const server::Response& resp) {
  using server::ResponseCode;
  switch (resp.code) {
    case ResponseCode::kOk:
      return true;
    case ResponseCode::kRejected:
      std::printf("overloaded: %s\n         -> the request never ran; "
                  "retry in a moment (.health shows queue pressure)\n",
                  resp.status.message().c_str());
      return false;
    case ResponseCode::kTimedOut:
      if (resp.executed) {
        std::printf("timed out mid-execution: %s\n         -> the query ran "
                    "past its deadline and was aborted; raise it with "
                    ".deadline <ms>\n",
                    resp.status.message().c_str());
      } else {
        std::printf("timed out in queue: %s\n         -> it never ran; the "
                    "server is saturated (.health) — retry or raise the "
                    "deadline\n",
                    resp.status.message().c_str());
      }
      return false;
    case ResponseCode::kUnavailable:
      std::printf("read-only mode: %s\n         -> queries still serve; "
                  "run .checkpoint to re-arm the store. Current health:\n",
                  resp.status.message().c_str());
      PrintHealth(client.HealthInfo());
      return false;
    case ResponseCode::kShutdown:
      std::printf("server is shutting down\n");
      return false;
  }
  return false;
}

void PrintRecent(const obs::FlightRecorder& recorder) {
  const std::vector<obs::FlightRecorder::Entry> entries = recorder.Snapshot();
  if (!recorder.enabled()) {
    std::printf("flight recorder disabled (capacity 0)\n");
    return;
  }
  for (const auto& e : entries) {
    std::printf("#%-6llu %-9s %-7s %-11s wait %8.0fus  total %8.0fus  %s\n",
                static_cast<unsigned long long>(e.request_id),
                e.type.c_str(), e.priority.c_str(), e.code.c_str(),
                e.queue_wait_micros, e.total_micros, e.detail.c_str());
  }
  std::printf("(%zu of the last %llu recorded requests retained)\n",
              entries.size(),
              static_cast<unsigned long long>(recorder.recorded_total()));
}

volatile std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

Status LoadDemo(Database& db) {
  if (db.FindClass("Taxon") == nullptr) {
    PROMETHEUS_RETURN_IF_ERROR(
        db.DefineClass("Taxon", {},
                       {Attr("name", ValueType::kString),
                        Attr("rank", ValueType::kString),
                        Attr("year", ValueType::kInt)})
            .status());
    PROMETHEUS_RETURN_IF_ERROR(
        db.DefineRelationship("placed_in", "Taxon", "Taxon", {},
                              {Attr("motivation", ValueType::kString)})
            .status());
  }
  auto mk = [&](const char* name, const char* rank, int year) {
    return db.CreateObject("Taxon", {{"name", Value::String(name)},
                                     {"rank", Value::String(rank)},
                                     {"year", Value::Int(year)}})
        .value_or(kNullOid);
  };
  Oid apiaceae = mk("Apiaceae", "Familia", 1789);
  Oid apium = mk("Apium", "Genus", 1753);
  Oid helio = mk("Heliosciadium", "Genus", 1824);
  Oid graveolens = mk("graveolens", "Species", 1753);
  Oid repens = mk("repens", "Species", 1821);
  (void)db.CreateLink("placed_in", apiaceae, apium);
  (void)db.CreateLink("placed_in", apiaceae, helio);
  (void)db.CreateLink("placed_in", apium, graveolens);
  (void)db.CreateLink("placed_in", helio, repens);
  std::printf("demo taxonomy loaded: %zu taxa, %zu placements\n",
              db.object_count(), db.link_count());
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  // Three backing modes: a durable store directory (journalled, supports
  // .checkpoint / degraded-mode recovery), a read replica of a remote
  // leader (--follow; the store directory is the local mirror), or a
  // plain in-memory database optionally seeded from a snapshot file.
  std::unique_ptr<storage::DurableStore> store;
  std::unique_ptr<replication::Follower> follower;
  std::unique_ptr<replication::ReplicationSource> repl_source;
  Database plain_db;
  Database* db = &plain_db;
  int listen_port = -1;     // -1 = no telemetry plane
  bool headless = false;    // --serve: no console, run until a signal
  std::string store_dir, snapshot_path, follow_addr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
    } else if (arg == "--follow" && i + 1 < argc) {
      follow_addr = argv[++i];
    } else if (arg == "--serve") {
      headless = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::printf("unknown option %s\n", arg.c_str());
      return 1;
    } else {
      snapshot_path = arg;
    }
  }
  if (headless && listen_port < 0) {
    std::printf("--serve requires --listen <port>\n");
    return 1;
  }
  if (!follow_addr.empty()) {
    // Replica mode: the Follower owns the database, the read-only server
    // and (with --listen) the HTTP plane; the console is a client of it.
    if (store_dir.empty()) {
      std::printf("--follow requires --store <dir> (the local mirror)\n");
      return 1;
    }
    replication::Follower::Options fo;
    fo.dir = store_dir;
    const std::size_t colon = follow_addr.rfind(':');
    if (colon == std::string::npos) {
      fo.leader_port = std::atoi(follow_addr.c_str());
    } else {
      if (colon > 0) fo.leader_host = follow_addr.substr(0, colon);
      fo.leader_port = std::atoi(follow_addr.c_str() + colon + 1);
    }
    if (fo.leader_port <= 0) {
      std::printf("--follow wants <host:port>, got %s\n", follow_addr.c_str());
      return 1;
    }
    fo.serve_http = listen_port >= 0;
    fo.http_port = listen_port < 0 ? 0 : listen_port;
    auto started = replication::Follower::Start(std::move(fo));
    if (!started.ok()) {
      std::printf("cannot start follower in %s: %s\n", store_dir.c_str(),
                  started.status().ToString().c_str());
      return 1;
    }
    follower = std::move(started).value();
    db = &follower->db();
    std::printf("following %s into mirror %s (read-only; .lag shows "
                "progress, .promote takes over)\n",
                follow_addr.c_str(), store_dir.c_str());
    if (!headless && !follower->WaitCaughtUp(3000)) {
      std::printf("still catching up — queries may see a stale prefix "
                  "(.lag to watch)\n");
    }
    if (follower->front_end() != nullptr) {
      std::printf("replica telemetry on http://127.0.0.1:%d\n",
                  follower->http_port());
    }
  } else if (!store_dir.empty()) {
    auto opened = storage::DurableStore::Open(store_dir);
    if (!opened.ok()) {
      std::printf("cannot open store %s: %s\n", store_dir.c_str(),
                  opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(opened).value();
    db = &store->db();
    std::printf("opened store %s: %zu objects, generation %llu\n",
                store_dir.c_str(), db->object_count(),
                static_cast<unsigned long long>(store->generation()));
  } else if (!snapshot_path.empty()) {
    Status st = storage::LoadSnapshot(db, snapshot_path);
    if (!st.ok()) {
      std::printf("cannot load %s: %s\n", snapshot_path.c_str(),
                  st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %zu objects, %zu links\n", snapshot_path.c_str(),
                db->object_count(), db->link_count());
  }
  // The serving stack. Pointers because .promote rebuilds it in place:
  // the follower's read-only server is swapped for a writable one over
  // the promoted store, and the console keeps running.
  std::unique_ptr<IndexManager> indexes;
  std::unique_ptr<RuleEngine> rules;
  std::unique_ptr<server::Server> owned_server;
  server::Server* server = nullptr;
  std::unique_ptr<server::Client> client;
  std::unique_ptr<pool::QueryEngine> engine;
  std::unique_ptr<net::HttpFrontEnd> front_end;

  auto build_stack = [&]() -> bool {
    if (follower != nullptr) {
      // A replica's database is mutated by the fetch thread; the rule
      // engine and index manager would subscribe to its event bus and be
      // read from this thread unsynchronised, so they stay off until
      // .promote. The follower owns the server (read-only role) and,
      // with --listen, the HTTP plane.
      server = &follower->server();
    } else {
      indexes = std::make_unique<IndexManager>(db);
      rules = std::make_unique<RuleEngine>(db);
      server::Server::Options options;
      options.indexes = indexes.get();
      options.store = store.get();
      owned_server = std::make_unique<server::Server>(db, options);
      server = owned_server.get();
    }
    client = std::make_unique<server::Client>(server);
    // An engine for .explain only (planning reads the schema, so it runs
    // under the server's lock like everything else).
    engine = std::make_unique<pool::QueryEngine>(db, indexes.get());

    // The remote telemetry plane, sharing this server with the console.
    // A durable leader also mounts /repl/* so replicas can follow it.
    if (listen_port >= 0 && follower == nullptr) {
      net::HttpFrontEnd::Options net_options;
      net_options.port = listen_port;
      if (store != nullptr) {
        repl_source =
            std::make_unique<replication::ReplicationSource>(store.get());
        net_options.aux_handler = repl_source->AuxHandler();
      }
      front_end = std::make_unique<net::HttpFrontEnd>(server, net_options);
      Status st = front_end->Start();
      if (!st.ok()) {
        std::printf("cannot listen on port %d: %s\n", listen_port,
                    st.ToString().c_str());
        return false;
      }
      std::printf("telemetry plane on http://127.0.0.1:%d — GET /metrics "
                  "/stats /health /slowlog /debug/requests, POST /query "
                  "/profile%s\n",
                  front_end->port(),
                  repl_source != nullptr ? "; /repl/* serves followers" : "");
    }
    return true;
  };
  if (!build_stack()) return 1;

  // While the server runs, database access flows through it; `with_db`
  // runs a closure under the exclusive lock for the meta commands.
  // `with_db_read` is for read-only closures: on a replica they run under
  // the database's shared epoch guard (safe alongside the fetch thread's
  // write guard) instead of the server's mutation path, which a read-only
  // role would refuse.
  auto with_db = [&](std::function<Status(Database&)> fn) {
    Status st = client->Mutate(std::move(fn));
    if (!st.ok()) std::printf("%s\n", st.ToString().c_str());
  };
  auto with_db_read = [&](std::function<Status(Database&)> fn) {
    if (follower != nullptr) {
      Database::ReadGuard guard(*db);
      Status st = fn(*db);
      if (!st.ok()) std::printf("%s\n", st.ToString().c_str());
      return;
    }
    with_db(std::move(fn));
  };

  if (headless) {
    // Scrape-target mode: serve HTTP until SIGINT/SIGTERM.
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down\n");
    if (follower != nullptr) {
      follower->Stop();
    } else {
      front_end->Stop();
      server->Shutdown();
    }
    return 0;
  }

  std::chrono::milliseconds deadline_ms{0};  // 0 = no deadline

  std::printf("Prometheus shell — type .help for commands, .quit to exit\n");
  std::string line;
  while (std::printf("pool> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    // Trim.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            ".classes .relationships .extent <name> .explain <query> "
            ".rule <pcl> .warnings .save <f> .load <f> .demo .health "
            ".recent .contention [window] .cache [stats|clear|off|on] "
            ".sys .checkpoint .deadline <ms> .lag .promote .quit\n"
            "anything else runs as POOL (try: select s from sys.storage s)\n");
      } else if (cmd == ".classes") {
        with_db_read([](Database& db) {
          for (const ClassDef* cls : db.classes()) {
            std::printf("%s%s (%zu attributes)\n", cls->name().c_str(),
                        cls->is_abstract() ? " [abstract]" : "",
                        cls->attributes().size());
          }
          return Status::Ok();
        });
      } else if (cmd == ".relationships") {
        with_db_read([](Database& db) {
          for (const RelationshipDef* rel : db.relationships()) {
            std::printf("%s: %s -> %s\n", rel->name().c_str(),
                        rel->source_class()->name().c_str(),
                        rel->target_class()->name().c_str());
          }
          return Status::Ok();
        });
      } else if (cmd == ".extent") {
        std::string name;
        in >> name;
        with_db_read([&name](Database& db) {
          std::vector<Oid> extent = db.FindClass(name) != nullptr
                                        ? db.Extent(name)
                                        : db.LinkExtent(name);
          std::printf("%zu members", extent.size());
          for (std::size_t i = 0; i < extent.size() && i < 10; ++i) {
            std::printf(" @%llu", static_cast<unsigned long long>(extent[i]));
          }
          std::printf("\n");
          return Status::Ok();
        });
      } else if (cmd == ".explain") {
        std::string q = line.substr(9);
        with_db_read([&](Database&) {
          auto plan = engine->Explain(q);
          std::printf("%s", plan.ok() ? plan.value().c_str()
                                      : (plan.status().ToString() + "\n")
                                            .c_str());
          return Status::Ok();
        });
      } else if (cmd == ".rule") {
        if (rules == nullptr) {
          std::printf("rules are unavailable on a read replica "
                      "(.promote first)\n");
          continue;
        }
        std::string pcl = line.substr(5);
        with_db([&](Database&) {
          auto installed = InstallPcl(rules.get(), pcl);
          std::printf("%s\n", installed.ok()
                                  ? "rule installed"
                                  : installed.status().ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".warnings") {
        if (rules == nullptr) {
          std::printf("rules are unavailable on a read replica "
                      "(.promote first)\n");
          continue;
        }
        for (const RuleViolation& v : rules->warnings()) {
          std::printf("%s: %s\n", v.rule_name.c_str(), v.message.c_str());
        }
        std::printf("(%zu warnings)\n", rules->warnings().size());
      } else if (cmd == ".save") {
        std::string path;
        in >> path;
        with_db_read([&path](Database& db) {
          Status st = storage::SaveSnapshot(db, path);
          std::printf("%s\n", st.ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".load") {
        std::string path;
        in >> path;
        with_db([&path](Database& db) {
          Status st = storage::LoadSnapshot(&db, path);
          std::printf("%s\n", st.ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".demo") {
        with_db([](Database& db) { return LoadDemo(db); });
      } else if (cmd == ".health") {
        PrintHealth(client->HealthInfo());
      } else if (cmd == ".recent") {
        PrintRecent(server->flight_recorder());
      } else if (cmd == ".contention") {
        std::string sub;
        in >> sub;
        std::printf("%s",
                    obs::RenderContentionText(sub == "window").c_str());
      } else if (cmd == ".sys") {
        // The system catalog's own listing; every class is queryable as an
        // ordinary POOL range (`select m from sys.metrics m where ...`).
        for (const pool::SystemCatalog::ClassInfo& info :
             server->system_catalog().ListClasses()) {
          std::string attrs;
          for (const std::string& a : info.attributes) {
            if (!attrs.empty()) attrs += ", ";
            attrs += a;
          }
          std::printf("%-16s %s\n                 (%s)\n", info.name.c_str(),
                      info.help.c_str(), attrs.c_str());
        }
      } else if (cmd == ".cache") {
        std::string sub;
        in >> sub;
        server::CacheOp op = server::CacheOp::kStats;
        if (sub == "clear") {
          op = server::CacheOp::kClear;
        } else if (sub == "off") {
          op = server::CacheOp::kDisable;
        } else if (sub == "on") {
          op = server::CacheOp::kEnable;
        } else if (!sub.empty() && sub != "stats") {
          std::printf("usage: .cache [stats|clear|off|on]\n");
          continue;
        }
        // Travels as a request like any other — works against the local
        // server and on a read replica (it is not a mutation).
        server::Response resp =
            client->Call(server::Request::CacheControl(op));
        if (!ExplainTransport(*client, resp)) continue;
        PrintResultSet(resp.result);
      } else if (cmd == ".checkpoint") {
        if (store == nullptr) {
          std::printf("no durable store attached — start the shell with "
                      "--store <dir>\n");
        } else {
          Status st = client->Checkpoint();
          if (st.ok()) {
            std::printf("checkpoint written (generation %llu)%s\n",
                        static_cast<unsigned long long>(store->generation()),
                        server->degraded() ? "" : "; store is armed");
          } else {
            std::printf("checkpoint failed: %s\n", st.ToString().c_str());
          }
        }
      } else if (cmd == ".lag") {
        if (follower == nullptr) {
          std::printf("not a replica — start the shell with "
                      "--follow <host:port>\n");
        } else {
          const auto p = follower->progress();
          std::printf("connected:   %s%s\n", p.connected ? "yes" : "NO",
                      p.caught_up ? " (caught up)" : "");
          std::printf("cursor:      generation %llu, journal %llu @ %llu\n",
                      static_cast<unsigned long long>(p.generation),
                      static_cast<unsigned long long>(p.journal_seq),
                      static_cast<unsigned long long>(p.offset));
          std::printf("lag:         %llu records, %llu bytes\n",
                      static_cast<unsigned long long>(p.lag_records),
                      static_cast<unsigned long long>(p.lag_bytes));
          std::printf("history:     %llu reconnects, %llu rebootstraps, "
                      "%llu corrupt frames\n",
                      static_cast<unsigned long long>(p.reconnects),
                      static_cast<unsigned long long>(p.rebootstraps),
                      static_cast<unsigned long long>(p.corrupt_frames));
        }
      } else if (cmd == ".promote") {
        if (follower == nullptr) {
          std::printf("not a replica — start the shell with "
                      "--follow <host:port>\n");
        } else {
          // Tear down clients of the follower's server before it stops,
          // then reopen the mirror as a writable store and rebuild the
          // stack (indexes, rules, server, telemetry + /repl/*) over it.
          client.reset();
          engine.reset();
          server = nullptr;
          auto promoted = follower->Promote();
          if (!promoted.ok()) {
            std::printf("promote failed: %s — the replica is stopped, "
                        "exiting\n",
                        promoted.status().ToString().c_str());
            return 1;
          }
          follower.reset();
          store = std::move(promoted).value();
          db = &store->db();
          if (!build_stack()) return 1;
          std::printf("promoted: standalone writable leader over %s "
                      "(generation %llu, %zu objects)\n",
                      store_dir.c_str(),
                      static_cast<unsigned long long>(store->generation()),
                      db->object_count());
        }
      } else if (cmd == ".deadline") {
        long long ms = 0;
        in >> ms;
        deadline_ms = std::chrono::milliseconds(ms < 0 ? 0 : ms);
        if (deadline_ms.count() == 0) {
          std::printf("queries run without a deadline\n");
        } else {
          std::printf("queries now carry a %lld ms deadline\n",
                      static_cast<long long>(deadline_ms.count()));
        }
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }
    // POOL queries travel through the server like any remote client's
    // would — deadline attached, transport outcome explained.
    server::Request req = server::Request::Query(line);
    if (deadline_ms.count() > 0) req.WithTimeout(deadline_ms);
    server::Response resp = client->Call(std::move(req));
    if (!ExplainTransport(*client, resp)) continue;
    if (!resp.status.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      continue;
    }
    PrintResultSet(resp.result);
    if (!resp.text.empty()) std::printf("%s", resp.text.c_str());
  }
  std::printf("\n");
  if (front_end != nullptr) front_end->Stop();
  return 0;
}
