file(REMOVE_RECURSE
  "CMakeFiles/whatif_and_rules.dir/whatif_and_rules.cpp.o"
  "CMakeFiles/whatif_and_rules.dir/whatif_and_rules.cpp.o.d"
  "whatif_and_rules"
  "whatif_and_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_and_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
