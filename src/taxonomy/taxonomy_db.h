#ifndef PROMETHEUS_TAXONOMY_TAXONOMY_DB_H_
#define PROMETHEUS_TAXONOMY_TAXONOMY_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "classification/classification.h"
#include "common/result.h"
#include "core/database.h"
#include "core/read_view.h"
#include "query/query_engine.h"
#include "rules/rule_engine.h"
#include "taxonomy/rank.h"

namespace prometheus::taxonomy {

/// The kinds of taxonomic types recognised by the ICBN (thesis 2.1.2).
/// Holotype/lectotype/neotype are the *primary* types used for deriving
/// names (in that priority order); isotypes and syntypes never name groups
/// unless elected as lectotypes.
enum class TypeKind : std::uint8_t {
  kHolotype,
  kLectotype,
  kNeotype,
  kIsotype,
  kSyntype,
};

/// Canonical label ("holotype", ...).
const char* TypeKindName(TypeKind kind);

/// True for the kinds usable in name derivation.
bool IsPrimaryType(TypeKind kind);

/// Relation between two compared groups' nomenclatural types
/// (thesis 2.1.3): synonymous groups sharing a taxonomic type are
/// homotypic, others heterotypic.
enum class TypeSynonymy : std::uint8_t {
  kNotSynonyms,
  kHomotypic,
  kHeterotypic,
};

/// Outcome of deriving a name for a circumscription taxon.
struct DerivationResult {
  /// The nomenclatural taxon assigned as the calculated name.
  Oid name = kNullOid;
  /// True when derivation had to publish a new name or a new combination
  /// (e.g. moving an epithet to a different genus, figure 3's
  /// `Heliosciadium repens (Jacq.)Raguenaud`).
  bool newly_published = false;
  /// Rendered full name, e.g. "Heliosciadium repens (Jacq.)Raguenaud.".
  std::string full_name;
};

/// Nomenclatural status of a published name (thesis figure 6:
/// NomenclaturalStatus with ConservedName / RejectedOutright):
///  - kPublished: validly published, competes by priority;
///  - kInvalid: not validly published, never a derivation candidate;
///  - kConserved: sanctioned by the ICBN to *override* priority;
///  - kRejected: outlawed outright, never a candidate.
enum class NameStatus : std::uint8_t {
  kPublished,
  kInvalid,
  kConserved,
  kRejected,
};

/// Canonical label ("published", ...).
const char* NameStatusName(NameStatus status);

/// Class and relationship names of the taxonomic schema, exposed for POOL
/// queries against a `TaxonomyDatabase`.
inline constexpr char kSpecimenClass[] = "Specimen";
inline constexpr char kNameClass[] = "NomenclaturalTaxon";
inline constexpr char kTaxonClass[] = "CircumscriptionTaxon";
inline constexpr char kTypifiedBySpecimenRel[] = "typified_by_specimen";
inline constexpr char kTypifiedByNameRel[] = "typified_by_name";
inline constexpr char kPlacementRel[] = "placement";
inline constexpr char kContainsRel[] = "contains";
inline constexpr char kCircumscribesRel[] = "circumscribes";
inline constexpr char kAscribedNameRel[] = "ascribed_name";
inline constexpr char kCalculatedNameRel[] = "calculated_name";
inline constexpr char kDeterminedAsRel[] = "determined_as";

/// The Prometheus taxonomic application (thesis chapter 2, figure 6),
/// built entirely on the public Prometheus API: nomenclature and
/// classification are separate hierarchies whose only connection points are
/// specimens, multiple overlapping classifications coexist as contexts, and
/// names are *derived* from circumscriptions via type specimens and the
/// ICBN rather than asserted.
class TaxonomyDatabase {
 public:
  /// Builds the schema (classes, relationship classes) in a fresh database.
  /// ICBN rules are installed separately by `InstallIcbnRules` so callers
  /// can load historical data that predates the code.
  TaxonomyDatabase();
  ~TaxonomyDatabase();

  TaxonomyDatabase(const TaxonomyDatabase&) = delete;
  TaxonomyDatabase& operator=(const TaxonomyDatabase&) = delete;

  /// The underlying layers, exposed for queries, what-if transactions and
  /// benchmark instrumentation.
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  ClassificationManager& classifications() { return *classifications_; }
  const ClassificationManager& classifications() const {
    return *classifications_;
  }
  RuleEngine& rules() { return *rules_; }
  pool::QueryEngine& query() { return *query_; }
  const pool::QueryEngine& query() const { return *query_; }

  /// Installs the ICBN constraint set of thesis figures 35–40 (family and
  /// genus name form, species epithet form, type existence (warn),
  /// species/series placement, general rank-order placement).
  Status InstallIcbnRules();

  // ------------------------------------------------------------ specimens

  /// Records a herbarium specimen.
  Result<Oid> AddSpecimen(const std::string& collector,
                          const std::string& herbarium,
                          const std::string& field_number,
                          std::int64_t collection_year = 0);

  // --------------------------------------------------------- nomenclature

  /// Publishes a nomenclatural taxon (NT): a name element at a rank with
  /// its authorship and publication. NTs are immutable records of
  /// publication ("valid forever").
  Result<Oid> PublishName(const std::string& element, Rank rank,
                          const std::string& author, std::int64_t year,
                          const std::string& publication = "");

  /// Declares `type` (a specimen, or an NT for supra-specific names) a
  /// taxonomic type of `name`. At most one holotype, one lectotype and one
  /// neotype per name; any number of isotypes/syntypes.
  Status Typify(Oid name, Oid type, TypeKind kind);

  /// Records that `name`'s epithet is combined under `genus_name`
  /// (the placement hierarchy, used only for nomenclatural completeness —
  /// never a classification statement).
  Status RecordPlacement(Oid name, Oid genus_name);

  /// The genus NT `name` is combined under, or kNullOid.
  Oid PlacementOf(Oid name) const;

  /// Type objects of `name`; `kind` of kIsotype etc. filters, nullptr = all.
  std::vector<Oid> TypesOf(Oid name, const TypeKind* kind = nullptr) const;

  /// Primary type specimens of `name` (holo-, lecto-, neotype targets that
  /// are specimens), in ICBN priority order.
  std::vector<Oid> PrimaryTypeSpecimensOf(Oid name) const;

  /// Names directly typified by `type` (specimen or NT).
  std::vector<Oid> NamesTypifiedBy(Oid type) const;

  /// Renders the full name: binomials are combined through the placement
  /// hierarchy ("Apium graveolens L."), uninomials stand alone.
  Result<std::string> FullName(Oid name) const;

  /// Sets / reads the nomenclatural status of a name. Conserved names win
  /// derivation over older candidates; invalid and rejected names are
  /// skipped entirely.
  Status SetNameStatus(Oid name, NameStatus status);
  Result<NameStatus> NameStatusOf(Oid name) const;

  /// Records a determination (thesis 2.1.1): a taxonomist applied `name`
  /// to `specimen` on a herbarium sheet — useful evidence, but carrying no
  /// classification value. Returns the determination link.
  Result<Oid> AddDetermination(Oid specimen, Oid name,
                               const std::string& determiner,
                               std::int64_t year);

  /// Determination links of a specimen (read attributes via
  /// `Database::GetLinkAttribute`).
  std::vector<Oid> DeterminationsOf(Oid specimen) const;

  /// Groups of distinct names sharing the same (element, rank) pair —
  /// homonyms, which the nomenclatural side must keep apart (an NT is the
  /// unique combination of all its parts, thesis 2.3).
  std::vector<std::vector<Oid>> FindHomonyms() const;

  // ------------------------------------------------------ classifications

  /// Creates a classification (revision) entity.
  Result<Oid> NewClassification(const std::string& name,
                                const std::string& author,
                                std::int64_t year = 0,
                                const std::string& publication = "");

  /// Creates a circumscription taxon (CT) at `rank` for use inside
  /// `classification`. `working_name` is the nomenclature-free handle used
  /// during a revision (thesis 2.3).
  Result<Oid> NewTaxon(Oid classification, Rank rank,
                       const std::string& working_name);

  /// Places `child` under `parent` within the classification; `motivation`
  /// records the taxonomist's reasoning (traceability).
  Status PlaceTaxon(Oid classification, Oid parent, Oid child,
                    const std::string& motivation = "");

  /// Adds `specimen` to the circumscription of `taxon`.
  Status Circumscribe(Oid classification, Oid taxon, Oid specimen,
                      const std::string& motivation = "");

  /// Attaches a historically published name to `taxon` (ascribed name —
  /// what the original publication called it, right or wrong).
  Status AscribeName(Oid taxon, Oid name);

  /// The taxon's ascribed / calculated name, or kNullOid.
  Oid AscribedNameOf(Oid taxon) const;
  Oid CalculatedNameOf(Oid taxon) const;

  /// The rank of a CT or NT.
  Result<Rank> RankOf(Oid taxon_or_name) const;

  /// Structural validation of a classification: acyclic, every `contains`
  /// edge descends the rank hierarchy, and circumscription edges only
  /// attach specimens to taxa. Returns the first violation found.
  Status ValidateClassification(Oid classification) const;

  // ------------------------------------------- recursion (requirement 9)

  /// All specimens circumscribed under `taxon` at any depth within
  /// `classification`.
  Result<std::vector<Oid>> SpecimensUnder(Oid classification,
                                          Oid taxon) const;

  /// The subset of `SpecimensUnder` that are primary type specimens of
  /// some published name.
  Result<std::vector<Oid>> TypeSpecimensUnder(Oid classification,
                                              Oid taxon) const;

  // ----------------------------------------------------- name derivation

  /// Derives the name of one CT per the ICBN (thesis 2.1.2 / figure 3):
  /// collect specimens recursively, extract primary type specimens, climb
  /// the type hierarchy to names at the CT's rank, choose the oldest
  /// validly published one; publish a new name (or new combination, for
  /// multinomials moved to a different genus) when none fits. Records the
  /// result as the CT's calculated name. Ancestors of multinomial taxa
  /// must have been derived first (use `DeriveAllNames` for whole
  /// classifications).
  Result<DerivationResult> DeriveName(Oid classification, Oid taxon,
                                      const std::string& deriving_author,
                                      std::int64_t derivation_year);

  /// Derives every taxon of the classification top-down (rank order).
  Status DeriveAllNames(Oid classification,
                        const std::string& deriving_author,
                        std::int64_t derivation_year);

  // -------------------------------------------------------------- synonymy

  /// Specimen-based comparison of two taxa across classifications
  /// (synonym discovery, thesis 2.3): overlap of canonical specimen sets.
  OverlapReport CompareTaxa(Oid classification_a, Oid taxon_a,
                            Oid classification_b, Oid taxon_b) const;

  /// Homotypic vs heterotypic synonymy: synonyms sharing a primary type
  /// specimen (under instance synonymy) are homotypic.
  TypeSynonymy TypeSynonymyOf(Oid classification_a, Oid taxon_a,
                              Oid classification_b, Oid taxon_b) const;

  /// The HICLAS-style operation vocabulary (thesis 2.2) — but *inferred*
  /// from objective specimen overlap rather than asserted by taxonomists,
  /// which is exactly the thesis' criticism of HICLAS: recorded taxon
  /// "life cycles" capture opinions; circumscriptions capture facts.
  enum class RevisionOpKind : std::uint8_t {
    /// Same circumscription, same rank: the revision recognises the taxon.
    kRecognition,
    /// Same circumscription at a different rank, upward / downward.
    kPromotion,
    kDemotion,
    /// One original taxon's specimens were split over several revised taxa.
    kPartition,
    /// Several original taxa were combined into one revised taxon.
    kMerge,
    /// Partial overlap with exactly one revised taxon (specimens moved).
    kMove,
    /// No revised taxon shares any of the original's specimens.
    kDissolution,
  };

  /// One inferred operation relating taxa of the original classification
  /// to taxa of the revision.
  struct RevisionOperation {
    RevisionOpKind kind;
    Oid taxon_a = kNullOid;             ///< taxon in the original
    std::vector<Oid> taxa_b;            ///< counterpart(s) in the revision
  };

  /// Infers, for every internal taxon of `original`, how `revision`
  /// treated it. A taxon counts as a counterpart when the canonical
  /// specimen sets overlap.
  std::vector<RevisionOperation> InferRevisionOperations(Oid original,
                                                         Oid revision) const;

 private:
  /// Read view the const helpers consult: the thread's pinned MVCC
  /// snapshot when one is installed (a server worker answering a query),
  /// else the live database. Mutators reuse the same helpers on writer
  /// threads, where no view is installed, so they always see live state.
  const ReadView& view() const {
    const ReadView* v = CurrentReadView();
    return v != nullptr ? *v : static_cast<const ReadView&>(*db_);
  }

  Status DefineSchema();
  Result<Oid> GenusAncestorName(Oid classification, Oid taxon) const;
  Result<Oid> NewCombination(Oid base_name, Oid genus_name,
                             const std::string& deriving_author,
                             std::int64_t derivation_year, Rank rank);
  Status SetCalculatedName(Oid taxon, Oid name);

  std::unique_ptr<Database> db_;
  std::unique_ptr<ClassificationManager> classifications_;
  std::unique_ptr<RuleEngine> rules_;
  std::unique_ptr<pool::QueryEngine> query_;
};

}  // namespace prometheus::taxonomy

#endif  // PROMETHEUS_TAXONOMY_TAXONOMY_DB_H_
