#include "classification/classification.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace prometheus {

namespace {

AttributeDef MakeAttr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

}  // namespace

ClassificationManager::ClassificationManager(Database* db) : db_(db) {
  if (db_->FindClass(kClassificationClassName) == nullptr) {
    auto r = db_->DefineClass(
        kClassificationClassName, {},
        {MakeAttr("name", ValueType::kString),
         MakeAttr("author", ValueType::kString),
         MakeAttr("year", ValueType::kInt),
         MakeAttr("publication", ValueType::kString)});
    (void)r;  // cannot fail: the name was just checked to be free
  }
}

Status ClassificationManager::RequireClassification(Oid oid) const {
  if (!IsClassification(oid)) {
    return Status::NotFound("@" + std::to_string(oid) +
                            " is not a classification");
  }
  return Status::Ok();
}

bool ClassificationManager::IsClassification(Oid oid) const {
  return db_->IsInstanceOf(oid, kClassificationClassName);
}

Result<Oid> ClassificationManager::Create(const std::string& name,
                                          const std::string& author,
                                          std::int64_t year,
                                          const std::string& publication) {
  return db_->CreateObject(kClassificationClassName,
                           {{"name", Value::String(name)},
                            {"author", Value::String(author)},
                            {"year", Value::Int(year)},
                            {"publication", Value::String(publication)}});
}

Result<Oid> ClassificationManager::AddEdge(Oid classification,
                                           const std::string& rel_name,
                                           Oid parent, Oid child,
                                           const std::string& motivation) {
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(classification));
  std::vector<AttrInit> inits;
  if (!motivation.empty()) {
    const RelationshipDef* def = db_->FindRelationship(rel_name);
    if (def == nullptr || def->FindAttribute("motivation") == nullptr) {
      return Status::InvalidArgument(
          "relationship '" + rel_name +
          "' declares no 'motivation' attribute for traceability");
    }
    inits.emplace_back("motivation", Value::String(motivation));
  }
  return db_->CreateLink(rel_name, parent, child, classification,
                         std::move(inits));
}

Status ClassificationManager::RemoveEdge(Oid classification, Oid link) {
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(classification));
  const Link* l = db_->GetLink(link);
  if (l == nullptr || l->context != classification) {
    return Status::NotFound("link @" + std::to_string(link) +
                            " is not part of classification @" +
                            std::to_string(classification));
  }
  return db_->DeleteLink(link);
}

const std::vector<Oid>& ClassificationManager::Edges(
    Oid classification) const {
  return db_->LinksInContext(classification);
}

std::vector<Oid> ClassificationManager::Members(Oid classification) const {
  std::unordered_set<Oid> seen;
  std::vector<Oid> out;
  for (Oid lid : Edges(classification)) {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr) continue;
    if (seen.insert(l->source).second) out.push_back(l->source);
    if (seen.insert(l->target).second) out.push_back(l->target);
  }
  return out;
}

std::vector<Oid> ClassificationManager::Roots(Oid classification) const {
  std::unordered_set<Oid> parents;
  std::unordered_set<Oid> children;
  for (Oid lid : Edges(classification)) {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr) continue;
    parents.insert(l->source);
    children.insert(l->target);
  }
  std::vector<Oid> out;
  for (Oid p : parents) {
    if (!children.count(p)) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> ClassificationManager::Children(Oid classification,
                                                 Oid node) const {
  std::vector<Oid> out;
  for (Oid lid : db_->IncidentLinks(node, Direction::kOut, nullptr,
                                    classification)) {
    out.push_back(db_->GetLink(lid)->target);
  }
  return out;
}

std::vector<Oid> ClassificationManager::Parents(Oid classification,
                                                Oid node) const {
  std::vector<Oid> out;
  for (Oid lid :
       db_->IncidentLinks(node, Direction::kIn, nullptr, classification)) {
    out.push_back(db_->GetLink(lid)->source);
  }
  return out;
}

std::vector<Oid> ClassificationManager::Descendants(Oid classification,
                                                    Oid node) const {
  std::vector<Oid> out;
  std::unordered_set<Oid> visited{node};
  std::deque<Oid> work{node};
  while (!work.empty()) {
    Oid cur = work.front();
    work.pop_front();
    for (Oid child : Children(classification, cur)) {
      if (!visited.insert(child).second) continue;
      out.push_back(child);
      work.push_back(child);
    }
  }
  return out;
}

std::vector<Oid> ClassificationManager::Leaves(Oid classification,
                                               Oid node) const {
  std::vector<Oid> out;
  std::vector<Oid> all = Descendants(classification, node);
  all.push_back(node);
  for (Oid o : all) {
    if (Children(classification, o).empty()) out.push_back(o);
  }
  return out;
}

bool ClassificationManager::IsHierarchy(Oid classification) const {
  // A classification is a hierarchy when its edge set is acyclic.
  // Kahn-style peeling over the subgraph induced by the context's edges.
  std::unordered_map<Oid, int> indegree;
  std::unordered_map<Oid, std::vector<Oid>> adj;
  for (Oid lid : Edges(classification)) {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr) continue;
    adj[l->source].push_back(l->target);
    indegree[l->target] += 1;
    indegree.try_emplace(l->source, 0);
  }
  std::deque<Oid> work;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) work.push_back(node);
  }
  std::size_t peeled = 0;
  while (!work.empty()) {
    Oid cur = work.front();
    work.pop_front();
    ++peeled;
    for (Oid next : adj[cur]) {
      if (--indegree[next] == 0) work.push_back(next);
    }
  }
  return peeled == indegree.size();
}

OverlapReport ClassificationManager::Compare(Oid classification_a, Oid node_a,
                                             Oid classification_b,
                                             Oid node_b) const {
  auto canonical_leaves = [this](Oid ctx, Oid node) {
    std::unordered_set<Oid> out;
    for (Oid leaf : Leaves(ctx, node)) out.insert(db_->CanonicalOf(leaf));
    return out;
  };
  std::unordered_set<Oid> a = canonical_leaves(classification_a, node_a);
  std::unordered_set<Oid> b = canonical_leaves(classification_b, node_b);
  OverlapReport report;
  for (Oid x : a) {
    if (b.count(x)) {
      report.shared.push_back(x);
    } else {
      report.only_a.push_back(x);
    }
  }
  for (Oid x : b) {
    if (!a.count(x)) report.only_b.push_back(x);
  }
  std::sort(report.shared.begin(), report.shared.end());
  std::sort(report.only_a.begin(), report.only_a.end());
  std::sort(report.only_b.begin(), report.only_b.end());
  if (report.shared.empty()) {
    report.kind = SynonymyKind::kNone;
  } else if (report.only_a.empty() && report.only_b.empty()) {
    report.kind = SynonymyKind::kFull;
  } else {
    report.kind = SynonymyKind::kProParte;
  }
  return report;
}

SynonymyKind ClassificationManager::Synonymy(Oid classification_a, Oid node_a,
                                             Oid classification_b,
                                             Oid node_b) const {
  return Compare(classification_a, node_a, classification_b, node_b).kind;
}

Result<Oid> ClassificationManager::Clone(Oid source,
                                         const std::string& new_name,
                                         const std::string& new_author,
                                         std::int64_t year,
                                         const std::string& publication) {
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(source));
  PROMETHEUS_ASSIGN_OR_RETURN(
      Oid copy, Create(new_name, new_author, year, publication));
  // Copy the edge set (links are fresh; the classified objects are shared —
  // the two classifications now overlap on every node).
  std::vector<Oid> edges = Edges(source);  // copy: we mutate the index
  for (Oid lid : edges) {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr) continue;
    std::vector<AttrInit> inits;
    inits.reserve(l->attrs.size());
    for (const auto& [name, value] : l->attrs) {
      inits.emplace_back(name, value);
    }
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid nl, db_->CreateLink(l->def->name(), l->source, l->target, copy,
                                std::move(inits)));
    (void)nl;
  }
  return copy;
}

Status ClassificationManager::CloneSubtree(Oid source, Oid node,
                                           Oid target) {
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(source));
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(target));
  if (db_->GetObject(node) == nullptr) {
    return Status::NotFound("no object @" + std::to_string(node));
  }
  std::unordered_set<Oid> subtree{node};
  for (Oid o : Descendants(source, node)) subtree.insert(o);
  std::vector<Oid> edges = Edges(source);  // copy: we mutate the index
  for (Oid lid : edges) {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr || !subtree.count(l->source) ||
        !subtree.count(l->target)) {
      continue;
    }
    std::vector<AttrInit> inits;
    inits.reserve(l->attrs.size());
    for (const auto& [name, value] : l->attrs) {
      inits.emplace_back(name, value);
    }
    PROMETHEUS_RETURN_IF_ERROR(
        db_->CreateLink(l->def->name(), l->source, l->target, target,
                        std::move(inits))
            .status());
  }
  return Status::Ok();
}

std::vector<ClassificationManager::Alignment> ClassificationManager::Align(
    Oid a, Oid b) const {
  auto internal_nodes = [this](Oid ctx) {
    std::vector<Oid> out;
    for (Oid member : Members(ctx)) {
      if (!Children(ctx, member).empty()) out.push_back(member);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto canonical_leaves = [this](Oid ctx, Oid node) {
    std::unordered_set<Oid> out;
    for (Oid leaf : Leaves(ctx, node)) out.insert(db_->CanonicalOf(leaf));
    return out;
  };
  std::vector<Oid> nodes_b = internal_nodes(b);
  std::vector<std::unordered_set<Oid>> leaves_b;
  leaves_b.reserve(nodes_b.size());
  for (Oid nb : nodes_b) leaves_b.push_back(canonical_leaves(b, nb));

  std::vector<Alignment> out;
  for (Oid na : internal_nodes(a)) {
    std::unordered_set<Oid> la = canonical_leaves(a, na);
    Alignment best;
    best.taxon_a = na;
    for (std::size_t i = 0; i < nodes_b.size(); ++i) {
      std::size_t shared = 0;
      for (Oid x : la) {
        if (leaves_b[i].count(x)) ++shared;
      }
      if (shared == 0) continue;
      std::size_t total = la.size() + leaves_b[i].size() - shared;
      double jaccard =
          total == 0 ? 0.0 : static_cast<double>(shared) / total;
      if (jaccard > best.similarity ||
          (jaccard == best.similarity && nodes_b[i] < best.taxon_b)) {
        best.similarity = jaccard;
        best.taxon_b = nodes_b[i];
        if (jaccard == 1.0) {
          best.kind = SynonymyKind::kFull;
        } else {
          best.kind = SynonymyKind::kProParte;
        }
      }
    }
    out.push_back(best);
  }
  return out;
}

ClassificationManager::DiffReport ClassificationManager::Diff(Oid a,
                                                              Oid b) const {
  auto edge_key = [this](Oid lid) -> std::string {
    const Link* l = db_->GetLink(lid);
    if (l == nullptr) return "";
    return l->def->name() + "\x1f" + std::to_string(l->source) + "\x1f" +
           std::to_string(l->target);
  };
  std::unordered_map<std::string, int> in_b;
  for (Oid lid : Edges(b)) in_b[edge_key(lid)] += 1;
  DiffReport report;
  std::unordered_map<std::string, int> matched;
  for (Oid lid : Edges(a)) {
    std::string key = edge_key(lid);
    if (matched[key] < in_b[key]) {
      ++matched[key];  // structural counterpart consumed
    } else {
      report.only_a.push_back(lid);
    }
  }
  std::unordered_map<std::string, int> in_a;
  for (Oid lid : Edges(a)) in_a[edge_key(lid)] += 1;
  matched.clear();
  for (Oid lid : Edges(b)) {
    std::string key = edge_key(lid);
    if (matched[key] < in_a[key]) {
      ++matched[key];
    } else {
      report.only_b.push_back(lid);
    }
  }
  std::sort(report.only_a.begin(), report.only_a.end());
  std::sort(report.only_b.begin(), report.only_b.end());
  return report;
}

Status ClassificationManager::Destroy(Oid classification) {
  PROMETHEUS_RETURN_IF_ERROR(RequireClassification(classification));
  std::vector<Oid> edges = Edges(classification);  // copy: we mutate
  for (Oid lid : edges) {
    PROMETHEUS_RETURN_IF_ERROR(db_->DeleteLink(lid));
  }
  return db_->DeleteObject(classification);
}

std::vector<Oid> ClassificationManager::All() const {
  return db_->Extent(kClassificationClassName);
}

}  // namespace prometheus
