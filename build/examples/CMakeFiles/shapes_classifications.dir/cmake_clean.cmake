file(REMOVE_RECURSE
  "CMakeFiles/shapes_classifications.dir/shapes_classifications.cpp.o"
  "CMakeFiles/shapes_classifications.dir/shapes_classifications.cpp.o.d"
  "shapes_classifications"
  "shapes_classifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapes_classifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
