#ifndef PROMETHEUS_BENCH_BENCH_UTIL_H_
#define PROMETHEUS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

namespace prometheus::bench {

/// Milliseconds taken by the median of `reps` runs of `fn`.
template <typename Fn>
double MedianMillis(Fn&& fn, int reps = 3) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Prints the header of a paper-style series table.
inline void PrintTableHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace prometheus::bench

#endif  // PROMETHEUS_BENCH_BENCH_UTIL_H_
