// E1/E2 — OO7 raw performance (thesis 7.2.1.2.1): database creation and
// full traversal T1, Prometheus vs the plain baseline store. The printed
// table is the paper-style series: Prometheus cost is a small constant
// factor over raw storage for navigation, larger for creation (events,
// semantics, undo logging).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "oo7/oo7.h"

namespace {

using prometheus::oo7::BaselineOo7;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  // The assembly tree grows with the part library so traversal work scales
  // with database size, as in OO7's small/medium databases.
  config.assembly_levels =
      composites <= 10 ? 4 : (composites <= 20 ? 5 : (composites <= 40 ? 6 : 7));
  return config;
}

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "E1/E2: OO7 raw performance (create + traverse T1)",
      "  comps  atoms   create_prom_ms  create_base_ms  ratio   "
      "t1_prom_ms  t1_base_ms  ratio");
  for (int comps : {10, 20, 40, 80}) {
    Config config = MakeConfig(comps);
    double create_prom = prometheus::bench::MedianMillis(
        [&] { PrometheusOo7 db(config); benchmark::DoNotOptimize(&db); });
    double create_base = prometheus::bench::MedianMillis(
        [&] { BaselineOo7 db(config); benchmark::DoNotOptimize(&db); });
    PrometheusOo7 prom(config);
    BaselineOo7 base(config);
    double t1_prom = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(prom.TraverseT1()); }, 5);
    double t1_base = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(base.TraverseT1()); }, 5);
    std::printf(
        "  %5d  %5d   %14.3f  %14.3f  %5.1f   %10.3f  %10.4f  %5.1f\n",
        comps, config.total_atomic_parts(), create_prom, create_base,
        create_base > 0 ? create_prom / create_base : 0.0, t1_prom, t1_base,
        t1_base > 0 ? t1_prom / t1_base : 0.0);
  }
}

void BM_CreatePrometheus(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PrometheusOo7 db(config);
    benchmark::DoNotOptimize(&db);
  }
  state.SetItemsProcessed(state.iterations() * config.total_atomic_parts());
}
BENCHMARK(BM_CreatePrometheus)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_CreateBaseline(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BaselineOo7 db(config);
    benchmark::DoNotOptimize(&db);
  }
  state.SetItemsProcessed(state.iterations() * config.total_atomic_parts());
}
BENCHMARK(BM_CreateBaseline)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_T1Prometheus(benchmark::State& state) {
  PrometheusOo7 db(MakeConfig(static_cast<int>(state.range(0))));
  std::uint64_t visits = 0;
  for (auto _ : state) {
    visits = db.TraverseT1();
    benchmark::DoNotOptimize(visits);
  }
  state.counters["visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_T1Prometheus)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_T1Baseline(benchmark::State& state) {
  BaselineOo7 db(MakeConfig(static_cast<int>(state.range(0))));
  std::uint64_t visits = 0;
  for (auto _ : state) {
    visits = db.TraverseT1();
    benchmark::DoNotOptimize(visits);
  }
  state.counters["visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_T1Baseline)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
