file(REMOVE_RECURSE
  "CMakeFiles/prometheus_taxonomy.dir/rank.cc.o"
  "CMakeFiles/prometheus_taxonomy.dir/rank.cc.o.d"
  "CMakeFiles/prometheus_taxonomy.dir/report.cc.o"
  "CMakeFiles/prometheus_taxonomy.dir/report.cc.o.d"
  "CMakeFiles/prometheus_taxonomy.dir/synthetic.cc.o"
  "CMakeFiles/prometheus_taxonomy.dir/synthetic.cc.o.d"
  "CMakeFiles/prometheus_taxonomy.dir/taxonomy_db.cc.o"
  "CMakeFiles/prometheus_taxonomy.dir/taxonomy_db.cc.o.d"
  "libprometheus_taxonomy.a"
  "libprometheus_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
