#include "obs/trace.h"

#include <cstdio>

#include "common/stats.h"

namespace prometheus::obs {

TraceNode* TraceNode::AddChild(std::string child_name) {
  children.emplace_back(std::move(child_name));
  return &children.back();
}

const TraceNode* TraceNode::Child(const std::string& child_name) const {
  for (const TraceNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

namespace {

void RenderLine(const TraceNode& node, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.detail.empty()) {
    *out += ": ";
    *out += node.detail;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "  %.1fus", node.micros);
  *out += buf;
  if (node.rows >= 0) {
    std::snprintf(buf, sizeof buf, "  rows=%lld",
                  static_cast<long long>(node.rows));
    *out += buf;
  }
  *out += '\n';
  for (const TraceNode& child : node.children) {
    RenderLine(child, depth + 1, out);
  }
}

void RenderNode(const TraceNode& node, stats::JsonWriter* json) {
  json->BeginObject();
  json->Key("name").String(node.name);
  if (!node.detail.empty()) json->Key("detail").String(node.detail);
  json->Key("micros").Number(node.micros);
  if (node.rows >= 0) json->Key("rows").Int(node.rows);
  if (!node.children.empty()) {
    json->Key("children").BeginArray();
    for (const TraceNode& child : node.children) RenderNode(child, json);
    json->EndArray();
  }
  json->EndObject();
}

}  // namespace

std::string RenderTree(const TraceNode& root) {
  std::string out;
  RenderLine(root, 0, &out);
  return out;
}

std::string RenderJson(const TraceNode& root) {
  stats::JsonWriter json;
  RenderNode(root, &json);
  return json.str();
}

}  // namespace prometheus::obs
