#ifndef PROMETHEUS_QUERY_PARSER_H_
#define PROMETHEUS_QUERY_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace prometheus::pool {

/// Parses a complete POOL `select` query.
Result<std::unique_ptr<SelectQuery>> ParseQuery(const std::string& source);

/// Parses a standalone POOL expression (used by the rule layer, PCL and
/// views, which attach expressions to events rather than running queries).
Result<std::unique_ptr<Expr>> ParseExpression(const std::string& source);

}  // namespace prometheus::pool

#endif  // PROMETHEUS_QUERY_PARSER_H_
