# Empty compiler generated dependencies file for prometheus_common.
# This may be replaced when dependencies are built.
