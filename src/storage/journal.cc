#include "storage/journal.h"

#include <sstream>

#include "storage/snapshot.h"

namespace prometheus::storage {

namespace {
constexpr char kJournalMagic[] = "PROMETHEUS-JOURNAL-1";
}  // namespace

Result<std::unique_ptr<Journal>> Journal::Open(Database* db,
                                               const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << kJournalMagic << "\n";
  PROMETHEUS_RETURN_IF_ERROR(WriteSchemaRecords(*db, out));
  if (!out.good()) return Status::IoError("write failure");
  std::unique_ptr<Journal> journal(new Journal(db, std::move(out)));
  return journal;
}

Journal::Journal(Database* db, std::ofstream out)
    : db_(db), out_(std::move(out)) {
  listener_ = db_->bus().Subscribe(
      [this](const Event& e) {
        OnEvent(e);
        return Status::Ok();
      },
      /*priority=*/40);
}

Journal::~Journal() {
  db_->bus().Unsubscribe(listener_);
  out_ << "END\n";
  out_.flush();
}

Status Journal::Flush() {
  out_.flush();
  if (!out_.good()) return Status::IoError("journal write failure");
  return Status::Ok();
}

void Journal::Emit(std::string record) {
  if (record.empty()) return;
  if (in_transaction_) {
    pending_.push_back(std::move(record));
  } else {
    out_ << record << "\n";
    ++record_count_;
  }
}

void Journal::OnEvent(const Event& event) {
  switch (event.kind) {
    case EventKind::kTransactionBegin:
      in_transaction_ = true;
      pending_.clear();
      break;
    case EventKind::kAfterCommit:
      in_transaction_ = false;
      for (std::string& record : pending_) {
        out_ << record << "\n";
        ++record_count_;
      }
      pending_.clear();
      break;
    case EventKind::kAfterAbort:
      // The transaction never happened; its records (including the
      // compensating ones published during rollback) are dropped.
      in_transaction_ = false;
      pending_.clear();
      break;
    case EventKind::kAfterCreateObject:
      Emit(ObjectRecord(*db_, event.subject));
      break;
    case EventKind::kAfterDeleteObject:
      Emit("DELO " + std::to_string(event.subject));
      break;
    case EventKind::kAfterSetAttribute: {
      std::ostringstream rec;
      rec << "SETA " << event.subject << " "
          << std::to_string(event.attribute.size()) << ":" << event.attribute
          << " " << EncodeValue(event.new_value);
      Emit(rec.str());
      break;
    }
    case EventKind::kAfterCreateLink:
      Emit(LinkRecord(*db_, event.subject));
      break;
    case EventKind::kAfterDeleteLink:
      Emit("DELL " + std::to_string(event.subject));
      break;
    case EventKind::kAfterSetLinkAttribute: {
      std::ostringstream rec;
      rec << "SETL " << event.subject << " "
          << std::to_string(event.attribute.size()) << ":" << event.attribute
          << " " << EncodeValue(event.new_value);
      Emit(rec.str());
      break;
    }
    case EventKind::kAfterDeclareSynonym:
      // `target` is the child root united under `source`.
      Emit("SYN " + std::to_string(event.target) + " " +
           std::to_string(event.source));
      break;
    default:
      break;
  }
}

Status Journal::Replay(Database* db, std::istream& in) {
  if (!db->classes().empty() || db->object_count() != 0) {
    return Status::FailedPrecondition(
        "journals replay into an empty database");
  }
  std::string line;
  if (!std::getline(in, line) || line != kJournalMagic) {
    return Status::IoError("not a Prometheus journal");
  }
  // The journal is validated history: suspend semantic checks so that e.g.
  // constant links recorded as deleted (via participant death) replay.
  db->set_semantics_enabled(false);
  Status st = Status::Ok();
  bool end = false;
  while (!end && std::getline(in, line)) {
    st = ApplyRecord(db, line, &end);
    if (!st.ok()) break;
  }
  db->set_semantics_enabled(true);
  PROMETHEUS_RETURN_IF_ERROR(st);
  // A missing END record means the writer is still live or crashed; all
  // complete records were applied, which is the contract of a WAL.
  return Status::Ok();
}

Status Journal::Replay(Database* db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return Replay(db, in);
}

}  // namespace prometheus::storage
