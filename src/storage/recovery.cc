#include "storage/recovery.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.h"
#include "storage/snapshot.h"

namespace prometheus::storage {

namespace {

/// Process-wide store counters: how often stores opened/recovered and
/// checkpointed, and how much replay/damage recovery observed.
struct StoreMetrics {
  obs::Counter* recoveries;
  obs::Counter* torn_tails;
  obs::Counter* replayed_records;
  obs::Counter* checkpoints;

  static const StoreMetrics& Get() {
    static const StoreMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      StoreMetrics sm;
      sm.recoveries = reg.GetCounter("store_recoveries_total",
                                     "DurableStore::Open recoveries");
      sm.torn_tails = reg.GetCounter(
          "store_torn_tail_recoveries_total",
          "Recoveries that repaired a torn or corrupt journal tail");
      sm.replayed_records = reg.GetCounter(
          "store_replayed_records_total",
          "Journal records replayed during recovery");
      sm.checkpoints = reg.GetCounter("store_checkpoints_total",
                                      "Successful atomic checkpoints");
      return sm;
    }();
    return m;
  }
};

}  // namespace

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".pdb";
constexpr char kJournalPrefix[] = "journal-";
constexpr char kJournalSuffix[] = ".log";
constexpr char kTmpSuffix[] = ".tmp";

std::string SeqName(const char* prefix, std::uint64_t seq, const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(seq));
  return std::string(prefix) + buf + suffix;
}

bool ParseSeqName(const std::string& name, const char* prefix,
                  const char* suffix, std::uint64_t* seq) {
  std::string p(prefix), s(suffix);
  if (name.size() <= p.size() + s.size()) return false;
  if (name.compare(0, p.size(), p) != 0) return false;
  if (name.compare(name.size() - s.size(), s.size(), s) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = p.size(); i < name.size() - s.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

bool EndsWith(const std::string& name, const char* suffix) {
  std::string s(suffix);
  return name.size() >= s.size() &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

}  // namespace

std::string SnapshotFileName(std::uint64_t seq) {
  return SeqName(kSnapshotPrefix, seq, kSnapshotSuffix);
}

std::string JournalFileName(std::uint64_t seq) {
  return SeqName(kJournalPrefix, seq, kJournalSuffix);
}

bool ParseSnapshotFileName(const std::string& name, std::uint64_t* seq) {
  return ParseSeqName(name, kSnapshotPrefix, kSnapshotSuffix, seq);
}

bool ParseJournalFileName(const std::string& name, std::uint64_t* seq) {
  return ParseSeqName(name, kJournalPrefix, kJournalSuffix, seq);
}

DurableStore::DurableStore(std::string dir, Env* env)
    : dir_(std::move(dir)), env_(env) {}

DurableStore::~DurableStore() {
  if (journal_ != nullptr) (void)journal_->Close();
}

Status DurableStore::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok()) return sticky_;
  if (journal_ != nullptr) return journal_->status();
  return Status::Ok();
}

Status DurableStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok()) return sticky_;
  if (journal_ == nullptr) return Status::FailedPrecondition("no live journal");
  return journal_->Flush();
}

Status DurableStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok()) return sticky_;
  if (journal_ == nullptr) return Status::FailedPrecondition("no live journal");
  return journal_->Sync();
}

std::uint64_t DurableStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_seq_;
}

std::uint64_t DurableStore::journal_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_seq_;
}

void DurableStore::SetPruneFloor(std::function<std::uint64_t()> floor) {
  std::lock_guard<std::mutex> lock(mu_);
  prune_floor_ = std::move(floor);
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, Options options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  PROMETHEUS_RETURN_IF_ERROR(env->CreateDir(dir));
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                              env->ListDir(dir));

  std::map<std::uint64_t, std::string> snapshots;
  std::map<std::uint64_t, std::string> journals;
  for (const std::string& name : entries) {
    std::uint64_t seq = 0;
    if (EndsWith(name, kTmpSuffix)) {
      // Staging leftovers from a crashed checkpoint: never authoritative.
      (void)env->RemoveFile(dir + "/" + name);
    } else if (ParseSeqName(name, kSnapshotPrefix, kSnapshotSuffix, &seq)) {
      snapshots[seq] = name;
    } else if (ParseSeqName(name, kJournalPrefix, kJournalSuffix, &seq)) {
      journals[seq] = name;
    }
  }

  std::unique_ptr<DurableStore> store(new DurableStore(dir, env));

  // Newest snapshot that validates wins; corrupt ones are skipped (an older
  // snapshot plus the journal chain reconstructs the same state).
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto fresh = std::make_unique<Database>();
    Status st = LoadSnapshot(fresh.get(), dir + "/" + it->second);
    if (st.ok()) {
      store->db_ = std::move(fresh);
      store->snapshot_seq_ = it->first;
      store->info_.snapshot_file = it->second;
      break;
    }
    store->info_.skipped.push_back(it->second + ": " + st.ToString());
  }
  if (store->db_ == nullptr) store->db_ = std::make_unique<Database>();

  // Replay every journal after the snapshot, oldest first. Each journal's
  // state at rotation equals the snapshot that superseded it, so when a
  // snapshot is skipped as corrupt the surviving journal chain still
  // reconstructs the full committed history.
  Journal::ReplayReport last_report;
  std::uint64_t last_journal_seq = 0;
  std::string last_journal_path;
  for (const auto& [seq, name] : journals) {
    if (seq <= store->snapshot_seq_) continue;
    Journal::ReplayReport report;
    std::string path = dir + "/" + name;
    PROMETHEUS_RETURN_IF_ERROR(
        Journal::ReplayTail(store->db_.get(), path, &report));
    store->info_.replayed.push_back(name);
    store->info_.replayed_records += report.applied_records;
    store->info_.dropped_records += report.dropped_records;
    store->info_.dropped_bytes += report.dropped_bytes;
    store->info_.torn_tail = store->info_.torn_tail || report.torn_tail;
    last_report = report;
    last_journal_seq = seq;
    last_journal_path = path;
  }

  if (last_journal_seq != 0 && last_report.resumable) {
    // Resume appending to the live journal after cutting its tail back to
    // the last intact record (drops torn bytes and the END marker).
    PROMETHEUS_RETURN_IF_ERROR(
        env->TruncateFile(last_journal_path, last_report.append_offset));
    PROMETHEUS_ASSIGN_OR_RETURN(
        store->journal_,
        Journal::Open(store->db_.get(), last_journal_path,
                      Journal::OpenMode::kAppend, env));
    store->journal_seq_ = last_journal_seq;
  } else {
    // No journal, or one whose header/prologue never hit the disk: a
    // prologue without its EOS marker cannot be followed by mutation
    // records, so nothing durable is lost by starting over. A brand-new
    // store runs the bootstrap first so the schema lands in the journal
    // prologue.
    if (store->snapshot_seq_ == 0 && store->info_.replayed_records == 0) {
      store->db_ = std::make_unique<Database>();  // drop any partial prologue
      if (options.bootstrap) {
        PROMETHEUS_RETURN_IF_ERROR(options.bootstrap(store->db_.get()));
      }
    }
    store->journal_seq_ =
        std::max(last_journal_seq, store->snapshot_seq_ + 1);
    PROMETHEUS_RETURN_IF_ERROR(store->OpenJournalFresh());
  }

  // Janitor: keep the loaded snapshot plus one fallback generation (the
  // previous snapshot and the journals that, replayed on top of it,
  // reconstruct the loaded one — the escape hatch if the loaded snapshot
  // file is damaged later). Everything older is unreachable.
  std::uint64_t keep_floor = 0;
  for (const auto& [seq, name] : snapshots) {
    if (seq < store->snapshot_seq_ && seq > keep_floor) keep_floor = seq;
  }
  for (const auto& [seq, name] : snapshots) {
    if (seq < keep_floor) (void)env->RemoveFile(dir + "/" + name);
  }
  for (const auto& [seq, name] : journals) {
    if (seq <= keep_floor) (void)env->RemoveFile(dir + "/" + name);
  }

  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.recoveries->Increment();
  metrics.replayed_records->Increment(store->info_.replayed_records);
  if (store->info_.torn_tail) metrics.torn_tails->Increment();
  return store;
}

DurableStore::Stats DurableStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  if (journal_ != nullptr) {
    s.journal_records = journal_->record_count();
    s.journal_bytes = journal_->bytes_written();
    s.journal_syncs = journal_->sync_count();
  }
  s.generation = snapshot_seq_;
  s.journal_seq = journal_seq_;
  s.checkpoints = checkpoints_;
  s.replayed_records = info_.replayed_records;
  s.dropped_records = info_.dropped_records;
  s.torn_tail = info_.torn_tail;
  return s;
}

Status DurableStore::OpenJournalFresh() {
  std::string path = dir_ + "/" + JournalFileName(journal_seq_);
  if (snapshot_seq_ == 0 && info_.replayed_records == 0) {
    PROMETHEUS_ASSIGN_OR_RETURN(
        journal_, Journal::Open(db_.get(), path, Journal::OpenMode::kTruncate,
                                env_));
  } else {
    PROMETHEUS_ASSIGN_OR_RETURN(
        journal_, Journal::OpenContinuation(db_.get(), path, env_));
  }
  return Status::Ok();
}

Status DurableStore::Checkpoint() {
  std::uint64_t new_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    new_seq = journal_seq_ + 1;
  }
  const std::string snapshot_path = dir_ + "/" + SnapshotFileName(new_seq);
  // Atomic write: temp + fsync + rename + directory fsync. A crash at any
  // point leaves the previous snapshot untouched and the live journal
  // authoritative — SaveSnapshot's path overload stages in `.tmp`. The
  // caller holds exclusive database access, so journal_seq_ cannot move
  // while the snapshot is written (no other thread checkpoints or appends).
  PROMETHEUS_RETURN_IF_ERROR(SaveSnapshot(*db_, snapshot_path, env_));

  // The snapshot is durable: rotate to a fresh continuation journal. The
  // swap happens under mu_ so concurrent observers (stats, the replication
  // endpoint) never see a half-rotated store.
  std::uint64_t old_snapshot_seq = 0;
  std::function<std::uint64_t()> floor_fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_snapshot_seq = snapshot_seq_;
    if (journal_ != nullptr) {
      (void)journal_->Close();  // best effort; the snapshot supersedes it
      journal_.reset();
    }
    snapshot_seq_ = new_seq;
    journal_seq_ = new_seq + 1;
    Result<std::unique_ptr<Journal>> rotated = Journal::OpenContinuation(
        db_.get(), dir_ + "/" + JournalFileName(journal_seq_), env_);
    if (!rotated.ok()) {
      // State is safe on disk but new mutations would not be journalled:
      // latch the failure so status() screams until the store is reopened.
      sticky_ = rotated.status();
      return sticky_;
    }
    journal_ = std::move(rotated).value();
    // The snapshot persisted the full in-memory state and the rotation gave
    // mutations a healthy journal to land in — whatever failure was latched
    // (a dead journal, a failed earlier rotation) is superseded. This is the
    // operator's re-arm path out of degraded read-only mode.
    sticky_ = Status::Ok();
    ++checkpoints_;
    floor_fn = prune_floor_;
  }

  // Prune generations older than the fallback pair (previous snapshot +
  // the journal that supersedes it), but never at or above the replication
  // prune floor: a follower mid-download keeps its generation alive. The
  // hook runs outside mu_ (it takes the replication endpoint's own lock).
  // Crash-tolerant: recovery ignores leftovers.
  const std::uint64_t floor = floor_fn ? floor_fn() : ~0ull;
  for (std::uint64_t seq = 1; seq < old_snapshot_seq; ++seq) {
    if (seq >= floor) break;
    (void)env_->RemoveFile(dir_ + "/" + SnapshotFileName(seq));
  }
  for (std::uint64_t seq = 1; seq <= old_snapshot_seq; ++seq) {
    if (seq >= floor) break;
    (void)env_->RemoveFile(dir_ + "/" + JournalFileName(seq));
  }
  StoreMetrics::Get().checkpoints->Increment();
  return Status::Ok();
}

}  // namespace prometheus::storage
