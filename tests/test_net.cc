// The remote telemetry plane (src/net/): the HTTP/1.1 message parser's
// conformance and limits, the strict Prometheus exposition parser the CI
// smoke job reuses, and end-to-end socket tests of every route the
// front-end mounts — including the load-bearing guarantee that a /metrics
// scrape completes while a writer holds the database's exclusive guard.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "prometheus_text_parser.h"
#include "server/server.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Result;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::net::HttpConnection;
using prometheus::net::HttpFetch;
using prometheus::net::HttpFrontEnd;
using prometheus::net::HttpLimits;
using prometheus::net::HttpRequest;
using prometheus::net::HttpResponse;
using prometheus::net::ParseHttpRequest;
using prometheus::net::ParseHttpResponse;
using prometheus::net::ParseResult;
using prometheus::net::SerializeHttpResponse;
using prometheus::server::Server;
using prometheus::testing::ParsePrometheusText;
using prometheus::testing::PromExposition;
using prometheus::testing::PromFamily;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::unique_ptr<Database> MakePartsDb(int rows = 8) {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt)})
                  .ok());
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(db->CreateObject("Part",
                                 {{"name", Value::String("p" +
                                                         std::to_string(i))},
                                  {"a", Value::Int(i)}})
                    .ok());
  }
  return db;
}

// --------------------------------------------------------- HTTP parsing

TEST(HttpParserTest, ParsesSimpleGet) {
  const std::string wire =
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseHttpRequest(wire, &consumed, &req, &error),
            ParseResult::kComplete)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(req.version, "HTTP/1.1");
  ASSERT_NE(req.Header("host"), nullptr);
  EXPECT_EQ(*req.Header("host"), "localhost");
  EXPECT_TRUE(req.KeepAlive());
}

TEST(HttpParserTest, ParsesBodyByContentLength) {
  const std::string wire =
      "POST /query HTTP/1.1\r\nContent-Length: 8\r\n\r\nselect 1extra";
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseHttpRequest(wire, &consumed, &req, &error),
            ParseResult::kComplete);
  EXPECT_EQ(req.body, "select 1");
  // The trailing bytes belong to the next pipelined message.
  EXPECT_EQ(consumed, wire.size() - 5);
}

TEST(HttpParserTest, IncompleteUntilSeparatorAndBodyArrive) {
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseHttpRequest("GET /x HTTP/1.1\r\nHost:", &consumed, &req,
                             &error),
            ParseResult::kIncomplete);
  EXPECT_EQ(ParseHttpRequest("POST /q HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
                             "short",
                             &consumed, &req, &error),
            ParseResult::kIncomplete);
}

TEST(HttpParserTest, RejectsMalformedInput) {
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseHttpRequest("NOT A REQUEST\r\n\r\n", &consumed, &req,
                             &error),
            ParseResult::kBad);
  EXPECT_EQ(ParseHttpRequest("GET metrics HTTP/1.1\r\n\r\n", &consumed, &req,
                             &error),
            ParseResult::kBad);
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/9.9\r\n\r\n", &consumed, &req,
                             &error),
            ParseResult::kBad);
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nbad header line\r\n\r\n",
                             &consumed, &req, &error),
            ParseResult::kBad);
  EXPECT_EQ(ParseHttpRequest(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &consumed, &req, &error),
            ParseResult::kBad);
}

TEST(HttpParserTest, RejectsConflictingContentLengths) {
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  // Conflicting duplicates invite request smuggling behind a proxy that
  // honoured the other one (RFC 9112 §6.3) — reject, never last-wins.
  EXPECT_EQ(ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 4\r\n"
                             "Content-Length: 8\r\n\r\nbodybody",
                             &consumed, &req, &error),
            ParseResult::kBad);
  // Duplicates that agree are collapsed to the one value.
  EXPECT_EQ(ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 4\r\n"
                             "Content-Length: 4\r\n\r\nbody",
                             &consumed, &req, &error),
            ParseResult::kComplete);
  EXPECT_EQ(req.body, "body");
}

TEST(HttpParserTest, EnforcesLimits) {
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  HttpLimits tight;
  tight.max_body_bytes = 4;
  EXPECT_EQ(ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
                             &consumed, &req, &error, tight),
            ParseResult::kTooLarge);
  // A head that can never fit is rejected even before the separator shows.
  HttpLimits small;
  small.max_request_line = 8;
  small.max_header_bytes = 8;
  const std::string runaway(64, 'a');
  EXPECT_EQ(ParseHttpRequest(runaway, &consumed, &req, &error, small),
            ParseResult::kTooLarge);
}

TEST(HttpParserTest, ResponseRoundTripsThroughSerializer) {
  const std::string wire = SerializeHttpResponse(
      200, "application/json", "{\"ok\":true}", /*keep_alive=*/true,
      {{"X-Extra", "1"}});
  HttpResponse resp;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseHttpResponse(wire, &consumed, &resp, &error),
            ParseResult::kComplete)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_EQ(resp.body, "{\"ok\":true}");
  ASSERT_NE(resp.Header("x-extra"), nullptr);
  ASSERT_NE(resp.Header("content-length"), nullptr);
  EXPECT_EQ(*resp.Header("content-length"),
            std::to_string(resp.body.size()));
}

// ------------------------------------- Prometheus conformance parser

TEST(PromParserTest, AcceptsWellFormedExposition) {
  const std::string text =
      "# HELP requests_total Requests served.\n"
      "# TYPE requests_total counter\n"
      "requests_total{kind=\"query\"} 10\n"
      "requests_total{kind=\"mutation\"} 3\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"1\"} 1\n"
      "lat_bucket{le=\"+Inf\"} 4\n"
      "lat_sum 12.5\n"
      "lat_count 4\n";
  PromExposition exposition;
  const std::string error = ParsePrometheusText(text, &exposition);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(exposition.families.size(), 3u);
  const auto* counter = exposition.Find("requests_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->type, "counter");
  EXPECT_EQ(counter->help, "Requests served.");
  ASSERT_EQ(counter->samples.size(), 2u);
  EXPECT_EQ(counter->samples[0].Label("kind"), "query");
  EXPECT_EQ(counter->samples[0].value, 10);
}

TEST(PromParserTest, UnescapesLabelValues) {
  const std::string text =
      "# TYPE build_info gauge\n"
      "build_info{v=\"a\\\\b\\\"c\\nd\"} 1\n";
  PromExposition exposition;
  ASSERT_TRUE(ParsePrometheusText(text, &exposition).empty());
  EXPECT_EQ(exposition.families[0].samples[0].Label("v"), "a\\b\"c\nd");
}

TEST(PromParserTest, RejectsMalformedExpositions) {
  PromExposition e;
  // Each payload violates exactly one rule the renderer must uphold.
  EXPECT_FALSE(ParsePrometheusText("", &e).empty());
  EXPECT_FALSE(ParsePrometheusText("# TYPE x counter\nx 1", &e).empty())
      << "missing trailing newline must be rejected";
  EXPECT_FALSE(ParsePrometheusText("x 1\n", &e).empty())
      << "sample without # TYPE must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# EOF\n", &e).empty())
      << "unknown comment form must be rejected";
  EXPECT_FALSE(
      ParsePrometheusText("# TYPE x counter\n# TYPE x counter\nx 1\n", &e)
          .empty())
      << "duplicate TYPE must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE x frobnicator\nx 1\n", &e).empty())
      << "unknown type must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE x counter\nx notanumber\n", &e)
                   .empty())
      << "non-numeric value must be rejected";
  EXPECT_FALSE(
      ParsePrometheusText("# TYPE x counter\nx{l=\"v\\t\"} 1\n", &e).empty())
      << "illegal label escape must be rejected";
  EXPECT_FALSE(
      ParsePrometheusText("# TYPE x counter\nx{1bad=\"v\"} 1\n", &e).empty())
      << "malformed label name must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE 0bad counter\n0bad 1\n", &e)
                   .empty())
      << "malformed metric name must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"+Inf\"} 3\n"
                                   "h_sum 1\nh_count 3\n",
                                   &e)
                   .empty())
      << "non-cumulative buckets must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 1\n"
                                   "h_sum 1\nh_count 1\n",
                                   &e)
                   .empty())
      << "histogram without +Inf bucket must be rejected";
  EXPECT_FALSE(ParsePrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"+Inf\"} 3\n"
                                   "h_sum 1\nh_count 2\n",
                                   &e)
                   .empty())
      << "_count disagreeing with +Inf bucket must be rejected";
}

TEST(PromParserTest, RegistryRenderIsConformant) {
  prometheus::obs::MetricsRegistry reg;
  reg.GetCounter("a_total", "things that happened")->Increment(5);
  reg.GetGauge("b_depth", "current depth")->Set(3);
  reg.GetHistogram("c_micros", "latencies", {10, 100, 1000})->Observe(42);
  // A label value carrying every character the escaper must handle.
  reg.GetGauge("build_info{v=\"" +
                   prometheus::obs::EscapeLabelValue("a\\b\"c\nd") + "\"}",
               "escaping round-trip")
      ->Set(1);

  PromExposition exposition;
  const std::string text = reg.RenderPrometheusText();
  const std::string error = ParsePrometheusText(text, &exposition);
  EXPECT_TRUE(error.empty()) << error << "\n--- payload ---\n" << text;
  const auto* info = exposition.Find("build_info");
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->samples.size(), 1u);
  // The parser unescapes back to the original runtime value.
  EXPECT_EQ(info->samples[0].Label("v"), "a\\b\"c\nd");
}

// --------------------------------------------------------- end-to-end

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakePartsDb();
    Server::Options options;
    options.worker_threads = 2;
    options.queue_capacity = 64;
    server_ = std::make_unique<Server>(db_.get(), options);
    HttpFrontEnd::Options net_options;
    net_options.port = 0;  // ephemeral
    net_options.handler_threads = 2;
    front_ = std::make_unique<HttpFrontEnd>(server_.get(), net_options);
    ASSERT_TRUE(front_->Start().ok());
    ASSERT_GT(front_->port(), 0);
  }

  void TearDown() override {
    front_->Stop();
    server_->Shutdown();
  }

  HttpResponse Fetch(const std::string& method, const std::string& target,
                     std::string_view body = {},
                     const std::vector<std::pair<std::string, std::string>>&
                         headers = {}) {
    auto result = HttpFetch("127.0.0.1", front_->port(), method, target,
                            body, headers);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : HttpResponse{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<HttpFrontEnd> front_;
};

TEST_F(NetTest, MetricsScrapeIsConformant) {
  const HttpResponse resp = Fetch("GET", "/metrics");
  EXPECT_EQ(resp.status_code, 200);
  ASSERT_NE(resp.Header("content-type"), nullptr);
  EXPECT_NE(resp.Header("content-type")->find("version=0.0.4"),
            std::string::npos);
  PromExposition exposition;
  const std::string error = ParsePrometheusText(resp.body, &exposition);
  EXPECT_TRUE(error.empty()) << error << "\n--- payload ---\n" << resp.body;
  // Restart detection and build identity ride along on every scrape.
  ASSERT_NE(exposition.FindSample("server_epoch"), nullptr);
  EXPECT_EQ(exposition.FindSample("server_epoch")->value,
            static_cast<double>(server_->server_epoch()));
  EXPECT_NE(exposition.Find("prometheus_build_info"), nullptr);
  EXPECT_NE(exposition.Find("process_uptime_seconds"), nullptr);
}

TEST_F(NetTest, MetricsScrapeCompletesWhileWriterHoldsExclusiveGuard) {
  // The load-bearing guarantee: telemetry routes never touch the database
  // guard, so a scrape succeeds while a writer is mid-mutation.
  std::atomic<bool> release{false};
  std::thread writer([&] {
    Database::WriteGuard guard(*db_);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Give the writer time to actually acquire the guard.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const HttpResponse metrics = Fetch("GET", "/metrics");
  EXPECT_EQ(metrics.status_code, 200);
  const HttpResponse health = Fetch("GET", "/health");
  EXPECT_EQ(health.status_code, 200);
  const HttpResponse recents = Fetch("GET", "/debug/requests");
  EXPECT_EQ(recents.status_code, 200);

  release.store(true);
  writer.join();
}

TEST_F(NetTest, HealthAndStatsCarryServerEpoch) {
  const HttpResponse health = Fetch("GET", "/health");
  EXPECT_EQ(health.status_code, 200);
  EXPECT_NE(health.body.find("\"server_epoch\":" +
                             std::to_string(server_->server_epoch())),
            std::string::npos);
  const HttpResponse stats = Fetch("GET", "/stats");
  EXPECT_EQ(stats.status_code, 200);
  EXPECT_NE(stats.body.find("\"server_epoch\":" +
                            std::to_string(server_->server_epoch())),
            std::string::npos);
}

TEST_F(NetTest, PostQueryReturnsRows) {
  const HttpResponse resp =
      Fetch("POST", "/query", "select p.name from Part p where p.a < 3");
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_NE(resp.body.find("\"code\":\"ok\""), std::string::npos);
  EXPECT_NE(resp.body.find("p0"), std::string::npos);
  EXPECT_NE(resp.body.find("p2"), std::string::npos);
}

TEST_F(NetTest, PostProfileCarriesSpanTree) {
  const HttpResponse resp =
      Fetch("POST", "/profile", "select p.name from Part p");
  EXPECT_EQ(resp.status_code, 200);
  // The span tree rides in "text"; stage names prove it is the real trace.
  EXPECT_NE(resp.body.find("\"text\""), std::string::npos);
  EXPECT_NE(resp.body.find("execute"), std::string::npos);
}

TEST_F(NetTest, QueryErrorsMapToHttpStatuses) {
  // Parse error → 400 with the database status in the body.
  const HttpResponse bad = Fetch("POST", "/query", "selec nonsense");
  EXPECT_EQ(bad.status_code, 400);
  // An already-expired deadline → 504 deterministically.
  const HttpResponse expired =
      Fetch("POST", "/query", "select p from Part p",
            {{"X-Deadline-Micros", "0"}});
  EXPECT_EQ(expired.status_code, 504);
  EXPECT_NE(expired.body.find("timed_out"), std::string::npos);
  // A malformed deadline is a client error, not a silently ignored header.
  const HttpResponse malformed =
      Fetch("POST", "/query", "select p from Part p",
            {{"X-Deadline-Micros", "soon"}});
  EXPECT_EQ(malformed.status_code, 400);
  // A 20-digit deadline overflows int64 — it must answer 400, not throw
  // out_of_range on the handler thread and terminate the server.
  const HttpResponse overflow =
      Fetch("POST", "/query", "select p from Part p",
            {{"X-Deadline-Micros", "99999999999999999999"}});
  EXPECT_EQ(overflow.status_code, 400);
  EXPECT_NE(overflow.body.find("out of range"), std::string::npos);
  // The server survived to serve the next request.
  EXPECT_EQ(Fetch("GET", "/health").status_code, 200);
  const HttpResponse bad_priority =
      Fetch("POST", "/query", "select p from Part p",
            {{"X-Priority", "urgent"}});
  EXPECT_EQ(bad_priority.status_code, 400);
  // Valid priorities are accepted.
  const HttpResponse low = Fetch("POST", "/query", "select p from Part p",
                                 {{"X-Priority", "low"}});
  EXPECT_EQ(low.status_code, 200);
}

TEST_F(NetTest, RoutingErrors) {
  EXPECT_EQ(Fetch("GET", "/nope").status_code, 404);
  EXPECT_EQ(Fetch("GET", "/query").status_code, 405);
  EXPECT_EQ(Fetch("POST", "/metrics", "x").status_code, 405);
  EXPECT_EQ(Fetch("POST", "/query", "").status_code, 400);
}

TEST_F(NetTest, KeepAliveServesMultipleRequestsPerConnection) {
  // Snapshot before connecting: the acceptor counts the connection
  // asynchronously, so sampling after Connect() would race with it.
  const auto before = front_->stats();
  auto conn = HttpConnection::Connect("127.0.0.1", front_->port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto first = conn.value()->RoundTrip("GET", "/health");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status_code, 200);
  auto second = conn.value()->RoundTrip("POST", "/query",
                                        "select p.name from Part p");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().status_code, 200);
  const auto after = front_->stats();
  EXPECT_EQ(after.requests_served, before.requests_served + 2);
  // Both requests rode one accepted connection.
  EXPECT_EQ(after.connections_accepted, before.connections_accepted + 1);
}

TEST_F(NetTest, FlightRecorderSurfacesServedRequests) {
  ASSERT_EQ(Fetch("POST", "/query", "select p.name from Part p").status_code,
            200);
  ASSERT_EQ(
      Fetch("POST", "/profile", "select p.name from Part p").status_code,
      200);
  const HttpResponse recents = Fetch("GET", "/debug/requests");
  EXPECT_EQ(recents.status_code, 200);
  EXPECT_NE(recents.body.find("\"type\":\"query\""), std::string::npos);
  EXPECT_NE(recents.body.find("select p.name"), std::string::npos);
  // The profiled request kept its per-stage span tree.
  EXPECT_NE(recents.body.find("\"stages\""), std::string::npos);
}

TEST_F(NetTest, TraceIdRoundTripsAndFiltersDebugRequests) {
  // Caller-supplied id: echoed in the response header and retrievable by
  // exact match from /debug/requests?id=.
  const HttpResponse traced =
      Fetch("POST", "/query", "select p.name from Part p",
            {{"X-Trace-Id", "t-123"}});
  EXPECT_EQ(traced.status_code, 200);
  ASSERT_NE(traced.Header("x-trace-id"), nullptr);
  EXPECT_EQ(*traced.Header("x-trace-id"), "t-123");

  // A second, untraced request lands in the recorder too — the filter must
  // exclude it.
  EXPECT_EQ(Fetch("POST", "/query", "select p from Part p").status_code, 200);

  const HttpResponse filtered = Fetch("GET", "/debug/requests?id=t-123");
  EXPECT_EQ(filtered.status_code, 200);
  EXPECT_NE(filtered.body.find("\"trace_id\":\"t-123\""), std::string::npos);
  EXPECT_EQ(filtered.body.find("select p from Part p"), std::string::npos)
      << filtered.body;
  // An id nothing matches yields an empty array, not a 404.
  const HttpResponse none = Fetch("GET", "/debug/requests?id=absent");
  EXPECT_EQ(none.status_code, 200);
  EXPECT_EQ(none.body, "[]");
}

TEST_F(NetTest, TraceIdAssignedWhenAbsent) {
  const HttpResponse resp =
      Fetch("POST", "/query", "select p.name from Part p");
  EXPECT_EQ(resp.status_code, 200);
  // The server stamped an epoch-prefixed id and echoed it.
  ASSERT_NE(resp.Header("x-trace-id"), nullptr);
  const std::string prefix = std::to_string(server_->server_epoch()) + "-";
  EXPECT_EQ(resp.Header("x-trace-id")->rfind(prefix, 0), 0u)
      << *resp.Header("x-trace-id");
}

TEST_F(NetTest, MalformedTraceIdIsA400) {
  const HttpResponse bad_post =
      Fetch("POST", "/query", "select p from Part p",
            {{"X-Trace-Id", "has spaces"}});
  EXPECT_EQ(bad_post.status_code, 400);
  EXPECT_NE(bad_post.body.find("X-Trace-Id"), std::string::npos);
  const HttpResponse bad_get =
      Fetch("GET", "/health", {}, {{"X-Trace-Id", std::string(200, 'a')}});
  EXPECT_EQ(bad_get.status_code, 400);
  // The server survived both.
  EXPECT_EQ(Fetch("GET", "/health").status_code, 200);
}

TEST_F(NetTest, TracedTelemetryGetsAreRecordedAndEchoed) {
  const HttpResponse resp =
      Fetch("GET", "/health", {}, {{"X-Trace-Id", "probe-7"}});
  EXPECT_EQ(resp.status_code, 200);
  ASSERT_NE(resp.Header("x-trace-id"), nullptr);
  EXPECT_EQ(*resp.Header("x-trace-id"), "probe-7");
  const HttpResponse filtered = Fetch("GET", "/debug/requests?id=probe-7");
  EXPECT_NE(filtered.body.find("\"trace_id\":\"probe-7\""),
            std::string::npos);
  EXPECT_NE(filtered.body.find("GET /health"), std::string::npos);
}

TEST_F(NetTest, DebugContentionServesCumulativeAndWindowedReports) {
  ASSERT_EQ(Fetch("POST", "/query", "select p.name from Part p").status_code,
            200);
  const HttpResponse report = Fetch("GET", "/debug/contention");
  EXPECT_EQ(report.status_code, 200);
  EXPECT_NE(report.body.find("\"windowed\":false"), std::string::npos);
  for (const char* state :
       {"admission", "queue", "guard_shared", "guard_exclusive", "execute",
        "journal_append", "journal_sync", "serialize"}) {
    EXPECT_NE(report.body.find("\"" + std::string(state) + "\""),
              std::string::npos)
        << state << " missing from " << report.body;
  }
  EXPECT_NE(report.body.find("\"blocked_readers\""), std::string::npos);

  const HttpResponse windowed = Fetch("GET", "/debug/contention?window=1");
  EXPECT_EQ(windowed.status_code, 200);
  EXPECT_NE(windowed.body.find("\"windowed\":true"), std::string::npos);
  // Wrong verb on the new route answers 405 like its siblings.
  EXPECT_EQ(Fetch("POST", "/debug/contention", "x").status_code, 405);
}

TEST_F(NetTest, DebugRequestsValidatesTheLimitParameter) {
  ASSERT_EQ(Fetch("POST", "/query", "select p.name from Part p").status_code,
            200);
  // A valid limit trims to the N most recent entries: exactly one "id"
  // key survives however many requests ran before.
  const HttpResponse limited = Fetch("GET", "/debug/requests?limit=1");
  EXPECT_EQ(limited.status_code, 200);
  const std::string id_key = "\"id\":";
  std::size_t ids = 0;
  for (std::size_t at = limited.body.find(id_key); at != std::string::npos;
       at = limited.body.find(id_key, at + id_key.size())) {
    ++ids;
  }
  EXPECT_EQ(ids, 1u) << limited.body;
  // Malformed or out-of-range values answer 400, not a silent default.
  for (const char* bad :
       {"limit=0", "limit=-1", "limit=abc", "limit=", "limit=1e3",
        "limit=2000000", "limit=99999999"}) {
    const HttpResponse resp =
        Fetch("GET", std::string("/debug/requests?") + bad);
    EXPECT_EQ(resp.status_code, 400) << bad << ": " << resp.body;
    EXPECT_NE(resp.body.find("limit must be an integer"), std::string::npos)
        << bad;
  }
}

TEST_F(NetTest, DebugContentionValidatesTheWindowParameter) {
  for (const char* good : {"window=1", "window=0", "window=true",
                           "window=false", "window="}) {
    EXPECT_EQ(
        Fetch("GET", std::string("/debug/contention?") + good).status_code,
        200)
        << good;
  }
  for (const char* bad : {"window=2", "window=yes", "window=TRUE",
                          "window=01", "window=x"}) {
    const HttpResponse resp =
        Fetch("GET", std::string("/debug/contention?") + bad);
    EXPECT_EQ(resp.status_code, 400) << bad << ": " << resp.body;
    EXPECT_NE(resp.body.find("window must be one of"), std::string::npos)
        << bad;
  }
}

TEST_F(NetTest, PostQueryServesTheSystemCatalog) {
  // The catalog's struct rows ride the same JSON envelope as any query.
  const HttpResponse resp = Fetch(
      "POST", "/query",
      "select s.class, s.rows from sys.storage s where s.class = 'Part'");
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_NE(resp.body.find("\"code\":\"ok\""), std::string::npos);
  // String cells render POOL-style (quoted) and then JSON-escape.
  EXPECT_NE(resp.body.find("\\\"Part\\\""), std::string::npos) << resp.body;
  // Whole structs serialize through their rendered form, escaped.
  const HttpResponse whole =
      Fetch("POST", "/query", "select m from sys.metrics m limit 1");
  EXPECT_EQ(whole.status_code, 200);
  EXPECT_NE(whole.body.find("name:"), std::string::npos) << whole.body;
}

TEST_F(NetTest, MetricsConformanceCoversWaitStateFamilies) {
  // Force every contention family to register, then drive traffic through
  // them, then hold the whole exposition to the strict parser.
  ASSERT_EQ(Fetch("GET", "/debug/contention").status_code, 200);
  ASSERT_EQ(Fetch("POST", "/query", "select p.name from Part p").status_code,
            200);
  const HttpResponse scrape = Fetch("GET", "/metrics");
  ASSERT_EQ(scrape.status_code, 200);
  PromExposition exposition;
  const std::string error = ParsePrometheusText(scrape.body, &exposition);
  EXPECT_TRUE(error.empty()) << error << "\n--- payload ---\n" << scrape.body;
  for (const char* family :
       {"guard_wait_micros", "guard_hold_micros", "guard_blocked_readers",
        "guard_blocked_writers", "guard_writer_held",
        "guard_writer_last_hold_micros", "request_wait_micros",
        "journal_append_micros", "journal_sync_micros"}) {
    EXPECT_NE(exposition.Find(family), nullptr) << family << " not exposed";
  }
  // The labelled families carry their mode/state labels.
  const PromFamily* guard_wait = exposition.Find("guard_wait_micros");
  ASSERT_NE(guard_wait, nullptr);
  bool saw_shared = false;
  for (const auto& s : guard_wait->samples) {
    if (s.Label("mode") == "shared") saw_shared = true;
  }
  EXPECT_TRUE(saw_shared);
  const PromFamily* request_wait = exposition.Find("request_wait_micros");
  ASSERT_NE(request_wait, nullptr);
  bool saw_queue = false;
  for (const auto& s : request_wait->samples) {
    if (s.Label("state") == "queue") saw_queue = true;
  }
  EXPECT_TRUE(saw_queue);
}

TEST_F(NetTest, MalformedWireBytesGetA400) {
  auto conn = HttpConnection::Connect("127.0.0.1", front_->port());
  ASSERT_TRUE(conn.ok());
  // RoundTrip can't send garbage; use the serializer-free path by driving
  // a raw request through the parser contract instead: an invalid method
  // line must close with 400.
  const auto before_bad = front_->stats().bad_requests;
  auto resp = conn.value()->RoundTrip("BAD METHOD", "/x");
  // "BAD METHOD" contains a space, so the serialized request line has four
  // tokens — the server must reject it and close.
  if (resp.ok()) {
    EXPECT_EQ(resp.value().status_code, 400);
  }
  EXPECT_GE(front_->stats().bad_requests, before_bad);
}

TEST_F(NetTest, StopIsIdempotentAndRejectsRestart) {
  front_->Stop();
  front_->Stop();
  EXPECT_FALSE(front_->running());
}

}  // namespace
