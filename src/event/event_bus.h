#ifndef PROMETHEUS_EVENT_EVENT_BUS_H_
#define PROMETHEUS_EVENT_EVENT_BUS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "event/event.h"

namespace prometheus {

/// Identifier of a registered listener, used to unsubscribe.
using ListenerId = std::uint64_t;

/// Synchronous publish/subscribe hub for database events.
///
/// The event layer sits at the bottom of the Prometheus architecture
/// (figure 26): the object layer publishes, and the index layer, the rule
/// engine and user observers subscribe. Listeners of *before* events return
/// a Status — the first non-OK status vetoes the mutation and is surfaced to
/// the caller, which is how pre-condition rules and built-in relationship
/// semantics (exclusivity, constancy, ...) reject operations. Listeners of
/// *after* events are observers; their status is ignored.
class EventBus {
 public:
  /// A listener receives every published event. Returning non-OK from a
  /// before-event vetoes it.
  using Listener = std::function<Status(const Event&)>;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Registers `listener`; higher `priority` runs earlier. Built-in layers
  /// (semantics enforcement, indexes) register at priority >= 100 so user
  /// rules observe a consistent database.
  ListenerId Subscribe(Listener listener, int priority = 0);

  /// Removes a listener. Unknown ids are ignored.
  void Unsubscribe(ListenerId id);

  /// Delivers `event` to all listeners in priority order. For before-events
  /// the first veto short-circuits delivery and is returned. For
  /// after-events every listener runs; the first non-OK status (if any) is
  /// returned afterwards so invariant rules can undo the mutation.
  Status Publish(const Event& event);

  /// Number of currently registered listeners.
  std::size_t listener_count() const { return entries_.size(); }

  /// Total number of events delivered (for the feature-cost benchmarks).
  std::uint64_t published_count() const { return published_count_; }

 private:
  struct Entry {
    ListenerId id;
    int priority;
    Listener listener;
  };

  std::vector<Entry> entries_;  // kept sorted by descending priority
  ListenerId next_id_ = 1;
  std::uint64_t published_count_ = 0;
};

}  // namespace prometheus

#endif  // PROMETHEUS_EVENT_EVENT_BUS_H_
