#include "taxonomy/synthetic.h"

#include <random>
#include <string>

namespace prometheus::taxonomy {

namespace {

/// Pronounceable deterministic latin-ish name for index `i`.
std::string SyntheticElement(const char* stem, int i, bool capital) {
  static const char* kSyllables[] = {"pa", "re", "li", "no", "ta",
                                     "ve", "mu", "si", "co", "da"};
  std::string word = stem;
  int n = i;
  for (int k = 0; k < 3; ++k) {
    word += kSyllables[n % 10];
    n /= 10;
  }
  if (capital && !word.empty()) {
    word[0] = static_cast<char>(std::toupper(word[0]));
  } else if (!capital && !word.empty()) {
    word[0] = static_cast<char>(std::tolower(word[0]));
  }
  return word;
}

}  // namespace

Result<Flora> GenerateFlora(TaxonomyDatabase* tdb,
                            const FloraConfig& config) {
  Flora flora;
  std::mt19937 rng(config.seed);
  PROMETHEUS_ASSIGN_OR_RETURN(
      flora.classification,
      tdb->NewClassification("synthetic flora", "generator",
                             config.base_year));
  std::int64_t year = config.base_year;
  int species_counter = 0;
  for (int f = 0; f < config.families; ++f) {
    std::string family_element =
        SyntheticElement("fam", f, /*capital=*/true) + "aceae";
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid family_taxon,
        tdb->NewTaxon(flora.classification, Rank::kFamilia, family_element));
    flora.family_taxa.push_back(family_taxon);
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid family_name, tdb->PublishName(family_element, Rank::kFamilia,
                                          "Gen.", year));
    flora.names.push_back(family_name);
    PROMETHEUS_RETURN_IF_ERROR(tdb->AscribeName(family_taxon, family_name));

    for (int g = 0; g < config.genera_per_family; ++g) {
      std::string genus_element = SyntheticElement(
          "g", f * config.genera_per_family + g, /*capital=*/true);
      PROMETHEUS_ASSIGN_OR_RETURN(
          Oid genus_taxon,
          tdb->NewTaxon(flora.classification, Rank::kGenus, genus_element));
      flora.genus_taxa.push_back(genus_taxon);
      PROMETHEUS_RETURN_IF_ERROR(tdb->PlaceTaxon(
          flora.classification, family_taxon, genus_taxon,
          "synthetic placement"));
      PROMETHEUS_ASSIGN_OR_RETURN(
          Oid genus_name,
          tdb->PublishName(genus_element, Rank::kGenus, "Gen.", year));
      flora.names.push_back(genus_name);
      PROMETHEUS_RETURN_IF_ERROR(tdb->AscribeName(genus_taxon, genus_name));

      Oid first_species_name = kNullOid;
      for (int s = 0; s < config.species_per_genus; ++s) {
        std::string species_element = SyntheticElement(
            "s", species_counter++, /*capital=*/false);
        PROMETHEUS_ASSIGN_OR_RETURN(
            Oid species_taxon,
            tdb->NewTaxon(flora.classification, Rank::kSpecies,
                          species_element));
        flora.species_taxa.push_back(species_taxon);
        PROMETHEUS_RETURN_IF_ERROR(
            tdb->PlaceTaxon(flora.classification, genus_taxon, species_taxon,
                            "synthetic placement"));
        PROMETHEUS_ASSIGN_OR_RETURN(
            Oid species_name,
            tdb->PublishName(species_element, Rank::kSpecies, "Gen.",
                             year + s));
        flora.names.push_back(species_name);
        PROMETHEUS_RETURN_IF_ERROR(
            tdb->RecordPlacement(species_name, genus_name));
        PROMETHEUS_RETURN_IF_ERROR(
            tdb->AscribeName(species_taxon, species_name));
        if (first_species_name == kNullOid) {
          first_species_name = species_name;
        }

        for (int i = 0; i < config.specimens_per_species; ++i) {
          PROMETHEUS_ASSIGN_OR_RETURN(
              Oid specimen,
              tdb->AddSpecimen("Collector" + std::to_string(rng() % 20), "E",
                               std::to_string(species_counter) + "-" +
                                   std::to_string(i),
                               1900 + static_cast<std::int64_t>(rng() % 100)));
          flora.specimens.push_back(specimen);
          PROMETHEUS_RETURN_IF_ERROR(tdb->Circumscribe(
              flora.classification, species_taxon, specimen));
          if (i == 0) {
            PROMETHEUS_RETURN_IF_ERROR(
                tdb->Typify(species_name, specimen, TypeKind::kHolotype));
          }
        }
      }
      // The genus is typified by its first species name (figure 2).
      if (first_species_name != kNullOid) {
        PROMETHEUS_RETURN_IF_ERROR(
            tdb->Typify(genus_name, first_species_name,
                        TypeKind::kHolotype));
      }
    }
  }
  return flora;
}

Result<Oid> GenerateRevision(TaxonomyDatabase* tdb, const Flora& flora,
                             int groups, unsigned seed) {
  std::mt19937 rng(seed);
  PROMETHEUS_ASSIGN_OR_RETURN(
      Oid revision,
      tdb->NewClassification("synthetic revision", "reviser", 2000));
  if (groups < 1) groups = 1;
  // New genera regrouping all species' specimens by hash.
  std::vector<Oid> new_genera;
  for (int g = 0; g < groups; ++g) {
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid taxon, tdb->NewTaxon(revision, Rank::kGenus,
                                 SyntheticElement("rev", g, true)));
    new_genera.push_back(taxon);
  }
  // Each original species taxon is re-created and dropped into a random
  // new genus, keeping its circumscribed specimens.
  for (Oid species : flora.species_taxa) {
    auto specimens = tdb->SpecimensUnder(flora.classification, species);
    if (!specimens.ok()) return specimens.status();
    auto working = tdb->db().GetAttribute(species, "working_name");
    std::string name = working.ok() &&
                               working.value().type() == ValueType::kString
                           ? working.value().AsString()
                           : "sp";
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid copy, tdb->NewTaxon(revision, Rank::kSpecies, name));
    Oid genus = new_genera[rng() % new_genera.size()];
    PROMETHEUS_RETURN_IF_ERROR(
        tdb->PlaceTaxon(revision, genus, copy, "revision regrouping"));
    for (Oid specimen : specimens.value()) {
      PROMETHEUS_RETURN_IF_ERROR(
          tdb->Circumscribe(revision, copy, specimen));
    }
  }
  return revision;
}

}  // namespace prometheus::taxonomy
