// MVCC snapshot reads (src/core/oid_trie.h, snapshot.h, database.h and the
// server read path built on them):
//
//  - the persistent OidTrie version store: path copying, root growth,
//    structural sharing between consecutive versions;
//  - snapshot semantics: a pinned `DbSnapshot` is a frozen consistent cut —
//    later commits, in-flight write sections, DDL and aborted transactions
//    are all invisible to it, and a fresh acquire sees exactly the live
//    state at the current epoch;
//  - GC: superseded versions are freed the moment the last snapshot
//    reaching them is released (`mvcc::RetainedVersions`), and the pin
//    registry watermark (`oldest_pinned_epoch`) follows the handles;
//  - the result-cache epoch contract (the insert-race regression): entries
//    are stamped with the epoch the rows were *computed* at, so a writer
//    committing between execution and insertion can never launder stale
//    rows as fresh;
//  - a reader-pinning GC soak under writer churn, wall-clock-scaled by
//    PROMETHEUS_MVCC_SOAK_SECONDS (default 1; CI runs 30 under ASan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/result_cache.h"
#include "core/database.h"
#include "core/oid_trie.h"
#include "core/snapshot.h"
#include "query/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::DbSnapshot;
using prometheus::Oid;
using prometheus::OidTrie;
using prometheus::SnapshotHandle;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::cache::ResultCache;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::Server;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

int SoakSeconds() {
  const char* env = std::getenv("PROMETHEUS_MVCC_SOAK_SECONDS");
  if (env == nullptr) return 1;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 1;
}

// ----------------------------------------------------------------- OidTrie

TEST(OidTrieTest, SetFindEraseAcrossRootGrowth) {
  OidTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.Find(1), nullptr);

  // Keys straddling several slot boundaries, including ones that force the
  // root to grow (64 = height 2, 64^3 + 5 = height 4).
  const Oid keys[] = {1, 63, 64, 65, 4095, 4096, 262144 + 5};
  for (Oid k : keys) {
    trie.Set(k, std::make_shared<const int>(static_cast<int>(k * 10)));
  }
  for (Oid k : keys) {
    ASSERT_NE(trie.Find(k), nullptr) << "key " << k;
    EXPECT_EQ(*trie.Find(k), static_cast<int>(k * 10));
  }
  EXPECT_EQ(trie.Find(2), nullptr);
  EXPECT_EQ(trie.Find(262144 + 6), nullptr);

  trie.Erase(64);
  EXPECT_EQ(trie.Find(64), nullptr);
  EXPECT_NE(trie.Find(63), nullptr);
  EXPECT_NE(trie.Find(65), nullptr);
  trie.Erase(64);  // idempotent
  EXPECT_EQ(trie.Find(64), nullptr);

  // Overwrite keeps the latest version only.
  trie.Set(1, std::make_shared<const int>(999));
  EXPECT_EQ(*trie.Find(1), 999);
}

TEST(OidTrieTest, CopiesAreImmutableAndStructurallyShared) {
  OidTrie<int> trie;
  for (Oid k = 1; k <= 200; ++k) {
    trie.Set(k, std::make_shared<const int>(static_cast<int>(k)));
  }

  OidTrie<int> snapshot = trie;  // O(1) structural share
  // The untouched entries are literally the same version objects.
  EXPECT_EQ(snapshot.Find(7), trie.Find(7));

  // Mutating the live trie path-copies around the shared structure: the
  // snapshot keeps the old version, untouched keys stay shared.
  trie.Set(7, std::make_shared<const int>(-7));
  trie.Erase(100);
  trie.Set(500, std::make_shared<const int>(500));

  EXPECT_EQ(*trie.Find(7), -7);
  ASSERT_NE(snapshot.Find(7), nullptr);
  EXPECT_EQ(*snapshot.Find(7), 7);
  EXPECT_EQ(trie.Find(100), nullptr);
  ASSERT_NE(snapshot.Find(100), nullptr);
  EXPECT_EQ(*snapshot.Find(100), 100);
  EXPECT_EQ(snapshot.Find(500), nullptr);
  EXPECT_NE(trie.Find(500), nullptr);
  // A key in an untouched subtree is still the shared version.
  EXPECT_EQ(snapshot.Find(3), trie.Find(3));
}

// ---------------------------------------------------------------- fixture

class MvccSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.DefineClass("Rec", {},
                                {Attr("name", ValueType::kString),
                                 Attr("a", ValueType::kInt),
                                 Attr("b", ValueType::kInt)})
                    .ok());
    ASSERT_TRUE(db_.DefineRelationship("refs", "Rec", "Rec").ok());
    for (int i = 0; i < 4; ++i) {
      auto oid = db_.CreateObject(
          "Rec", {{"name", Value::String("r" + std::to_string(i))},
                  {"a", Value::Int(i)},
                  {"b", Value::Int(i)}});
      ASSERT_TRUE(oid.ok());
      recs_.push_back(oid.value());
    }
    ASSERT_TRUE(db_.CreateLink("refs", recs_[0], recs_[1]).ok());
  }

  Database db_;
  std::vector<Oid> recs_;
};

TEST_F(MvccSnapshotTest, SnapshotMatchesLiveCutExactly) {
  SnapshotHandle snap = db_.AcquireSnapshot();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->epoch(), db_.epoch());
  EXPECT_EQ(snap->object_count(), db_.object_count());
  EXPECT_EQ(snap->link_count(), db_.link_count());
  EXPECT_EQ(snap->Extent("Rec"), db_.Extent("Rec"));
  EXPECT_NE(snap->FindClass("Rec"), nullptr);
  EXPECT_NE(snap->FindRelationship("refs"), nullptr);
  for (Oid oid : recs_) {
    EXPECT_TRUE(snap->IsInstanceOf(oid, "Rec"));
    auto live = db_.GetAttribute(oid, "a");
    auto seen = snap->GetAttribute(oid, "a");
    ASSERT_TRUE(live.ok() && seen.ok());
    EXPECT_TRUE(live.value().Equals(seen.value()));
  }
  EXPECT_EQ(snap->Neighbors(recs_[0], "refs"), db_.Neighbors(recs_[0], "refs"));
}

TEST_F(MvccSnapshotTest, PinnedSnapshotIgnoresLaterCommits) {
  SnapshotHandle snap = db_.AcquireSnapshot();
  const std::uint64_t pinned_epoch = snap->epoch();

  // Three committed write sections: update, create, delete.
  {
    Database::WriteGuard g(db_);
    ASSERT_TRUE(db_.SetAttribute(recs_[0], "a", Value::Int(100)).ok());
    ASSERT_TRUE(db_.SetAttribute(recs_[0], "b", Value::Int(100)).ok());
  }
  Oid fresh = prometheus::kNullOid;
  {
    Database::WriteGuard g(db_);
    auto oid = db_.CreateObject("Rec", {{"name", Value::String("late")},
                                        {"a", Value::Int(9)},
                                        {"b", Value::Int(9)}});
    ASSERT_TRUE(oid.ok());
    fresh = oid.value();
  }
  {
    Database::WriteGuard g(db_);
    ASSERT_TRUE(db_.DeleteObject(recs_[3]).ok());
  }

  // The pinned cut is frozen at its epoch.
  EXPECT_EQ(snap->epoch(), pinned_epoch);
  EXPECT_EQ(db_.epoch(), pinned_epoch + 3);
  EXPECT_EQ(snap->GetAttribute(recs_[0], "a").value().AsInt(), 0);
  EXPECT_EQ(snap->GetObject(fresh), nullptr);
  EXPECT_NE(snap->GetObject(recs_[3]), nullptr);
  EXPECT_EQ(snap->Extent("Rec").size(), 4u);

  // A fresh acquire sees all three commits at the bumped epoch.
  SnapshotHandle now = db_.AcquireSnapshot();
  EXPECT_EQ(now->epoch(), pinned_epoch + 3);
  EXPECT_EQ(now->GetAttribute(recs_[0], "a").value().AsInt(), 100);
  EXPECT_NE(now->GetObject(fresh), nullptr);
  EXPECT_EQ(now->GetObject(recs_[3]), nullptr);
  EXPECT_EQ(now->Extent("Rec").size(), 4u);  // +1 created, -1 deleted
}

TEST_F(MvccSnapshotTest, HalfAppliedWriteSectionInvisibleToNewReaders) {
  // Engage MVCC before the writer starts so the acquire below stays on the
  // lock-free fast path (it must not need the guard the writer holds).
  (void)db_.AcquireSnapshot();
  const std::uint64_t before = db_.epoch();

  std::atomic<bool> half_applied{false};
  std::atomic<bool> release_writer{false};
  std::thread writer([&] {
    Database::WriteGuard g(db_);
    ASSERT_TRUE(db_.SetAttribute(recs_[1], "a", Value::Int(77)).ok());
    half_applied.store(true, std::memory_order_release);
    while (!release_writer.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(db_.SetAttribute(recs_[1], "b", Value::Int(77)).ok());
  });

  while (!half_applied.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The writer sits mid-section with a torn pair in the live store. A
  // reader admitted now still gets the last *published* cut: consistent,
  // pre-section, and acquired without blocking on the held guard.
  SnapshotHandle mid = db_.AcquireSnapshot();
  EXPECT_EQ(mid->epoch(), before);
  EXPECT_EQ(mid->GetAttribute(recs_[1], "a").value().AsInt(), 1);
  EXPECT_EQ(mid->GetAttribute(recs_[1], "b").value().AsInt(), 1);

  release_writer.store(true, std::memory_order_release);
  writer.join();

  SnapshotHandle after = db_.AcquireSnapshot();
  EXPECT_EQ(after->epoch(), before + 1);
  EXPECT_EQ(after->GetAttribute(recs_[1], "a").value().AsInt(), 77);
  EXPECT_EQ(after->GetAttribute(recs_[1], "b").value().AsInt(), 77);
}

TEST_F(MvccSnapshotTest, DdlCommitsAtomicallyForSnapshots) {
  SnapshotHandle pinned = db_.AcquireSnapshot();

  // One write section defines a subclass and populates it.
  {
    Database::WriteGuard g(db_);
    ASSERT_TRUE(db_.DefineClass("SubRec", {"Rec"}, {}).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db_.CreateObject(
                         "SubRec",
                         {{"name", Value::String("s" + std::to_string(i))},
                          {"a", Value::Int(0)},
                          {"b", Value::Int(0)}})
                      .ok());
    }
  }

  // The pinned snapshot predates the DDL entirely: no class, no instances,
  // and the deep extent of the base class is untouched.
  EXPECT_EQ(pinned->FindClass("SubRec"), nullptr);
  EXPECT_EQ(pinned->Extent("Rec").size(), 4u);

  // A fresh snapshot sees the class *and* all of its instances — never a
  // cut between the two.
  SnapshotHandle now = db_.AcquireSnapshot();
  ASSERT_NE(now->FindClass("SubRec"), nullptr);
  EXPECT_EQ(now->Extent("SubRec").size(), 3u);
  EXPECT_EQ(now->Extent("Rec").size(), 7u);
}

TEST_F(MvccSnapshotTest, AbortedTransactionNeverVisibleInAnySnapshot) {
  (void)db_.AcquireSnapshot();  // engage
  const std::uint64_t before = db_.epoch();
  {
    Database::WriteGuard g(db_);
    ASSERT_TRUE(db_.Begin().ok());
    ASSERT_TRUE(db_.SetAttribute(recs_[2], "a", Value::Int(500)).ok());
    ASSERT_TRUE(db_.CreateObject("Rec", {{"name", Value::String("ghost")},
                                         {"a", Value::Int(0)},
                                         {"b", Value::Int(0)}})
                    .ok());
    ASSERT_TRUE(db_.Abort().ok());
  }
  // The section committed nothing, but it still closes with a (restamped)
  // publish: the epoch advances, the state does not.
  SnapshotHandle snap = db_.AcquireSnapshot();
  EXPECT_EQ(snap->epoch(), before + 1);
  EXPECT_EQ(snap->GetAttribute(recs_[2], "a").value().AsInt(), 2);
  EXPECT_EQ(snap->Extent("Rec").size(), 4u);
  EXPECT_EQ(snap->object_count(), db_.object_count());
}

// --------------------------------------------------------------------- GC

TEST(MvccGcTest, SupersededVersionsFreeWhenLastPinReleases) {
  Database db;
  ASSERT_TRUE(
      db.DefineClass("Rec", {}, {Attr("v", ValueType::kInt)}).ok());
  std::vector<Oid> recs;
  for (int i = 0; i < 8; ++i) {
    auto oid = db.CreateObject("Rec", {{"v", Value::Int(0)}});
    ASSERT_TRUE(oid.ok());
    recs.push_back(oid.value());
  }

  SnapshotHandle old_pin = db.AcquireSnapshot();
  const std::uint64_t baseline = prometheus::mvcc::RetainedVersions();
  EXPECT_EQ(db.pinned_snapshots(), 1u);
  EXPECT_EQ(db.oldest_pinned_epoch(), old_pin->epoch());

  // Rewrite one record many times. Intermediate versions are dropped as
  // each publish supersedes the last; only the version `old_pin` reaches
  // and the current one stay alive.
  for (int i = 1; i <= 50; ++i) {
    Database::WriteGuard g(db);
    ASSERT_TRUE(db.SetAttribute(recs[0], "v", Value::Int(i)).ok());
  }
  const std::uint64_t churned = prometheus::mvcc::RetainedVersions();
  EXPECT_GT(churned, baseline);       // the pinned old version is retained
  EXPECT_LT(churned, baseline + 10);  // ...but not one per rewrite

  SnapshotHandle new_pin = db.AcquireSnapshot();
  EXPECT_EQ(db.pinned_snapshots(), 2u);
  EXPECT_EQ(db.oldest_pinned_epoch(), old_pin->epoch());

  // Releasing the old pin frees every version only it reached, on the
  // spot — refcount reclamation, no GC thread to wait for.
  old_pin = SnapshotHandle();
  EXPECT_EQ(db.pinned_snapshots(), 1u);
  EXPECT_EQ(db.oldest_pinned_epoch(), new_pin->epoch());
  EXPECT_LE(prometheus::mvcc::RetainedVersions(), baseline);

  new_pin = SnapshotHandle();
  EXPECT_EQ(db.pinned_snapshots(), 0u);
  EXPECT_EQ(db.oldest_pinned_epoch(), db.epoch());
}

// ------------------------------------------------------- writer churn race

TEST(MvccConcurrencyTest, ReadersNeverSeeTornPairsUnderWriterChurn) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Rec", {},
                             {Attr("a", ValueType::kInt),
                              Attr("b", ValueType::kInt)})
                  .ok());
  std::vector<Oid> recs;
  for (int i = 0; i < 4; ++i) {
    auto oid =
        db.CreateObject("Rec", {{"a", Value::Int(0)}, {"b", Value::Int(0)}});
    ASSERT_TRUE(oid.ok());
    recs.push_back(oid.value());
  }
  (void)db.AcquireSnapshot();  // engage before the threads start

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> epoch_regressions{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++i;
      Database::WriteGuard g(db);
      for (Oid oid : recs) {
        ASSERT_TRUE(db.SetAttribute(oid, "a", Value::Int(i)).ok());
        ASSERT_TRUE(db.SetAttribute(oid, "b", Value::Int(i)).ok());
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotHandle snap = db.AcquireSnapshot();
        if (snap->epoch() < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = snap->epoch();
        for (Oid oid : recs) {
          auto a = snap->GetAttribute(oid, "a");
          auto b = snap->GetAttribute(oid, "b");
          if (!a.ok() || !b.ok() || !a.value().Equals(b.value())) {
            torn.fetch_add(1);
          }
        }
        reads.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(db.pinned_snapshots(), 0u);
}

// ---------------------------------------------------- cache epoch contract

// The insert-race regression, deterministically: a query executes against
// a pinned snapshot at epoch E; a writer commits (epoch E+1) *before* the
// result is inserted. The server stamps the entry with the snapshot's
// epoch (E) — the epoch the rows were computed at — so the next lookup
// (validating against the current epoch E+1) must miss. Stamping the
// insert-time epoch instead (the old protocol, where insertion happened
// under the same read guard that computed the rows) would serve the stale
// rows as fresh.
TEST(MvccCacheTest, RanAtEpochStampNeverServesStaleRowsAfterLaterCommit) {
  Database db;
  ASSERT_TRUE(
      db.DefineClass("Rec", {}, {Attr("v", ValueType::kInt)}).ok());
  auto oid = db.CreateObject("Rec", {{"v", Value::Int(1)}});
  ASSERT_TRUE(oid.ok());

  ResultCache cache{ResultCache::Config{}};
  const std::string key = "select r.v from Rec r";

  SnapshotHandle snap = db.AcquireSnapshot();
  auto rows = std::make_shared<prometheus::pool::ResultSet>();
  rows->columns = {"v"};
  rows->rows = {{snap->GetAttribute(oid.value(), "v").value()}};

  // The racing writer lands between execution and insertion.
  {
    Database::WriteGuard g(db);
    ASSERT_TRUE(db.SetAttribute(oid.value(), "v", Value::Int(2)).ok());
  }
  ASSERT_NE(snap->epoch(), db.epoch());

  cache.Insert(key, snap->epoch(), rows, 64);

  // The entry is present and serves at the epoch it was computed at — but
  // a current-epoch lookup must miss (and lazily erases the stale entry).
  EXPECT_NE(cache.Lookup(key, snap->epoch()), nullptr);
  EXPECT_EQ(cache.Lookup(key, db.epoch()), nullptr);
}

// The same contract end-to-end through the server under a real race:
// readers hammer one query text (constantly re-warming the cache) while a
// churn writer bumps the epoch on an unrelated object. After every write
// to the checked object, a read of the same text must observe it —
// whether served from cache or re-executed. A current-epoch stamp would
// let a reader that executed before the write but inserted after it
// poison the cache with the old value.
TEST(MvccCacheTest, CacheHitsNeverServeStaleRowsUnderConcurrentWriters) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Rec", {},
                             {Attr("name", ValueType::kString),
                              Attr("v", ValueType::kInt)})
                  .ok());
  auto checked = db.CreateObject(
      "Rec", {{"name", Value::String("checked")}, {"v", Value::Int(0)}});
  auto churned = db.CreateObject(
      "Rec", {{"name", Value::String("churn")}, {"v", Value::Int(0)}});
  ASSERT_TRUE(checked.ok() && churned.ok());

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  Server server(&db, options);

  const std::string q = "select r.v from Rec r where r.name = 'checked'";
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    Client churner(&server);
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)churner.SetAttribute(churned.value(), "v", Value::Int(++i));
    }
  });
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      Client reader(&server);
      while (!stop.load(std::memory_order_acquire)) {
        (void)reader.Query(q);
      }
    });
  }

  Client checker(&server);
  for (std::int64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(checker.SetAttribute(checked.value(), "v", Value::Int(i)).ok());
    auto rs = checker.Query(q);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs.value().rows.size(), 1u);
    EXPECT_EQ(rs.value().rows[0][0].AsInt(), i) << "stale read at round " << i;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  server.Shutdown();
}

// -------------------------------------------------------------------- soak

// Reader-pinning GC soak: staggered snapshot lifetimes under constant
// writer churn. Throughout, retention must track the *oldest pin*, not the
// churn volume; at the end, with every handle released, exactly one
// published snapshot's worth of versions remains.
TEST(MvccSoakTest, ReaderPinningGcSoakReclaimsEverything) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Rec", {},
                             {Attr("a", ValueType::kInt),
                              Attr("b", ValueType::kInt)})
                  .ok());
  std::vector<Oid> recs;
  for (int i = 0; i < 16; ++i) {
    auto oid =
        db.CreateObject("Rec", {{"a", Value::Int(0)}, {"b", Value::Int(0)}});
    ASSERT_TRUE(oid.ok());
    recs.push_back(oid.value());
  }
  (void)db.AcquireSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> acquired{0};

  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++i;
      Database::WriteGuard g(db);
      const Oid oid = recs[static_cast<std::size_t>(i) % recs.size()];
      ASSERT_TRUE(db.SetAttribute(oid, "a", Value::Int(i)).ok());
      ASSERT_TRUE(db.SetAttribute(oid, "b", Value::Int(i)).ok());
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      // Each reader keeps a small ladder of pinned snapshots with
      // staggered lifetimes: the oldest rung can pin versions dozens of
      // write sections old before it rotates out.
      std::vector<SnapshotHandle> ladder;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ladder.push_back(db.AcquireSnapshot());
        acquired.fetch_add(1);
        const SnapshotHandle& snap = ladder.back();
        for (Oid oid : recs) {
          auto a = snap->GetAttribute(oid, "a");
          auto b = snap->GetAttribute(oid, "b");
          if (!a.ok() || !b.ok() || !a.value().Equals(b.value())) {
            torn.fetch_add(1);
          }
        }
        if (ladder.size() > static_cast<std::size_t>(2 + r)) {
          ladder.erase(ladder.begin());  // release the oldest pin
        }
        if (++i % 64 == 0) std::this_thread::yield();
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(SoakSeconds()));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(acquired.load(), 0u);
  // Every pin is gone: the registry is empty, the watermark is current,
  // and retention has collapsed to the one published snapshot (a version
  // per live object plus one per live link — here there are no links).
  EXPECT_EQ(db.pinned_snapshots(), 0u);
  EXPECT_EQ(db.oldest_pinned_epoch(), db.epoch());
  EXPECT_EQ(prometheus::mvcc::RetainedVersions(),
            db.object_count() + db.link_count());
}

}  // namespace
