#include "server/client.h"

#include <utility>

namespace prometheus::server {

Client::Client(Server* server)
    : server_(server), session_(server->Connect()) {}

Client::~Client() { server_->sessions().Close(session_->id()); }

Status Client::TransportStatus(const Response& resp) {
  // For executed requests the database-level status is authoritative; for
  // rejected / shutdown requests the server already phrased the transport
  // failure as a Status.
  return resp.status;
}

Result<pool::ResultSet> Client::Query(const std::string& pool_text) {
  Response resp = Call(Request::Query(pool_text));
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.result);
}

Result<Oid> Client::CreateObject(std::string class_name,
                                 std::vector<AttrInit> inits) {
  Response resp =
      Call(Request::CreateObject(std::move(class_name), std::move(inits)));
  if (!resp.ok()) return TransportStatus(resp);
  return resp.oid;
}

Status Client::SetAttribute(Oid oid, std::string attribute, Value value) {
  return TransportStatus(
      Call(Request::SetAttribute(oid, std::move(attribute), std::move(value))));
}

Status Client::DeleteObject(Oid oid) {
  return TransportStatus(Call(Request::DeleteObject(oid)));
}

Result<Oid> Client::CreateLink(std::string rel_name, Oid source, Oid dest,
                               Oid context, std::vector<AttrInit> inits) {
  Response resp = Call(Request::CreateLink(std::move(rel_name), source, dest,
                                           context, std::move(inits)));
  if (!resp.ok()) return TransportStatus(resp);
  return resp.oid;
}

Status Client::SetLinkAttribute(Oid oid, std::string attribute, Value value) {
  return TransportStatus(Call(
      Request::SetLinkAttribute(oid, std::move(attribute), std::move(value))));
}

Status Client::DeleteLink(Oid oid) {
  return TransportStatus(Call(Request::DeleteLink(oid)));
}

Status Client::Mutate(std::function<Status(Database&)> fn) {
  return TransportStatus(Call(Request::Custom(std::move(fn))));
}

Result<std::uint64_t> Client::Ping() {
  Response resp = Call(Request::Ping());
  if (!resp.ok()) return TransportStatus(resp);
  return resp.epoch;
}

Result<std::string> Client::Stats(StatsFormat format) {
  Response resp = Call(Request::Stats(format));
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.text);
}

Result<Client::ProfiledQuery> Client::Profile(const std::string& pool_text) {
  std::string query = pool::IsProfileQuery(pool_text)
                          ? pool_text
                          : "profile " + pool_text;
  Response resp = Call(Request::Query(std::move(query)));
  if (!resp.ok()) return TransportStatus(resp);
  ProfiledQuery out;
  out.stages = std::move(resp.result);
  out.tree = std::move(resp.text);
  return out;
}

Response Client::Call(Request req) { return session_->Call(std::move(req)); }

std::future<Response> Client::Submit(Request req) {
  return session_->Submit(std::move(req));
}

}  // namespace prometheus::server
