#include "cache/query_cache.h"

#include <cstdio>

namespace prometheus::cache {

std::string QueryCache::StatsJson() const {
  const PlanCache::Stats p = plans_.stats();
  const ResultCache::Stats r = results_.stats();
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f", r.hit_rate_percent);
  std::string out = "{";
  out += "\"enabled\":" + std::string(enabled() ? "true" : "false");
  out += ",\"result\":{";
  out += "\"hits\":" + std::to_string(r.hits);
  out += ",\"misses\":" + std::to_string(r.misses);
  out += ",\"hit_rate_percent\":" + std::string(rate);
  out += ",\"inserts\":" + std::to_string(r.inserts);
  out += ",\"evictions\":" + std::to_string(r.evictions);
  out += ",\"invalidations\":" + std::to_string(r.invalidations);
  out += ",\"oversize\":" + std::to_string(r.oversize);
  out += ",\"entries\":" + std::to_string(r.entries);
  out += ",\"bytes\":" + std::to_string(r.bytes);
  out += ",\"max_bytes\":" + std::to_string(r.max_bytes);
  out += ",\"shards\":" + std::to_string(r.shards);
  out += "},\"plan\":{";
  out += "\"hits\":" + std::to_string(p.hits);
  out += ",\"misses\":" + std::to_string(p.misses);
  out += ",\"inserts\":" + std::to_string(p.inserts);
  out += ",\"evictions\":" + std::to_string(p.evictions);
  out += ",\"invalidations\":" + std::to_string(p.invalidations);
  out += ",\"entries\":" + std::to_string(p.entries);
  out += ",\"schema_generation\":" + std::to_string(p.schema_generation);
  out += "}}";
  return out;
}

}  // namespace prometheus::cache
