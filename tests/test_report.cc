#include <gtest/gtest.h>

#include "taxonomy/report.h"

namespace prometheus::taxonomy {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    flora = tdb.NewClassification("Test Flora", "Linnaeus", 1753).value();
    genus = tdb.NewTaxon(flora, Rank::kGenus, "Apium").value();
    species = tdb.NewTaxon(flora, Rank::kSpecies, "graveolens").value();
    ASSERT_TRUE(tdb.PlaceTaxon(flora, genus, species).ok());
    specimen = tdb.AddSpecimen("Linnaeus", "BM", "Herb.Cliff.107").value();
    ASSERT_TRUE(tdb.Circumscribe(flora, species, specimen).ok());

    genus_name = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753,
                                 "Species Plantarum")
                     .value();
    species_name =
        tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).value();
    ASSERT_TRUE(tdb.RecordPlacement(species_name, genus_name).ok());
    ASSERT_TRUE(
        tdb.Typify(species_name, specimen, TypeKind::kLectotype).ok());
    ASSERT_TRUE(tdb.Typify(genus_name, species_name, TypeKind::kHolotype)
                    .ok());
    ASSERT_TRUE(tdb.AscribeName(species, species_name).ok());
  }

  TaxonomyDatabase tdb;
  Oid flora, genus, species, specimen, genus_name, species_name;
};

TEST_F(ReportFixture, ClassificationTree) {
  auto tree = RenderClassificationTree(tdb, flora);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const std::string& text = tree.value();
  EXPECT_NE(text.find("Test Flora"), std::string::npos);
  EXPECT_NE(text.find("Linnaeus"), std::string::npos);
  EXPECT_NE(text.find("Genus Apium"), std::string::npos);
  EXPECT_NE(text.find("Species graveolens"), std::string::npos);
  // The ascribed name is rendered.
  EXPECT_NE(text.find("Apium graveolens L."), std::string::npos);
  // The specimen leaf shows its sheet.
  EXPECT_NE(text.find("Herb.Cliff.107"), std::string::npos);
  // Indentation reflects depth: the species is deeper than the genus.
  EXPECT_LT(text.find("Genus Apium"), text.find("Species graveolens"));
}

TEST_F(ReportFixture, EmptyClassificationRenders) {
  Oid empty = tdb.NewClassification("empty", "nobody").value();
  auto tree = RenderClassificationTree(tdb, empty);
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree.value().find("(empty)"), std::string::npos);
  EXPECT_EQ(RenderClassificationTree(tdb, specimen).status().code(),
            Status::Code::kNotFound);
}

TEST_F(ReportFixture, NameDossier) {
  auto dossier = RenderNameDossier(tdb, species_name);
  ASSERT_TRUE(dossier.ok()) << dossier.status().ToString();
  const std::string& text = dossier.value();
  EXPECT_NE(text.find("Apium graveolens L."), std::string::npos);
  EXPECT_NE(text.find("rank:        Species"), std::string::npos);
  EXPECT_NE(text.find("status:      published"), std::string::npos);
  EXPECT_NE(text.find("1753"), std::string::npos);
  EXPECT_NE(text.find("placed in:   Apium L."), std::string::npos);
  EXPECT_NE(text.find("lectotype: specimen Linnaeus"), std::string::npos);
  // The species typifies the genus.
  EXPECT_NE(text.find("typifies:"), std::string::npos);
  EXPECT_EQ(RenderNameDossier(tdb, specimen).status().code(),
            Status::Code::kNotFound);
}

TEST_F(ReportFixture, SynonymyReport) {
  // A second classification sharing the specimen.
  Oid revision = tdb.NewClassification("Revision", "Other", 1900).value();
  Oid other_genus = tdb.NewTaxon(revision, Rank::kGenus, "Otherium").value();
  ASSERT_TRUE(tdb.Circumscribe(revision, other_genus, specimen).ok());

  auto report = RenderSynonymyReport(tdb, flora, revision);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string& text = report.value();
  EXPECT_NE(text.find("Test Flora"), std::string::npos);
  EXPECT_NE(text.find("Revision"), std::string::npos);
  // Both the genus and the species fully overlap Otherium (all share the
  // single specimen).
  EXPECT_NE(text.find("full synonym of"), std::string::npos);
  EXPECT_NE(text.find("Otherium"), std::string::npos);
  EXPECT_NE(text.find("similarity 1.00"), std::string::npos);
}

}  // namespace
}  // namespace prometheus::taxonomy
