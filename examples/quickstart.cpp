// Quickstart: the Prometheus extended object-oriented database in one
// file — schema with first-class relationships, semantic constraints,
// POOL queries, a rule, and a transaction.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "query/query_engine.h"
#include "rules/rule_engine.h"

using namespace prometheus;

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // 1. Schema: classes plus a *relationship class* — the Prometheus
  //    extension. Relationships are typed, carry attributes and semantics.
  Check(db.DefineClass("Person", {},
                       {Attr("name", ValueType::kString),
                        Attr("age", ValueType::kInt)})
            .status(),
        "define Person");
  Check(db.DefineClass("Company", {}, {Attr("name", ValueType::kString)})
            .status(),
        "define Company");
  RelationshipSemantics sem;
  sem.exclusive = true;  // a person works for at most one company
  Check(db.DefineRelationship("works_for", "Person", "Company", sem,
                              {Attr("since", ValueType::kInt)})
            .status(),
        "define works_for");

  // 2. Instances and links.
  Oid ada = db.CreateObject("Person", {{"name", Value::String("Ada")},
                                       {"age", Value::Int(36)}})
                .value();
  Oid grace = db.CreateObject("Person", {{"name", Value::String("Grace")},
                                         {"age", Value::Int(45)}})
                  .value();
  Oid napier =
      db.CreateObject("Company", {{"name", Value::String("Napier")}})
          .value();
  Check(db.CreateLink("works_for", ada, napier, kNullOid,
                      {{"since", Value::Int(1998)}})
            .status(),
        "link ada");

  // Exclusivity is enforced: Ada cannot work for a second company.
  Oid rbge = db.CreateObject("Company", {{"name", Value::String("RBGE")}})
                 .value();
  Status dup = db.CreateLink("works_for", rbge, ada).status();  // wrong way
  std::printf("wrong-typed link rejected: %s\n", dup.ToString().c_str());

  // 3. A rule: ECA constraint installed against the event layer.
  RuleEngine rules(&db);
  Check(rules
            .AddInvariant("adult", "Person", "self.age >= 18",
                          "people must be adults")
            .status(),
        "install rule");
  Status minor =
      db.CreateObject("Person", {{"age", Value::Int(12)}}).status();
  std::printf("rule veto: %s\n", minor.ToString().c_str());

  // 4. POOL queries: relationships are first-class and queryable.
  pool::QueryEngine query(&db);
  auto rs = query.Execute(
      "select p.name, l.since from works_for l, Person p "
      "where l.source = p order by p.name");
  Check(rs.status(), "query");
  for (const auto& row : rs.value().rows) {
    std::printf("employee %s since %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // 5. Transactions: everything (objects, links, attributes) rolls back.
  Check(db.Begin(), "begin");
  Check(db.CreateLink("works_for", grace, rbge).status(), "link grace");
  std::printf("links inside txn: %zu\n", db.link_count());
  Check(db.Abort(), "abort");
  std::printf("links after abort: %zu\n", db.link_count());

  std::printf("quickstart OK: %zu objects, %zu links\n", db.object_count(),
              db.link_count());
  return 0;
}
