// E5 — Figure 46: structural modification S2 (delete composite parts).
// Deletion exercises the cascade machinery: lifetime-dependent
// aggregations remove every atomic part and connection, each with event
// publication and undo snapshots — the second non-constant-cost case of
// the thesis' evaluation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "index/index_manager.h"
#include "oo7/oo7.h"

namespace {

using prometheus::oo7::BaselineOo7;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

constexpr int kDeleteBatch = 5;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  // The assembly tree grows with the part library so traversal work scales
  // with database size, as in OO7's small/medium databases.
  config.assembly_levels =
      composites <= 10 ? 4 : (composites <= 20 ? 5 : (composites <= 40 ? 6 : 7));
  return config;
}

void PrintFigure46() {
  prometheus::bench::PrintTableHeader(
      "Figure 46: non-constant increase in cost (S2 structural delete)",
      "  comps  atoms   prom_ms    base_ms    ratio  (deleting 5 "
      "composite parts with cascade)");
  for (int comps : {10, 20, 40, 80}) {
    Config config = MakeConfig(comps);
    // A fresh database per repetition (deletes are destructive); only the
    // delete itself is timed.
    auto time_one = [&](auto&& make_and_delete) {
      std::vector<double> samples;
      for (int rep = 0; rep < 3; ++rep) {
        samples.push_back(make_and_delete());
      }
      std::sort(samples.begin(), samples.end());
      return samples[samples.size() / 2];
    };
    double prom_op = time_one([&] {
      PrometheusOo7 prom(config);
      // As in S1, the index layer is subscribed: deletion pays index entry
      // removal for every cascaded atomic part.
      prometheus::IndexManager indexes(&prom.db());
      (void)indexes.CreateIndex("AtomicPart", "id");
      (void)indexes.CreateIndex("AtomicPart", "build_date",
                                /*ordered=*/true);
      return prometheus::bench::MedianMillis(
          [&] { benchmark::DoNotOptimize(prom.DeleteS2(kDeleteBatch).ok()); },
          1);
    });
    double base_op = time_one([&] {
      BaselineOo7 base(config);
      return prometheus::bench::MedianMillis(
          [&] { benchmark::DoNotOptimize(base.DeleteS2(kDeleteBatch).ok()); },
          1);
    });
    if (base_op <= 0.0001) base_op = 0.0001;
    std::printf("  %5d  %5d   %8.3f   %8.4f   %5.1f\n", comps,
                config.total_atomic_parts(), prom_op, base_op,
                prom_op / base_op);
  }
}

void BM_S2Prometheus(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    PrometheusOo7 db(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.DeleteS2(kDeleteBatch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kDeleteBatch);
}
BENCHMARK(BM_S2Prometheus)
    ->Arg(10)
    ->Arg(40)
    ->Iterations(10)
    ->Unit(benchmark::kMillisecond);

void BM_S2Baseline(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    BaselineOo7 db(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.DeleteS2(kDeleteBatch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kDeleteBatch);
}
BENCHMARK(BM_S2Baseline)
    ->Arg(10)
    ->Arg(40)
    ->Iterations(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure46();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
