#ifndef PROMETHEUS_EVENT_EVENT_H_
#define PROMETHEUS_EVENT_EVENT_H_

#include <cstdint>
#include <string>

#include "common/oid.h"
#include "common/value.h"

namespace prometheus {

/// The primitive database events of the thesis' event layer (section 6.1.1,
/// figure 27). Every structural mutation of the database raises a *before*
/// event (which constraint listeners may veto) and an *after* event (which
/// observers such as the index layer and deferred rules consume).
enum class EventKind : std::uint8_t {
  kBeforeCreateObject,
  kAfterCreateObject,
  kBeforeDeleteObject,
  kAfterDeleteObject,
  kBeforeSetAttribute,
  kAfterSetAttribute,
  kBeforeCreateLink,
  kAfterCreateLink,
  kBeforeDeleteLink,
  kAfterDeleteLink,
  kBeforeSetLinkAttribute,
  kAfterSetLinkAttribute,
  kTransactionBegin,
  kBeforeCommit,  ///< Deferred rules run here; a veto aborts the transaction.
  kAfterCommit,
  kAfterAbort,
  /// Two objects were declared instance synonyms (thesis 4.5); `source`
  /// and `target` carry the two canonical roots that were united.
  kAfterDeclareSynonym,
  /// Schema definitions (runtime DDL); `type_name` carries the defined
  /// name. Not vetoable — they exist so the journal can make DDL durable
  /// the moment it happens, exactly like data mutations.
  kAfterDefineClass,
  kAfterDefineTemplate,
  kAfterDefineRelationship,
};

/// Returns the canonical name of an event kind.
const char* EventKindName(EventKind kind);

/// True for the `kBefore*` kinds whose listeners may veto the mutation.
bool IsBeforeEvent(EventKind kind);

/// A concrete event instance delivered to listeners.
///
/// Fields are populated per kind; unused fields are empty / kNullOid:
///  - object events: `subject` = object oid, `type_name` = class name.
///  - attribute events: additionally `attribute`, `old_value`, `new_value`.
///  - link events: `subject` = link oid, `type_name` = relationship class
///    name, `source`/`target` = participant oids, `context` = classification.
///  - transaction events: only `kind`.
struct Event {
  Event() = default;
  explicit Event(EventKind k) : kind(k) {}

  EventKind kind = EventKind::kAfterCommit;

  /// True for the compensating after-events published while a transaction
  /// rolls back: they describe the inverse mutations so that derived state
  /// (indexes, views) stays consistent. Rule engines must ignore them.
  bool compensating = false;
  Oid subject = kNullOid;
  std::string type_name;
  Oid source = kNullOid;
  Oid target = kNullOid;
  Oid context = kNullOid;
  std::string attribute;
  Value old_value;
  Value new_value;
};

}  // namespace prometheus

#endif  // PROMETHEUS_EVENT_EVENT_H_
