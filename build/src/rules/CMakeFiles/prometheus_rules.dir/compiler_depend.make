# Empty compiler generated dependencies file for prometheus_rules.
# This may be replaced when dependencies are built.
