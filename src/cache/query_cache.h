#ifndef PROMETHEUS_CACHE_QUERY_CACHE_H_
#define PROMETHEUS_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/plan_cache.h"
#include "cache/result_cache.h"

namespace prometheus::cache {

/// A point-in-time snapshot of both cache tiers plus one canonical
/// field/value rendering. Every stats surface — `.cache stats` rows, the
/// JSON payload, and the `sys.cache` catalog class — reads from this one
/// struct, so the surfaces can never drift.
struct QueryCacheStats {
  bool enabled = false;
  ResultCache::Stats result;
  PlanCache::Stats plan;

  /// The canonical (field, rendered value) rows, in display order:
  /// enabled, result_hits, result_misses, result_hit_rate, result_entries,
  /// result_bytes, result_evictions, result_invalidations, result_oversize,
  /// plan_hits, plan_misses, plan_entries, plan_invalidations,
  /// schema_generation.
  std::vector<std::pair<std::string, std::string>> Fields() const;
};

/// Configuration the server's Options embeds. The defaults keep both
/// tiers on with a modest footprint; set `enabled = false` to build a
/// server with no caching at all (benchmark baselines, tests that count
/// executions).
struct QueryCacheConfig {
  /// Master switch for both tiers at construction. The runtime toggle
  /// (`.cache off` / `.cache on`) flips the same per-tier switches later.
  bool enabled = true;
  /// Result tier: total byte budget, shard count, per-entry size cap.
  std::size_t result_max_bytes = 8u << 20;
  std::size_t result_shards = 8;
  std::size_t result_max_entry_bytes = 512u << 10;
  /// Plan tier: entry-count LRU capacity.
  std::size_t plan_max_entries = 512;
};

/// The two cache tiers as one subsystem — what a `Server` owns and what
/// `.cache` / `RequestKind::kCacheControl` administers.
///
/// - `plans()`: query text -> AST + access-path analysis, invalidated by
///   schema generation (wired to kAfterDefineClass/Template/Relationship
///   through `OnSchemaChange`).
/// - `results()`: query text -> materialized rows, validated against the
///   database epoch on every lookup (any committed write invalidates).
class QueryCache {
 public:
  explicit QueryCache(const QueryCacheConfig& config)
      : plans_(PlanCache::Config{config.plan_max_entries, config.enabled}),
        results_(ResultCache::Config{config.result_max_bytes,
                                     config.result_shards,
                                     config.result_max_entry_bytes,
                                     config.enabled}) {}

  PlanCache& plans() { return plans_; }
  ResultCache& results() { return results_; }

  /// Drops both tiers wholesale (promotion, rebootstrap, `.cache clear`).
  void Clear() {
    plans_.Clear();
    results_.Clear();
  }

  /// Runtime toggle for both tiers. Disabling stops lookups and inserts;
  /// entries stay resident until `Clear()` (re-enabling may serve them if
  /// still epoch-valid).
  void SetEnabled(bool on) {
    plans_.set_enabled(on);
    results_.set_enabled(on);
  }
  bool enabled() const { return results_.enabled(); }

  /// Event hook: schema DDL committed; every cached plan is stale.
  void OnSchemaChange() { plans_.OnSchemaChange(); }

  /// Point-in-time snapshot of both tiers (the one source every stats
  /// surface renders from).
  QueryCacheStats Stats() const {
    QueryCacheStats s;
    s.enabled = enabled();
    s.result = results_.stats();
    s.plan = plans_.stats();
    return s;
  }

  /// Both tiers' stats as one JSON object (the `.cache` / kCacheControl
  /// payload).
  std::string StatsJson() const;

 private:
  PlanCache plans_;
  ResultCache results_;
};

}  // namespace prometheus::cache

#endif  // PROMETHEUS_CACHE_QUERY_CACHE_H_
