file(REMOVE_RECURSE
  "CMakeFiles/test_journal.dir/test_journal.cc.o"
  "CMakeFiles/test_journal.dir/test_journal.cc.o.d"
  "test_journal"
  "test_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
