#include <gtest/gtest.h>

#include <algorithm>

#include "index/index_manager.h"

namespace prometheus {
namespace {

bool Contains(const std::vector<Oid>& v, Oid x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

class IndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeDef name;
    name.name = "name";
    name.type = ValueType::kString;
    AttributeDef year;
    year.name = "year";
    year.type = ValueType::kInt;
    ASSERT_TRUE(db.DefineClass("Taxon", {}, {name, year}).ok());
    ASSERT_TRUE(db.DefineClass("Genus", {"Taxon"}).ok());
    idx = std::make_unique<IndexManager>(&db);
  }

  Oid NewTaxon(const std::string& name, std::int64_t year,
               const std::string& cls = "Taxon") {
    return db.CreateObject(cls, {{"name", Value::String(name)},
                                 {"year", Value::Int(year)}})
        .value();
  }

  Database db;
  std::unique_ptr<IndexManager> idx;
};

TEST_F(IndexFixture, BackfillsExistingObjects) {
  Oid a = NewTaxon("Apium", 1753);
  NewTaxon("Helio", 1824);
  ASSERT_TRUE(idx->CreateIndex("Taxon", "name").ok());
  auto r = idx->Lookup("Taxon", "name", Value::String("Apium"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<Oid>{a});
}

TEST_F(IndexFixture, TracksCreateUpdateDelete) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "name").ok());
  Oid a = NewTaxon("Apium", 1753);
  EXPECT_EQ(idx->Lookup("Taxon", "name", Value::String("Apium")).value(),
            std::vector<Oid>{a});
  ASSERT_TRUE(db.SetAttribute(a, "name", Value::String("Helio")).ok());
  EXPECT_TRUE(
      idx->Lookup("Taxon", "name", Value::String("Apium")).value().empty());
  EXPECT_EQ(idx->Lookup("Taxon", "name", Value::String("Helio")).value(),
            std::vector<Oid>{a});
  ASSERT_TRUE(db.DeleteObject(a).ok());
  EXPECT_TRUE(
      idx->Lookup("Taxon", "name", Value::String("Helio")).value().empty());
  EXPECT_EQ(idx->total_entries(), 0u);
}

TEST_F(IndexFixture, CoversSubclasses) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "name").ok());
  Oid g = NewTaxon("Apium", 1753, "Genus");
  EXPECT_EQ(idx->Lookup("Taxon", "name", Value::String("Apium")).value(),
            std::vector<Oid>{g});
}

TEST_F(IndexFixture, OrderedRangeLookup) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "year", /*ordered=*/true).ok());
  Oid a = NewTaxon("a", 1753);
  Oid b = NewTaxon("b", 1800);
  Oid c = NewTaxon("c", 1824);
  auto r = idx->RangeLookup("Taxon", "year", Value::Int(1760),
                            Value::Int(1824));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_TRUE(Contains(r.value(), b));
  EXPECT_TRUE(Contains(r.value(), c));
  // Open bounds.
  auto all = idx->RangeLookup("Taxon", "year", Value::Null(), Value::Null());
  EXPECT_EQ(all.value().size(), 3u);
  auto upto = idx->RangeLookup("Taxon", "year", Value::Null(),
                               Value::Int(1753));
  EXPECT_EQ(upto.value(), std::vector<Oid>{a});
}

TEST_F(IndexFixture, RangeOnHashIndexRejected) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "year").ok());
  EXPECT_EQ(idx->RangeLookup("Taxon", "year", Value::Int(0), Value::Int(9999))
                .status()
                .code(),
            Status::Code::kFailedPrecondition);
}

TEST_F(IndexFixture, ErrorsOnUnknownTargets) {
  EXPECT_EQ(idx->CreateIndex("Nope", "x").code(), Status::Code::kNotFound);
  EXPECT_EQ(idx->CreateIndex("Taxon", "nope").code(),
            Status::Code::kNotFound);
  EXPECT_EQ(idx->Lookup("Taxon", "name", Value::String("x")).status().code(),
            Status::Code::kNotFound);
  ASSERT_TRUE(idx->CreateIndex("Taxon", "name").ok());
  EXPECT_EQ(idx->CreateIndex("Taxon", "name").code(),
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(idx->DropIndex("Taxon", "name").ok());
  EXPECT_EQ(idx->DropIndex("Taxon", "name").code(), Status::Code::kNotFound);
}

TEST_F(IndexFixture, StaysConsistentAcrossAbort) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "name").ok());
  Oid a = NewTaxon("Apium", 1753);
  ASSERT_TRUE(db.Begin().ok());
  Oid b = NewTaxon("Helio", 1824);
  ASSERT_TRUE(db.SetAttribute(a, "name", Value::String("Renamed")).ok());
  ASSERT_TRUE(db.DeleteObject(a).ok());
  ASSERT_TRUE(db.Abort().ok());
  // Rollback published compensating events; the index reflects pre-txn state.
  EXPECT_EQ(idx->Lookup("Taxon", "name", Value::String("Apium")).value(),
            std::vector<Oid>{a});
  EXPECT_TRUE(
      idx->Lookup("Taxon", "name", Value::String("Helio")).value().empty());
  EXPECT_TRUE(
      idx->Lookup("Taxon", "name", Value::String("Renamed")).value().empty());
  (void)b;
}

TEST_F(IndexFixture, DuplicateKeysReturnAllMatches) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "year", /*ordered=*/true).ok());
  Oid a = NewTaxon("a", 1753);
  Oid b = NewTaxon("b", 1753);
  auto r = idx->Lookup("Taxon", "year", Value::Int(1753));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_TRUE(Contains(r.value(), a));
  EXPECT_TRUE(Contains(r.value(), b));
}

TEST_F(IndexFixture, NumericKeysUnifyIntAndDouble) {
  ASSERT_TRUE(idx->CreateIndex("Taxon", "year").ok());
  Oid a = NewTaxon("a", 1753);
  EXPECT_EQ(idx->Lookup("Taxon", "year", Value::Double(1753.0)).value(),
            std::vector<Oid>{a});
}

}  // namespace
}  // namespace prometheus
