#include "core/schema.h"

#include <algorithm>

namespace prometheus {

bool ClassDef::IsSubclassOf(const ClassDef* other) const {
  if (this == other) return true;
  for (const ClassDef* s : supers_) {
    if (s->IsSubclassOf(other)) return true;
  }
  return false;
}

const AttributeDef* ClassDef::FindAttribute(std::string_view name) const {
  for (const AttributeDef& a : attributes_) {
    if (a.name == name) return &a;
  }
  for (const ClassDef* s : supers_) {
    if (const AttributeDef* a = s->FindAttribute(name)) return a;
  }
  return nullptr;
}

void ClassDef::CollectAttributes(
    std::vector<const AttributeDef*>* out) const {
  for (const ClassDef* s : supers_) s->CollectAttributes(out);
  for (const AttributeDef& a : attributes_) {
    // A redeclared name overrides the inherited one.
    auto dup = std::find_if(
        out->begin(), out->end(),
        [&a](const AttributeDef* x) { return x->name == a.name; });
    if (dup != out->end()) {
      *dup = &a;
    } else {
      out->push_back(&a);
    }
  }
}

const MethodDef* ClassDef::FindMethod(std::string_view name) const {
  for (const MethodDef& m : methods_) {
    if (m.name == name) return &m;
  }
  for (const ClassDef* s : supers_) {
    if (const MethodDef* m = s->FindMethod(name)) return m;
  }
  return nullptr;
}

bool RelationshipDef::IsSubrelationshipOf(const RelationshipDef* other) const {
  if (this == other) return true;
  for (const RelationshipDef* s : supers_) {
    if (s->IsSubrelationshipOf(other)) return true;
  }
  return false;
}

const AttributeDef* RelationshipDef::FindAttribute(
    std::string_view name) const {
  for (const AttributeDef& a : attributes_) {
    if (a.name == name) return &a;
  }
  for (const RelationshipDef* s : supers_) {
    if (const AttributeDef* a = s->FindAttribute(name)) return a;
  }
  return nullptr;
}

void RelationshipDef::CollectAttributes(
    std::vector<const AttributeDef*>* out) const {
  for (const RelationshipDef* s : supers_) s->CollectAttributes(out);
  for (const AttributeDef& a : attributes_) {
    auto dup = std::find_if(
        out->begin(), out->end(),
        [&a](const AttributeDef* x) { return x->name == a.name; });
    if (dup != out->end()) {
      *dup = &a;
    } else {
      out->push_back(&a);
    }
  }
}

}  // namespace prometheus
