#ifndef PROMETHEUS_TAXONOMY_RANK_H_
#define PROMETHEUS_TAXONOMY_RANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace prometheus::taxonomy {

/// The ICBN rank hierarchy (thesis figure 1): primary ranks, secondary
/// ranks and "sub" ranks, in their mandatory order from Regnum down to
/// Subforma.
enum class Rank : std::uint8_t {
  kRegnum = 0,
  kSubregnum,
  kDivisio,
  kSubdivisio,
  kClassis,
  kSubclassis,
  kOrdo,
  kSubordo,
  kFamilia,
  kSubfamilia,
  kTribus,
  kSubtribus,
  kGenus,
  kSubgenus,
  kSectio,
  kSubsectio,
  kSeries,
  kSubseries,
  kSpecies,
  kSubspecies,
  kVarietas,
  kSubvarietas,
  kForma,
  kSubforma,
};

/// Number of ranks in the hierarchy.
inline constexpr int kRankCount = 24;

/// Position in the hierarchy; smaller = higher (Regnum is 0). Consecutive
/// integers, so classifications may legally skip ranks but never invert
/// them (requirement 2: the rank order is standardised).
int RankOrder(Rank rank);

/// Canonical latin name ("Regnum", "Subfamilia", ...).
const char* RankName(Rank rank);

/// Parses a rank name (case-insensitive). kNotFound for unknown names.
Result<Rank> RankFromName(const std::string& name);

/// The seven compulsory primary ranks (Regnum, Divisio, Classis, Ordo,
/// Familia, Genus, Species).
bool IsPrimaryRank(Rank rank);

/// The secondary ranks (Tribus, Sectio, Series, Varietas, Forma).
bool IsSecondaryRank(Rank rank);

/// The "sub" subdivision ranks.
bool IsSubRank(Rank rank);

/// True when `a` is strictly below `b` in the hierarchy.
bool IsBelow(Rank a, Rank b);

/// Ranks at or below Species form multinomial (binomial etc.) names whose
/// derivation requires the enclosing genus combination (thesis 2.1.2).
bool IsMultinomial(Rank rank);

/// All ranks in hierarchy order (for iteration / parameterised tests).
const std::vector<Rank>& AllRanks();

}  // namespace prometheus::taxonomy

#endif  // PROMETHEUS_TAXONOMY_RANK_H_
