// The service layer (src/server/): envelope round-trips, backpressure,
// shutdown semantics, and the concurrency stress the subsystem exists for —
// many reader threads and a writer over one database, with the epoch guard
// keeping every read a consistent snapshot.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/executor.h"
#include "server/server.h"
#include "storage/recovery.h"
#include "taxonomy/synthetic.h"
#include "taxonomy/taxonomy_db.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::Server;
using prometheus::server::ThreadPoolExecutor;
using prometheus::storage::DurableStore;
using prometheus::taxonomy::Flora;
using prometheus::taxonomy::FloraConfig;
using prometheus::taxonomy::GenerateFlora;
using prometheus::taxonomy::TaxonomyDatabase;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

/// A one-shot gate two threads rendezvous on.
class Latch {
 public:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Fresh database with a tiny schema for the envelope tests.
std::unique_ptr<Database> MakePartsDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt),
                               Attr("b", ValueType::kInt)})
                  .ok());
  return db;
}

// ------------------------------------------------------------- executor

TEST(ThreadPoolExecutorTest, RunsEveryAcceptedJobExactlyOnce) {
  ThreadPoolExecutor executor({/*threads=*/3, /*queue_capacity=*/128});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(executor.Submit([&](bool run) {
      if (run) ran.fetch_add(1);
    }));
  }
  executor.Shutdown(/*drain=*/true);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(executor.executed(), 100u);
  EXPECT_EQ(executor.rejected(), 0u);
}

TEST(ThreadPoolExecutorTest, RejectsWhenQueueFull) {
  ThreadPoolExecutor executor({/*threads=*/1, /*queue_capacity=*/1});
  Latch release;
  Latch started;
  ASSERT_TRUE(executor.Submit([&](bool) {
    started.Release();
    release.Wait();
  }));
  started.Wait();  // worker is busy; queue is empty
  ASSERT_TRUE(executor.Submit([](bool) {}));  // fills the queue
  // Queue full now: submissions bounce without blocking.
  bool accepted = executor.Submit([](bool) {});
  EXPECT_FALSE(accepted);
  EXPECT_GE(executor.rejected(), 1u);
  release.Release();
  executor.Shutdown(/*drain=*/true);
}

TEST(ThreadPoolExecutorTest, DiscardingShutdownStillInvokesQueuedJobs) {
  ThreadPoolExecutor executor({/*threads=*/1, /*queue_capacity=*/64});
  Latch release;
  Latch started;
  ASSERT_TRUE(executor.Submit([&](bool) {
    started.Release();
    release.Wait();
  }));
  started.Wait();
  std::atomic<int> run_true{0};
  std::atomic<int> run_false{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(executor.Submit([&](bool run) {
      (run ? run_true : run_false).fetch_add(1);
    }));
  }
  // Unblock the in-flight job once the queued ones have been discarded
  // (they are invoked with run=false before the workers are joined).
  std::thread releaser([&] {
    while (run_false.load() < 10) std::this_thread::yield();
    release.Release();
  });
  executor.Shutdown(/*drain=*/false);
  releaser.join();
  EXPECT_EQ(run_false.load(), 10);
  EXPECT_EQ(run_true.load(), 0);
}

// ------------------------------------------------------------- envelope

TEST(ServerTest, PingReportsEpoch) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto epoch = client.Ping();
  ASSERT_TRUE(epoch.ok());
  // A mutation bumps the epoch the next ping observes.
  ASSERT_TRUE(client.CreateObject("Part").ok());
  auto epoch2 = client.Ping();
  ASSERT_TRUE(epoch2.ok());
  EXPECT_GT(epoch2.value(), epoch.value());
}

TEST(ServerTest, QueryAndMutationRoundTrip) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  auto oid = client.CreateObject(
      "Part", {{"name", Value::String("gear")}, {"a", Value::Int(1)}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(client.SetAttribute(oid.value(), "a", Value::Int(7)).ok());

  auto rows = client.Query("select p.name, p.a from Part p");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0].AsString(), "gear");
  EXPECT_EQ(rows.value().rows[0][1].AsInt(), 7);

  ASSERT_TRUE(client.DeleteObject(oid.value()).ok());
  auto empty = client.Query("select p from Part p");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().rows.empty());
}

TEST(ServerTest, ErrorsTravelBackAsStatuses) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  auto parse = client.Query("select from nowhere");
  EXPECT_EQ(parse.status().code(), Status::Code::kParseError);

  EXPECT_EQ(client.SetAttribute(999999, "a", Value::Int(1)).code(),
            Status::Code::kNotFound);
  EXPECT_EQ(client.CreateObject("NoSuchClass").status().code(),
            Status::Code::kNotFound);
}

TEST(ServerTest, CustomMutationMayUseTransactions) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  Status st = client.Mutate([](Database& db) {
    PROMETHEUS_RETURN_IF_ERROR(db.Begin());
    auto a = db.CreateObject("Part", {{"a", Value::Int(1)}});
    if (!a.ok()) return a.status();
    return db.Commit();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(db->object_count(), 1u);
}

TEST(ServerTest, DanglingTransactionIsRolledBack) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  Status st = client.Mutate([](Database& db) {
    PROMETHEUS_RETURN_IF_ERROR(db.Begin());
    return db.CreateObject("Part").status();  // forgets to commit
  });
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  EXPECT_FALSE(db->in_transaction());
  EXPECT_EQ(db->object_count(), 0u);  // rolled back
}

// ---------------------------------------------- backpressure & shutdown

TEST(ServerTest, BackpressureRejectsWhenQueueFull) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::future<Response> queued = session->Submit(Request::Query(
      "select p from Part p"));  // occupies the single queue slot

  // Everything beyond the queue bounces immediately with kRejected.
  std::vector<std::future<Response>> bounced;
  for (int i = 0; i < 5; ++i) {
    bounced.push_back(session->Submit(Request::Ping()));
  }
  int rejected = 0;
  for (auto& f : bounced) {
    Response r = f.get();
    if (r.code == ResponseCode::kRejected) ++rejected;
    EXPECT_EQ(r.status.code(), Status::Code::kFailedPrecondition);
  }
  EXPECT_EQ(rejected, 5);

  release.Release();
  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  EXPECT_EQ(queued.get().code, ResponseCode::kOk);
  EXPECT_GE(server.stats().rejected, 5u);
}

TEST(ServerTest, DrainingShutdownCompletesQueuedRequests) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 64;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 10; ++i) {
    queued.push_back(session->Submit(Request::CreateObject("Part")));
  }
  release.Release();
  server.Shutdown(/*drain=*/true);

  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  for (auto& f : queued) {
    Response r = f.get();
    EXPECT_EQ(r.code, ResponseCode::kOk);
    EXPECT_TRUE(r.status.ok());
  }
  EXPECT_EQ(db->object_count(), 10u);

  // After shutdown every submission resolves as kShutdown.
  Response late = session->Submit(Request::Ping()).get();
  EXPECT_EQ(late.code, ResponseCode::kShutdown);
}

TEST(ServerTest, DiscardingShutdownResolvesQueuedAsShutdown) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 64;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 10; ++i) {
    queued.push_back(session->Submit(Request::CreateObject("Part")));
  }
  // The queued requests resolve (kShutdown) during the discard phase,
  // before workers are joined; only then is the in-flight one released.
  std::thread releaser([&] {
    for (auto& f : queued) f.wait();
    release.Release();
  });
  server.Shutdown(/*drain=*/false);
  releaser.join();

  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);  // in-flight completed
  for (auto& f : queued) {
    EXPECT_EQ(f.get().code, ResponseCode::kShutdown);
  }
  EXPECT_EQ(db->object_count(), 0u);  // none of the discarded ones ran
}

TEST(ServerTest, ClosedSessionRefusesSubmissions) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto session = server.Connect();
  EXPECT_EQ(server.sessions().active(), 1u);
  server.sessions().Close(session->id());
  EXPECT_EQ(server.sessions().active(), 0u);
  EXPECT_TRUE(session->closed());
  Response r = session->Submit(Request::Ping()).get();
  EXPECT_EQ(r.code, ResponseCode::kShutdown);
  server.sessions().Close(session->id());  // double close is fine
}

TEST(ServerTest, SessionsAreIndependentClients) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto a = server.Connect();
  auto b = server.Connect();
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(server.sessions().active(), 2u);
  EXPECT_EQ(server.sessions().opened_total(), 2u);
  server.sessions().Close(a->id());
  EXPECT_EQ(b->Call(Request::Ping()).code, ResponseCode::kOk);
  EXPECT_EQ(server.sessions().active(), 1u);
}

// ------------------------------------------------------ concurrency stress

// N reader threads + 1 writer thread over a seeded synthetic taxonomy.
// The writer updates two attributes of one taxon to the same fresh value
// inside a single mutation request; each reader query must observe the
// pair consistent (no torn reads — the epoch guard makes every query a
// snapshot). Every submission is accounted for: exactly one response each.
TEST(ServerStressTest, ReadersNeverSeeTornWrites) {
  TaxonomyDatabase tdb;
  FloraConfig flora_config;
  flora_config.families = 2;
  flora_config.genera_per_family = 3;
  flora_config.species_per_genus = 5;
  flora_config.specimens_per_species = 2;
  auto flora = GenerateFlora(&tdb, flora_config);
  ASSERT_TRUE(flora.ok());
  const Oid victim = flora.value().species_taxa.front();

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  Server server(&tdb.db(), options);

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 150;
  constexpr int kWrites = 100;

  std::atomic<std::uint64_t> responses{0};
  std::atomic<int> torn{0};
  std::atomic<int> transport_failures{0};

  std::vector<std::thread> threads;
  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&] {
      Client client(&server);
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < kReadsPerReader; ++i) {
        Response r = client.Call(Request::Query(
            "select t.working_name, t.rank from CircumscriptionTaxon t "
            "where t.working_name like 'stress-%'"));
        responses.fetch_add(1);
        if (r.code != ResponseCode::kOk || !r.status.ok()) {
          transport_failures.fetch_add(1);
          continue;
        }
        // Snapshot reads observe a non-decreasing epoch.
        EXPECT_GE(r.epoch, last_epoch);
        last_epoch = r.epoch;
        for (const auto& row : r.result.rows) {
          if (!(row[0].Equals(row[1]))) torn.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Client client(&server);
    for (int i = 0; i < kWrites; ++i) {
      const std::string v = "stress-" + std::to_string(i);
      Response r = client.Call(Request::Custom([victim, v](Database& db) {
        PROMETHEUS_RETURN_IF_ERROR(
            db.SetAttribute(victim, "working_name", Value::String(v)));
        return db.SetAttribute(victim, "rank", Value::String(v));
      }));
      responses.fetch_add(1);
      if (r.code != ResponseCode::kOk || !r.status.ok()) {
        transport_failures.fetch_add(1);
      }
    }
  });
  for (std::thread& t : threads) t.join();
  server.Shutdown();

  const std::uint64_t submitted = kReaders * kReadsPerReader + kWrites;
  EXPECT_EQ(responses.load(), submitted);  // exactly one response each
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);

  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, submitted);
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kReaders) *
                               kReadsPerReader);
  EXPECT_EQ(stats.mutations, static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(stats.rejected, 0u);
  // The final write is visible after quiescence.
  auto final_name = tdb.db().GetAttribute(victim, "working_name");
  ASSERT_TRUE(final_name.ok());
  EXPECT_EQ(final_name.value().AsString(),
            "stress-" + std::to_string(kWrites - 1));
}

// Concurrent sessions mutating through a DurableStore-backed database:
// the journal observes a serial history (writers hold the exclusive lock)
// and the store recovers every accepted mutation after reopen.
TEST(ServerStressTest, DurableStoreSurvivesConcurrentWriters) {
  const std::string dir =
      ::testing::TempDir() + "/prometheus_server_durable";
  fs::remove_all(dir);

  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) {
    return db->DefineClass("Doc", {}, {Attr("title", ValueType::kString)})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());

  constexpr int kWriterThreads = 4;
  constexpr int kDocsPerWriter = 50;
  {
    Server::Options options;
    options.worker_threads = 4;
    options.queue_capacity = 4096;
    Server server(&store.value()->db(), options);
    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriterThreads; ++w) {
      writers.emplace_back([&, w] {
        Client client(&server);
        for (int i = 0; i < kDocsPerWriter; ++i) {
          auto oid = client.CreateObject(
              "Doc", {{"title", Value::String("d" + std::to_string(w) + "-" +
                                              std::to_string(i))}});
          if (!oid.ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    server.Shutdown();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_TRUE(store.value()->Sync().ok());
  }
  EXPECT_EQ(store.value()->db().object_count(),
            static_cast<std::size_t>(kWriterThreads * kDocsPerWriter));
  store.value().reset();  // close the journal

  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->db().object_count(),
            static_cast<std::size_t>(kWriterThreads * kDocsPerWriter));
  fs::remove_all(dir);
}

}  // namespace
