// The service layer (src/server/): envelope round-trips, backpressure,
// shutdown semantics, and the concurrency stress the subsystem exists for —
// many reader threads and a writer over one database, with the epoch guard
// keeping every read a consistent snapshot.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "server/executor.h"
#include "server/server.h"
#include "storage/fault.h"
#include "storage/recovery.h"
#include "taxonomy/synthetic.h"
#include "taxonomy/taxonomy_db.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::server::AdmissionController;
using prometheus::server::AdmissionOptions;
using prometheus::server::Client;
using prometheus::server::DeadlineClock;
using prometheus::server::kNoDeadline;
using prometheus::server::Priority;
using prometheus::server::Request;
using prometheus::server::RetryPolicy;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::Server;
using prometheus::server::ThreadPoolExecutor;
using prometheus::storage::DurableStore;
using prometheus::storage::FaultInjectionEnv;
using prometheus::storage::FaultPolicy;
using prometheus::taxonomy::Flora;
using prometheus::taxonomy::FloraConfig;
using prometheus::taxonomy::GenerateFlora;
using prometheus::taxonomy::TaxonomyDatabase;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

/// A one-shot gate two threads rendezvous on.
class Latch {
 public:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Fresh database with a tiny schema for the envelope tests.
std::unique_ptr<Database> MakePartsDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt),
                               Attr("b", ValueType::kInt)})
                  .ok());
  return db;
}

// ------------------------------------------------------------- executor

using Disposition = ThreadPoolExecutor::Disposition;
using Admission = ThreadPoolExecutor::Admission;

TEST(ThreadPoolExecutorTest, RunsEveryAcceptedJobExactlyOnce) {
  ThreadPoolExecutor executor({/*threads=*/3, /*queue_capacity=*/128});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(executor.Submit([&](Disposition d) {
      if (d == Disposition::kRun) ran.fetch_add(1);
    }),
              Admission::kAccepted);
  }
  executor.Shutdown(/*drain=*/true);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(executor.executed(), 100u);
  EXPECT_EQ(executor.rejected(), 0u);
}

TEST(ThreadPoolExecutorTest, RejectsWhenQueueFull) {
  ThreadPoolExecutor executor({/*threads=*/1, /*queue_capacity=*/1});
  Latch release;
  Latch started;
  ASSERT_EQ(executor.Submit([&](Disposition) {
    started.Release();
    release.Wait();
  }),
            Admission::kAccepted);
  started.Wait();  // worker is busy; queue is empty
  ASSERT_EQ(executor.Submit([](Disposition) {}),
            Admission::kAccepted);  // fills the queue
  // Queue full now: same-priority submissions bounce without blocking.
  EXPECT_EQ(executor.Submit([](Disposition) {}), Admission::kQueueFull);
  EXPECT_GE(executor.rejected(), 1u);
  release.Release();
  executor.Shutdown(/*drain=*/true);
}

TEST(ThreadPoolExecutorTest, DiscardingShutdownStillInvokesQueuedJobs) {
  ThreadPoolExecutor executor({/*threads=*/1, /*queue_capacity=*/64});
  Latch release;
  Latch started;
  ASSERT_EQ(executor.Submit([&](Disposition) {
    started.Release();
    release.Wait();
  }),
            Admission::kAccepted);
  started.Wait();
  std::atomic<int> run_count{0};
  std::atomic<int> discarded{0};
  // Half the queued jobs carry an already-expired deadline: a discarding
  // shutdown does not distinguish — expired and live alike resolve with
  // kShutdown (deadline shedding is a dequeue-time concern; discard never
  // dequeues for execution).
  ThreadPoolExecutor::JobInfo expired_info;
  expired_info.deadline =
      prometheus::server::DeadlineClock::now() - std::chrono::milliseconds(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(executor.Submit(
                  [&](Disposition d) {
                    (d == Disposition::kRun ? run_count : discarded)
                        .fetch_add(1);
                    EXPECT_EQ(d, Disposition::kShutdown);
                  },
                  i % 2 == 0 ? expired_info : ThreadPoolExecutor::JobInfo{}),
              Admission::kAccepted);
  }
  // Unblock the in-flight job once the queued ones have been discarded
  // (they are invoked with kShutdown before the workers are joined).
  std::thread releaser([&] {
    while (discarded.load() < 10) std::this_thread::yield();
    release.Release();
  });
  executor.Shutdown(/*drain=*/false);
  releaser.join();
  EXPECT_EQ(discarded.load(), 10);
  EXPECT_EQ(run_count.load(), 0);
}

TEST(ThreadPoolExecutorTest, HigherPriorityEvictsQueuedLowerPriority) {
  ThreadPoolExecutor::Options options;
  options.threads = 1;
  options.queue_capacity = 1;
  // Disable the watermarks: this test isolates the full-queue eviction.
  options.admission.shed_low_above = 1.0;
  options.admission.shed_normal_above = 1.0;
  ThreadPoolExecutor executor(options);
  Latch release;
  Latch started;
  ASSERT_EQ(executor.Submit([&](Disposition) {
    started.Release();
    release.Wait();
  }),
            Admission::kAccepted);
  started.Wait();
  std::atomic<int> low_shed{0};
  ThreadPoolExecutor::JobInfo low;
  low.priority = prometheus::server::Priority::kLow;
  ASSERT_EQ(executor.Submit(
                [&](Disposition d) {
                  if (d == Disposition::kShed) low_shed.fetch_add(1);
                },
                low),
            Admission::kAccepted);
  // Queue is full. Another low submission bounces; a high one evicts the
  // queued low job and takes its place.
  ASSERT_EQ(executor.Submit([](Disposition) {}, low), Admission::kQueueFull);
  std::atomic<int> high_ran{0};
  ThreadPoolExecutor::JobInfo high;
  high.priority = prometheus::server::Priority::kHigh;
  ASSERT_EQ(executor.Submit(
                [&](Disposition d) {
                  if (d == Disposition::kRun) high_ran.fetch_add(1);
                },
                high),
            Admission::kAccepted);
  EXPECT_EQ(low_shed.load(), 1);
  EXPECT_EQ(executor.shed(), 1u);
  release.Release();
  executor.Shutdown(/*drain=*/true);
  EXPECT_EQ(high_ran.load(), 1);
}

TEST(ThreadPoolExecutorTest, ExpiredJobsShedAtDequeueEvenWhenDraining) {
  ThreadPoolExecutor executor({/*threads=*/1, /*queue_capacity=*/64});
  Latch release;
  Latch started;
  ASSERT_EQ(executor.Submit([&](Disposition) {
    started.Release();
    release.Wait();
  }),
            Admission::kAccepted);
  started.Wait();
  std::atomic<int> expired{0};
  std::atomic<int> ran{0};
  ThreadPoolExecutor::JobInfo hopeless;
  // Already in the past when queued — but queued it is (admission's wait
  // prediction is not seeded here), so the shed happens at dequeue.
  hopeless.deadline =
      prometheus::server::DeadlineClock::now() - std::chrono::milliseconds(1);
  ThreadPoolExecutor::JobInfo live;  // no deadline
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(executor.Submit(
                  [&](Disposition d) {
                    (d == Disposition::kExpired ? expired : ran).fetch_add(1);
                  },
                  i % 2 == 0 ? hopeless : live),
              Admission::kAccepted);
  }
  release.Release();
  executor.Shutdown(/*drain=*/true);  // drain honours deadlines
  EXPECT_EQ(expired.load(), 2);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(executor.expired(), 2u);
}

// ------------------------------------------------------------- envelope

TEST(ServerTest, PingReportsEpoch) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto epoch = client.Ping();
  ASSERT_TRUE(epoch.ok());
  // A mutation bumps the epoch the next ping observes.
  ASSERT_TRUE(client.CreateObject("Part").ok());
  auto epoch2 = client.Ping();
  ASSERT_TRUE(epoch2.ok());
  EXPECT_GT(epoch2.value(), epoch.value());
}

TEST(ServerTest, QueryAndMutationRoundTrip) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  auto oid = client.CreateObject(
      "Part", {{"name", Value::String("gear")}, {"a", Value::Int(1)}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(client.SetAttribute(oid.value(), "a", Value::Int(7)).ok());

  auto rows = client.Query("select p.name, p.a from Part p");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0].AsString(), "gear");
  EXPECT_EQ(rows.value().rows[0][1].AsInt(), 7);

  ASSERT_TRUE(client.DeleteObject(oid.value()).ok());
  auto empty = client.Query("select p from Part p");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().rows.empty());
}

TEST(ServerTest, ErrorsTravelBackAsStatuses) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  auto parse = client.Query("select from nowhere");
  EXPECT_EQ(parse.status().code(), Status::Code::kParseError);

  EXPECT_EQ(client.SetAttribute(999999, "a", Value::Int(1)).code(),
            Status::Code::kNotFound);
  EXPECT_EQ(client.CreateObject("NoSuchClass").status().code(),
            Status::Code::kNotFound);
}

TEST(ServerTest, CustomMutationMayUseTransactions) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  Status st = client.Mutate([](Database& db) {
    PROMETHEUS_RETURN_IF_ERROR(db.Begin());
    auto a = db.CreateObject("Part", {{"a", Value::Int(1)}});
    if (!a.ok()) return a.status();
    return db.Commit();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(db->object_count(), 1u);
}

TEST(ServerTest, DanglingTransactionIsRolledBack) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);

  Status st = client.Mutate([](Database& db) {
    PROMETHEUS_RETURN_IF_ERROR(db.Begin());
    return db.CreateObject("Part").status();  // forgets to commit
  });
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  EXPECT_FALSE(db->in_transaction());
  EXPECT_EQ(db->object_count(), 0u);  // rolled back
}

// ---------------------------------------------- backpressure & shutdown

TEST(ServerTest, BackpressureRejectsWhenQueueFull) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::future<Response> queued = session->Submit(Request::Query(
      "select p from Part p"));  // occupies the single queue slot

  // Everything beyond the queue bounces immediately with kRejected.
  std::vector<std::future<Response>> bounced;
  for (int i = 0; i < 5; ++i) {
    bounced.push_back(session->Submit(Request::Ping()));
  }
  int rejected = 0;
  for (auto& f : bounced) {
    Response r = f.get();
    if (r.code == ResponseCode::kRejected) ++rejected;
    EXPECT_EQ(r.status.code(), Status::Code::kFailedPrecondition);
  }
  EXPECT_EQ(rejected, 5);

  release.Release();
  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  EXPECT_EQ(queued.get().code, ResponseCode::kOk);
  EXPECT_GE(server.stats().rejected, 5u);
}

TEST(ServerTest, DrainingShutdownCompletesQueuedRequests) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 64;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 10; ++i) {
    queued.push_back(session->Submit(Request::CreateObject("Part")));
  }
  release.Release();
  server.Shutdown(/*drain=*/true);

  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  for (auto& f : queued) {
    Response r = f.get();
    EXPECT_EQ(r.code, ResponseCode::kOk);
    EXPECT_TRUE(r.status.ok());
  }
  EXPECT_EQ(db->object_count(), 10u);

  // After shutdown every submission resolves as kShutdown.
  Response late = session->Submit(Request::Ping()).get();
  EXPECT_EQ(late.code, ResponseCode::kShutdown);
}

TEST(ServerTest, DiscardingShutdownResolvesQueuedAsShutdown) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 64;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 10; ++i) {
    queued.push_back(session->Submit(Request::CreateObject("Part")));
  }
  // The queued requests resolve (kShutdown) during the discard phase,
  // before workers are joined; only then is the in-flight one released.
  std::thread releaser([&] {
    for (auto& f : queued) f.wait();
    release.Release();
  });
  server.Shutdown(/*drain=*/false);
  releaser.join();

  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);  // in-flight completed
  for (auto& f : queued) {
    EXPECT_EQ(f.get().code, ResponseCode::kShutdown);
  }
  EXPECT_EQ(db->object_count(), 0u);  // none of the discarded ones ran
}

TEST(ServerTest, ClosedSessionRefusesSubmissions) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto session = server.Connect();
  EXPECT_EQ(server.sessions().active(), 1u);
  server.sessions().Close(session->id());
  EXPECT_EQ(server.sessions().active(), 0u);
  EXPECT_TRUE(session->closed());
  Response r = session->Submit(Request::Ping()).get();
  EXPECT_EQ(r.code, ResponseCode::kShutdown);
  server.sessions().Close(session->id());  // double close is fine
}

TEST(ServerTest, SessionsAreIndependentClients) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto a = server.Connect();
  auto b = server.Connect();
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(server.sessions().active(), 2u);
  EXPECT_EQ(server.sessions().opened_total(), 2u);
  server.sessions().Close(a->id());
  EXPECT_EQ(b->Call(Request::Ping()).code, ResponseCode::kOk);
  EXPECT_EQ(server.sessions().active(), 1u);
}

// ------------------------------------- admission, deadlines & degradation

TEST(AdmissionControllerTest, WatermarksShedLowestPriorityFirst) {
  AdmissionController admission(AdmissionOptions{});
  const auto now = DeadlineClock::now();
  using Decision = AdmissionController::Decision;
  // 60% full: low-priority work is shed, normal and high still admitted.
  EXPECT_EQ(admission.Admit(60, 100, 4, Priority::kLow, kNoDeadline, now),
            Decision::kShedOverload);
  EXPECT_EQ(admission.Admit(60, 100, 4, Priority::kNormal, kNoDeadline, now),
            Decision::kAdmit);
  EXPECT_EQ(admission.Admit(60, 100, 4, Priority::kHigh, kNoDeadline, now),
            Decision::kAdmit);
  // 90% full: normal joins the shed list; high still gets through.
  EXPECT_EQ(admission.Admit(90, 100, 4, Priority::kNormal, kNoDeadline, now),
            Decision::kShedOverload);
  EXPECT_EQ(admission.Admit(90, 100, 4, Priority::kHigh, kNoDeadline, now),
            Decision::kAdmit);
  // Below the low watermark everything is admitted.
  EXPECT_EQ(admission.Admit(10, 100, 4, Priority::kLow, kNoDeadline, now),
            Decision::kAdmit);
}

TEST(AdmissionControllerTest, PredictedQueueWaitRefusesDoomedDeadlines) {
  AdmissionOptions options;
  options.initial_estimate_micros = 1000;  // 1ms per job, seeded
  AdmissionController admission(options);
  const auto now = DeadlineClock::now();
  using Decision = AdmissionController::Decision;
  // 20 queued jobs / 2 workers * 1ms = ~10ms estimated wait.
  EXPECT_NEAR(admission.EstimatedQueueWaitMicros(20, 2), 10000.0, 1.0);
  // A 2ms budget cannot survive a 10ms queue: refused upfront.
  EXPECT_EQ(admission.Admit(20, 100, 2, Priority::kNormal,
                            now + std::chrono::milliseconds(2), now),
            Decision::kWouldExpire);
  // A 50ms budget clears it; so does no deadline at all.
  EXPECT_EQ(admission.Admit(20, 100, 2, Priority::kNormal,
                            now + std::chrono::milliseconds(50), now),
            Decision::kAdmit);
  EXPECT_EQ(admission.Admit(20, 100, 2, Priority::kNormal, kNoDeadline, now),
            Decision::kAdmit);
}

TEST(AdmissionControllerTest, EwmaTracksObservedJobLatency) {
  AdmissionController admission(AdmissionOptions{});
  EXPECT_DOUBLE_EQ(admission.estimated_job_micros(), 0.0);
  admission.RecordJobMicros(100);  // first observation seeds the estimate
  EXPECT_DOUBLE_EQ(admission.estimated_job_micros(), 100.0);
  for (int i = 0; i < 200; ++i) admission.RecordJobMicros(500);
  // Converges toward the sustained value, never overshoots it.
  EXPECT_GT(admission.estimated_job_micros(), 400.0);
  EXPECT_LE(admission.estimated_job_micros(), 500.0);
}

TEST(ServerTest, ExpiredDeadlineIsRefusedAtAdmission) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto session = server.Connect();
  Request req = Request::Query("select p from Part p")
                    .WithDeadline(DeadlineClock::now() -
                                  std::chrono::milliseconds(1));
  Response r = session->Submit(std::move(req)).get();
  EXPECT_EQ(r.code, ResponseCode::kTimedOut);
  EXPECT_FALSE(r.executed);
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_GE(server.stats().timed_out, 1u);
}

TEST(ServerTest, DrainingShutdownShedsExpiredQueuedRequests) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 64;
  Server server(db.get(), options);
  auto session = server.Connect();

  Latch release;
  Latch started;
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();

  // Queue live requests alongside ones whose deadline will pass while the
  // worker is blocked; draining runs the former and sheds the latter.
  const auto soon = DeadlineClock::now() + std::chrono::milliseconds(20);
  std::vector<std::future<Response>> doomed;
  std::vector<std::future<Response>> live;
  for (int i = 0; i < 4; ++i) {
    doomed.push_back(session->Submit(
        Request::CreateObject("Part").WithDeadline(soon)));
    live.push_back(session->Submit(Request::CreateObject("Part")));
  }
  while (DeadlineClock::now() <= soon) std::this_thread::yield();
  release.Release();
  server.Shutdown(/*drain=*/true);

  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  for (auto& f : doomed) {
    Response r = f.get();
    EXPECT_EQ(r.code, ResponseCode::kTimedOut);
    EXPECT_FALSE(r.executed);  // shed at dequeue: safe to retry elsewhere
  }
  for (auto& f : live) EXPECT_EQ(f.get().code, ResponseCode::kOk);
  EXPECT_EQ(db->object_count(), 4u);  // only the live ones ran
  EXPECT_GE(server.stats().timed_out, 4u);
}

TEST(ServerTest, QueryTimesOutCooperativelyMidExecution) {
  auto db = MakePartsDb();
  // Enough rows that the self-join (millions of enumerated bindings, no
  // index) cannot finish inside the budget.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        db->CreateObject("Part", {{"a", Value::Int(i)}, {"b", Value::Int(i)}})
            .ok());
  }
  Server server(db.get());
  Client client(&server);
  Response r = client.Call(
      Request::Query("select p.a, q.a from Part p, Part q "
                     "where p.a = q.a and p.b = q.b")
          .WithTimeout(std::chrono::milliseconds(5)));
  EXPECT_EQ(r.code, ResponseCode::kTimedOut);
  EXPECT_TRUE(r.executed);  // it ran — retrying is the caller's judgement
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_FALSE(Client::Retryable(r));
  // The same query without a deadline completes fine (and pays no
  // cancellation checks on the way).
  Response full = client.Call(Request::Query(
      "select p.a from Part p where p.a = 3"));
  EXPECT_TRUE(full.ok());
}

TEST(ServerTest, HealthAnswersWithoutTouchingTheDatabase) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  ASSERT_TRUE(client.CreateObject("Part").ok());

  // Typed snapshot.
  Server::Health health = client.HealthInfo();
  EXPECT_FALSE(health.degraded);
  EXPECT_TRUE(health.store_status.ok());
  EXPECT_EQ(health.queue_capacity, 256u);
  EXPECT_EQ(health.workers, 4);
  EXPECT_GE(health.stats.accepted, 1u);

  // The kHealth request renders the same as JSON, at high priority.
  auto json = client.Health();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(json.value().find("\"queue_capacity\":256"), std::string::npos);

  // kHealth executes even while a mutation holds the write guard: it
  // takes no database lock, so a stuck writer cannot starve the probe.
  Latch release;
  Latch started;
  auto session = server.Connect();
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();
  Response probe = client.Call(Request::Health());
  EXPECT_EQ(probe.code, ResponseCode::kOk);
  release.Release();
  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
}

// The degraded read-only state machine end to end: a journal write failure
// latches the store sticky, the server flips to degraded (queries serve,
// mutations fail fast, never executed), and a successful checkpoint re-arms
// both store and server.
TEST(ServerTest, DegradedReadOnlyModeRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/prometheus_degraded";
  fs::remove_all(dir);
  FaultInjectionEnv env;

  DurableStore::Options store_options;
  store_options.env = &env;
  store_options.bootstrap = [](Database* db) {
    return db->DefineClass("Doc", {}, {Attr("title", ValueType::kString)})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());

  {
    Server::Options options;
    options.store = store.value().get();
    Server server(&store.value()->db(), options);
    Client client(&server);

    ASSERT_TRUE(
        client.CreateObject("Doc", {{"title", Value::String("pre")}}).ok());
    EXPECT_FALSE(server.degraded());

    // Break durability. SetPolicy is not synchronised against journal
    // appends, so it runs inside a mutation — serialized with them under
    // the exclusive lock.
    FaultPolicy broken;
    broken.fail_after_appends = 0;  // the very next append fails
    ASSERT_TRUE(client
                    .Mutate([&env, broken](Database&) {
                      env.SetPolicy(broken);
                      return Status::Ok();
                    })
                    .ok());

    // The first failing mutation executes, is vetoed by the journal and
    // reports the I/O error; observing it flips the server to degraded.
    Response failing = client.Call(Request::CreateObject(
        "Doc", {{"title", Value::String("broken")}}));
    EXPECT_EQ(failing.code, ResponseCode::kOk);  // it did run
    EXPECT_TRUE(failing.executed);
    EXPECT_FALSE(failing.status.ok());
    EXPECT_TRUE(server.degraded());

    // Subsequent mutations fail fast: kUnavailable, never executed, and
    // not retryable (patience won't fix a broken journal).
    Response refused = client.Call(Request::CreateObject(
        "Doc", {{"title", Value::String("refused")}}));
    EXPECT_EQ(refused.code, ResponseCode::kUnavailable);
    EXPECT_FALSE(refused.executed);
    EXPECT_EQ(refused.status.code(), Status::Code::kUnavailable);
    EXPECT_FALSE(Client::Retryable(refused));

    // Queries keep serving, and health reports the state.
    auto rows = client.Query("select d.title from Doc d");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().rows.size(), 1u);  // "pre"; "broken" rolled back
    EXPECT_TRUE(client.HealthInfo().degraded);
    EXPECT_GE(server.stats().unavailable, 1u);

    // Heal the filesystem and re-arm via the operator path. Mutations are
    // refused while degraded, so no journal append can race this SetPolicy.
    env.SetPolicy(FaultPolicy{});
    ASSERT_TRUE(client.Checkpoint().ok());
    EXPECT_FALSE(server.degraded());
    EXPECT_FALSE(client.HealthInfo().degraded);

    // Writes flow again — and are durable again.
    ASSERT_TRUE(
        client.CreateObject("Doc", {{"title", Value::String("post")}}).ok());
    server.Shutdown();
    EXPECT_TRUE(store.value()->Sync().ok());
  }
  store.value().reset();  // close the journal

  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->db().object_count(), 2u);  // pre + post
  fs::remove_all(dir);
}

TEST(ClientRetryTest, RetryableCoversExactlyTheSafeOutcomes) {
  Response r;
  r.code = ResponseCode::kRejected;
  EXPECT_TRUE(Client::Retryable(r));  // never ran
  r.code = ResponseCode::kTimedOut;
  r.executed = false;
  EXPECT_TRUE(Client::Retryable(r));  // shed from the queue, never ran
  r.executed = true;
  EXPECT_FALSE(Client::Retryable(r));  // aborted mid-execution
  r.code = ResponseCode::kUnavailable;
  r.executed = false;
  EXPECT_FALSE(Client::Retryable(r));  // needs an operator, not patience
  r.code = ResponseCode::kShutdown;
  EXPECT_FALSE(Client::Retryable(r));
  r.code = ResponseCode::kOk;
  EXPECT_FALSE(Client::Retryable(r));
}

TEST(ClientRetryTest, GivesUpAfterMaxAttemptsAgainstAFullQueue) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  Server server(db.get(), options);
  Client client(&server);

  Latch release;
  Latch started;
  auto session = server.Connect();
  std::future<Response> blocker =
      session->Submit(Request::Custom([&](Database&) {
        started.Release();
        release.Wait();
        return Status::Ok();
      }));
  started.Wait();
  std::future<Response> queued =
      session->Submit(Request::Query("select p from Part p"));

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.max_backoff = std::chrono::microseconds(500);
  const std::uint64_t rejected_before = server.stats().rejected;
  Response r = client.CallWithRetry(Request::Ping(), policy);
  EXPECT_EQ(r.code, ResponseCode::kRejected);
  EXPECT_EQ(server.stats().rejected - rejected_before, 3u);  // one per try

  release.Release();
  EXPECT_EQ(blocker.get().code, ResponseCode::kOk);
  EXPECT_EQ(queued.get().code, ResponseCode::kOk);

  // With the queue free again the same call succeeds on the first try.
  Response again = client.CallWithRetry(Request::Ping(), policy);
  EXPECT_EQ(again.code, ResponseCode::kOk);
}

// ------------------------------------------------------ concurrency stress

// N reader threads + 1 writer thread over a seeded synthetic taxonomy.
// The writer updates two attributes of one taxon to the same fresh value
// inside a single mutation request; each reader query must observe the
// pair consistent (no torn reads — the epoch guard makes every query a
// snapshot). Every submission is accounted for: exactly one response each.
TEST(ServerStressTest, ReadersNeverSeeTornWrites) {
  TaxonomyDatabase tdb;
  FloraConfig flora_config;
  flora_config.families = 2;
  flora_config.genera_per_family = 3;
  flora_config.species_per_genus = 5;
  flora_config.specimens_per_species = 2;
  auto flora = GenerateFlora(&tdb, flora_config);
  ASSERT_TRUE(flora.ok());
  const Oid victim = flora.value().species_taxa.front();

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  Server server(&tdb.db(), options);

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 150;
  constexpr int kWrites = 100;

  std::atomic<std::uint64_t> responses{0};
  std::atomic<int> torn{0};
  std::atomic<int> transport_failures{0};

  std::vector<std::thread> threads;
  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&] {
      Client client(&server);
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < kReadsPerReader; ++i) {
        Response r = client.Call(Request::Query(
            "select t.working_name, t.rank from CircumscriptionTaxon t "
            "where t.working_name like 'stress-%'"));
        responses.fetch_add(1);
        if (r.code != ResponseCode::kOk || !r.status.ok()) {
          transport_failures.fetch_add(1);
          continue;
        }
        // Snapshot reads observe a non-decreasing epoch.
        EXPECT_GE(r.epoch, last_epoch);
        last_epoch = r.epoch;
        for (const auto& row : r.result.rows) {
          if (!(row[0].Equals(row[1]))) torn.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Client client(&server);
    for (int i = 0; i < kWrites; ++i) {
      const std::string v = "stress-" + std::to_string(i);
      Response r = client.Call(Request::Custom([victim, v](Database& db) {
        PROMETHEUS_RETURN_IF_ERROR(
            db.SetAttribute(victim, "working_name", Value::String(v)));
        return db.SetAttribute(victim, "rank", Value::String(v));
      }));
      responses.fetch_add(1);
      if (r.code != ResponseCode::kOk || !r.status.ok()) {
        transport_failures.fetch_add(1);
      }
    }
  });
  for (std::thread& t : threads) t.join();
  server.Shutdown();

  const std::uint64_t submitted = kReaders * kReadsPerReader + kWrites;
  EXPECT_EQ(responses.load(), submitted);  // exactly one response each
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);

  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, submitted);
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kReaders) *
                               kReadsPerReader);
  EXPECT_EQ(stats.mutations, static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(stats.rejected, 0u);
  // The final write is visible after quiescence.
  auto final_name = tdb.db().GetAttribute(victim, "working_name");
  ASSERT_TRUE(final_name.ok());
  EXPECT_EQ(final_name.value().AsString(),
            "stress-" + std::to_string(kWrites - 1));
}

// Concurrent sessions mutating through a DurableStore-backed database:
// the journal observes a serial history (writers hold the exclusive lock)
// and the store recovers every accepted mutation after reopen.
TEST(ServerStressTest, DurableStoreSurvivesConcurrentWriters) {
  const std::string dir =
      ::testing::TempDir() + "/prometheus_server_durable";
  fs::remove_all(dir);

  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) {
    return db->DefineClass("Doc", {}, {Attr("title", ValueType::kString)})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());

  constexpr int kWriterThreads = 4;
  constexpr int kDocsPerWriter = 50;
  {
    Server::Options options;
    options.worker_threads = 4;
    options.queue_capacity = 4096;
    Server server(&store.value()->db(), options);
    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriterThreads; ++w) {
      writers.emplace_back([&, w] {
        Client client(&server);
        for (int i = 0; i < kDocsPerWriter; ++i) {
          auto oid = client.CreateObject(
              "Doc", {{"title", Value::String("d" + std::to_string(w) + "-" +
                                              std::to_string(i))}});
          if (!oid.ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    server.Shutdown();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_TRUE(store.value()->Sync().ok());
  }
  EXPECT_EQ(store.value()->db().object_count(),
            static_cast<std::size_t>(kWriterThreads * kDocsPerWriter));
  store.value().reset();  // close the journal

  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->db().object_count(),
            static_cast<std::size_t>(kWriterThreads * kDocsPerWriter));
  fs::remove_all(dir);
}

}  // namespace
