// Ablation — view strategy (thesis 3.2.2 discusses the cost trade-off the
// prototype resolved in favour of virtual views): virtual views pay at
// read time, materialised views pay at write time. Expected shape:
// materialised reads are O(result) regardless of database size; virtual
// reads scan; write-side maintenance adds a bounded per-mutation cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/database.h"
#include "views/view_manager.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::ViewDef;
using prometheus::ViewManager;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void Populate(Database* db, int objects) {
  (void)db->DefineClass("Taxon", {},
                        {Attr("rank", ValueType::kString),
                         Attr("year", ValueType::kInt)});
  for (int i = 0; i < objects; ++i) {
    (void)db->CreateObject(
        "Taxon", {{"rank", Value::String(i % 10 == 0 ? "Genus" : "Species")},
                  {"year", Value::Int(1700 + i % 300)}});
  }
}

ViewDef GenusView() {
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  return def;
}

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "Ablation: virtual vs materialised views (10% selectivity)",
      "  objects   virtual_read_ms  materialised_read_ms  "
      "update_plain_ms  update_maintained_ms");
  for (int objects : {1000, 4000}) {
    Database db;
    Populate(&db, objects);
    ViewManager views(&db);
    (void)views.Define(GenusView());
    ViewDef mat = GenusView();
    mat.name = "genera_mat";
    (void)views.DefineMaterialized(mat);

    double virtual_read = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(views.Evaluate("genera").ok()); }, 5);
    double mat_read = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(views.Evaluate("genera_mat").ok()); },
        5);

    // Write-side: 1000 attribute updates with and without maintenance.
    std::vector<Oid> taxa = db.Extent("Taxon");
    double update_maintained = prometheus::bench::MedianMillis(
        [&] {
          for (int i = 0; i < 1000; ++i) {
            (void)db.SetAttribute(taxa[static_cast<std::size_t>(i) %
                                       taxa.size()],
                                  "year", Value::Int(1800 + i));
          }
        },
        3);
    Database plain_db;
    Populate(&plain_db, objects);
    std::vector<Oid> plain_taxa = plain_db.Extent("Taxon");
    double update_plain = prometheus::bench::MedianMillis(
        [&] {
          for (int i = 0; i < 1000; ++i) {
            (void)plain_db.SetAttribute(
                plain_taxa[static_cast<std::size_t>(i) % plain_taxa.size()],
                "year", Value::Int(1800 + i));
          }
        },
        3);
    std::printf("  %7d   %15.3f  %20.4f  %15.3f  %20.3f\n", objects,
                virtual_read, mat_read, update_plain, update_maintained);
  }
}

void BM_VirtualRead(benchmark::State& state) {
  Database db;
  Populate(&db, static_cast<int>(state.range(0)));
  ViewManager views(&db);
  (void)views.Define(GenusView());
  for (auto _ : state) {
    benchmark::DoNotOptimize(views.Evaluate("genera").ok());
  }
}
BENCHMARK(BM_VirtualRead)->Arg(1000)->Arg(4000)->Unit(benchmark::kMicrosecond);

void BM_MaterializedRead(benchmark::State& state) {
  Database db;
  Populate(&db, static_cast<int>(state.range(0)));
  ViewManager views(&db);
  (void)views.DefineMaterialized(GenusView());
  for (auto _ : state) {
    benchmark::DoNotOptimize(views.Evaluate("genera").ok());
  }
}
BENCHMARK(BM_MaterializedRead)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
