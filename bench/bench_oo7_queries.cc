// E6 — OO7 query tests (thesis 7.2.1.2.2): exact-match lookup (Q1), range
// scan (Q2), reverse traversal (Q4), comparing the baseline's hand-coded
// access, the Prometheus API, POOL with an extent scan, and POOL with the
// index layer (6.1.5.2). Expected shape: the declarative path costs more
// than hand-coded access, and the index recovers most of the gap for
// selective predicates.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "index/index_manager.h"
#include "oo7/oo7.h"
#include "query/query_engine.h"

namespace {

using prometheus::IndexManager;
using prometheus::oo7::BaselineOo7;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

Config MakeConfig() {
  Config config;
  config.composite_parts = 40;
  config.assembly_levels = 4;
  return config;
}

void PrintSeries() {
  Config config = MakeConfig();
  PrometheusOo7 prom(config);
  BaselineOo7 base(config);
  IndexManager indexes(&prom.db());
  (void)indexes.CreateIndex("AtomicPart", "id");
  prometheus::pool::QueryEngine scan_engine(&prom.db());
  prometheus::pool::QueryEngine indexed_engine(&prom.db(), &indexes);

  prometheus::bench::PrintTableHeader(
      "E6: OO7 query tests (40 composites, 800 atomic parts)",
      "  test                         ms        result");
  std::uint32_t checksum = 0;
  double q1_base = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(base.LookupQ1(200, &checksum)); }, 5);
  std::printf("  %-26s %8.4f   200 probes (hand-coded map)\n",
              "Q1 baseline", q1_base);
  double q1_prom = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(prom.LookupQ1(200, &checksum)); }, 5);
  std::printf("  %-26s %8.4f   200 probes (API, builds dictionary)\n",
              "Q1 prometheus api", q1_prom);
  const std::string kPoolQ1 =
      "select a.x from AtomicPart a where a.id = 137";
  double q1_pool_scan = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(scan_engine.Execute(kPoolQ1).ok()); },
      5);
  std::printf("  %-26s %8.4f   1 probe (POOL extent scan)\n",
              "Q1 pool scan", q1_pool_scan);
  double q1_pool_index = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(indexed_engine.Execute(kPoolQ1).ok());
      },
      5);
  std::printf("  %-26s %8.4f   1 probe (POOL + hash index)\n",
              "Q1 pool indexed", q1_pool_index);

  double q2_base = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(base.RangeQ2(1500, 1700)); }, 5);
  std::printf("  %-26s %8.4f   range scan (hand-coded)\n", "Q2 baseline",
              q2_base);
  double q2_prom = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(prom.RangeQ2(1500, 1700)); }, 5);
  std::printf("  %-26s %8.4f   range scan (API extent)\n",
              "Q2 prometheus api", q2_prom);
  double q2_pool = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            scan_engine
                .Execute("select a from AtomicPart a where "
                         "a.build_date >= 1500 and a.build_date <= 1700")
                .ok());
      },
      5);
  std::printf("  %-26s %8.4f   range scan (POOL)\n", "Q2 pool", q2_pool);

  double q4_base = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(base.ReverseQ4(200)); }, 5);
  std::printf("  %-26s %8.4f   200 reverse walks (hand-coded)\n",
              "Q4 baseline", q4_base);
  double q4_prom = prometheus::bench::MedianMillis(
      [&] { benchmark::DoNotOptimize(prom.ReverseQ4(200)); }, 5);
  std::printf("  %-26s %8.4f   200 reverse walks (API)\n",
              "Q4 prometheus api", q4_prom);
}

void BM_Q1PoolScan(benchmark::State& state) {
  Config config = MakeConfig();
  PrometheusOo7 prom(config);
  prometheus::pool::QueryEngine engine(&prom.db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Execute("select a.x from AtomicPart a where a.id = 137").ok());
  }
}
BENCHMARK(BM_Q1PoolScan)->Unit(benchmark::kMicrosecond);

void BM_Q1PoolIndexed(benchmark::State& state) {
  Config config = MakeConfig();
  PrometheusOo7 prom(config);
  IndexManager indexes(&prom.db());
  (void)indexes.CreateIndex("AtomicPart", "id");
  prometheus::pool::QueryEngine engine(&prom.db(), &indexes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Execute("select a.x from AtomicPart a where a.id = 137").ok());
  }
}
BENCHMARK(BM_Q1PoolIndexed)->Unit(benchmark::kMicrosecond);

void BM_Q2RangePrometheus(benchmark::State& state) {
  Config config = MakeConfig();
  PrometheusOo7 prom(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prom.RangeQ2(1500, 1700));
  }
}
BENCHMARK(BM_Q2RangePrometheus)->Unit(benchmark::kMicrosecond);

void BM_Q2RangeBaseline(benchmark::State& state) {
  Config config = MakeConfig();
  BaselineOo7 base(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.RangeQ2(1500, 1700));
  }
}
BENCHMARK(BM_Q2RangeBaseline)->Unit(benchmark::kMicrosecond);

void BM_Q4ReversePrometheus(benchmark::State& state) {
  Config config = MakeConfig();
  PrometheusOo7 prom(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prom.ReverseQ4(100));
  }
}
BENCHMARK(BM_Q4ReversePrometheus)->Unit(benchmark::kMicrosecond);

void BM_Q4ReverseBaseline(benchmark::State& state) {
  Config config = MakeConfig();
  BaselineOo7 base(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.ReverseQ4(100));
  }
}
BENCHMARK(BM_Q4ReverseBaseline)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
