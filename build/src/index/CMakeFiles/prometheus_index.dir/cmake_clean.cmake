file(REMOVE_RECURSE
  "CMakeFiles/prometheus_index.dir/index_manager.cc.o"
  "CMakeFiles/prometheus_index.dir/index_manager.cc.o.d"
  "libprometheus_index.a"
  "libprometheus_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
