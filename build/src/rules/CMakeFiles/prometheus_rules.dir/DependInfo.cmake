
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/pcl.cc" "src/rules/CMakeFiles/prometheus_rules.dir/pcl.cc.o" "gcc" "src/rules/CMakeFiles/prometheus_rules.dir/pcl.cc.o.d"
  "/root/repo/src/rules/rule_engine.cc" "src/rules/CMakeFiles/prometheus_rules.dir/rule_engine.cc.o" "gcc" "src/rules/CMakeFiles/prometheus_rules.dir/rule_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prometheus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/prometheus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/prometheus_index.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/prometheus_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prometheus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
