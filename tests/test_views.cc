#include <gtest/gtest.h>

#include <algorithm>

#include "classification/classification.h"
#include "views/view_manager.h"

namespace prometheus {
namespace {

bool Contains(const std::vector<Oid>& v, Oid x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

class ViewFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mgr = std::make_unique<ClassificationManager>(&db);
    views = std::make_unique<ViewManager>(&db);
    ASSERT_TRUE(db.DefineClass("Taxon", {},
                               {Attr("name", ValueType::kString),
                                Attr("rank", ValueType::kString)})
                    .ok());
    ASSERT_TRUE(db.DefineClass("Specimen", {},
                               {Attr("collector", ValueType::kString)})
                    .ok());
    ASSERT_TRUE(
        db.DefineRelationship("classified_in", "Taxon", "Specimen").ok());
    ASSERT_TRUE(db.DefineRelationship("placed_in", "Taxon", "Taxon").ok());
  }

  Oid NewTaxon(const std::string& name, const std::string& rank) {
    return db.CreateObject("Taxon", {{"name", Value::String(name)},
                                     {"rank", Value::String(rank)}})
        .value();
  }

  Database db;
  std::unique_ptr<ClassificationManager> mgr;
  std::unique_ptr<ViewManager> views;
};

TEST_F(ViewFixture, ClassAndPredicateView) {
  Oid g = NewTaxon("Apium", "Genus");
  Oid s = NewTaxon("graveolens", "Species");
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  ASSERT_TRUE(views->Define(def).ok());
  auto r = views->Evaluate("genera");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<Oid>{g});
  (void)s;
}

TEST_F(ViewFixture, ClassificationContextView) {
  Oid c1 = mgr->Create("C1", "t1").value();
  Oid c2 = mgr->Create("C2", "t2").value();
  Oid g = NewTaxon("G", "Genus");
  Oid s1 = db.CreateObject("Specimen").value();
  Oid s2 = db.CreateObject("Specimen").value();
  ASSERT_TRUE(mgr->AddEdge(c1, "classified_in", g, s1).ok());
  ASSERT_TRUE(mgr->AddEdge(c2, "classified_in", g, s2).ok());
  ViewDef def;
  def.name = "c1_members";
  def.context = c1;
  ASSERT_TRUE(views->Define(def).ok());
  auto r = views->Evaluate("c1_members");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_TRUE(Contains(r.value(), g));
  EXPECT_TRUE(Contains(r.value(), s1));
  EXPECT_FALSE(Contains(r.value(), s2));
}

TEST_F(ViewFixture, ContextPlusClassPlusPredicate) {
  Oid c = mgr->Create("C", "t").value();
  Oid g = NewTaxon("Apium", "Genus");
  Oid sp = NewTaxon("graveolens", "Species");
  ASSERT_TRUE(mgr->AddEdge(c, "placed_in", g, sp).ok());
  ViewDef def;
  def.name = "c_species";
  def.context = c;
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Species'";
  ASSERT_TRUE(views->Define(def).ok());
  auto r = views->Evaluate("c_species");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<Oid>{sp});
}

TEST_F(ViewFixture, EvaluateEdgesExtractsSubgraph) {
  Oid c = mgr->Create("C", "t").value();
  Oid g = NewTaxon("Apium", "Genus");
  Oid sp = NewTaxon("graveolens", "Species");
  Oid s1 = db.CreateObject("Specimen").value();
  Oid taxa_edge = mgr->AddEdge(c, "placed_in", g, sp).value();
  ASSERT_TRUE(mgr->AddEdge(c, "classified_in", sp, s1).ok());
  // A view of only taxa: the taxa→specimen edge drops out.
  ViewDef def;
  def.name = "taxa_only";
  def.context = c;
  def.class_name = "Taxon";
  ASSERT_TRUE(views->Define(def).ok());
  auto edges = views->EvaluateEdges("taxa_only");
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges.value(), std::vector<Oid>{taxa_edge});
}

TEST_F(ViewFixture, ViewsAreVirtualAndTrackData) {
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  ASSERT_TRUE(views->Define(def).ok());
  EXPECT_TRUE(views->Evaluate("genera").value().empty());
  Oid g = NewTaxon("Apium", "Genus");
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{g});
  ASSERT_TRUE(db.SetAttribute(g, "rank", Value::String("Species")).ok());
  EXPECT_TRUE(views->Evaluate("genera").value().empty());
}

TEST_F(ViewFixture, DefinitionValidation) {
  ViewDef empty_name;
  EXPECT_EQ(views->Define(empty_name).code(),
            Status::Code::kInvalidArgument);
  ViewDef no_scope;
  no_scope.name = "x";
  EXPECT_EQ(views->Define(no_scope).code(), Status::Code::kInvalidArgument);
  ViewDef bad_class;
  bad_class.name = "x";
  bad_class.class_name = "Missing";
  EXPECT_EQ(views->Define(bad_class).code(), Status::Code::kNotFound);
  ViewDef bad_pred;
  bad_pred.name = "x";
  bad_pred.class_name = "Taxon";
  bad_pred.predicate = "self.rank =";
  EXPECT_EQ(views->Define(bad_pred).code(), Status::Code::kParseError);
  ViewDef ok;
  ok.name = "x";
  ok.class_name = "Taxon";
  ASSERT_TRUE(views->Define(ok).ok());
  EXPECT_EQ(views->Define(ok).code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(views->Has("x"));
  EXPECT_EQ(views->names(), std::vector<std::string>{"x"});
  EXPECT_TRUE(views->Drop("x").ok());
  EXPECT_EQ(views->Drop("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(views->Evaluate("x").status().code(), Status::Code::kNotFound);
}

TEST_F(ViewFixture, MaterializedViewTracksAttributeChanges) {
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  ASSERT_TRUE(views->DefineMaterialized(def).ok());
  EXPECT_TRUE(views->Evaluate("genera").value().empty());
  Oid g = NewTaxon("Apium", "Genus");
  Oid s = NewTaxon("graveolens", "Species");
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{g});
  // Promotion and demotion flow through incrementally.
  ASSERT_TRUE(db.SetAttribute(s, "rank", Value::String("Genus")).ok());
  EXPECT_EQ(views->Evaluate("genera").value().size(), 2u);
  ASSERT_TRUE(db.SetAttribute(g, "rank", Value::String("Species")).ok());
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{s});
  ASSERT_TRUE(db.DeleteObject(s).ok());
  EXPECT_TRUE(views->Evaluate("genera").value().empty());
  EXPECT_GT(views->maintenance_updates(), 0u);
}

TEST_F(ViewFixture, MaterializedViewBackfillsExistingData) {
  Oid g = NewTaxon("Apium", "Genus");
  NewTaxon("graveolens", "Species");
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  ASSERT_TRUE(views->DefineMaterialized(def).ok());
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{g});
}

TEST_F(ViewFixture, MaterializedContextViewTracksEdges) {
  Oid c = mgr->Create("C", "t").value();
  ViewDef def;
  def.name = "c_members";
  def.context = c;
  ASSERT_TRUE(views->DefineMaterialized(def).ok());
  Oid g = NewTaxon("G", "Genus");
  Oid s = db.CreateObject("Specimen").value();
  EXPECT_TRUE(views->Evaluate("c_members").value().empty());
  Oid edge = mgr->AddEdge(c, "classified_in", g, s).value();
  EXPECT_EQ(views->Evaluate("c_members").value().size(), 2u);
  ASSERT_TRUE(db.DeleteLink(edge).ok());
  EXPECT_TRUE(views->Evaluate("c_members").value().empty());
}

TEST_F(ViewFixture, MaterializedViewSurvivesAbort) {
  ViewDef def;
  def.name = "genera";
  def.class_name = "Taxon";
  def.predicate = "self.rank = 'Genus'";
  ASSERT_TRUE(views->DefineMaterialized(def).ok());
  Oid g = NewTaxon("Apium", "Genus");
  ASSERT_TRUE(db.Begin().ok());
  Oid temp = NewTaxon("Temp", "Genus");
  ASSERT_TRUE(db.SetAttribute(g, "rank", Value::String("Species")).ok());
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{temp});
  ASSERT_TRUE(db.Abort().ok());
  // Compensating events restored the cached membership.
  EXPECT_EQ(views->Evaluate("genera").value(), std::vector<Oid>{g});
}

TEST_F(ViewFixture, EdgesRequireContext) {
  ViewDef def;
  def.name = "no_ctx";
  def.class_name = "Taxon";
  ASSERT_TRUE(views->Define(def).ok());
  EXPECT_EQ(views->EvaluateEdges("no_ctx").status().code(),
            Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace prometheus
