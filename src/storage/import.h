#ifndef PROMETHEUS_STORAGE_IMPORT_H_
#define PROMETHEUS_STORAGE_IMPORT_H_

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/database.h"

namespace prometheus::storage {

/// Outcome of merging a snapshot into an existing database.
struct ImportReport {
  /// Mapping from oids in the imported snapshot to the fresh oids they
  /// received in the target database.
  std::unordered_map<Oid, Oid> oid_map;
  std::size_t objects_imported = 0;
  std::size_t links_imported = 0;
  std::size_t synonyms_imported = 0;
  std::size_t classes_defined = 0;
  std::size_t relationships_defined = 0;
};

/// Merges a snapshot into a *non-empty* database — the "integration of
/// multiple sources" the thesis motivates in chapter 1 and the first step
/// of the chapter-8 future work on distributing Prometheus over many
/// localised taxonomic databases.
///
/// Schema records are merged by name: unknown classes / relationship
/// classes are defined; existing ones must already declare every imported
/// attribute (otherwise kInvalidArgument — the sources disagree). Objects
/// and links receive *fresh* oids; every reference (link endpoints,
/// classification contexts, `kRef` attribute values, refs inside lists,
/// synonym edges) is remapped. Imported mutations flow through the normal
/// public API, so events fire and indexes/views/rules stay consistent.
///
/// After an import the two sources' classifications coexist as
/// overlapping classifications over the merged specimen pool — exactly
/// the state `ClassificationManager::Compare` / `Align` analyse.
Result<ImportReport> ImportSnapshot(Database* db, std::istream& in);
Result<ImportReport> ImportSnapshot(Database* db, const std::string& path);

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_IMPORT_H_
