file(REMOVE_RECURSE
  "libprometheus_classification.a"
)
