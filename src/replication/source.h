#ifndef PROMETHEUS_REPLICATION_SOURCE_H_
#define PROMETHEUS_REPLICATION_SOURCE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "net/http.h"
#include "storage/recovery.h"

namespace prometheus::replication {

/// Leader-side replication endpoint: serves the store directory's snapshot
/// and journal bytes over the existing HTTP front end (mounted as the
/// front end's `aux_handler`), so a follower can bootstrap from the newest
/// snapshot and then tail the live journal.
///
/// Routes (all GET):
///   /repl/manifest
///       text/plain inventory — `generation G`, `live_seq N`,
///       `live_records R`, then one `snapshot SEQ SIZE` / `journal SEQ
///       SIZE` line per file. Line-oriented so the follower needs no JSON
///       parser.
///   /repl/snapshot?gen=G&offset=O&limit=L&follower=ID
///       raw snapshot bytes [O, O+L); `X-Repl-Total-Size` carries the file
///       size. 410 when the generation was pruned (the follower
///       rebootstraps from the manifest's current one).
///   /repl/journal?seq=N&offset=O&limit=L&follower=ID
///       raw journal bytes from offset O (empty body = caught up).
///       `X-Repl-Size` is the file's current size, `X-Repl-Generation` /
///       `X-Repl-Live-Seq` / `X-Repl-Live-Records` describe the live tail
///       so the follower can compute its lag. 410 when pruned, 416 when
///       the offset is past the file (divergence — rebootstrap).
///
/// The journal is written unbuffered (`PosixWritableFile::Append` is a
/// straight write(2)), so the file is byte-current with committed state
/// and a reader needs no flush handshake; a torn frame at the tail simply
/// parses as "need more" on the follower.
///
/// Followers identify themselves with the `follower` query parameter. The
/// source remembers each one's newest request (cursor + which file it
/// needs) and feeds `DurableStore::SetPruneFloor` the minimum sequence any
/// active follower still depends on, so `Checkpoint()` cannot yank a
/// generation mid-download. Entries expire after `follower_expiry_ms` of
/// silence — a dead follower never pins the leader's disk forever (it gets
/// a 410 and rebootstraps if it comes back too late). Cursors are also
/// surfaced as labelled gauges (`replication_follower_cursor_seq{...}`),
/// visible in /metrics and /stats.
class ReplicationSource {
 public:
  struct Options {
    /// Followers silent this long stop pinning files (and their gauges
    /// freeze at the last observed cursor).
    int follower_expiry_ms = 10000;
    /// Upper bound on one response body; requests asking for more are
    /// clamped. Keep below the peer's HttpLimits::max_body_bytes.
    std::size_t max_chunk_bytes = 256 * 1024;
  };

  /// `store` must outlive the source. Installs the prune-floor hook.
  ReplicationSource(storage::DurableStore* store, Options options);
  explicit ReplicationSource(storage::DurableStore* store)
      : ReplicationSource(store, Options{}) {}

  /// Uninstalls the prune-floor hook.
  ~ReplicationSource();

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// The hook to mount as `HttpFrontEnd::Options::aux_handler`. Claims
  /// only `/repl/*` targets. Thread-safe.
  std::function<bool(const net::HttpRequest&, bool, std::string*)>
  AuxHandler();

  /// Smallest file sequence an unexpired follower still needs (~0ull when
  /// none): `Checkpoint()` never prunes at or above this.
  std::uint64_t PruneFloor() const;

  /// Unexpired followers currently tracked.
  std::size_t active_followers() const;

 private:
  struct FollowerState {
    std::chrono::steady_clock::time_point last_seen;
    std::uint64_t pin_seq = 0;      ///< file seq the follower is reading
    std::uint64_t journal_seq = 0;  ///< cursor: journal being tailed
    std::uint64_t offset = 0;       ///< cursor: byte offset within it
  };

  bool Handle(const net::HttpRequest& req, bool keep_alive, std::string* out);
  std::string HandleManifest(bool keep_alive);
  std::string HandleSnapshot(std::string_view query, bool keep_alive);
  std::string HandleJournal(std::string_view query, bool keep_alive);

  /// Records a follower sighting and refreshes its cursor gauges.
  void NoteFollower(const std::string& id, std::uint64_t pin_seq,
                    std::uint64_t journal_seq, std::uint64_t offset);

  storage::DurableStore* store_;
  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, FollowerState> followers_;
};

}  // namespace prometheus::replication

#endif  // PROMETHEUS_REPLICATION_SOURCE_H_
