// E3 — Figure 44: traversal-with-update T5. The thesis' figure shows the
// Prometheus/storage cost ratio staying roughly constant as the database
// grows: the per-update feature cost (events, undo log, type checks) does
// not depend on database size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "oo7/oo7.h"

namespace {

using prometheus::oo7::BaselineOo7;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  // The assembly tree grows with the part library so traversal work scales
  // with database size, as in OO7's small/medium databases.
  config.assembly_levels =
      composites <= 10 ? 4 : (composites <= 20 ? 5 : (composites <= 40 ? 6 : 7));
  return config;
}

void PrintFigure44() {
  prometheus::bench::PrintTableHeader(
      "Figure 44: constant increase in cost (T5 traversal + update)",
      "  comps  atoms   prom_ms    base_ms    ratio  (ratio expected "
      "~constant across sizes)");
  for (int comps : {10, 20, 40, 80}) {
    Config config = MakeConfig(comps);
    PrometheusOo7 prom(config);
    BaselineOo7 base(config);
    std::int64_t tick = 0;
    double prom_ms = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(prom.TraverseT5(++tick)); }, 5);
    double base_ms = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(base.TraverseT5(++tick)); }, 5);
    std::printf("  %5d  %5d   %8.3f   %8.4f   %5.1f\n", comps,
                config.total_atomic_parts(), prom_ms, base_ms,
                base_ms > 0 ? prom_ms / base_ms : 0.0);
  }
}

void BM_T5Prometheus(benchmark::State& state) {
  PrometheusOo7 db(MakeConfig(static_cast<int>(state.range(0))));
  std::int64_t tick = 0;
  std::uint64_t updated = 0;
  for (auto _ : state) {
    updated = db.TraverseT5(++tick).updated;
    benchmark::DoNotOptimize(updated);
  }
  state.counters["updates"] = static_cast<double>(updated);
}
BENCHMARK(BM_T5Prometheus)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_T5Baseline(benchmark::State& state) {
  BaselineOo7 db(MakeConfig(static_cast<int>(state.range(0))));
  std::int64_t tick = 0;
  std::uint64_t updated = 0;
  for (auto _ : state) {
    updated = db.TraverseT5(++tick).updated;
    benchmark::DoNotOptimize(updated);
  }
  state.counters["updates"] = static_cast<double>(updated);
}
BENCHMARK(BM_T5Baseline)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure44();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
