#ifndef PROMETHEUS_CACHE_RESULT_CACHE_H_
#define PROMETHEUS_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prometheus::pool {
struct ResultSet;
}  // namespace prometheus::pool

namespace prometheus::cache {

/// (query text, database epoch) -> materialized ResultSet, sharded LRU.
///
/// Correctness contract — epoch validation, not explicit invalidation:
/// every entry remembers the epoch its result was materialized at, pinned
/// by the inserting worker's `Database::ReadGuard`. A lookup presents the
/// *current* `Database::epoch()` (a lock-free acquire load); the entry
/// serves only when the two are equal. The write guard's destructor bumps
/// the epoch after every exclusive section — data mutations, DDL, journal
/// application on a replica, rebootstrap — so any committed change
/// implicitly invalidates every cached result at once, with no bookkeeping
/// on the write path. Equality means no write section completed since the
/// result was built, so a hit is indistinguishable from re-executing under
/// a fresh read guard: the one read path that never touches the guard.
///
/// Stale entries are erased lazily by the lookup that discovers them.
///
/// Shard layout: the key hashes to one of `Config::shards` shards, each
/// with its own mutex, map, LRU list and slice of the byte budget — a hot
/// fleet hammering different queries contends on different locks. Within
/// a shard, entries are evicted least-recently-used when its byte slice
/// overflows. Sizes are caller-supplied (see `ApproxResultBytes` in
/// result_size.h) so this layer stays independent of the query types.
class ResultCache {
 public:
  struct Config {
    /// Total byte budget across all shards. 0 disables insertion.
    std::size_t max_bytes = 8u << 20;
    /// Shard count; clamped to >= 1.
    std::size_t shards = 8;
    /// Results larger than this are never cached (one giant scan must not
    /// evict the whole hot set).
    std::size_t max_entry_bytes = 512u << 10;
    bool enabled = true;
  };

  explicit ResultCache(const Config& config);

  /// The cached rows for `text` valid at `epoch`, or null. A non-null
  /// return is a shared reference to an immutable ResultSet — copy it out
  /// or read it; never cast away const.
  std::shared_ptr<const pool::ResultSet> Lookup(const std::string& text,
                                                std::uint64_t epoch);

  /// Stores `rows` (`bytes` big) as computed at `epoch` — the epoch of the
  /// snapshot the query actually ran against, *not* the database's current
  /// epoch at insert time. A writer may have committed between execution
  /// and this call; stamping the current epoch then would launder stale
  /// rows as fresh. Stamped with the ran-at epoch, such an entry simply
  /// never serves (lookups compare against the current epoch) — correct,
  /// if unprofitable. `rows` must never be mutated afterwards.
  void Insert(const std::string& text, std::uint64_t epoch,
              std::shared_ptr<const pool::ResultSet> rows, std::size_t bytes);

  /// Drops everything (promotion, rebootstrap, `.cache clear`).
  void Clear();

  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;      ///< LRU byte-budget drops
    std::uint64_t invalidations = 0;  ///< stale-epoch drops at lookup
    std::uint64_t oversize = 0;       ///< inserts refused by max_entry_bytes
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t shards = 0;
    std::size_t max_bytes = 0;
    /// hits / (hits + misses), in percent; 0 when idle.
    double hit_rate_percent = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const pool::ResultSet> rows;
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  ///< front = most recently used
    std::size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& text);
  void RecordHitRate();

  const std::size_t max_bytes_;
  const std::size_t per_shard_bytes_;
  const std::size_t max_entry_bytes_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> oversize_{0};
};

}  // namespace prometheus::cache

#endif  // PROMETHEUS_CACHE_RESULT_CACHE_H_
