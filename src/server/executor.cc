#include "server/executor.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace prometheus::server {

namespace {

/// Instantaneous work-queue depth, updated under the executor's own lock.
/// Process-wide: when several executors coexist, last writer wins (the
/// gauge is a point-in-time reading, not an accumulator).
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g = obs::Registry().GetGauge(
      "server_queue_depth", "Jobs waiting in the bounded work queue");
  return g;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::Registry().GetCounter(
      "server_requests_rejected_total",
      "Submissions refused by admission control or shutdown");
  return c;
}

obs::Counter* ShedCounter() {
  static obs::Counter* c = obs::Registry().GetCounter(
      "server_requests_shed_total",
      "Queued jobs evicted by higher-priority submissions");
  return c;
}

obs::Counter* ExpiredCounter() {
  static obs::Counter* c = obs::Registry().GetCounter(
      "server_jobs_expired_total",
      "Jobs shed at dequeue because their deadline had passed");
  return c;
}

/// EWMA-smoothed job execution time — the quantity behind the admission
/// controller's queue-wait estimate, exported for dashboards.
obs::Gauge* EstimatedJobMicrosGauge() {
  static obs::Gauge* g = obs::Registry().GetGauge(
      "server_estimated_job_micros",
      "EWMA of job execution time driving admission control");
  return g;
}

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(const Options& options)
    : capacity_(options.queue_capacity == 0 ? 1 : options.queue_capacity),
      threads_(options.threads < 1 ? 1 : options.threads),
      admission_(options.admission) {
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() { Shutdown(/*drain=*/true); }

ThreadPoolExecutor::Admission ThreadPoolExecutor::Submit(Job job,
                                                         JobInfo info) {
  // The clock is read at most once per submission, and only when a policy
  // actually needs "now" (a deadline is present) — deadline-free traffic
  // through an uncontended queue pays a few branches.
  Job evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      RejectedCounter()->Increment();
      return Admission::kShutdown;
    }
    const auto now = info.deadline != kNoDeadline ? DeadlineClock::now()
                                                  : DeadlineClock::time_point();
    switch (admission_.Admit(depth_, capacity_, threads_, info.priority,
                             info.deadline, now)) {
      case AdmissionController::Decision::kAdmit:
        break;
      case AdmissionController::Decision::kShedOverload:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        RejectedCounter()->Increment();
        return Admission::kQueueFull;
      case AdmissionController::Decision::kWouldExpire:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        RejectedCounter()->Increment();
        return Admission::kWouldExpire;
    }
    if (depth_ >= capacity_) {
      // Full. A higher-priority submission evicts the newest entry of the
      // lowest occupied tier below it; everything else is refused.
      const int incoming = static_cast<int>(info.priority);
      int victim = -1;
      for (int tier = 0; tier < incoming; ++tier) {
        if (!queues_[static_cast<std::size_t>(tier)].empty()) {
          victim = tier;
          break;
        }
      }
      if (victim < 0) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        RejectedCounter()->Increment();
        return Admission::kQueueFull;
      }
      auto& q = queues_[static_cast<std::size_t>(victim)];
      evicted = std::move(q.back().job);
      q.pop_back();
      --depth_;
      shed_.fetch_add(1, std::memory_order_relaxed);
      ShedCounter()->Increment();
    }
    queues_[static_cast<std::size_t>(info.priority)].push_back(
        QueuedJob{std::move(job), info.deadline});
    ++depth_;
    QueueDepthGauge()->Set(static_cast<std::int64_t>(depth_));
  }
  not_empty_.notify_one();
  // The evicted job's exactly-once completion, outside the lock.
  if (evicted) evicted(Disposition::kShed);
  return Admission::kAccepted;
}

void ThreadPoolExecutor::Shutdown(bool drain) {
  // Serialise whole shutdowns: two concurrent callers must not both join
  // the same workers.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<QueuedJob> discarded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;  // already shut down
    shutting_down_ = true;
    if (!drain) {
      // Discard in priority order purely for determinism of completion
      // callbacks; every job gets the same disposition.
      for (int tier = kPriorityLevels - 1; tier >= 0; --tier) {
        auto& q = queues_[static_cast<std::size_t>(tier)];
        while (!q.empty()) {
          discarded.push_back(std::move(q.front()));
          q.pop_front();
        }
      }
      depth_ = 0;
      QueueDepthGauge()->Set(0);
    }
  }
  not_empty_.notify_all();
  // Discarded jobs still get their exactly-once completion call.
  for (QueuedJob& qj : discarded) qj.job(Disposition::kShutdown);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPoolExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

void ThreadPoolExecutor::WorkerLoop(int worker_index) {
  obs::Counter* worker_requests = obs::Registry().GetCounter(
      "server_worker_requests_total{worker=\"" + std::to_string(worker_index) +
          "\"}",
      "Jobs executed, per worker thread");
  for (;;) {
    QueuedJob qj;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutting_down_ || depth_ > 0; });
      if (depth_ == 0) return;  // shutting down and drained
      for (int tier = kPriorityLevels - 1; tier >= 0; --tier) {
        auto& q = queues_[static_cast<std::size_t>(tier)];
        if (q.empty()) continue;
        qj = std::move(q.front());
        q.pop_front();
        break;
      }
      --depth_;
      QueueDepthGauge()->Set(static_cast<std::int64_t>(depth_));
    }
    // Expired-at-dequeue shedding: don't burn a worker on work whose
    // caller has already given up. Applies during drain too — a drain
    // honours deadlines, it does not resurrect them.
    if (qj.deadline != kNoDeadline && DeadlineClock::now() >= qj.deadline) {
      qj.job(Disposition::kExpired);
      expired_.fetch_add(1, std::memory_order_relaxed);
      ExpiredCounter()->Increment();
      continue;
    }
    const auto start = DeadlineClock::now();
    qj.job(Disposition::kRun);
    const double micros = std::chrono::duration<double, std::micro>(
                              DeadlineClock::now() - start)
                              .count();
    admission_.RecordJobMicros(micros);
    EstimatedJobMicrosGauge()->Set(
        static_cast<std::int64_t>(admission_.estimated_job_micros()));
    executed_.fetch_add(1, std::memory_order_relaxed);
    worker_requests->Increment();
  }
}

}  // namespace prometheus::server
