#include <gtest/gtest.h>

#include <algorithm>

#include "classification/classification.h"
#include "query/parser.h"
#include "query/query_engine.h"

namespace prometheus::pool {
namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, RejectsGarbage) {
  EXPECT_EQ(ParseQuery("selec x from Y").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(ParseQuery("select from Y").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(ParseQuery("select x").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(ParseExpression("1 +").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(ParseExpression("'unterminated").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(ParseExpression("a ! b").status().code(),
            Status::Code::kParseError);
}

TEST(ParserTest, ParsesFullQueryShape) {
  auto q = ParseQuery(
      "select distinct s.name as n, s.year from Specimens s, Taxa as t "
      "where s.year >= 1753 and not (t.rank = 'Genus') "
      "order by s.year desc limit 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectQuery& query = *q.value();
  EXPECT_TRUE(query.distinct);
  ASSERT_EQ(query.items.size(), 2u);
  EXPECT_EQ(query.items[0].alias, "n");
  ASSERT_EQ(query.from.size(), 2u);
  EXPECT_EQ(query.from[0].source_name, "Specimens");
  EXPECT_EQ(query.from[0].variable, "s");
  EXPECT_EQ(query.from[1].variable, "t");
  EXPECT_NE(query.where, nullptr);
  ASSERT_EQ(query.order_by.size(), 1u);
  EXPECT_TRUE(query.order_by[0].desc);
  EXPECT_EQ(query.limit, 10);
}

TEST(ParserTest, OqlInRangeForm) {
  auto q = ParseQuery("select s from s in Specimens");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->from[0].variable, "s");
  EXPECT_EQ(q.value()->from[0].source_name, "Specimens");
}

TEST(ParserTest, DependentRange) {
  auto q = ParseQuery(
      "select c from Taxa t, children(t, 'placed_in') c");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value()->from.size(), 2u);
  EXPECT_NE(q.value()->from[1].source_expr, nullptr);
  EXPECT_EQ(q.value()->from[1].variable, "c");
}

TEST(ParserTest, DowncastSyntax) {
  auto e = ParseExpression("x[Genus].name");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, ExprKind::kPath);
  EXPECT_EQ(e.value()->children[0]->kind, ExprKind::kDowncast);
  EXPECT_EQ(e.value()->children[0]->name, "Genus");
}

// Parser robustness: malformed inputs must produce ParseError, never
// crash or hang.
class ParserFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserFuzz, MalformedInputRejectedCleanly) {
  auto q = ParseQuery(GetParam());
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), Status::Code::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadQueries, ParserFuzz,
    ::testing::Values(
        "", "select", "select from", "select x from",
        "select x from Y where", "select x from Y order",
        "select x from Y order by", "select x from Y limit",
        "select x from Y limit x", "select x from Y group",
        "select x from Y group by", "select x from Y group by z having",
        "select x, from Y", "select x from Y,",
        "select x from Y where (a = 1", "select x from Y where a = 1)",
        "select x from (select z from W) ",  // subquery range needs a var
        "select x.[Z] from Y", "select x[1] from Y",
        "select x from Y where a in", "select f( from Y",
        "select 'abc from Y", "select x..y from Y",
        "select x from Y where a ! b", "select x from Y where a = @"));

// ------------------------------------------------------------- like match

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("Apiaceae", "%aceae"));
  EXPECT_TRUE(LikeMatch("Apiaceae", "Api%"));
  EXPECT_TRUE(LikeMatch("Apiaceae", "A_iaceae"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("Rosaceae", "Api%"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("xxabyy", "%ab%"));
}

// --------------------------------------------------------------- evaluator

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db.DefineClass("Taxon", {},
                               {Attr("name", ValueType::kString),
                                Attr("rank", ValueType::kString),
                                Attr("year", ValueType::kInt)})
                    .ok());
    ASSERT_TRUE(db.DefineClass("Genus", {"Taxon"}).ok());
    ASSERT_TRUE(db.DefineRelationship("placed_in", "Taxon", "Taxon", {},
                                      {Attr("note", ValueType::kString)})
                    .ok());
    engine = std::make_unique<QueryEngine>(&db);

    apium = NewTaxon("Apium", "Genus", 1753, "Genus");
    graveolens = NewTaxon("graveolens", "Species", 1753);
    repens = NewTaxon("repens", "Species", 1821);
    helio = NewTaxon("Heliosciadium", "Genus", 1824, "Genus");
    ASSERT_TRUE(db.CreateLink("placed_in", apium, graveolens, kNullOid,
                              {{"note", Value::String("type species")}})
                    .ok());
    ASSERT_TRUE(db.CreateLink("placed_in", apium, repens).ok());
  }

  Oid NewTaxon(const std::string& name, const std::string& rank,
               std::int64_t year, const std::string& cls = "Taxon") {
    return db.CreateObject(cls, {{"name", Value::String(name)},
                                 {"rank", Value::String(rank)},
                                 {"year", Value::Int(year)}})
        .value();
  }

  Value EvalOk(const std::string& expr, const Environment& env = {}) {
    auto r = engine->Eval(expr, env);
    EXPECT_TRUE(r.ok()) << expr << " -> " << r.status().ToString();
    return r.value_or(Value::Null());
  }

  Database db;
  std::unique_ptr<QueryEngine> engine;
  Oid apium, graveolens, repens, helio;
};

TEST_F(QueryFixture, ExpressionArithmeticAndLogic) {
  EXPECT_TRUE(EvalOk("1 + 2 * 3").Equals(Value::Int(7)));
  EXPECT_TRUE(EvalOk("(1 + 2) * 3").Equals(Value::Int(9)));
  EXPECT_TRUE(EvalOk("10 / 4").Equals(Value::Int(2)));
  EXPECT_TRUE(EvalOk("10.0 / 4").Equals(Value::Double(2.5)));
  EXPECT_TRUE(EvalOk("7 % 3").Equals(Value::Int(1)));
  EXPECT_TRUE(EvalOk("-3 + 5").Equals(Value::Int(2)));
  EXPECT_TRUE(EvalOk("true and not false").Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("false or true").Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("1 < 2 and 'a' != 'b'").Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("'Api' + 'um'").Equals(Value::String("Apium")));
  EXPECT_TRUE(EvalOk("3 in (select t.year from Taxon t)")
                  .Equals(Value::Bool(false)));
  EXPECT_EQ(engine->Eval("1 / 0", {}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(engine->Eval("1 + 'x' * 2", {}).status().code(),
            Status::Code::kTypeError);
}

TEST_F(QueryFixture, PathNavigation) {
  Environment env{{"t", Value::Ref(apium)}};
  EXPECT_TRUE(EvalOk("t.name", env).Equals(Value::String("Apium")));
  EXPECT_TRUE(EvalOk("t.class", env).Equals(Value::String("Genus")));
  EXPECT_EQ(engine->Eval("t.nothing", env).status().code(),
            Status::Code::kNotFound);
}

TEST_F(QueryFixture, LinkMembers) {
  Oid lid = db.LinkExtent("placed_in")[0];
  Environment env{{"l", Value::Ref(lid)}};
  EXPECT_TRUE(EvalOk("l.source", env).Equals(Value::Ref(apium)));
  EXPECT_TRUE(EvalOk("l.target", env).Equals(Value::Ref(graveolens)));
  EXPECT_TRUE(
      EvalOk("l.relationship", env).Equals(Value::String("placed_in")));
  EXPECT_TRUE(EvalOk("l.note", env).Equals(Value::String("type species")));
  EXPECT_TRUE(EvalOk("l.context", env).is_null());
  EXPECT_TRUE(EvalOk("l.source.name", env).Equals(Value::String("Apium")));
}

TEST_F(QueryFixture, SelectiveDowncast) {
  Environment env{{"g", Value::Ref(apium)}, {"s", Value::Ref(graveolens)}};
  EXPECT_TRUE(EvalOk("g[Genus]", env).Equals(Value::Ref(apium)));
  EXPECT_TRUE(EvalOk("s[Genus]", env).is_null());
  // Downcast over a list filters.
  Value filtered = EvalOk("extent('Taxon')[Genus]", env);
  ASSERT_EQ(filtered.type(), ValueType::kList);
  EXPECT_EQ(filtered.AsList().size(), 2u);
}

TEST_F(QueryFixture, BasicSelect) {
  auto r = engine->Execute(
      "select t.name from Taxon t where t.rank = 'Genus' order by t.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("Apium")));
  EXPECT_TRUE(r.value().rows[1][0].Equals(Value::String("Heliosciadium")));
}

TEST_F(QueryFixture, SelectStarBindsAllRanges) {
  auto r = engine->Execute("select * from Genus g");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().columns, std::vector<std::string>{"g"});
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(QueryFixture, RelationshipExtentIsQueryable) {
  // POOL's uniform treatment: relationships appear in FROM like classes.
  auto r = engine->Execute(
      "select l.target.name from placed_in l where l.source.name = 'Apium' "
      "order by l.target.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("graveolens")));
  EXPECT_TRUE(r.value().rows[1][0].Equals(Value::String("repens")));
}

TEST_F(QueryFixture, JoinAcrossRanges) {
  auto r = engine->Execute(
      "select g.name, s.name from Genus g, Taxon s, placed_in l "
      "where l.source = g and l.target = s order by s.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("Apium")));
}

TEST_F(QueryFixture, DependentRangeJoin) {
  auto r = engine->Execute(
      "select c.name from Genus g, children(g, 'placed_in') c "
      "where g.name = 'Apium' order by c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("graveolens")));
}

TEST_F(QueryFixture, DistinctAndLimit) {
  auto r = engine->Execute("select distinct t.rank from Taxon t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
  auto l = engine->Execute("select t.name from Taxon t limit 2");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value().rows.size(), 2u);
}

TEST_F(QueryFixture, SubqueryAndIn) {
  auto r = engine->Execute(
      "select t.name from Taxon t "
      "where t.year in (select g.year from Genus g) "
      "order by t.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Years 1753 (Apium, graveolens) and 1824 (Heliosciadium).
  ASSERT_EQ(r.value().rows.size(), 3u);
}

TEST_F(QueryFixture, CorrelatedSubquery) {
  // Genera with at least one placed child.
  auto r = engine->Execute(
      "select g.name from Genus g "
      "where exists((select l from placed_in l where l.source = g))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("Apium")));
}

TEST_F(QueryFixture, AggregateFunctions) {
  Environment env;
  EXPECT_TRUE(EvalOk("count(extent('Taxon'))", env).Equals(Value::Int(4)));
  EXPECT_TRUE(EvalOk("min((select t.year from Taxon t))", env)
                  .Equals(Value::Int(1753)));
  EXPECT_TRUE(EvalOk("max((select t.year from Taxon t))", env)
                  .Equals(Value::Int(1824)));
  EXPECT_TRUE(EvalOk("sum((select t.year from Taxon t))", env)
                  .Equals(Value::Int(1753 + 1753 + 1821 + 1824)));
  EXPECT_TRUE(EvalOk("avg((select t.year from Taxon t))", env)
                  .Equals(Value::Double((1753 + 1753 + 1821 + 1824) / 4.0)));
}

TEST_F(QueryFixture, StringFunctionsAndLike) {
  auto r = engine->Execute(
      "select t.name from Taxon t where t.name like '%um' order by t.name");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);  // Apium, Heliosciadium
  EXPECT_TRUE(EvalOk("upper('api')").Equals(Value::String("API")));
  EXPECT_TRUE(EvalOk("lower('API')").Equals(Value::String("api")));
  EXPECT_TRUE(EvalOk("length('abc')").Equals(Value::Int(3)));
  EXPECT_TRUE(EvalOk("starts_with('Apium', 'Api')").Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("ends_with('Apiaceae', 'aceae')")
                  .Equals(Value::Bool(true)));
}

TEST_F(QueryFixture, GraphFunctions) {
  Environment env{{"g", Value::Ref(apium)}, {"s", Value::Ref(graveolens)}};
  Value desc = EvalOk("traverse(g, 'placed_in', 1, 0)", env);
  ASSERT_EQ(desc.type(), ValueType::kList);
  EXPECT_EQ(desc.AsList().size(), 2u);
  Value kids = EvalOk("children(g, 'placed_in')", env);
  EXPECT_EQ(kids.AsList().size(), 2u);
  Value up = EvalOk("parents(s, 'placed_in')", env);
  ASSERT_EQ(up.AsList().size(), 1u);
  EXPECT_TRUE(up.AsList()[0].Equals(Value::Ref(apium)));
  EXPECT_TRUE(EvalOk("reachable(g, s, 'placed_in')", env)
                  .Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("reachable(s, g, 'placed_in')", env)
                  .Equals(Value::Bool(false)));
  Value lvs = EvalOk("leaves(g, 'placed_in')", env);
  EXPECT_EQ(lvs.AsList().size(), 2u);
  Value lnks = EvalOk("links(g, 'placed_in', 'out')", env);
  EXPECT_EQ(lnks.AsList().size(), 2u);
}

TEST_F(QueryFixture, ContextualGraphQuery) {
  ClassificationManager mgr(&db);
  Oid c1 = mgr.Create("C1", "t1").value();
  Oid c2 = mgr.Create("C2", "t2").value();
  ASSERT_TRUE(mgr.AddEdge(c1, "placed_in", helio, repens).ok());
  ASSERT_TRUE(mgr.AddEdge(c2, "placed_in", helio, graveolens).ok());
  Environment env{{"h", Value::Ref(helio)},
                  {"c1", Value::Ref(c1)},
                  {"c2", Value::Ref(c2)}};
  Value in_c1 = EvalOk("children(h, 'placed_in', c1)", env);
  ASSERT_EQ(in_c1.AsList().size(), 1u);
  EXPECT_TRUE(in_c1.AsList()[0].Equals(Value::Ref(repens)));
  Value in_c2 = EvalOk("children(h, 'placed_in', c2)", env);
  ASSERT_EQ(in_c2.AsList().size(), 1u);
  EXPECT_TRUE(in_c2.AsList()[0].Equals(Value::Ref(graveolens)));
  Value edges = EvalOk("in_context(c1)", env);
  EXPECT_EQ(edges.AsList().size(), 1u);
}

TEST_F(QueryFixture, SynonymFunctions) {
  ASSERT_TRUE(db.DeclareSynonym(graveolens, repens).ok());
  Environment env{{"a", Value::Ref(graveolens)}, {"b", Value::Ref(repens)}};
  EXPECT_TRUE(EvalOk("are_synonyms(a, b)", env).Equals(Value::Bool(true)));
  EXPECT_TRUE(EvalOk("canonical(b)", env).Equals(Value::Ref(graveolens)));
  EXPECT_EQ(EvalOk("synonyms(a)", env).AsList().size(), 2u);
}

TEST_F(QueryFixture, IndexAcceleratedLookupGivesSameAnswer) {
  IndexManager idx(&db);
  ASSERT_TRUE(idx.CreateIndex("Taxon", "name").ok());
  QueryEngine with_index(&db, &idx);
  const std::string q =
      "select t.year from Taxon t where t.name = 'Heliosciadium'";
  auto a = engine->Execute(q);
  auto b = with_index.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().rows.size(), 1u);
  ASSERT_EQ(b.value().rows.size(), 1u);
  EXPECT_TRUE(a.value().rows[0][0].Equals(b.value().rows[0][0]));
}

TEST_F(QueryFixture, GroupByWithAggregates) {
  auto r = engine->Execute(
      "select t.rank as rank, count(t) as n, min(t.year) as oldest "
      "from Taxon t group by t.rank order by t.rank");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  // Genus group: Apium (1753) + Heliosciadium (1824).
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("Genus")));
  EXPECT_TRUE(r.value().rows[0][1].Equals(Value::Int(2)));
  EXPECT_TRUE(r.value().rows[0][2].Equals(Value::Int(1753)));
  // Species group: graveolens (1753) + repens (1821).
  EXPECT_TRUE(r.value().rows[1][0].Equals(Value::String("Species")));
  EXPECT_TRUE(r.value().rows[1][1].Equals(Value::Int(2)));
}

TEST_F(QueryFixture, GroupByHavingFilter) {
  auto r = engine->Execute(
      "select t.year, count(t) from Taxon t group by t.year "
      "having count(t) >= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only 1753 has two taxa (Apium + graveolens).
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::Int(1753)));
  EXPECT_TRUE(r.value().rows[0][1].Equals(Value::Int(2)));
}

TEST_F(QueryFixture, GroupByAggregateArithmetic) {
  auto r = engine->Execute(
      "select t.rank, max(t.year) - min(t.year) as span from Taxon t "
      "group by t.rank order by t.rank");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][1].Equals(Value::Int(1824 - 1753)));
  EXPECT_TRUE(r.value().rows[1][1].Equals(Value::Int(1821 - 1753)));
}

TEST_F(QueryFixture, GroupByOrderByAggregate) {
  auto r = engine->Execute(
      "select t.rank from Taxon t group by t.rank "
      "order by count(t) desc limit 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
}

TEST_F(QueryFixture, SelectStarRejectedWithGroupBy) {
  EXPECT_EQ(engine->Execute("select * from Taxon t group by t.rank")
                .status()
                .code(),
            Status::Code::kParseError);
}

TEST_F(QueryFixture, PathFunction) {
  // Chain helio under apium to give a two-hop path.
  ASSERT_TRUE(db.CreateLink("placed_in", graveolens, helio).ok());
  Environment env{{"a", Value::Ref(apium)},
                  {"g", Value::Ref(graveolens)},
                  {"h", Value::Ref(helio)},
                  {"r", Value::Ref(repens)}};
  Value p = EvalOk("path(a, h, 'placed_in')", env);
  ASSERT_EQ(p.type(), ValueType::kList);
  ASSERT_EQ(p.AsList().size(), 3u);
  EXPECT_TRUE(p.AsList()[0].Equals(Value::Ref(apium)));
  EXPECT_TRUE(p.AsList()[1].Equals(Value::Ref(graveolens)));
  EXPECT_TRUE(p.AsList()[2].Equals(Value::Ref(helio)));
  // Trivial path and unreachable pair.
  EXPECT_EQ(EvalOk("path(a, a, 'placed_in')", env).AsList().size(), 1u);
  EXPECT_TRUE(EvalOk("path(h, a, 'placed_in')", env).AsList().empty());
}

TEST_F(QueryFixture, SubgraphExtraction) {
  Environment env{{"a", Value::Ref(apium)}};
  Value links = EvalOk("subgraph(a, 'placed_in')", env);
  ASSERT_EQ(links.type(), ValueType::kList);
  EXPECT_EQ(links.AsList().size(), 2u);  // apium->graveolens, apium->repens
  // Every element is a link whose members navigate.
  Value targets = EvalOk("subgraph(a, 'placed_in').target.name", env);
  EXPECT_EQ(targets.AsList().size(), 2u);
}

TEST_F(QueryFixture, SetOperations) {
  Environment env{{"a", Value::Ref(apium)}, {"h", Value::Ref(helio)}};
  Value all = EvalOk(
      "union_of(children(a, 'placed_in'), children(h, 'placed_in'))", env);
  EXPECT_EQ(all.AsList().size(), 2u);
  Value common = EvalOk(
      "intersect(children(a, 'placed_in'), children(a, 'placed_in'))", env);
  EXPECT_EQ(common.AsList().size(), 2u);
  Value none = EvalOk(
      "minus(children(a, 'placed_in'), children(a, 'placed_in'))", env);
  EXPECT_TRUE(none.AsList().empty());
  // Synonym-style query: shared leaves between two groups.
  Value shared = EvalOk(
      "intersect(leaves(a, 'placed_in'), children(a, 'placed_in'))", env);
  EXPECT_EQ(shared.AsList().size(), 2u);
}

TEST_F(QueryFixture, ErrorsSurfaceCleanly) {
  EXPECT_EQ(engine->Execute("select x from Nowhere x").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(engine->Eval("unknown_fn(1)", {}).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(engine->Eval("x.name", {}).status().code(),
            Status::Code::kNotFound);  // unbound variable
  EXPECT_EQ(engine->Execute("select t from Taxon t where t.year")
                .status()
                .code(),
            Status::Code::kTypeError);  // non-boolean where
}

TEST_F(QueryFixture, JoinOrderDoesNotChangeResults) {
  // The optimiser may reorder ranges; the answer (with an order by) must
  // be identical whichever order the user wrote.
  const char* q1 =
      "select g.name, s.name from Genus g, Taxon s, placed_in l "
      "where l.source = g and l.target = s order by s.name";
  const char* q2 =
      "select g.name, s.name from placed_in l, Taxon s, Genus g "
      "where l.source = g and l.target = s order by s.name";
  auto a = engine->Execute(q1);
  auto b = engine->Execute(q2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (std::size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_TRUE(a.value().rows[i][0].Equals(b.value().rows[i][0]));
    EXPECT_TRUE(a.value().rows[i][1].Equals(b.value().rows[i][1]));
  }
}

TEST_F(QueryFixture, DependentRangeWaitsForItsVariableRegardlessOfOrder) {
  // The dependent range is written FIRST but references g, which is bound
  // by a later range; the optimiser must schedule g before it.
  auto r = engine->Execute(
      "select c.name from children(g, 'placed_in') c, Genus g "
      "where g.name = 'Apium' order by c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("graveolens")));
}

TEST_F(QueryFixture, SubqueryAsRangeSource) {
  auto r = engine->Execute(
      "select x.name from (select t from Taxon t where t.rank = 'Genus') "
      "as x order by x.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::String("Apium")));
}

TEST_F(QueryFixture, ExplainReportsStrategy) {
  IndexManager idx(&db);
  ASSERT_TRUE(idx.CreateIndex("Taxon", "name").ok());
  QueryEngine with_index(&db, &idx);
  auto plan = with_index.Explain(
      "select t from Taxon t, children(t, 'placed_in') c "
      "where t.name = 'Apium'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("index lookup on Taxon.name"),
            std::string::npos);
  EXPECT_NE(plan.value().find("dependent expression"), std::string::npos);
  // Without the index the same query scans.
  auto scan_plan = engine->Explain(
      "select t from Taxon t where t.name = 'Apium'");
  ASSERT_TRUE(scan_plan.ok());
  EXPECT_NE(scan_plan.value().find("extent scan of class Taxon"),
            std::string::npos);
  // Relationship ranges and clauses are reported.
  auto rel_plan = with_index.Explain(
      "select l from placed_in l group by l.source order by count(l)");
  ASSERT_TRUE(rel_plan.ok());
  EXPECT_NE(rel_plan.value().find("extent scan of relationship placed_in"),
            std::string::npos);
  EXPECT_NE(rel_plan.value().find("group by"), std::string::npos);
  EXPECT_NE(rel_plan.value().find("order by"), std::string::npos);
}

TEST_F(QueryFixture, OrderByAscendingAndDescending) {
  auto asc = engine->Execute("select t.year from Taxon t order by t.year");
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE(asc.value().rows.front()[0].Equals(Value::Int(1753)));
  EXPECT_TRUE(asc.value().rows.back()[0].Equals(Value::Int(1824)));
  auto desc =
      engine->Execute("select t.year from Taxon t order by t.year desc");
  ASSERT_TRUE(desc.ok());
  EXPECT_TRUE(desc.value().rows.front()[0].Equals(Value::Int(1824)));
}

TEST_F(QueryFixture, ResultSetColumnHelper) {
  auto r = engine->Execute(
      "select t.name, t.year from Taxon t where t.rank = 'Genus' "
      "order by t.year");
  ASSERT_TRUE(r.ok());
  std::vector<Value> names = r.value().Column(0);
  std::vector<Value> years = r.value().Column(1);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_TRUE(names[0].Equals(Value::String("Apium")));
  EXPECT_TRUE(years[1].Equals(Value::Int(1824)));
  // Out-of-range column yields an empty vector.
  EXPECT_TRUE(r.value().Column(5).empty());
}

TEST_F(QueryFixture, MultiKeyOrderBy) {
  // Primary key year ascending, secondary key name descending.
  auto r = engine->Execute(
      "select t.year, t.name from Taxon t order by t.year, t.name desc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 4u);
  // 1753 twice (graveolens before Apium when name desc), then 1821, 1824.
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::Int(1753)));
  EXPECT_TRUE(r.value().rows[0][1].Equals(Value::String("graveolens")));
  EXPECT_TRUE(r.value().rows[1][1].Equals(Value::String("Apium")));
  EXPECT_TRUE(r.value().rows[2][0].Equals(Value::Int(1821)));
  EXPECT_TRUE(r.value().rows[3][0].Equals(Value::Int(1824)));
}

TEST_F(QueryFixture, NullPropagationThroughPaths) {
  Environment env{{"x", Value::Null()}};
  EXPECT_TRUE(EvalOk("x.name", env).is_null());
  EXPECT_TRUE(EvalOk("x.name = 'Apium'", env).Equals(Value::Bool(false)));
  EXPECT_TRUE(EvalOk("x.name = null", env).Equals(Value::Bool(true)));
}

// Parameterized sweep: every rank of query shapes returns consistent counts
// between the scan path and an indexed path.
class IndexConsistency : public ::testing::TestWithParam<int> {};

TEST_P(IndexConsistency, ScanAndIndexAgree) {
  Database db;
  ASSERT_TRUE(
      db.DefineClass("Item", {}, {Attr("k", ValueType::kInt)}).ok());
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(db.CreateObject("Item", {{"k", Value::Int(i % 7)}}).ok());
  }
  QueryEngine scan(&db);
  IndexManager idx(&db);
  ASSERT_TRUE(idx.CreateIndex("Item", "k").ok());
  QueryEngine indexed(&db, &idx);
  for (int key = 0; key < 7; ++key) {
    std::string q = "select i from Item i where i.k = " + std::to_string(key);
    auto a = scan.Execute(q);
    auto b = indexed.Execute(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().rows.size(), b.value().rows.size()) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexConsistency,
                         ::testing::Values(0, 1, 7, 50, 200));

}  // namespace
}  // namespace prometheus::pool
