#ifndef PROMETHEUS_SERVER_CLIENT_H_
#define PROMETHEUS_SERVER_CLIENT_H_

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/server.h"

namespace prometheus::server {

/// In-process client: the convenience face tests, examples and the load
/// generator program against — and the exact surface a future wire
/// protocol will serve remotely. Owns one session; the typed methods are
/// blocking RPCs that fold the transport envelope back into the library's
/// `Status`/`Result` vocabulary (a rejected or shutdown request surfaces
/// as `kFailedPrecondition` with the transport detail in the message).
///
/// Thread-safe: one Client may be shared by several threads, or each
/// thread can connect its own (each Client is one logical session).
class Client {
 public:
  /// Connects a new session. `server` must outlive the client.
  explicit Client(Server* server);

  /// Closes the session.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Blocking typed RPCs.
  Result<pool::ResultSet> Query(const std::string& pool_text);
  Result<Oid> CreateObject(std::string class_name,
                           std::vector<AttrInit> inits = {});
  Status SetAttribute(Oid oid, std::string attribute, Value value);
  Status DeleteObject(Oid oid);
  Result<Oid> CreateLink(std::string rel_name, Oid source, Oid dest,
                         Oid context = kNullOid,
                         std::vector<AttrInit> inits = {});
  Status SetLinkAttribute(Oid oid, std::string attribute, Value value);
  Status DeleteLink(Oid oid);

  /// Multi-step write executed atomically on the server (exclusive lock).
  Status Mutate(std::function<Status(Database&)> fn);

  /// Liveness probe; returns the database epoch at execution.
  Result<std::uint64_t> Ping();

  /// Live metrics snapshot, rendered as JSON or Prometheus text.
  Result<std::string> Stats(StatsFormat format = StatsFormat::kJson);

  /// A query executed with span tracing (a `profile` prefix is optional).
  struct ProfiledQuery {
    pool::ResultSet stages;  ///< {stage, micros, rows, detail} table
    std::string tree;        ///< the same trace rendered as an indented tree
  };
  Result<ProfiledQuery> Profile(const std::string& pool_text);

  // Envelope-level access for callers that need the full Response.
  Response Call(Request req);
  std::future<Response> Submit(Request req);

  Session& session() { return *session_; }

 private:
  /// Folds a non-executed transport outcome into a Status.
  static Status TransportStatus(const Response& resp);

  Server* server_;
  std::shared_ptr<Session> session_;
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_CLIENT_H_
