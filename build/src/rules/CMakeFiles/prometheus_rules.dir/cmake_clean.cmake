file(REMOVE_RECURSE
  "CMakeFiles/prometheus_rules.dir/pcl.cc.o"
  "CMakeFiles/prometheus_rules.dir/pcl.cc.o.d"
  "CMakeFiles/prometheus_rules.dir/rule_engine.cc.o"
  "CMakeFiles/prometheus_rules.dir/rule_engine.cc.o.d"
  "libprometheus_rules.a"
  "libprometheus_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
