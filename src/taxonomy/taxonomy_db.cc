#include "taxonomy/taxonomy_db.h"

#include <algorithm>
#include <unordered_set>

namespace prometheus::taxonomy {

namespace {

AttributeDef Attr(std::string name, ValueType type,
                  Value def = Value::Null()) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  a.default_value = std::move(def);
  return a;
}

/// The eight family names the ICBN exempts from the -aceae ending.
constexpr const char* kFamilyExceptions[] = {
    "Palmae",      "Gramineae",  "Cruciferae", "Leguminosae",
    "Guttiferae",  "Umbelliferae", "Labiatae",  "Compositae",
};

/// Extracts the original author from an authorship string: for
/// "(Jacq.)Lag." the original author is "Jacq."; otherwise the string
/// itself.
std::string OriginalAuthor(const std::string& author) {
  if (!author.empty() && author.front() == '(') {
    std::size_t close = author.find(')');
    if (close != std::string::npos) return author.substr(1, close - 1);
  }
  return author;
}

}  // namespace

const char* NameStatusName(NameStatus status) {
  switch (status) {
    case NameStatus::kPublished:
      return "published";
    case NameStatus::kInvalid:
      return "invalid";
    case NameStatus::kConserved:
      return "conserved";
    case NameStatus::kRejected:
      return "rejected";
  }
  return "?";
}

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kHolotype:
      return "holotype";
    case TypeKind::kLectotype:
      return "lectotype";
    case TypeKind::kNeotype:
      return "neotype";
    case TypeKind::kIsotype:
      return "isotype";
    case TypeKind::kSyntype:
      return "syntype";
  }
  return "?";
}

bool IsPrimaryType(TypeKind kind) {
  return kind == TypeKind::kHolotype || kind == TypeKind::kLectotype ||
         kind == TypeKind::kNeotype;
}

TaxonomyDatabase::TaxonomyDatabase() : db_(std::make_unique<Database>()) {
  Status st = DefineSchema();
  (void)st;  // fresh database: schema definition cannot fail
  classifications_ = std::make_unique<ClassificationManager>(db_.get());
  rules_ = std::make_unique<RuleEngine>(db_.get());
  query_ = std::make_unique<pool::QueryEngine>(db_.get());
}

TaxonomyDatabase::~TaxonomyDatabase() = default;

Status TaxonomyDatabase::DefineSchema() {
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineClass(kSpecimenClass, {},
                       {Attr("collector", ValueType::kString),
                        Attr("herbarium", ValueType::kString),
                        Attr("field_number", ValueType::kString),
                        Attr("collection_year", ValueType::kInt,
                             Value::Int(0))})
          .status());
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineClass(kNameClass, {},
                       {Attr("name_element", ValueType::kString),
                        Attr("author", ValueType::kString),
                        Attr("year", ValueType::kInt, Value::Int(0)),
                        Attr("publication", ValueType::kString),
                        Attr("rank", ValueType::kString),
                        Attr("rank_order", ValueType::kInt),
                        Attr("status", ValueType::kString,
                             Value::String("published"))})
          .status());
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineClass(kTaxonClass, {},
                       {Attr("working_name", ValueType::kString),
                        Attr("rank", ValueType::kString),
                        Attr("rank_order", ValueType::kInt)})
          .status());

  // Typification: names are typified by specimens (species level) or by
  // other names (supra-specific level); each link records its kind.
  RelationshipSemantics type_sem;
  type_sem.kind = RelationshipKind::kAssociation;
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kTypifiedBySpecimenRel, kNameClass,
                              kSpecimenClass, type_sem,
                              {Attr("type_kind", ValueType::kString)})
          .status());
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kTypifiedByNameRel, kNameClass, kNameClass,
                              type_sem,
                              {Attr("type_kind", ValueType::kString)})
          .status());

  // Placement: purely nomenclatural combination record — published, hence
  // constant, one per name.
  RelationshipSemantics placement_sem;
  placement_sem.constant = true;
  placement_sem.max_out = 1;
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kPlacementRel, kNameClass, kNameClass,
                              placement_sem)
          .status());

  // Classification structure: taxa contain taxa and circumscribe
  // specimens, always inside a classification context; both carry the
  // traceability motivation.
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kContainsRel, kTaxonClass, kTaxonClass, {},
                              {Attr("motivation", ValueType::kString)})
          .status());
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kCircumscribesRel, kTaxonClass, kSpecimenClass,
                              {},
                              {Attr("motivation", ValueType::kString)})
          .status());

  // Determinations: a name applied to a herbarium sheet by a taxonomist,
  // recorded with its authorship but carrying no classification value.
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kDeterminedAsRel, kSpecimenClass, kNameClass,
                              {},
                              {Attr("determiner", ValueType::kString),
                               Attr("determination_year", ValueType::kInt)})
          .status());

  // Name attachment: at most one ascribed and one calculated name per CT.
  RelationshipSemantics one_name;
  one_name.max_out = 1;
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kAscribedNameRel, kTaxonClass, kNameClass,
                              one_name)
          .status());
  PROMETHEUS_RETURN_IF_ERROR(
      db_->DefineRelationship(kCalculatedNameRel, kTaxonClass, kNameClass,
                              one_name)
          .status());
  return Status::Ok();
}

Status TaxonomyDatabase::InstallIcbnRules() {
  const int genus_order = RankOrder(Rank::kGenus);
  const int species_order = RankOrder(Rank::kSpecies);
  const int sectio_order = RankOrder(Rank::kSectio);
  const int series_order = RankOrder(Rank::kSeries);

  // Figure 35: family names end in -aceae (with the 8 sanctioned
  // exceptions).
  std::string family_cond =
      "ends_with(self.name_element, 'aceae')";
  for (const char* exception : kFamilyExceptions) {
    family_cond += " or self.name_element = '" + std::string(exception) +
                   "'";
  }
  {
    RuleSpec spec;
    spec.name = "icbn_family_name";
    spec.events = {{EventKind::kAfterCreateObject, kNameClass},
                   {EventKind::kAfterSetAttribute, kNameClass}};
    spec.applicability = "self.rank = 'Familia'";
    spec.condition = family_cond;
    spec.message = "family names must end in -aceae";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Figure 36: genus names start with a capital letter.
  {
    RuleSpec spec;
    spec.name = "icbn_genus_name";
    spec.events = {{EventKind::kAfterCreateObject, kNameClass},
                   {EventKind::kAfterSetAttribute, kNameClass}};
    spec.applicability = "self.rank = 'Genus'";
    spec.condition =
        "self.name_element != '' and "
        "substr(self.name_element, 0, 1) != "
        "lower(substr(self.name_element, 0, 1))";
    spec.message = "genus names start with a capital letter";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Species epithets start with a lowercase letter (2.1.2).
  {
    RuleSpec spec;
    spec.name = "icbn_species_epithet";
    spec.events = {{EventKind::kAfterCreateObject, kNameClass},
                   {EventKind::kAfterSetAttribute, kNameClass}};
    spec.applicability = "self.rank = 'Species'";
    spec.condition =
        "self.name_element != '' and "
        "substr(self.name_element, 0, 1) = "
        "lower(substr(self.name_element, 0, 1))";
    spec.message = "species epithets start with a lowercase letter";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Figure 37: every published name should be typified. Deferred + warn:
  // typification legitimately happens after publication.
  {
    RuleSpec spec;
    spec.name = "icbn_type_existence";
    spec.events = {{EventKind::kAfterCreateObject, kNameClass}};
    spec.condition = "count(children(self, 'typified_by_specimen')) + "
                     "count(children(self, 'typified_by_name')) > 0";
    spec.timing = RuleTiming::kDeferred;
    spec.action = RuleAction::kWarn;
    spec.message = "published names should have a taxonomic type";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Figure 38: a Species taxon sits below a taxon ranked in
  // [Genus, Species).
  {
    RuleSpec spec;
    spec.name = "icbn_species_rank";
    spec.events = {{EventKind::kAfterCreateLink, kContainsRel}};
    spec.applicability = "target.rank = 'Species'";
    spec.condition = "source.rank_order >= " + std::to_string(genus_order) +
                     " and source.rank_order < " +
                     std::to_string(species_order);
    spec.message =
        "species must be placed below a rank between Genus and Species";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Figure 39: a Series taxon sits below a taxon ranked in
  // [Sectio, Series).
  {
    RuleSpec spec;
    spec.name = "icbn_series_rank";
    spec.events = {{EventKind::kAfterCreateLink, kContainsRel}};
    spec.applicability = "target.rank = 'Series'";
    spec.condition = "source.rank_order >= " + std::to_string(sectio_order) +
                     " and source.rank_order < " +
                     std::to_string(series_order);
    spec.message =
        "series must be placed below a rank between Sectio and Series";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Later homonyms: publishing a name whose (element, rank) pair is
  // already taken is legal but suspect (the later homonym is typically
  // illegitimate) — warn, do not block, since historical homonyms must
  // still be recordable.
  {
    RuleSpec spec;
    spec.name = "icbn_later_homonym";
    spec.events = {{EventKind::kAfterCreateObject, kNameClass}};
    spec.condition =
        "count((select n from NomenclaturalTaxon n "
        "where n.name_element = self.name_element and "
        "n.rank = self.rank)) <= 1";
    spec.action = RuleAction::kWarn;
    spec.message = "later homonym: this (name, rank) pair is already "
                   "published";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Sub-rank placements: a "sub" taxon sits directly below its base rank
  // or a rank between them (subspecies below species, subgenus below
  // genus, ...). Encoded as: parent in [base, sub).
  for (Rank sub : {Rank::kSubspecies, Rank::kSubgenus, Rank::kSubfamilia}) {
    Rank base = static_cast<Rank>(RankOrder(sub) - 1);
    RuleSpec spec;
    spec.name = std::string("icbn_") + RankName(sub) + "_rank";
    spec.events = {{EventKind::kAfterCreateLink, kContainsRel}};
    spec.applicability =
        std::string("target.rank = '") + RankName(sub) + "'";
    spec.condition = "source.rank_order >= " +
                     std::to_string(RankOrder(base)) +
                     " and source.rank_order < " +
                     std::to_string(RankOrder(sub));
    spec.message = std::string(RankName(sub)) +
                   " must be placed directly below " + RankName(base);
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  // Figure 40: placement always descends the rank hierarchy.
  {
    RuleSpec spec;
    spec.name = "icbn_placement_order";
    spec.events = {{EventKind::kAfterCreateLink, kContainsRel}};
    spec.condition = "source.rank_order < target.rank_order";
    spec.message = "a taxon can only contain taxa of strictly lower rank";
    PROMETHEUS_RETURN_IF_ERROR(rules_->AddRule(spec).status());
  }
  return Status::Ok();
}

// --------------------------------------------------------------- specimens

Result<Oid> TaxonomyDatabase::AddSpecimen(const std::string& collector,
                                          const std::string& herbarium,
                                          const std::string& field_number,
                                          std::int64_t collection_year) {
  return db_->CreateObject(
      kSpecimenClass,
      {{"collector", Value::String(collector)},
       {"herbarium", Value::String(herbarium)},
       {"field_number", Value::String(field_number)},
       {"collection_year", Value::Int(collection_year)}});
}

// ------------------------------------------------------------ nomenclature

Result<Oid> TaxonomyDatabase::PublishName(const std::string& element,
                                          Rank rank,
                                          const std::string& author,
                                          std::int64_t year,
                                          const std::string& publication) {
  return db_->CreateObject(
      kNameClass,
      {{"name_element", Value::String(element)},
       {"author", Value::String(author)},
       {"year", Value::Int(year)},
       {"publication", Value::String(publication)},
       {"rank", Value::String(RankName(rank))},
       {"rank_order", Value::Int(RankOrder(rank))}});
}

Status TaxonomyDatabase::Typify(Oid name, Oid type, TypeKind kind) {
  if (!db_->IsInstanceOf(name, kNameClass)) {
    return Status::InvalidArgument("@" + std::to_string(name) +
                                   " is not a nomenclatural taxon");
  }
  const char* rel;
  if (db_->IsInstanceOf(type, kSpecimenClass)) {
    rel = kTypifiedBySpecimenRel;
  } else if (db_->IsInstanceOf(type, kNameClass)) {
    rel = kTypifiedByNameRel;
  } else {
    return Status::InvalidArgument(
        "a taxonomic type must be a specimen or a name");
  }
  if (IsPrimaryType(kind)) {
    // At most one holotype / lectotype / neotype per name.
    TypeKind k = kind;
    if (!TypesOf(name, &k).empty()) {
      return Status::ConstraintViolation(
          std::string("name already has a ") + TypeKindName(kind));
    }
  }
  return db_->CreateLink(rel, name, type, kNullOid,
                         {{"type_kind",
                           Value::String(TypeKindName(kind))}})
      .status();
}

Status TaxonomyDatabase::RecordPlacement(Oid name, Oid genus_name) {
  return db_->CreateLink(kPlacementRel, name, genus_name).status();
}

Oid TaxonomyDatabase::PlacementOf(Oid name) const {
  std::vector<Oid> targets =
      view().Neighbors(name, kPlacementRel, Direction::kOut);
  return targets.empty() ? kNullOid : targets.front();
}

std::vector<Oid> TaxonomyDatabase::TypesOf(Oid name,
                                           const TypeKind* kind) const {
  const ReadView& rv = view();
  std::vector<Oid> out;
  for (const char* rel : {kTypifiedBySpecimenRel, kTypifiedByNameRel}) {
    for (Oid lid : rv.IncidentLinks(name, Direction::kOut,
                                    rv.FindRelationship(rel))) {
      const Link* link = rv.GetLink(lid);
      if (kind != nullptr) {
        auto k = link->attrs.find("type_kind");
        if (k == link->attrs.end() ||
            !k->second.Equals(Value::String(TypeKindName(*kind)))) {
          continue;
        }
      }
      out.push_back(link->target);
    }
  }
  return out;
}

std::vector<Oid> TaxonomyDatabase::PrimaryTypeSpecimensOf(Oid name) const {
  std::vector<Oid> out;
  for (TypeKind kind :
       {TypeKind::kHolotype, TypeKind::kLectotype, TypeKind::kNeotype}) {
    for (Oid type : TypesOf(name, &kind)) {
      if (view().IsInstanceOf(type, kSpecimenClass)) out.push_back(type);
    }
  }
  return out;
}

std::vector<Oid> TaxonomyDatabase::NamesTypifiedBy(Oid type) const {
  std::vector<Oid> out;
  for (const char* rel : {kTypifiedBySpecimenRel, kTypifiedByNameRel}) {
    for (Oid src : view().Neighbors(type, rel, Direction::kIn)) {
      out.push_back(src);
    }
  }
  return out;
}

Result<std::string> TaxonomyDatabase::FullName(Oid name) const {
  const ReadView& rv = view();
  if (!rv.IsInstanceOf(name, kNameClass)) {
    return Status::NotFound("@" + std::to_string(name) + " is not a name");
  }
  PROMETHEUS_ASSIGN_OR_RETURN(Value element,
                              rv.GetAttribute(name, "name_element"));
  PROMETHEUS_ASSIGN_OR_RETURN(Value author, rv.GetAttribute(name, "author"));
  PROMETHEUS_ASSIGN_OR_RETURN(Rank rank, RankOf(name));
  std::string text;
  if (IsMultinomial(rank)) {
    Oid genus = PlacementOf(name);
    if (genus != kNullOid) {
      PROMETHEUS_ASSIGN_OR_RETURN(Value genus_element,
                                  rv.GetAttribute(genus, "name_element"));
      if (genus_element.type() == ValueType::kString) {
        text += genus_element.AsString() + " ";
      }
    }
  }
  if (element.type() == ValueType::kString) text += element.AsString();
  if (author.type() == ValueType::kString && !author.AsString().empty()) {
    text += " " + author.AsString();
  }
  return text;
}

Status TaxonomyDatabase::SetNameStatus(Oid name, NameStatus status) {
  if (!db_->IsInstanceOf(name, kNameClass)) {
    return Status::NotFound("@" + std::to_string(name) + " is not a name");
  }
  return db_->SetAttribute(name, "status",
                           Value::String(NameStatusName(status)));
}

Result<NameStatus> TaxonomyDatabase::NameStatusOf(Oid name) const {
  PROMETHEUS_ASSIGN_OR_RETURN(Value status,
                              view().GetAttribute(name, "status"));
  if (status.type() != ValueType::kString) {
    return Status::NotFound("no status recorded");
  }
  const std::string& s = status.AsString();
  if (s == "published") return NameStatus::kPublished;
  if (s == "invalid") return NameStatus::kInvalid;
  if (s == "conserved") return NameStatus::kConserved;
  if (s == "rejected") return NameStatus::kRejected;
  return Status::InvalidArgument("unknown status '" + s + "'");
}

Result<Oid> TaxonomyDatabase::AddDetermination(Oid specimen, Oid name,
                                               const std::string& determiner,
                                               std::int64_t year) {
  return db_->CreateLink(
      kDeterminedAsRel, specimen, name, kNullOid,
      {{"determiner", Value::String(determiner)},
       {"determination_year", Value::Int(year)}});
}

std::vector<Oid> TaxonomyDatabase::DeterminationsOf(Oid specimen) const {
  const ReadView& rv = view();
  return rv.IncidentLinks(specimen, Direction::kOut,
                          rv.FindRelationship(kDeterminedAsRel));
}

std::vector<std::vector<Oid>> TaxonomyDatabase::FindHomonyms() const {
  const ReadView& rv = view();
  std::unordered_map<std::string, std::vector<Oid>> groups;
  for (Oid name : rv.Extent(kNameClass)) {
    auto element = rv.GetAttribute(name, "name_element");
    auto rank = rv.GetAttribute(name, "rank");
    if (!element.ok() || !rank.ok() ||
        element.value().type() != ValueType::kString ||
        rank.value().type() != ValueType::kString) {
      continue;
    }
    std::string key = rank.value().AsString() + "\x1f" +
                      element.value().AsString();
    groups[key].push_back(name);
  }
  std::vector<std::vector<Oid>> out;
  for (auto& [key, names] : groups) {
    (void)key;
    if (names.size() > 1) {
      std::sort(names.begin(), names.end());
      out.push_back(std::move(names));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --------------------------------------------------------- classifications

Result<Oid> TaxonomyDatabase::NewClassification(
    const std::string& name, const std::string& author, std::int64_t year,
    const std::string& publication) {
  return classifications_->Create(name, author, year, publication);
}

Result<Oid> TaxonomyDatabase::NewTaxon(Oid classification, Rank rank,
                                       const std::string& working_name) {
  if (!classifications_->IsClassification(classification)) {
    return Status::NotFound("@" + std::to_string(classification) +
                            " is not a classification");
  }
  return db_->CreateObject(
      kTaxonClass, {{"working_name", Value::String(working_name)},
                    {"rank", Value::String(RankName(rank))},
                    {"rank_order", Value::Int(RankOrder(rank))}});
}

Status TaxonomyDatabase::PlaceTaxon(Oid classification, Oid parent, Oid child,
                                    const std::string& motivation) {
  return classifications_
      ->AddEdge(classification, kContainsRel, parent, child, motivation)
      .status();
}

Status TaxonomyDatabase::Circumscribe(Oid classification, Oid taxon,
                                      Oid specimen,
                                      const std::string& motivation) {
  return classifications_
      ->AddEdge(classification, kCircumscribesRel, taxon, specimen,
                motivation)
      .status();
}

Status TaxonomyDatabase::AscribeName(Oid taxon, Oid name) {
  return db_->CreateLink(kAscribedNameRel, taxon, name).status();
}

Oid TaxonomyDatabase::AscribedNameOf(Oid taxon) const {
  std::vector<Oid> names =
      view().Neighbors(taxon, kAscribedNameRel, Direction::kOut);
  return names.empty() ? kNullOid : names.front();
}

Oid TaxonomyDatabase::CalculatedNameOf(Oid taxon) const {
  std::vector<Oid> names =
      view().Neighbors(taxon, kCalculatedNameRel, Direction::kOut);
  return names.empty() ? kNullOid : names.front();
}

Result<Rank> TaxonomyDatabase::RankOf(Oid taxon_or_name) const {
  PROMETHEUS_ASSIGN_OR_RETURN(Value rank,
                              view().GetAttribute(taxon_or_name, "rank"));
  if (rank.type() != ValueType::kString) {
    return Status::NotFound("no rank recorded");
  }
  return RankFromName(rank.AsString());
}

Status TaxonomyDatabase::ValidateClassification(Oid classification) const {
  if (!classifications_->IsClassification(classification)) {
    return Status::NotFound("@" + std::to_string(classification) +
                            " is not a classification");
  }
  if (!classifications_->IsHierarchy(classification)) {
    return Status::ConstraintViolation("classification @" +
                                       std::to_string(classification) +
                                       " contains a cycle");
  }
  for (Oid lid : classifications_->Edges(classification)) {
    const Link* link = db_->GetLink(lid);
    if (link == nullptr) continue;
    if (link->def->name() == kContainsRel) {
      auto parent_rank = RankOf(link->source);
      auto child_rank = RankOf(link->target);
      if (!parent_rank.ok() || !child_rank.ok()) {
        return Status::ConstraintViolation(
            "taxon without a rank participates in the classification");
      }
      if (!IsBelow(child_rank.value(), parent_rank.value())) {
        return Status::ConstraintViolation(
            std::string("rank inversion: ") +
            RankName(parent_rank.value()) + " contains " +
            RankName(child_rank.value()));
      }
    } else if (link->def->name() == kCircumscribesRel) {
      if (!db_->IsInstanceOf(link->target, kSpecimenClass)) {
        return Status::ConstraintViolation(
            "circumscription edge targets a non-specimen");
      }
    }
  }
  return Status::Ok();
}

// ------------------------------------------------------------- recursion

Result<std::vector<Oid>> TaxonomyDatabase::SpecimensUnder(Oid classification,
                                                          Oid taxon) const {
  if (!classifications_->IsClassification(classification)) {
    return Status::NotFound("@" + std::to_string(classification) +
                            " is not a classification");
  }
  if (db_->GetObject(taxon) == nullptr) {
    return Status::NotFound("no taxon @" + std::to_string(taxon));
  }
  std::vector<Oid> out;
  for (Oid node : classifications_->Descendants(classification, taxon)) {
    if (db_->IsInstanceOf(node, kSpecimenClass)) out.push_back(node);
  }
  return out;
}

Result<std::vector<Oid>> TaxonomyDatabase::TypeSpecimensUnder(
    Oid classification, Oid taxon) const {
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Oid> specimens,
                              SpecimensUnder(classification, taxon));
  std::vector<Oid> out;
  for (Oid specimen : specimens) {
    bool is_type = false;
    for (Oid lid : db_->IncidentLinks(
             specimen, Direction::kIn,
             db_->FindRelationship(kTypifiedBySpecimenRel))) {
      const Link* link = db_->GetLink(lid);
      auto k = link->attrs.find("type_kind");
      if (k == link->attrs.end() ||
          k->second.type() != ValueType::kString) {
        continue;
      }
      const std::string& kind = k->second.AsString();
      if (kind == "holotype" || kind == "lectotype" || kind == "neotype") {
        is_type = true;
        break;
      }
    }
    if (is_type) out.push_back(specimen);
  }
  return out;
}

// -------------------------------------------------------- name derivation

Result<Oid> TaxonomyDatabase::GenusAncestorName(Oid classification,
                                                Oid taxon) const {
  Oid current = taxon;
  std::unordered_set<Oid> seen{current};
  for (;;) {
    std::vector<Oid> parents =
        classifications_->Parents(classification, current);
    if (parents.empty()) {
      return Status::FailedPrecondition(
          "no Genus-ranked ancestor in this classification");
    }
    current = parents.front();
    if (!seen.insert(current).second) {
      return Status::FailedPrecondition("classification contains a cycle");
    }
    auto rank = RankOf(current);
    if (rank.ok() && rank.value() == Rank::kGenus) {
      Oid name = CalculatedNameOf(current);
      if (name == kNullOid) name = AscribedNameOf(current);
      if (name == kNullOid) {
        return Status::FailedPrecondition(
            "the enclosing genus has no derived name yet (derive top-down)");
      }
      return name;
    }
  }
}

Result<Oid> TaxonomyDatabase::NewCombination(Oid base_name, Oid genus_name,
                                             const std::string& deriving_author,
                                             std::int64_t derivation_year,
                                             Rank rank) {
  PROMETHEUS_ASSIGN_OR_RETURN(Value element,
                              db_->GetAttribute(base_name, "name_element"));
  PROMETHEUS_ASSIGN_OR_RETURN(Value orig_author,
                              db_->GetAttribute(base_name, "author"));
  std::string author = "(" + OriginalAuthor(orig_author.AsString()) + ")" +
                       deriving_author;
  PROMETHEUS_ASSIGN_OR_RETURN(
      Oid combo, PublishName(element.AsString(), rank, author,
                             derivation_year));
  PROMETHEUS_RETURN_IF_ERROR(RecordPlacement(combo, genus_name));
  // The new combination keeps the base name's type (thesis figure 3: the
  // type of Apium repens becomes the type of Heliosciadium repens).
  std::vector<Oid> types = PrimaryTypeSpecimensOf(base_name);
  if (!types.empty()) {
    PROMETHEUS_RETURN_IF_ERROR(
        Typify(combo, types.front(), TypeKind::kHolotype));
  }
  return combo;
}

Status TaxonomyDatabase::SetCalculatedName(Oid taxon, Oid name) {
  for (Oid lid :
       db_->IncidentLinks(taxon, Direction::kOut,
                          db_->FindRelationship(kCalculatedNameRel))) {
    PROMETHEUS_RETURN_IF_ERROR(db_->DeleteLink(lid));
  }
  return db_->CreateLink(kCalculatedNameRel, taxon, name).status();
}

Result<DerivationResult> TaxonomyDatabase::DeriveName(
    Oid classification, Oid taxon, const std::string& deriving_author,
    std::int64_t derivation_year) {
  if (!db_->IsInstanceOf(taxon, kTaxonClass)) {
    return Status::InvalidArgument("@" + std::to_string(taxon) +
                                   " is not a circumscription taxon");
  }
  PROMETHEUS_ASSIGN_OR_RETURN(Rank rank, RankOf(taxon));
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Oid> specimens,
                              SpecimensUnder(classification, taxon));
  if (specimens.empty()) {
    return Status::FailedPrecondition(
        "taxon has no circumscribed specimens; name derivation is "
        "specimen-based (thesis 2.1.2)");
  }

  // Candidate names: climb the type hierarchy bottom-up from every primary
  // type specimen (unified through instance synonymy) to names published
  // at the taxon's rank.
  std::unordered_set<Oid> candidate_set;
  std::vector<Oid> candidates;
  auto year_of = [&](Oid name) {
    auto v = db_->GetAttribute(name, "year");
    return v.ok() && v.value().type() == ValueType::kInt
               ? v.value().AsInt()
               : std::int64_t{0};
  };
  for (Oid specimen : specimens) {
    for (Oid duplicate : db_->SynonymSet(specimen)) {
      // Names directly typified by this specimen through a primary type.
      std::vector<Oid> frontier;
      for (Oid lid : db_->IncidentLinks(
               duplicate, Direction::kIn,
               db_->FindRelationship(kTypifiedBySpecimenRel))) {
        const Link* link = db_->GetLink(lid);
        auto k = link->attrs.find("type_kind");
        if (k == link->attrs.end() ||
            k->second.type() != ValueType::kString) {
          continue;
        }
        const std::string& kind = k->second.AsString();
        if (kind != "holotype" && kind != "lectotype" && kind != "neotype") {
          continue;  // isotypes are not used for naming (2.1.2)
        }
        frontier.push_back(link->source);
      }
      // Climb: names typified by names.
      std::unordered_set<Oid> visited;
      while (!frontier.empty()) {
        Oid name = frontier.back();
        frontier.pop_back();
        if (!visited.insert(name).second) continue;
        auto name_rank = RankOf(name);
        // Valid candidates: published or conserved names; invalid and
        // rejected names never compete (figure 6's status hierarchy).
        auto status = NameStatusOf(name);
        const bool valid = status.ok() &&
                           (status.value() == NameStatus::kPublished ||
                            status.value() == NameStatus::kConserved);
        if (valid && name_rank.ok() && name_rank.value() == rank) {
          if (candidate_set.insert(name).second) candidates.push_back(name);
        }
        for (Oid up : db_->Neighbors(name, kTypifiedByNameRel,
                                     Direction::kIn)) {
          frontier.push_back(up);
        }
      }
    }
  }

  DerivationResult result;
  if (candidates.empty()) {
    // No published name fits: elect a type and publish a new name
    // (thesis 2.1.2).
    PROMETHEUS_ASSIGN_OR_RETURN(Value working,
                                db_->GetAttribute(taxon, "working_name"));
    if (working.type() != ValueType::kString || working.AsString().empty()) {
      return Status::FailedPrecondition(
          "cannot publish a new name: the taxon has no working name");
    }
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid fresh, PublishName(working.AsString(), rank, deriving_author,
                               derivation_year));
    if (IsMultinomial(rank)) {
      PROMETHEUS_ASSIGN_OR_RETURN(Oid genus,
                                  GenusAncestorName(classification, taxon));
      PROMETHEUS_RETURN_IF_ERROR(RecordPlacement(fresh, genus));
    }
    Oid elected = *std::min_element(specimens.begin(), specimens.end());
    PROMETHEUS_RETURN_IF_ERROR(Typify(fresh, elected, TypeKind::kHolotype));
    result.name = fresh;
    result.newly_published = true;
  } else {
    // Conserved names override priority (ICBN conservation); otherwise the
    // oldest validly published candidate wins.
    auto conserved = [&](Oid name) {
      auto status = NameStatusOf(name);
      return status.ok() && status.value() == NameStatus::kConserved;
    };
    Oid best = candidates.front();
    for (Oid c : candidates) {
      const bool c_cons = conserved(c);
      const bool b_cons = conserved(best);
      if (c_cons != b_cons) {
        if (c_cons) best = c;
        continue;
      }
      std::int64_t cy = year_of(c);
      std::int64_t by = year_of(best);
      if (cy < by || (cy == by && c < best)) best = c;
    }
    result.name = best;
    if (IsMultinomial(rank)) {
      PROMETHEUS_ASSIGN_OR_RETURN(Oid genus,
                                  GenusAncestorName(classification, taxon));
      if (PlacementOf(best) != genus) {
        // The combination <genus, epithet> must exist; reuse a published
        // one or publish a new combination.
        PROMETHEUS_ASSIGN_OR_RETURN(
            Value element, db_->GetAttribute(best, "name_element"));
        Oid existing = kNullOid;
        for (Oid name : db_->Extent(kNameClass)) {
          if (name == best) continue;
          auto el = db_->GetAttribute(name, "name_element");
          auto rk = RankOf(name);
          if (el.ok() && el.value().Equals(element) && rk.ok() &&
              rk.value() == rank && PlacementOf(name) == genus) {
            if (existing == kNullOid || year_of(name) < year_of(existing)) {
              existing = name;
            }
          }
        }
        if (existing != kNullOid) {
          result.name = existing;
        } else {
          PROMETHEUS_ASSIGN_OR_RETURN(
              result.name, NewCombination(best, genus, deriving_author,
                                          derivation_year, rank));
          result.newly_published = true;
        }
      }
    }
  }
  PROMETHEUS_RETURN_IF_ERROR(SetCalculatedName(taxon, result.name));
  PROMETHEUS_ASSIGN_OR_RETURN(result.full_name, FullName(result.name));
  return result;
}

Status TaxonomyDatabase::DeriveAllNames(Oid classification,
                                        const std::string& deriving_author,
                                        std::int64_t derivation_year) {
  // Top-down: genus combinations must exist before their binomials
  // (thesis 2.1.2: assignment is top-down).
  std::vector<Oid> taxa;
  for (Oid member : classifications_->Members(classification)) {
    if (db_->IsInstanceOf(member, kTaxonClass)) taxa.push_back(member);
  }
  std::stable_sort(taxa.begin(), taxa.end(), [&](Oid a, Oid b) {
    auto ra = db_->GetAttribute(a, "rank_order");
    auto rb = db_->GetAttribute(b, "rank_order");
    std::int64_t oa = ra.ok() && ra.value().type() == ValueType::kInt
                          ? ra.value().AsInt()
                          : 0;
    std::int64_t ob = rb.ok() && rb.value().type() == ValueType::kInt
                          ? rb.value().AsInt()
                          : 0;
    if (oa != ob) return oa < ob;
    return a < b;
  });
  for (Oid taxon : taxa) {
    PROMETHEUS_RETURN_IF_ERROR(
        DeriveName(classification, taxon, deriving_author, derivation_year)
            .status());
  }
  return Status::Ok();
}

// --------------------------------------------------------------- synonymy

OverlapReport TaxonomyDatabase::CompareTaxa(Oid classification_a, Oid taxon_a,
                                            Oid classification_b,
                                            Oid taxon_b) const {
  auto canonical_specimens = [this](Oid ctx, Oid taxon) {
    std::unordered_set<Oid> out;
    auto specimens = SpecimensUnder(ctx, taxon);
    if (specimens.ok()) {
      for (Oid s : specimens.value()) out.insert(db_->CanonicalOf(s));
    }
    return out;
  };
  std::unordered_set<Oid> a = canonical_specimens(classification_a, taxon_a);
  std::unordered_set<Oid> b = canonical_specimens(classification_b, taxon_b);
  OverlapReport report;
  for (Oid x : a) {
    if (b.count(x)) {
      report.shared.push_back(x);
    } else {
      report.only_a.push_back(x);
    }
  }
  for (Oid x : b) {
    if (!a.count(x)) report.only_b.push_back(x);
  }
  std::sort(report.shared.begin(), report.shared.end());
  std::sort(report.only_a.begin(), report.only_a.end());
  std::sort(report.only_b.begin(), report.only_b.end());
  if (report.shared.empty()) {
    report.kind = SynonymyKind::kNone;
  } else if (report.only_a.empty() && report.only_b.empty()) {
    report.kind = SynonymyKind::kFull;
  } else {
    report.kind = SynonymyKind::kProParte;
  }
  return report;
}

std::vector<TaxonomyDatabase::RevisionOperation>
TaxonomyDatabase::InferRevisionOperations(Oid original, Oid revision) const {
  auto internal_taxa = [this](Oid ctx) {
    std::vector<Oid> out;
    for (Oid member : classifications_->Members(ctx)) {
      if (db_->IsInstanceOf(member, kTaxonClass)) out.push_back(member);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto canonical_specimens = [this](Oid ctx, Oid taxon) {
    std::unordered_set<Oid> out;
    auto specimens = SpecimensUnder(ctx, taxon);
    if (specimens.ok()) {
      for (Oid s : specimens.value()) out.insert(db_->CanonicalOf(s));
    }
    return out;
  };
  auto rank_order_of = [this](Oid taxon) -> std::int64_t {
    auto v = db_->GetAttribute(taxon, "rank_order");
    return v.ok() && v.value().type() == ValueType::kInt ? v.value().AsInt()
                                                         : -1;
  };

  std::vector<Oid> taxa_b = internal_taxa(revision);
  std::vector<std::unordered_set<Oid>> leaves_b;
  leaves_b.reserve(taxa_b.size());
  for (Oid tb : taxa_b) leaves_b.push_back(canonical_specimens(revision, tb));

  // How many original taxa feed each revised taxon (for merge detection).
  std::vector<Oid> taxa_a = internal_taxa(original);
  std::unordered_map<Oid, int> sources_of_b;
  std::vector<std::vector<Oid>> counterparts_of_a(taxa_a.size());
  for (std::size_t i = 0; i < taxa_a.size(); ++i) {
    std::unordered_set<Oid> la = canonical_specimens(original, taxa_a[i]);
    for (std::size_t j = 0; j < taxa_b.size(); ++j) {
      bool overlaps = false;
      for (Oid x : la) {
        if (leaves_b[j].count(x)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        counterparts_of_a[i].push_back(taxa_b[j]);
        sources_of_b[taxa_b[j]] += 1;
      }
    }
  }

  std::vector<RevisionOperation> out;
  for (std::size_t i = 0; i < taxa_a.size(); ++i) {
    RevisionOperation op;
    op.taxon_a = taxa_a[i];
    op.taxa_b = counterparts_of_a[i];
    if (op.taxa_b.empty()) {
      op.kind = RevisionOpKind::kDissolution;
      out.push_back(std::move(op));
      continue;
    }
    if (op.taxa_b.size() > 1) {
      op.kind = RevisionOpKind::kPartition;
      out.push_back(std::move(op));
      continue;
    }
    Oid b = op.taxa_b.front();
    if (sources_of_b[b] > 1) {
      op.kind = RevisionOpKind::kMerge;
      out.push_back(std::move(op));
      continue;
    }
    std::unordered_set<Oid> la = canonical_specimens(original, taxa_a[i]);
    const std::unordered_set<Oid>& lb =
        leaves_b[static_cast<std::size_t>(
            std::find(taxa_b.begin(), taxa_b.end(), b) - taxa_b.begin())];
    if (la != lb) {
      op.kind = RevisionOpKind::kMove;
    } else {
      std::int64_t ra = rank_order_of(taxa_a[i]);
      std::int64_t rb = rank_order_of(b);
      if (ra == rb) {
        op.kind = RevisionOpKind::kRecognition;
      } else if (rb < ra) {
        op.kind = RevisionOpKind::kPromotion;  // smaller order = higher rank
      } else {
        op.kind = RevisionOpKind::kDemotion;
      }
    }
    out.push_back(std::move(op));
  }
  return out;
}

TypeSynonymy TaxonomyDatabase::TypeSynonymyOf(Oid classification_a,
                                              Oid taxon_a,
                                              Oid classification_b,
                                              Oid taxon_b) const {
  OverlapReport overlap =
      CompareTaxa(classification_a, taxon_a, classification_b, taxon_b);
  if (overlap.kind == SynonymyKind::kNone) {
    return TypeSynonymy::kNotSynonyms;
  }
  auto type_set = [this](Oid taxon) {
    std::unordered_set<Oid> out;
    Oid name = CalculatedNameOf(taxon);
    if (name == kNullOid) name = AscribedNameOf(taxon);
    if (name != kNullOid) {
      for (Oid s : PrimaryTypeSpecimensOf(name)) {
        out.insert(db_->CanonicalOf(s));
      }
    }
    return out;
  };
  std::unordered_set<Oid> a = type_set(taxon_a);
  std::unordered_set<Oid> b = type_set(taxon_b);
  for (Oid x : a) {
    if (b.count(x)) return TypeSynonymy::kHomotypic;
  }
  return TypeSynonymy::kHeterotypic;
}

}  // namespace prometheus::taxonomy
