#include <gtest/gtest.h>

#include <algorithm>

#include "core/database.h"

namespace prometheus {
namespace {

AttributeDef StrAttr(std::string name) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = ValueType::kString;
  return a;
}

AttributeDef IntAttr(std::string name, std::int64_t def = 0) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = ValueType::kInt;
  a.default_value = Value::Int(def);
  return a;
}

bool Contains(const std::vector<Oid>& v, Oid x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// ------------------------------------------------------------------ schema

TEST(SchemaTest, DefineAndFindClass) {
  Database db;
  auto r = db.DefineClass("Person", {}, {StrAttr("name"), IntAttr("age")});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ClassDef* cls = db.FindClass("Person");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->name(), "Person");
  EXPECT_EQ(cls->attributes().size(), 2u);
  EXPECT_EQ(db.FindClass("Nobody"), nullptr);
}

TEST(SchemaTest, DuplicateClassNameRejected) {
  Database db;
  ASSERT_TRUE(db.DefineClass("A").ok());
  EXPECT_EQ(db.DefineClass("A").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(SchemaTest, UnknownSuperRejected) {
  Database db;
  EXPECT_EQ(db.DefineClass("B", {"Missing"}).status().code(),
            Status::Code::kNotFound);
}

TEST(SchemaTest, InheritanceAndAttributeLookup) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Base", {}, {StrAttr("name")}).ok());
  ASSERT_TRUE(db.DefineClass("Derived", {"Base"}, {IntAttr("extra")}).ok());
  const ClassDef* base = db.FindClass("Base");
  const ClassDef* derived = db.FindClass("Derived");
  EXPECT_TRUE(derived->IsSubclassOf(base));
  EXPECT_FALSE(base->IsSubclassOf(derived));
  EXPECT_TRUE(derived->IsSubclassOf(derived));
  EXPECT_NE(derived->FindAttribute("name"), nullptr);
  EXPECT_NE(derived->FindAttribute("extra"), nullptr);
  EXPECT_EQ(base->FindAttribute("extra"), nullptr);
  ASSERT_EQ(base->subclasses().size(), 1u);
  EXPECT_EQ(base->subclasses()[0], derived);
}

TEST(SchemaTest, AttributeCollisionWithSuperRejected) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Base", {}, {StrAttr("name")}).ok());
  EXPECT_EQ(db.DefineClass("Derived", {"Base"}, {StrAttr("name")})
                .status()
                .code(),
            Status::Code::kInvalidArgument);
}

TEST(SchemaTest, MultipleInheritance) {
  Database db;
  ASSERT_TRUE(db.DefineClass("A", {}, {StrAttr("a")}).ok());
  ASSERT_TRUE(db.DefineClass("B", {}, {StrAttr("b")}).ok());
  ASSERT_TRUE(db.DefineClass("C", {"A", "B"}).ok());
  const ClassDef* c = db.FindClass("C");
  EXPECT_NE(c->FindAttribute("a"), nullptr);
  EXPECT_NE(c->FindAttribute("b"), nullptr);
  std::vector<const AttributeDef*> all;
  c->CollectAttributes(&all);
  EXPECT_EQ(all.size(), 2u);
}

TEST(SchemaTest, DefineRelationship) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Whole").ok());
  ASSERT_TRUE(db.DefineClass("Part").ok());
  RelationshipSemantics sem;
  sem.kind = RelationshipKind::kAggregation;
  auto r = db.DefineRelationship("has_part", "Whole", "Part", sem,
                                 {StrAttr("why")});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RelationshipDef* def = db.FindRelationship("has_part");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->source_class()->name(), "Whole");
  EXPECT_EQ(def->target_class()->name(), "Part");
  EXPECT_EQ(def->semantics().kind, RelationshipKind::kAggregation);
  EXPECT_NE(def->FindAttribute("why"), nullptr);
}

TEST(SchemaTest, RelationshipNameSharesNamespaceWithClasses) {
  Database db;
  ASSERT_TRUE(db.DefineClass("A").ok());
  ASSERT_TRUE(db.DefineClass("B").ok());
  ASSERT_TRUE(db.DefineRelationship("A_to_B", "A", "B").ok());
  EXPECT_FALSE(db.DefineClass("A_to_B").ok());
  EXPECT_FALSE(db.DefineRelationship("A", "A", "B").ok());
}

TEST(SchemaTest, ContradictorySemanticsRejected) {
  // Thesis table 3: only meaningful combinations of behaviours are
  // definable.
  Database db;
  ASSERT_TRUE(db.DefineClass("A").ok());
  ASSERT_TRUE(db.DefineClass("B").ok());
  RelationshipSemantics bad_card;
  bad_card.min_out = 3;
  bad_card.max_out = 2;
  EXPECT_EQ(db.DefineRelationship("r1", "A", "B", bad_card).status().code(),
            Status::Code::kInvalidArgument);
  RelationshipSemantics bad_in;
  bad_in.min_in = 2;
  bad_in.max_in = 1;
  EXPECT_EQ(db.DefineRelationship("r2", "A", "B", bad_in).status().code(),
            Status::Code::kInvalidArgument);
  RelationshipSemantics undirected_inherit;
  undirected_inherit.directed = false;
  undirected_inherit.inherit_attributes = true;
  EXPECT_EQ(db.DefineRelationship("r3", "A", "B", undirected_inherit)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  RelationshipSemantics undirected_lifetime;
  undirected_lifetime.directed = false;
  undirected_lifetime.lifetime_dependent = true;
  EXPECT_EQ(db.DefineRelationship("r4", "A", "B", undirected_lifetime)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  // Unbounded max with non-zero min is fine (min checked on demand).
  RelationshipSemantics ok;
  ok.min_out = 1;
  EXPECT_TRUE(db.DefineRelationship("r5", "A", "B", ok).ok());
}

TEST(SchemaTest, RelationshipInheritanceCovariance) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Node").ok());
  ASSERT_TRUE(db.DefineClass("Taxon", {"Node"}).ok());
  ASSERT_TRUE(db.DefineRelationship("linked", "Node", "Node").ok());
  // Covariant refinement is accepted.
  auto ok = db.DefineRelationship("placed_in", "Taxon", "Taxon", {}, {},
                                  {"linked"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(db.FindRelationship("placed_in")
                  ->IsSubrelationshipOf(db.FindRelationship("linked")));
  // Contravariant refinement is rejected.
  ASSERT_TRUE(db.DefineClass("Other").ok());
  EXPECT_FALSE(
      db.DefineRelationship("bad", "Other", "Node", {}, {}, {"placed_in"})
          .ok());
}

TEST(SchemaTest, MethodSignatures) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Base").ok());
  ASSERT_TRUE(db.DefineClass("Derived", {"Base"}).ok());
  MethodDef method;
  method.name = "age";
  method.return_type = "int";
  method.parameters = {{"int", "reference_year"}};
  ASSERT_TRUE(db.DefineMethod("Base", method).ok());
  const MethodDef* found = db.FindClass("Derived")->FindMethod("age");
  ASSERT_NE(found, nullptr);  // inherited
  EXPECT_EQ(found->return_type, "int");
  ASSERT_EQ(found->parameters.size(), 1u);
  EXPECT_EQ(found->parameters[0].second, "reference_year");
  // Duplicates and unknown classes are rejected.
  EXPECT_EQ(db.DefineMethod("Base", method).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(db.DefineMethod("Nope", method).code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.FindClass("Base")->FindMethod("nothing"), nullptr);
}

TEST(SchemaTest, RelationshipTemplates) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Whole").ok());
  ASSERT_TRUE(db.DefineClass("Part").ok());
  ASSERT_TRUE(db.DefineClass("Other").ok());
  RelationshipSemantics sem;
  sem.kind = RelationshipKind::kAggregation;
  sem.lifetime_dependent = true;
  sem.exclusive = true;
  AttributeDef why;
  why.name = "why";
  why.type = ValueType::kString;
  ASSERT_TRUE(
      db.DefineRelationshipTemplate("owned_component", sem, {why}).ok());
  // Instantiate twice against different class pairs (figure 34's reuse).
  auto r1 =
      db.InstantiateRelationship("owned_component", "has_part", "Whole",
                                 "Part");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = db.InstantiateRelationship("owned_component", "has_other",
                                       "Whole", "Other");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1.value()->semantics().lifetime_dependent);
  EXPECT_TRUE(r2.value()->semantics().exclusive);
  EXPECT_NE(r1.value()->FindAttribute("why"), nullptr);
  // Instantiations get their own default exclusivity groups.
  EXPECT_EQ(r1.value()->semantics().exclusivity_group, "has_part");
  EXPECT_EQ(db.relationship_templates(),
            std::vector<std::string>{"owned_component"});
  EXPECT_EQ(db.InstantiateRelationship("missing", "x", "Whole", "Part")
                .status()
                .code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.DefineRelationshipTemplate("owned_component", sem, {}).code(),
            Status::Code::kInvalidArgument);
}

// ----------------------------------------------------------------- objects

class CoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db.DefineClass("Person", {}, {StrAttr("name"), IntAttr("age", 30)})
            .ok());
    ASSERT_TRUE(db.DefineClass("Company", {}, {StrAttr("name")}).ok());
    ASSERT_TRUE(db.DefineRelationship("works_for", "Person", "Company").ok());
  }

  Oid NewPerson(const std::string& name) {
    auto r = db.CreateObject("Person", {{"name", Value::String(name)}});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value_or(kNullOid);
  }

  Oid NewCompany(const std::string& name) {
    auto r = db.CreateObject("Company", {{"name", Value::String(name)}});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value_or(kNullOid);
  }

  Database db;
};

TEST_F(CoreFixture, CreateObjectAppliesDefaultsAndInits) {
  Oid p = NewPerson("Ada");
  EXPECT_TRUE(db.GetAttribute(p, "name").value().Equals(Value::String("Ada")));
  EXPECT_TRUE(db.GetAttribute(p, "age").value().Equals(Value::Int(30)));
}

TEST_F(CoreFixture, CreateObjectRejectsUnknownClassAndAttribute) {
  EXPECT_EQ(db.CreateObject("Nope").status().code(), Status::Code::kNotFound);
  EXPECT_EQ(db.CreateObject("Person", {{"salary", Value::Int(1)}})
                .status()
                .code(),
            Status::Code::kNotFound);
}

TEST_F(CoreFixture, CreateObjectTypeChecksInits) {
  EXPECT_EQ(db.CreateObject("Person", {{"age", Value::String("old")}})
                .status()
                .code(),
            Status::Code::kTypeError);
}

TEST_F(CoreFixture, AbstractClassCannotBeInstantiated) {
  ASSERT_TRUE(db.DefineClass("Shape", {}, {}, /*is_abstract=*/true).ok());
  EXPECT_EQ(db.CreateObject("Shape").status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(CoreFixture, SetAndGetAttribute) {
  Oid p = NewPerson("Ada");
  ASSERT_TRUE(db.SetAttribute(p, "age", Value::Int(36)).ok());
  EXPECT_TRUE(db.GetAttribute(p, "age").value().Equals(Value::Int(36)));
  EXPECT_EQ(db.SetAttribute(p, "age", Value::String("x")).code(),
            Status::Code::kTypeError);
  EXPECT_EQ(db.SetAttribute(p, "height", Value::Int(1)).code(),
            Status::Code::kNotFound);
}

TEST_F(CoreFixture, ExtentTracksCreationAndDeletion) {
  Oid a = NewPerson("a");
  Oid b = NewPerson("b");
  Oid c = NewPerson("c");
  EXPECT_EQ(db.Extent("Person").size(), 3u);
  ASSERT_TRUE(db.DeleteObject(b).ok());
  std::vector<Oid> extent = db.Extent("Person");
  EXPECT_EQ(extent.size(), 2u);
  EXPECT_TRUE(Contains(extent, a));
  EXPECT_TRUE(Contains(extent, c));
  EXPECT_FALSE(Contains(extent, b));
  EXPECT_EQ(db.GetObject(b), nullptr);
  EXPECT_EQ(db.object_count(), 2u);
}

TEST_F(CoreFixture, DeepExtentIncludesSubclasses) {
  ASSERT_TRUE(db.DefineClass("Employee", {"Person"}).ok());
  NewPerson("p");
  ASSERT_TRUE(db.CreateObject("Employee", {{"name", Value::String("e")}})
                  .ok());
  EXPECT_EQ(db.Extent("Person", /*include_subclasses=*/true).size(), 2u);
  EXPECT_EQ(db.Extent("Person", /*include_subclasses=*/false).size(), 1u);
}

TEST_F(CoreFixture, IsInstanceOfRespectsInheritance) {
  ASSERT_TRUE(db.DefineClass("Employee", {"Person"}).ok());
  auto e = db.CreateObject("Employee", {{"name", Value::String("e")}});
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(db.IsInstanceOf(e.value(), "Person"));
  EXPECT_TRUE(db.IsInstanceOf(e.value(), "Employee"));
  Oid p = NewPerson("p");
  EXPECT_FALSE(db.IsInstanceOf(p, "Employee"));
}

// ------------------------------------------------------------------- links

TEST_F(CoreFixture, CreateAndTraverseLink) {
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  auto l = db.CreateLink("works_for", p, c);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  const Link* link = db.GetLink(l.value());
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->source, p);
  EXPECT_EQ(link->target, c);
  EXPECT_EQ(db.Neighbors(p, "works_for"), std::vector<Oid>{c});
  EXPECT_EQ(db.Neighbors(c, "works_for", Direction::kIn),
            std::vector<Oid>{p});
  EXPECT_EQ(db.link_count(), 1u);
  EXPECT_EQ(db.LinkExtent("works_for").size(), 1u);
}

TEST_F(CoreFixture, LinkTypeChecking) {
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  EXPECT_EQ(db.CreateLink("works_for", c, p).status().code(),
            Status::Code::kTypeError);
  EXPECT_EQ(db.CreateLink("nothing", p, c).status().code(),
            Status::Code::kNotFound);
}

TEST_F(CoreFixture, LinkAttributes) {
  ASSERT_TRUE(db.DefineRelationship("friend_of", "Person", "Person", {},
                                    {IntAttr("since", 2000)})
                  .ok());
  Oid a = NewPerson("a");
  Oid b = NewPerson("b");
  auto l = db.CreateLink("friend_of", a, b, kNullOid,
                         {{"since", Value::Int(1999)}});
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(db.GetLinkAttribute(l.value(), "since")
                  .value()
                  .Equals(Value::Int(1999)));
  ASSERT_TRUE(db.SetLinkAttribute(l.value(), "since", Value::Int(2001)).ok());
  EXPECT_TRUE(db.GetLinkAttribute(l.value(), "since")
                  .value()
                  .Equals(Value::Int(2001)));
  EXPECT_EQ(
      db.SetLinkAttribute(l.value(), "since", Value::String("x")).code(),
      Status::Code::kTypeError);
}

TEST_F(CoreFixture, DeleteLinkDetachesEndpoints) {
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  Oid l = db.CreateLink("works_for", p, c).value();
  ASSERT_TRUE(db.DeleteLink(l).ok());
  EXPECT_TRUE(db.Neighbors(p, "works_for").empty());
  EXPECT_EQ(db.GetObject(p)->out_links.size(), 0u);
  EXPECT_EQ(db.GetObject(c)->in_links.size(), 0u);
  EXPECT_EQ(db.link_count(), 0u);
}

TEST_F(CoreFixture, DeleteObjectRemovesIncidentLinks) {
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  Oid l = db.CreateLink("works_for", p, c).value();
  ASSERT_TRUE(db.DeleteObject(c).ok());
  EXPECT_EQ(db.GetLink(l), nullptr);
  EXPECT_TRUE(db.GetObject(p)->out_links.empty());
}

// ---------------------------------------------------- relationship semantics

TEST(SemanticsTest, ExclusivityWithinGroup) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Folder").ok());
  ASSERT_TRUE(db.DefineClass("File").ok());
  RelationshipSemantics sem;
  sem.exclusive = true;
  sem.exclusivity_group = "containment";
  ASSERT_TRUE(db.DefineRelationship("contains", "Folder", "File", sem).ok());
  ASSERT_TRUE(db.DefineRelationship("archives", "Folder", "File", sem).ok());
  Oid f1 = db.CreateObject("Folder").value();
  Oid f2 = db.CreateObject("Folder").value();
  Oid file = db.CreateObject("File").value();
  ASSERT_TRUE(db.CreateLink("contains", f1, file).ok());
  // Same target may not be claimed again by any relationship in the group.
  EXPECT_EQ(db.CreateLink("contains", f2, file).status().code(),
            Status::Code::kConstraintViolation);
  EXPECT_EQ(db.CreateLink("archives", f2, file).status().code(),
            Status::Code::kConstraintViolation);
}

TEST(SemanticsTest, ExclusivityDefaultGroupIsOwnName) {
  Database db;
  ASSERT_TRUE(db.DefineClass("A").ok());
  ASSERT_TRUE(db.DefineClass("B").ok());
  RelationshipSemantics sem;
  sem.exclusive = true;
  ASSERT_TRUE(db.DefineRelationship("r1", "A", "B", sem).ok());
  ASSERT_TRUE(db.DefineRelationship("r2", "A", "B", sem).ok());
  Oid a1 = db.CreateObject("A").value();
  Oid a2 = db.CreateObject("A").value();
  Oid b = db.CreateObject("B").value();
  ASSERT_TRUE(db.CreateLink("r1", a1, b).ok());
  // Different default groups do not interfere.
  EXPECT_TRUE(db.CreateLink("r2", a2, b).ok());
  // But r1 itself is exclusive.
  EXPECT_FALSE(db.CreateLink("r1", a2, b).ok());
}

TEST(SemanticsTest, NonShareableComponent) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Whole").ok());
  ASSERT_TRUE(db.DefineClass("Part").ok());
  RelationshipSemantics sem;
  sem.kind = RelationshipKind::kAggregation;
  sem.shareable = false;
  ASSERT_TRUE(db.DefineRelationship("has_part", "Whole", "Part", sem).ok());
  Oid w1 = db.CreateObject("Whole").value();
  Oid w2 = db.CreateObject("Whole").value();
  Oid p = db.CreateObject("Part").value();
  ASSERT_TRUE(db.CreateLink("has_part", w1, p).ok());
  EXPECT_EQ(db.CreateLink("has_part", w2, p).status().code(),
            Status::Code::kConstraintViolation);
}

TEST(SemanticsTest, LifetimeDependencyCascades) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Whole").ok());
  ASSERT_TRUE(db.DefineClass("Part").ok());
  RelationshipSemantics sem;
  sem.kind = RelationshipKind::kAggregation;
  sem.lifetime_dependent = true;
  ASSERT_TRUE(db.DefineRelationship("has_part", "Whole", "Part", sem).ok());
  ASSERT_TRUE(db.DefineRelationship("sub_part", "Part", "Part", sem).ok());
  Oid w = db.CreateObject("Whole").value();
  Oid p1 = db.CreateObject("Part").value();
  Oid p2 = db.CreateObject("Part").value();
  ASSERT_TRUE(db.CreateLink("has_part", w, p1).ok());
  ASSERT_TRUE(db.CreateLink("sub_part", p1, p2).ok());
  ASSERT_TRUE(db.DeleteObject(w).ok());
  EXPECT_EQ(db.GetObject(p1), nullptr);
  EXPECT_EQ(db.GetObject(p2), nullptr);
  EXPECT_EQ(db.object_count(), 0u);
  EXPECT_EQ(db.link_count(), 0u);
}

TEST(SemanticsTest, LifetimeDependencyCycleTerminates) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Node").ok());
  RelationshipSemantics sem;
  sem.lifetime_dependent = true;
  ASSERT_TRUE(db.DefineRelationship("owns", "Node", "Node", sem).ok());
  Oid a = db.CreateObject("Node").value();
  Oid b = db.CreateObject("Node").value();
  ASSERT_TRUE(db.CreateLink("owns", a, b).ok());
  ASSERT_TRUE(db.CreateLink("owns", b, a).ok());
  ASSERT_TRUE(db.DeleteObject(a).ok());
  EXPECT_EQ(db.object_count(), 0u);
}

TEST(SemanticsTest, ConstantLinksCannotChange) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Name").ok());
  ASSERT_TRUE(db.DefineClass("Publication").ok());
  RelationshipSemantics sem;
  sem.constant = true;
  ASSERT_TRUE(db.DefineRelationship("published_in", "Name", "Publication",
                                    sem, {IntAttr("page")})
                  .ok());
  Oid n = db.CreateObject("Name").value();
  Oid p = db.CreateObject("Publication").value();
  Oid l = db.CreateLink("published_in", n, p).value();
  EXPECT_EQ(db.DeleteLink(l).code(), Status::Code::kConstraintViolation);
  EXPECT_EQ(db.SetLinkAttribute(l, "page", Value::Int(3)).code(),
            Status::Code::kConstraintViolation);
  // Participant death still removes the link.
  ASSERT_TRUE(db.DeleteObject(p).ok());
  EXPECT_EQ(db.GetLink(l), nullptr);
}

TEST(SemanticsTest, MaxCardinalityEnforced) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Genus").ok());
  ASSERT_TRUE(db.DefineClass("Species").ok());
  RelationshipSemantics sem;
  sem.max_out = 2;
  sem.max_in = 1;
  ASSERT_TRUE(db.DefineRelationship("includes", "Genus", "Species", sem).ok());
  Oid g = db.CreateObject("Genus").value();
  Oid g2 = db.CreateObject("Genus").value();
  Oid s1 = db.CreateObject("Species").value();
  Oid s2 = db.CreateObject("Species").value();
  Oid s3 = db.CreateObject("Species").value();
  ASSERT_TRUE(db.CreateLink("includes", g, s1).ok());
  ASSERT_TRUE(db.CreateLink("includes", g, s2).ok());
  EXPECT_EQ(db.CreateLink("includes", g, s3).status().code(),
            Status::Code::kConstraintViolation);
  EXPECT_EQ(db.CreateLink("includes", g2, s1).status().code(),
            Status::Code::kConstraintViolation);
}

TEST(SemanticsTest, MinCardinalityValidation) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Name").ok());
  ASSERT_TRUE(db.DefineClass("Type").ok());
  RelationshipSemantics sem;
  sem.min_out = 1;
  ASSERT_TRUE(db.DefineRelationship("typified_by", "Name", "Type", sem).ok());
  Oid n = db.CreateObject("Name").value();
  EXPECT_EQ(db.ValidateCardinality().code(),
            Status::Code::kConstraintViolation);
  Oid t = db.CreateObject("Type").value();
  ASSERT_TRUE(db.CreateLink("typified_by", n, t).ok());
  EXPECT_TRUE(db.ValidateCardinality().ok());
}

TEST(SemanticsTest, AttributeInheritanceOverLinks) {
  // The ADAM-style role example of figure 17/18: wedding attributes become
  // visible on the spouses.
  Database db;
  ASSERT_TRUE(db.DefineClass("Person", {}, {StrAttr("name")}).ok());
  RelationshipSemantics sem;
  sem.inherit_attributes = true;
  ASSERT_TRUE(db.DefineRelationship("married_to", "Person", "Person", sem,
                                    {StrAttr("wedding_date")})
                  .ok());
  Oid a = db.CreateObject("Person", {{"name", Value::String("a")}}).value();
  Oid b = db.CreateObject("Person", {{"name", Value::String("b")}}).value();
  ASSERT_TRUE(db.CreateLink("married_to", a, b, kNullOid,
                            {{"wedding_date", Value::String("1999-06-12")}})
                  .ok());
  // The target inherits the link attribute as a derived attribute.
  EXPECT_TRUE(db.GetAttribute(b, "wedding_date")
                  .value()
                  .Equals(Value::String("1999-06-12")));
  // The source does not (inheritance flows along the link direction).
  EXPECT_FALSE(db.GetAttribute(a, "wedding_date").ok());
}

TEST(SemanticsTest, RefAttributeClassChecked) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Taxon").ok());
  AttributeDef ref;
  ref.name = "accepted";
  ref.type = ValueType::kRef;
  ref.ref_class = "Taxon";
  ASSERT_TRUE(db.DefineClass("Record", {}, {ref}).ok());
  ASSERT_TRUE(db.DefineClass("Other").ok());
  Oid t = db.CreateObject("Taxon").value();
  Oid o = db.CreateObject("Other").value();
  Oid r = db.CreateObject("Record").value();
  EXPECT_TRUE(db.SetAttribute(r, "accepted", Value::Ref(t)).ok());
  EXPECT_EQ(db.SetAttribute(r, "accepted", Value::Ref(o)).code(),
            Status::Code::kTypeError);
}

// --------------------------------------------------------------- traversal

class TraversalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db.DefineClass("Node", {}, {StrAttr("tag")}).ok());
    ASSERT_TRUE(db.DefineRelationship("child", "Node", "Node").ok());
    // Chain: n0 -> n1 -> n2 -> n3, plus n0 -> n4.
    for (int i = 0; i < 5; ++i) {
      n[i] = db.CreateObject(
                   "Node", {{"tag", Value::String("n" + std::to_string(i))}})
                 .value();
    }
    ASSERT_TRUE(db.CreateLink("child", n[0], n[1]).ok());
    ASSERT_TRUE(db.CreateLink("child", n[1], n[2]).ok());
    ASSERT_TRUE(db.CreateLink("child", n[2], n[3]).ok());
    ASSERT_TRUE(db.CreateLink("child", n[0], n[4]).ok());
  }

  Database db;
  Oid n[5];
};

TEST_F(TraversalFixture, UnboundedClosure) {
  auto r = db.Traverse(n[0], "child", 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 4u);
  EXPECT_FALSE(Contains(r.value(), n[0]));
}

TEST_F(TraversalFixture, MinDepthZeroIncludesStart) {
  auto r = db.Traverse(n[0], "child", 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 5u);
  EXPECT_TRUE(Contains(r.value(), n[0]));
}

TEST_F(TraversalFixture, DepthWindow) {
  auto r = db.Traverse(n[0], "child", 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<Oid>{n[2]});
}

TEST_F(TraversalFixture, ReverseTraversal) {
  auto r = db.Traverse(n[3], "child", 1, 0, Direction::kIn);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
  EXPECT_TRUE(Contains(r.value(), n[0]));
}

TEST_F(TraversalFixture, CycleSafe) {
  ASSERT_TRUE(db.CreateLink("child", n[3], n[0]).ok());
  auto r = db.Traverse(n[0], "child", 1, 0);
  ASSERT_TRUE(r.ok());
  // Terminates, reports each node once; the start is never re-reported.
  EXPECT_EQ(r.value().size(), 4u);
  EXPECT_FALSE(Contains(r.value(), n[0]));
}

TEST_F(TraversalFixture, InvalidArguments) {
  EXPECT_EQ(db.Traverse(n[0], "nope", 1, 0).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.Traverse(999999, "child", 1, 0).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.Traverse(n[0], "child", 3, 2).status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(TraversalFixture, UndirectedRelationshipIgnoresDirection) {
  RelationshipSemantics sem;
  sem.directed = false;
  ASSERT_TRUE(db.DefineRelationship("near", "Node", "Node", sem).ok());
  ASSERT_TRUE(db.CreateLink("near", n[0], n[1]).ok());
  EXPECT_EQ(db.Neighbors(n[1], "near", Direction::kOut),
            std::vector<Oid>{n[0]});
}

TEST_F(TraversalFixture, ContextRestrictsTraversal) {
  ASSERT_TRUE(db.DefineClass("Ctx").ok());
  Oid ctx1 = db.CreateObject("Ctx").value();
  Oid ctx2 = db.CreateObject("Ctx").value();
  Oid m0 = db.CreateObject("Node").value();
  Oid m1 = db.CreateObject("Node").value();
  Oid m2 = db.CreateObject("Node").value();
  ASSERT_TRUE(db.CreateLink("child", m0, m1, ctx1).ok());
  ASSERT_TRUE(db.CreateLink("child", m0, m2, ctx2).ok());
  auto in_ctx1 = db.Traverse(m0, "child", 1, 0, Direction::kOut, ctx1);
  ASSERT_TRUE(in_ctx1.ok());
  EXPECT_EQ(in_ctx1.value(), std::vector<Oid>{m1});
  auto all = db.Traverse(m0, "child", 1, 0);
  EXPECT_EQ(all.value().size(), 2u);
}

// ---------------------------------------------------------------- synonyms

TEST(SynonymTest, EquivalenceRelation) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Specimen").ok());
  Oid a = db.CreateObject("Specimen").value();
  Oid b = db.CreateObject("Specimen").value();
  Oid c = db.CreateObject("Specimen").value();
  Oid d = db.CreateObject("Specimen").value();
  EXPECT_TRUE(db.AreSynonyms(a, a));
  EXPECT_FALSE(db.AreSynonyms(a, b));
  ASSERT_TRUE(db.DeclareSynonym(a, b).ok());
  ASSERT_TRUE(db.DeclareSynonym(c, d).ok());
  EXPECT_TRUE(db.AreSynonyms(a, b));
  EXPECT_FALSE(db.AreSynonyms(a, c));
  ASSERT_TRUE(db.DeclareSynonym(b, c).ok());
  EXPECT_TRUE(db.AreSynonyms(a, d));
  EXPECT_EQ(db.SynonymSet(d).size(), 4u);
  // Canonical representative is the oldest oid.
  EXPECT_EQ(db.CanonicalOf(d), a);
}

TEST(SynonymTest, DeletedMembersLeaveTheSetButSurvivorsStayUnified) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Specimen").ok());
  Oid a = db.CreateObject("Specimen").value();
  Oid b = db.CreateObject("Specimen").value();
  Oid c = db.CreateObject("Specimen").value();
  ASSERT_TRUE(db.DeclareSynonym(a, b).ok());
  ASSERT_TRUE(db.DeclareSynonym(b, c).ok());
  // Deleting the middle member must not split the set.
  ASSERT_TRUE(db.DeleteObject(b).ok());
  EXPECT_TRUE(db.AreSynonyms(a, c));
  std::vector<Oid> set = db.SynonymSet(a);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(Contains(set, b));
}

TEST(SynonymTest, RequiresLiveObjects) {
  Database db;
  ASSERT_TRUE(db.DefineClass("S").ok());
  Oid a = db.CreateObject("S").value();
  EXPECT_EQ(db.DeclareSynonym(a, 424242).code(), Status::Code::kNotFound);
}

TEST_F(CoreFixture, LookupsOnUnknownTargetsAreBenign) {
  EXPECT_TRUE(db.Extent("NoSuchClass").empty());
  EXPECT_TRUE(db.LinkExtent("NoSuchRel").empty());
  EXPECT_TRUE(db.Neighbors(12345, "works_for").empty());
  EXPECT_TRUE(db.IncidentLinks(12345, Direction::kBoth).empty());
  EXPECT_EQ(db.GetObject(kNullOid), nullptr);
  EXPECT_EQ(db.GetLink(kNullOid), nullptr);
  EXPECT_FALSE(db.IsInstanceOf(12345, "Person"));
  EXPECT_EQ(db.GetAttribute(12345, "name").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.GetLinkAttribute(12345, "x").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(db.DeleteObject(12345).code(), Status::Code::kNotFound);
  EXPECT_EQ(db.DeleteLink(12345).code(), Status::Code::kNotFound);
}

TEST_F(CoreFixture, CompensatingEventsAreMarked) {
  std::vector<std::pair<EventKind, bool>> seen;
  db.bus().Subscribe([&](const Event& e) {
    seen.emplace_back(e.kind, e.compensating);
    return Status::Ok();
  });
  ASSERT_TRUE(db.Begin().ok());
  Oid p = NewPerson("temp");
  ASSERT_TRUE(db.SetAttribute(p, "age", Value::Int(50)).ok());
  ASSERT_TRUE(db.Abort().ok());
  // Forward events were not compensating; rollback events were.
  bool saw_forward_create = false;
  bool saw_compensating_delete = false;
  bool saw_compensating_set = false;
  for (auto [kind, compensating] : seen) {
    if (kind == EventKind::kAfterCreateObject && !compensating) {
      saw_forward_create = true;
    }
    if (kind == EventKind::kAfterDeleteObject && compensating) {
      saw_compensating_delete = true;
    }
    if (kind == EventKind::kAfterSetAttribute && compensating) {
      saw_compensating_set = true;
    }
  }
  EXPECT_TRUE(saw_forward_create);
  EXPECT_TRUE(saw_compensating_delete);
  EXPECT_TRUE(saw_compensating_set);
}

TEST_F(CoreFixture, MinCardinalityRevalidatesAfterDeletion) {
  RelationshipSemantics sem;
  sem.min_out = 1;
  ASSERT_TRUE(
      db.DefineRelationship("employs_someone", "Company", "Person", sem)
          .ok());
  Oid c = NewCompany("Napier");
  Oid p = NewPerson("Ada");
  Oid l = db.CreateLink("employs_someone", c, p).value();
  EXPECT_TRUE(db.ValidateCardinality().ok());
  ASSERT_TRUE(db.DeleteLink(l).ok());
  EXPECT_EQ(db.ValidateCardinality().code(),
            Status::Code::kConstraintViolation);
}

// ------------------------------------------------------------ transactions

TEST_F(CoreFixture, AbortRollsBackEverything) {
  Oid before = NewPerson("permanent");
  ASSERT_TRUE(db.Begin().ok());
  Oid p = NewPerson("temp");
  Oid c = NewCompany("temp co");
  Oid l = db.CreateLink("works_for", p, c).value();
  ASSERT_TRUE(db.SetAttribute(before, "age", Value::Int(99)).ok());
  ASSERT_TRUE(db.Abort().ok());
  EXPECT_EQ(db.GetObject(p), nullptr);
  EXPECT_EQ(db.GetObject(c), nullptr);
  EXPECT_EQ(db.GetLink(l), nullptr);
  EXPECT_TRUE(
      db.GetAttribute(before, "age").value().Equals(Value::Int(30)));
  EXPECT_EQ(db.Extent("Person").size(), 1u);
  EXPECT_EQ(db.object_count(), 1u);
  EXPECT_EQ(db.link_count(), 0u);
}

TEST_F(CoreFixture, AbortRestoresDeletedObjectsAndLinks) {
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  Oid l = db.CreateLink("works_for", p, c).value();
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.DeleteObject(p).ok());
  EXPECT_EQ(db.GetObject(p), nullptr);
  ASSERT_TRUE(db.Abort().ok());
  ASSERT_NE(db.GetObject(p), nullptr);
  ASSERT_NE(db.GetLink(l), nullptr);
  EXPECT_TRUE(
      db.GetAttribute(p, "name").value().Equals(Value::String("Ada")));
  EXPECT_EQ(db.Neighbors(p, "works_for"), std::vector<Oid>{c});
  EXPECT_EQ(db.Extent("Person").size(), 1u);
}

TEST_F(CoreFixture, CommitMakesChangesPermanent) {
  ASSERT_TRUE(db.Begin().ok());
  Oid p = NewPerson("Ada");
  ASSERT_TRUE(db.Commit().ok());
  EXPECT_NE(db.GetObject(p), nullptr);
  // Further aborts are rejected: no transaction in progress.
  EXPECT_EQ(db.Abort().code(), Status::Code::kFailedPrecondition);
}

TEST_F(CoreFixture, NestedBeginRejected) {
  ASSERT_TRUE(db.Begin().ok());
  EXPECT_EQ(db.Begin().code(), Status::Code::kFailedPrecondition);
  ASSERT_TRUE(db.Commit().ok());
}

TEST_F(CoreFixture, AbortRestoresSynonyms) {
  Oid a = NewPerson("a");
  Oid b = NewPerson("b");
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.DeclareSynonym(a, b).ok());
  EXPECT_TRUE(db.AreSynonyms(a, b));
  ASSERT_TRUE(db.Abort().ok());
  EXPECT_FALSE(db.AreSynonyms(a, b));
}

TEST_F(CoreFixture, BeforeEventVetoBlocksMutation) {
  db.bus().Subscribe([](const Event& e) {
    if (e.kind == EventKind::kBeforeCreateObject && e.type_name == "Company") {
      return Status::ConstraintViolation("companies forbidden");
    }
    return Status::Ok();
  });
  EXPECT_EQ(db.CreateObject("Company").status().code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(db.CreateObject("Person").ok());
  EXPECT_EQ(db.Extent("Company").size(), 0u);
}

TEST_F(CoreFixture, AfterEventViolationUndoesAutoCommittedOp) {
  // An invariant-style listener: vetoing an after event outside a
  // transaction undoes the operation (implicit micro-transaction).
  db.bus().Subscribe([](const Event& e) {
    if (e.kind == EventKind::kAfterSetAttribute && e.attribute == "age" &&
        e.new_value.type() == ValueType::kInt && e.new_value.AsInt() < 0) {
      return Status::ConstraintViolation("age must be non-negative");
    }
    return Status::Ok();
  });
  Oid p = NewPerson("Ada");
  EXPECT_EQ(db.SetAttribute(p, "age", Value::Int(-1)).code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(db.GetAttribute(p, "age").value().Equals(Value::Int(30)));
}

TEST_F(CoreFixture, EventsCanBeDisabled) {
  int count = 0;
  db.bus().Subscribe([&](const Event&) {
    ++count;
    return Status::Ok();
  });
  db.set_events_enabled(false);
  NewPerson("quiet");
  EXPECT_EQ(count, 0);
  db.set_events_enabled(true);
  NewPerson("loud");
  EXPECT_GT(count, 0);
}

TEST_F(CoreFixture, SemanticsCanBeDisabled) {
  db.set_semantics_enabled(false);
  Oid p = NewPerson("Ada");
  Oid c = NewCompany("Napier");
  // Type checking of link endpoints is skipped.
  EXPECT_TRUE(db.CreateLink("works_for", c, p).ok());
}

}  // namespace
}  // namespace prometheus
