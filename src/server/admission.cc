#include "server/admission.h"

namespace prometheus::server {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options), ewma_micros_(options.initial_estimate_micros) {}

AdmissionController::Decision AdmissionController::Admit(
    std::size_t queue_depth, std::size_t capacity, int threads,
    Priority priority, DeadlineClock::time_point deadline,
    DeadlineClock::time_point now) const {
  const double fill =
      capacity == 0 ? 1.0
                    : static_cast<double>(queue_depth) /
                          static_cast<double>(capacity);
  // Staggered watermarks: shed the lowest class first. kHigh is never
  // watermark-shed — a full queue refuses it at the executor instead.
  if (priority == Priority::kLow && fill > options_.shed_low_above) {
    return Decision::kShedOverload;
  }
  if (priority == Priority::kNormal && fill > options_.shed_normal_above) {
    return Decision::kShedOverload;
  }
  if (options_.predict_queue_wait && deadline != kNoDeadline) {
    const double wait = EstimatedQueueWaitMicros(queue_depth, threads);
    if (wait > 0) {
      const double budget =
          std::chrono::duration<double, std::micro>(deadline - now).count();
      if (budget < wait) return Decision::kWouldExpire;
    }
  }
  return Decision::kAdmit;
}

void AdmissionController::RecordJobMicros(double micros) {
  const double alpha = options_.ewma_alpha;
  double prev = ewma_micros_.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0 ? micros : prev + alpha * (micros - prev);
  } while (!ewma_micros_.compare_exchange_weak(prev, next,
                                               std::memory_order_relaxed));
}

double AdmissionController::EstimatedQueueWaitMicros(std::size_t queue_depth,
                                                     int threads) const {
  if (threads < 1) threads = 1;
  const double ewma = ewma_micros_.load(std::memory_order_relaxed);
  // `queue_depth` jobs drain ahead of a new arrival, `threads` at a time.
  return ewma * (static_cast<double>(queue_depth) /
                 static_cast<double>(threads));
}

}  // namespace prometheus::server
