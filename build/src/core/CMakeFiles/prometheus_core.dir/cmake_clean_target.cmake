file(REMOVE_RECURSE
  "libprometheus_core.a"
)
