# Empty dependencies file for prometheus_shell.
# This may be replaced when dependencies are built.
