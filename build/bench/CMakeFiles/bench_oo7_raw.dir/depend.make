# Empty dependencies file for bench_oo7_raw.
# This may be replaced when dependencies are built.
