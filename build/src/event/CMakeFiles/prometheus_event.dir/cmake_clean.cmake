file(REMOVE_RECURSE
  "CMakeFiles/prometheus_event.dir/event_bus.cc.o"
  "CMakeFiles/prometheus_event.dir/event_bus.cc.o.d"
  "libprometheus_event.a"
  "libprometheus_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
