#ifndef PROMETHEUS_SERVER_EXECUTOR_H_
#define PROMETHEUS_SERVER_EXECUTOR_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "server/admission.h"

namespace prometheus::server {

/// Fixed-size worker pool with a bounded, priority-tiered queue — the
/// admission half of the service layer. The properties the server builds
/// on:
///
///  1. **Backpressure, not buffering**: `Submit` never blocks and never
///     grows the queue past its capacity. Refusal is adaptive: the
///     `AdmissionController` sheds low-priority work before the queue is
///     full and refuses deadline-bearing work whose estimated queue wait
///     already exceeds its budget. A higher-priority submission hitting a
///     full queue evicts the newest lowest-priority entry instead of being
///     refused.
///  2. **Exactly-once completion**: every accepted job is invoked exactly
///     once, with a `Disposition` saying what happened — run by a worker,
///     shed expired at dequeue, evicted for priority, or discarded by a
///     non-draining shutdown. A job owns its completion signal (a promise)
///     and can therefore always resolve it.
///  3. **Deadline shedding**: a job whose deadline passed while queued is
///     not run; it completes with `Disposition::kExpired` (the server maps
///     that to `ResponseCode::kTimedOut`). Jobs without deadlines pay one
///     branch, never a clock read.
///  4. **Graceful drain**: `Shutdown(drain=true)` stops admission, runs the
///     queue dry (still shedding expired jobs) and joins the workers.
class ThreadPoolExecutor {
 public:
  /// Why a job is being completed.
  enum class Disposition : std::uint8_t {
    kRun,       ///< executing on a worker now
    kShutdown,  ///< discarded by a non-draining shutdown; never ran
    kExpired,   ///< deadline passed while queued; never ran
    kShed,      ///< evicted by a higher-priority submission; never ran
  };

  /// A unit of work. Invoked exactly once; only `kRun` means "execute".
  using Job = std::function<void(Disposition)>;

  /// Outcome of a `Submit` call.
  enum class Admission : std::uint8_t {
    kAccepted,     ///< queued; the job will complete exactly once
    kQueueFull,    ///< refused: queue at capacity / over this priority's
                   ///< shed watermark. The job was NOT invoked.
    kWouldExpire,  ///< refused: estimated queue wait exceeds the deadline
    kShutdown,     ///< refused: the executor is shutting down
  };

  /// Scheduling attributes of a submission.
  struct JobInfo {
    Priority priority = Priority::kNormal;
    DeadlineClock::time_point deadline = kNoDeadline;
  };

  struct Options {
    int threads = 4;
    std::size_t queue_capacity = 256;
    AdmissionOptions admission;
  };

  explicit ThreadPoolExecutor(const Options& options);

  /// Drains and joins (Shutdown(true)) if not already shut down.
  ~ThreadPoolExecutor();

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  /// Enqueues a job. On any non-kAccepted outcome the job has NOT been
  /// invoked and never will be — the caller resolves its completion.
  Admission Submit(Job job, JobInfo info);
  Admission Submit(Job job) { return Submit(std::move(job), JobInfo{}); }

  /// Stops accepting work, disposes of the queue (running it with `drain`,
  /// discarding it otherwise) and joins the workers. Idempotent.
  void Shutdown(bool drain = true);

  int threads() const { return threads_; }
  std::size_t queue_capacity() const { return capacity_; }

  /// Instantaneous queue depth (racy by nature; for stats only).
  std::size_t queue_depth() const;

  /// Jobs run to completion (Disposition::kRun invocations).
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Submissions refused (kQueueFull, kWouldExpire or kShutdown).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Jobs shed expired at dequeue.
  std::uint64_t expired() const {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Jobs evicted from the queue by higher-priority submissions.
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  /// The adaptive policy (latency EWMA, wait estimate) — read-only access
  /// for health reporting and tests.
  const AdmissionController& admission() const { return admission_; }

 private:
  struct QueuedJob {
    Job job;
    DeadlineClock::time_point deadline;
  };

  void WorkerLoop(int worker_index);

  const std::size_t capacity_;
  const int threads_;
  AdmissionController admission_;
  std::mutex shutdown_mu_;  ///< serialises Shutdown callers (worker joins)
  mutable std::mutex mu_;
  std::condition_variable not_empty_;  ///< signalled on enqueue and shutdown
  /// One FIFO per priority; workers drain the highest non-empty tier first.
  /// Strict: sustained high-priority load starves lower tiers by design —
  /// overload protection prefers finishing important work to fairness.
  std::array<std::deque<QueuedJob>, kPriorityLevels> queues_;
  std::size_t depth_ = 0;  ///< total queued jobs, all tiers
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_EXECUTOR_H_
