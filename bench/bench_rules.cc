// E10 — rule overhead (thesis 7.1.3.2 constraints + 5.2 scheduling): cost
// of attribute updates under growing rule sets, immediate vs deferred
// scheduling, and the PCL compilation path. Expected shape: cost grows
// linearly with the number of *matching* rules; deferred rules move the
// cost to commit; non-matching rules are cheap to skip.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "core/database.h"
#include "rules/pcl.h"
#include "rules/rule_engine.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::RuleEngine;
using prometheus::RuleSpec;
using prometheus::RuleTiming;
using prometheus::Value;
using prometheus::ValueType;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

struct Fixture {
  Fixture() {
    (void)db.DefineClass("Taxon", {},
                         {Attr("year", ValueType::kInt),
                          Attr("rank", ValueType::kString)});
    (void)db.DefineClass("Other", {}, {Attr("year", ValueType::kInt)});
    for (int i = 0; i < 500; ++i) {
      taxa.push_back(db.CreateObject("Taxon", {{"year", Value::Int(1753)}})
                         .value());
    }
    rules = std::make_unique<RuleEngine>(&db);
  }

  void AddInvariants(int n, const char* target) {
    for (int i = 0; i < n; ++i) {
      (void)rules->AddInvariant("inv_" + std::string(target) +
                                    std::to_string(i),
                                target, "self.year > 0", "positive year");
    }
  }

  Database db;
  std::vector<Oid> taxa;
  std::unique_ptr<RuleEngine> rules;
};

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "E10: rule-checking overhead (2000 attribute updates on 500 taxa)",
      "  configuration              ms       vs_no_rules");
  double baseline_ms = 0;
  auto run = [&](const char* label, int matching, int foreign,
                 bool deferred_txn) {
    double ms = prometheus::bench::MedianMillis(
        [&] {
          Fixture fx;
          fx.AddInvariants(matching, "Taxon");
          fx.AddInvariants(foreign, "Other");
          if (deferred_txn) {
            // Replace the immediate rules with deferred ones.
            Fixture* f = &fx;
            (void)f;
          }
          if (deferred_txn) (void)fx.db.Begin();
          for (int i = 0; i < 2000; ++i) {
            (void)fx.db.SetAttribute(fx.taxa[i % fx.taxa.size()], "year",
                                     Value::Int(1753 + i));
          }
          if (deferred_txn) (void)fx.db.Commit();
        },
        3);
    if (baseline_ms == 0) baseline_ms = ms;
    std::printf("  %-26s %8.3f   %5.2fx\n", label, ms, ms / baseline_ms);
  };
  run("no rules", 0, 0, false);
  run("1 matching invariant", 1, 0, false);
  run("5 matching invariants", 5, 0, false);
  run("10 matching invariants", 10, 0, false);
  run("10 non-matching rules", 0, 10, false);
  run("5 invariants, in txn", 5, 0, true);
}

void BM_UpdateWithRules(benchmark::State& state) {
  Fixture fx;
  fx.AddInvariants(static_cast<int>(state.range(0)), "Taxon");
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.db.SetAttribute(fx.taxa[static_cast<std::size_t>(i) %
                                   fx.taxa.size()],
                           "year", Value::Int(1753 + i))
            .ok());
    ++i;
  }
  state.counters["evaluations"] =
      static_cast<double>(fx.rules->evaluations());
}
BENCHMARK(BM_UpdateWithRules)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);

void BM_DeferredCommit(benchmark::State& state) {
  // Cost of committing a transaction with N queued deferred checks.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Fixture fx;
    RuleSpec spec;
    spec.name = "deferred_pos";
    spec.events = {{prometheus::EventKind::kAfterSetAttribute, "Taxon"}};
    spec.condition = "self.year > 0";
    spec.timing = RuleTiming::kDeferred;
    spec.message = "positive";
    (void)fx.rules->AddRule(spec);
    (void)fx.db.Begin();
    for (int i = 0; i < n; ++i) {
      (void)fx.db.SetAttribute(fx.taxa[static_cast<std::size_t>(i) %
                                       fx.taxa.size()],
                               "year", Value::Int(1 + i));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(fx.db.Commit().ok());
  }
}
BENCHMARK(BM_DeferredCommit)
    ->Arg(100)
    ->Arg(1000)
    ->Iterations(20)
    ->Unit(benchmark::kMicrosecond);

void BM_PclCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prometheus::CompilePcl(
            "context Taxon inv cap: if self.rank = 'Genus' then "
            "substr(self.rank, 0, 1) != lower(substr(self.rank, 0, 1))")
            .ok());
  }
}
BENCHMARK(BM_PclCompile)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
