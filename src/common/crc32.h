#ifndef PROMETHEUS_COMMON_CRC32_H_
#define PROMETHEUS_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace prometheus {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// continuing from `seed` (pass the previous result to checksum a stream
/// in pieces). Used by the storage layer to frame journal records so that
/// torn and bit-flipped tails are detected on replay.
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace prometheus

#endif  // PROMETHEUS_COMMON_CRC32_H_
