# Empty compiler generated dependencies file for prometheus_index.
# This may be replaced when dependencies are built.
