#ifndef PROMETHEUS_OBS_METRICS_H_
#define PROMETHEUS_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace prometheus::obs {

// ------------------------------------------------------------- kill switch
//
// Every mutation of a metric first checks the global enabled flag — that
// one relaxed load + branch is the entire cost of a disabled hook, cheap
// enough to leave instrumentation in hot paths permanently. Defining
// PROMETHEUS_OBS_DISABLED at compile time removes even that branch (the
// flag folds to a constant false and the hooks become empty inline calls).

#ifdef PROMETHEUS_OBS_DISABLED
inline constexpr bool MetricsEnabled() { return false; }
inline void SetMetricsEnabled(bool) {}
#else
namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True while metric mutations are recorded (the default).
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Runtime kill switch: with metrics disabled, every hook costs exactly
/// one predicted branch and records nothing.
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

// ----------------------------------------------------------------- metrics

/// Monotonically increasing event count. Lock-free; safe to mutate from
/// any number of threads while another thread snapshots.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, open sessions). Lock-free.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(std::int64_t n = 1) { Add(-n); }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: cumulative-style buckets over caller-supplied
/// upper bounds (an implicit +Inf bucket catches the overflow). Observing
/// is a binary search over a small immutable bound array plus two relaxed
/// atomic adds — cheap enough for per-request latency tracking on the
/// serving hot path. All reads and writes are lock-free, so a snapshot
/// taken mid-mutation sees a consistent-enough view (each bucket value is
/// individually atomic; cross-bucket skew is bounded by in-flight
/// observations).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; each value lands in the first
  /// bucket whose bound is >= the value, or the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  /// Log-spaced bounds: `per_decade` buckets per factor of 10, spanning
  /// [lo, hi] inclusive (both endpoints are bounds). Auto-ranged: the
  /// caller names the range, the geometric spacing follows, and every
  /// adjacent bound pair has the same ratio 10^(1/per_decade) — so the
  /// worst-case relative error of linear percentile interpolation is the
  /// same in every bucket (bounded by ratio - 1).
  static std::vector<double> LogSpacedBounds(double lo, double hi,
                                             int per_decade);

  /// Default latency bucket bounds in microseconds: log-spaced, 5 buckets
  /// per decade over 1µs .. 10s (adjacent-bound ratio ~1.58, so percentile
  /// interpolation error stays under ~60% of a bucket's width anywhere in
  /// the range — tighter than the old 1-2-5 progression's worst-case 2.5×
  /// steps).
  static const std::vector<double>& DefaultLatencyBoundsMicros();

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;        ///< bucket upper bounds
    std::vector<std::uint64_t> counts; ///< per-bucket (bounds.size()+1)
    std::uint64_t count = 0;
    double sum = 0;

    /// Estimated percentile (0..100) by linear interpolation inside the
    /// containing bucket. The overflow bucket reports its lower bound.
    double Percentile(double p) const;
    double mean() const { return count == 0 ? 0 : sum / count; }
  };
  Snapshot snapshot() const;

  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  /// Sum of observed values, accumulated with a CAS loop (atomic<double>
  /// fetch_add is not universally lock-free; the loop is).
  std::atomic<double> sum_{0.0};
};

/// Measures wall time from construction to destruction into a histogram.
/// With metrics disabled the constructor's single branch is the whole cost
/// (no clock call is made).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(MetricsEnabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------- registry

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
    std::string help;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value;
    std::string help;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot hist;
    std::string help;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// The value of a counter by exact name, or 0 when absent.
  std::uint64_t CounterOr0(const std::string& name) const;
};

/// Named metric registry. Registration (GetCounter & co.) takes a mutex
/// and is expected at setup time — callers cache the returned pointer,
/// which stays valid for the registry's lifetime, and mutate it lock-free
/// afterwards. Names follow Prometheus conventions
/// (`subsystem_quantity_unit_total`); a `{label="value"}` suffix is part
/// of the name and flows verbatim into the text exposition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every engine layer registers into.
  static MetricsRegistry& Default();

  /// Get-or-create by name. The same name always yields the same object;
  /// `help` is recorded on first registration.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// Empty `bounds` selects `Histogram::DefaultLatencyBoundsMicros()`.
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Point-in-time JSON rendering of the registry (counters, gauges,
  /// histogram digests with p50/p95/p99).
  std::string RenderJson() const;

  /// Prometheus text exposition format (# HELP / # TYPE lines, cumulative
  /// `_bucket{le="..."}` series, `_sum` and `_count`).
  std::string RenderPrometheusText() const;

  /// Zeroes every registered metric (registrations stay). Tests only.
  void ResetForTest();

  std::size_t metric_count() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  ///< ordered => stable rendering
};

/// Shorthand for `MetricsRegistry::Default()`.
inline MetricsRegistry& Registry() { return MetricsRegistry::Default(); }

// Free-standing renderers so an already-taken snapshot can be serialized
// without holding the registry. `extra_members` are emitted as the leading
// members of the top-level object (e.g. a server epoch), keeping callers
// out of the string-splicing business.
std::string RenderJson(
    const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra_members =
        {});
std::string RenderPrometheusText(const MetricsSnapshot& snap);

/// Escapes a label *value* for the Prometheus text exposition format:
/// backslash, double quote and newline become \\, \" and \n. Use when
/// composing a `name{label="<runtime value>"}` metric name from data that
/// is not a compile-time literal.
std::string EscapeLabelValue(const std::string& value);

// --------------------------------------------------------- process metrics

/// Registers the process-level gauges a scraper needs to detect restarts
/// and correlate runs against `Default()`:
///   - `prometheus_build_info{version="...",compiler="..."}` = 1
///   - `process_start_time_seconds` — unix time of process start
///   - `process_uptime_seconds` — refreshed by `UpdateProcessUptime()`
/// Idempotent; the first call pins the start time.
void RegisterProcessMetrics();

/// Refreshes `process_uptime_seconds` from the monotonic clock. Exposition
/// endpoints call this right before snapshotting so every scrape carries a
/// current value.
void UpdateProcessUptime();

/// The version string baked into `prometheus_build_info`.
const char* BuildVersion();

}  // namespace prometheus::obs

#endif  // PROMETHEUS_OBS_METRICS_H_
