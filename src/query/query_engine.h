#ifndef PROMETHEUS_QUERY_QUERY_ENGINE_H_
#define PROMETHEUS_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/plan_cache.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "core/database.h"
#include "core/read_view.h"
#include "index/index_manager.h"
#include "obs/trace.h"
#include "query/ast.h"
#include "query/system_catalog.h"

namespace prometheus::pool {

/// Variable bindings visible to an expression: range variables during query
/// evaluation, `$self` / `$link` / `$old` / `$new` in rule conditions.
using Environment = std::unordered_map<std::string, Value>;

/// A query result: named columns over rows of Values. Object-valued results
/// are references to the stored objects (POOL's object conservation,
/// 5.1.2.2) — the engine never copies database objects.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Convenience: the single column of a one-column result as a flat list.
  std::vector<Value> Column(std::size_t i = 0) const;
};

/// A query result plus its execution trace — what `PROFILE <select>` and
/// `ExecuteProfiled` return. The trace is a per-stage timing/cardinality
/// tree: parse, plan (one child per range with the chosen strategy),
/// execute (bindings scanned), sort, project.
struct QueryProfile {
  ResultSet rows;
  obs::TraceNode trace;
};

/// The POOL query processor (thesis ch. 5.1; architecture 6.1.5).
///
/// Evaluates `select` queries and standalone expressions against a
/// `Database`. Ranges iterate class extents *and* relationship extents
/// uniformly; expressions provide path navigation, selective downcast,
/// graph traversal (`traverse`, `children`, `parents`, `leaves`), context
/// restriction and subqueries. When an `IndexManager` is supplied, equality
/// conjuncts over indexed attributes replace extent scans (6.1.5.2/3).
///
/// Const discipline / concurrency: the const execution paths (`Execute`,
/// `Eval`, `Explain`) perform **no** `Database` mutation — results copy
/// attribute values and hold object references as bare Oids, never aliasing
/// engine-internal state. All reads route through the thread's active
/// `ReadView` (see `CurrentReadView()`): when the caller installs a pinned
/// `DbSnapshot` — directly via the `ReadView` overloads below or with a
/// `ScopedReadView` — execution is wait-free against writers and the
/// engine never touches the live database. With no view installed, reads
/// fall back to the live database, where the legacy contract applies: the
/// caller must hold a `Database::ReadGuard`, enforced in debug builds by
/// the epoch-stability assert at the end of every execution.
class QueryEngine {
 public:
  /// `db` (and `indexes`, when given) must outlive the engine.
  explicit QueryEngine(Database* db, IndexManager* indexes = nullptr)
      : db_(db), indexes_(indexes) {}

  /// Attaches a plan cache (nullable; must outlive the engine). With one
  /// attached, `Execute(text)` / `ExecuteProfiled` consult it before
  /// parsing: a hit skips parse and the access-path analysis entirely,
  /// executing the cached immutable AST. The cache is internally
  /// synchronized, so concurrent const executions may share it. Index
  /// existence is deliberately NOT baked into cached plans — see
  /// cache::PlanEntry — so index DDL needs no invalidation.
  void set_plan_cache(cache::PlanCache* plan_cache) {
    plan_cache_ = plan_cache;
  }

  /// Attaches the virtual system catalog (nullable; must outlive the
  /// engine). With one attached, a range over a registered `sys.*` class
  /// materializes a point-in-time row set of `Value` structs instead of
  /// resolving a stored extent. Materialization happens at most once per
  /// top-level execution: joins and subqueries touching the same catalog
  /// class within one query observe the same rows.
  void set_system_catalog(const SystemCatalog* catalog) {
    catalog_ = catalog;
  }
  const SystemCatalog* system_catalog() const { return catalog_; }

  /// Parses and runs a query. `ctx` (nullable) is a cooperative deadline /
  /// cancellation token: the join loops call `ctx->Check()` once per
  /// enumerated binding and unwind with `kDeadlineExceeded` / `kAborted`,
  /// so a long scan aborts mid-execution instead of running to completion
  /// after its caller has given up. Without a context the loops pay one
  /// branch per binding.
  Result<ResultSet> Execute(const std::string& query,
                            const ExecutionContext* ctx = nullptr) const;

  /// Parses and runs a query against an explicit read view (typically a
  /// pinned `DbSnapshot`): installs it as the thread's view for the
  /// duration, so every read — including index-fallback extent scans and
  /// subqueries — observes exactly that snapshot.
  Result<ResultSet> Execute(const std::string& query, const ReadView& view,
                            const ExecutionContext* ctx = nullptr) const {
    ScopedReadView scope(&view);
    return Execute(query, ctx);
  }

  /// Runs a parsed query; `outer` provides correlated bindings.
  Result<ResultSet> Execute(const SelectQuery& query, const Environment& outer,
                            const ExecutionContext* ctx = nullptr) const;

  /// Parses and runs a query with span tracing: returns the rows plus the
  /// per-stage timing/cardinality tree. Accepts the query with or without
  /// a leading `profile` keyword. Tracing costs two clock reads per stage;
  /// the unprofiled `Execute` path pays none of it.
  Result<QueryProfile> ExecuteProfiled(
      const std::string& query, const ExecutionContext* ctx = nullptr) const;

  /// Profiled execution against an explicit read view; see the `Execute`
  /// overload above.
  Result<QueryProfile> ExecuteProfiled(
      const std::string& query, const ReadView& view,
      const ExecutionContext* ctx = nullptr) const {
    ScopedReadView scope(&view);
    return ExecuteProfiled(query, ctx);
  }

  /// Parses and evaluates a standalone expression under `env`.
  Result<Value> Eval(const std::string& expr, const Environment& env) const;

  /// Describes the execution strategy chosen for `query`, one line per
  /// range: extent scan, index lookup (with the attribute), or dependent
  /// expression — the observable face of the optimiser (6.1.5.3).
  Result<std::string> Explain(const std::string& query) const;

  /// Evaluates a parsed expression under `env`.
  Result<Value> Eval(const Expr& expr, const Environment& env) const;

  const Database* db() const { return db_; }

 private:
  struct RangeBinding;

  /// The view reads route through: the thread's installed view when one is
  /// active, otherwise the live database.
  const ReadView& view() const {
    const ReadView* v = CurrentReadView();
    return v != nullptr ? *v : static_cast<const ReadView&>(*db_);
  }

  Result<Value> EvalPath(const Expr& expr, const Environment& env) const;
  Result<Value> EvalBinary(const Expr& expr, const Environment& env) const;
  Result<Value> EvalCall(const Expr& expr, const Environment& env) const;
  Result<Value> MemberOf(Oid oid, const std::string& member) const;

  /// Applies an already-evaluated binary operator (no short-circuiting).
  static Result<Value> ApplyBinaryOp(BinaryOp op, const Value& lhs,
                                     const Value& rhs);

  /// Evaluates an expression over a *group* of bindings: `count`, `sum`,
  /// `min`, `max` and `avg` calls aggregate their argument across the
  /// group; all other subexpressions evaluate under the group's first
  /// binding (they must be group-constant for meaningful results).
  Result<Value> EvalGrouped(const Expr& expr,
                            const std::vector<Environment>& group) const;

  /// Runs a parsed query; `trace` (nullable) receives plan/execute/sort/
  /// project child spans when profiling; `ctx` (nullable) is checked once
  /// per enumerated binding; `plan` (nullable) supplies the cached
  /// access-path analysis so the where-clause need not be re-walked.
  Result<ResultSet> ExecuteInternal(const SelectQuery& query,
                                    const Environment& outer,
                                    obs::TraceNode* trace,
                                    const ExecutionContext* ctx,
                                    const cache::PlanEntry* plan = nullptr)
      const;

  /// Candidate oids for an extent range, narrowed through an index when the
  /// where-clause pins `var.attr` to a constant. `strategy` (nullable)
  /// receives the human-readable access path chosen; `plan` (nullable)
  /// short-circuits the conjunct walk with the cached candidates.
  Result<std::vector<Value>> RangeCandidates(const SelectQuery& query,
                                             const FromRange& range,
                                             const Environment& env,
                                             std::string* strategy,
                                             const cache::PlanEntry* plan)
      const;

  /// Wraps a freshly parsed AST plus its structural access-path analysis
  /// into a cacheable plan entry.
  std::shared_ptr<const cache::PlanEntry> BuildPlanEntry(
      std::shared_ptr<const SelectQuery> ast) const;

  /// The where-clause conjunct `range.var.attr = literal` usable through
  /// an existing index, or nullptr. `*attr` receives the attribute name.
  const Expr* FindIndexableConjunct(const SelectQuery& query,
                                    const FromRange& range,
                                    std::string* attr) const;

  Database* db_;
  IndexManager* indexes_;
  cache::PlanCache* plan_cache_ = nullptr;
  const SystemCatalog* catalog_ = nullptr;
};

/// True when `text` matches the SQL-style `like` pattern (`%` = any run,
/// `_` = any single character). Exposed for tests.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// True when `text` starts with the `profile` keyword (case-insensitive) —
/// the POOL wrapper the server and shell route to `ExecuteProfiled`.
bool IsProfileQuery(const std::string& text);

/// `text` without its leading `profile` keyword (unchanged when absent).
std::string StripProfileKeyword(const std::string& text);

}  // namespace prometheus::pool

#endif  // PROMETHEUS_QUERY_QUERY_ENGINE_H_
