#ifndef PROMETHEUS_NET_HTTP_SERVER_H_
#define PROMETHEUS_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/http.h"
#include "server/server.h"

namespace prometheus::net {

/// The remote telemetry plane: a dependency-free HTTP/1.1 front-end over
/// POSIX sockets that mounts a `server::Server` as routes — the service
/// layer the thesis describes but never shipped (§6.1.7), reduced to the
/// part an outside observer needs.
///
/// Routes:
///   GET  /metrics         Prometheus text exposition. Served directly on
///                         the handler thread from the metrics registry —
///                         no work queue, no database lock — so a scrape
///                         completes even while a writer holds the
///                         exclusive guard or the queue is saturated.
///   GET  /stats           the same snapshot as JSON (kStats rendering).
///   GET  /health          overload/degradation summary; lock-free. 200
///                         when healthy, 503 while degraded (so probes can
///                         alert on the status code alone).
///   GET  /slowlog         slow-query log entries as JSON.
///   GET  /debug/requests  the flight recorder: last N completed request
///                         traces, oldest first.
///   POST /query           POOL text in the body; result set (and, for
///                         PROFILE queries, the rendered span tree) as
///                         JSON. Travels through the server's admission
///                         queue like any client request — `X-Deadline-
///                         Micros` (relative budget) and `X-Priority`
///                         (low|normal|high) headers apply, so remote
///                         callers are shed and deadline-checked exactly
///                         like in-process ones.
///   POST /profile         same, with profiling forced on.
///
/// Threading: one blocking accept loop plus a small handler pool. Accepted
/// connections wait in a bounded hand-off queue; when it is full the
/// connection is closed immediately (overload shedding at the door —
/// consistent with the executor's backpressure-not-buffering stance).
/// Keep-alive is honoured per HTTP semantics, bounded by an idle timeout.
class HttpFrontEnd {
 public:
  struct Options {
    /// Bind address. The default only answers local scrapers; widen
    /// deliberately.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see `port()`).
    int port = 0;
    /// Threads serving accepted connections.
    int handler_threads = 2;
    /// Accepted connections waiting for a handler; beyond this they are
    /// closed unserved.
    std::size_t pending_connections = 64;
    /// Keep-alive connections idle longer than this are closed.
    int idle_timeout_ms = 5000;
    /// Master switch for keep-alive (off forces Connection: close).
    bool keep_alive = true;
    /// Request size caps.
    HttpLimits limits;
    /// Auxiliary route hook, consulted before the built-in routes: return
    /// true with `*out` holding a fully serialized response to claim the
    /// request, false to fall through. Runs on a handler thread and must be
    /// thread-safe. The replication endpoint mounts `/repl/*` here.
    std::function<bool(const HttpRequest&, bool keep_alive, std::string* out)>
        aux_handler;
  };

  /// `server` must outlive the front-end. Does not listen yet.
  HttpFrontEnd(server::Server* server, Options options);
  explicit HttpFrontEnd(server::Server* server)
      : HttpFrontEnd(server, Options{}) {}

  /// Stops (if running).
  ~HttpFrontEnd();

  HttpFrontEnd(const HttpFrontEnd&) = delete;
  HttpFrontEnd& operator=(const HttpFrontEnd&) = delete;

  /// Binds, listens and starts the accept + handler threads.
  Status Start();

  /// Closes the listener, drains the handlers and joins. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (resolved after Start() when Options::port == 0).
  int port() const { return port_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_dropped = 0;  ///< hand-off queue full
    std::uint64_t requests_served = 0;
    std::uint64_t bad_requests = 0;
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  /// Routes one parsed request; returns the serialized response.
  std::string Handle(const HttpRequest& req, server::Session& session,
                     bool keep_alive);

  server::Server* server_;
  const Options options_;
  /// Atomic: Stop() closes and clears it while the accept loop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<int> pending_;  ///< accepted fds awaiting a handler

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> bad_{0};
};

}  // namespace prometheus::net

#endif  // PROMETHEUS_NET_HTTP_SERVER_H_
