#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/wait_profiler.h"
#include "query/query_engine.h"

namespace prometheus::net {

namespace {

constexpr const char* kJsonType = "application/json";
constexpr const char* kTextType = "text/plain; charset=utf-8";
/// The content type Prometheus scrapers expect for the text format.
constexpr const char* kPromType = "text/plain; version=0.0.4; charset=utf-8";

/// Receive timeout per recv() call — short so handler threads notice the
/// stop flag promptly without busy-waiting.
constexpr int kRecvPollMs = 250;

void SetRecvTimeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer; false on peer reset. MSG_NOSIGNAL keeps a
/// disconnected peer from raising SIGPIPE at the process.
bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Maps a request's transport disposition + database status to HTTP.
int HttpStatusFor(const server::Response& resp) {
  switch (resp.code) {
    case server::ResponseCode::kOk:
      return resp.status.ok() ? 200 : 400;
    case server::ResponseCode::kRejected:
      return 429;  // backpressure: retry with less load
    case server::ResponseCode::kTimedOut:
      return 504;  // deadline expired before/inside execution
    case server::ResponseCode::kUnavailable:
      return 503;  // degraded read-only mode
    case server::ResponseCode::kShutdown:
      return 503;
  }
  return 500;
}

const char* CodeLabel(server::ResponseCode code) {
  switch (code) {
    case server::ResponseCode::kOk: return "ok";
    case server::ResponseCode::kRejected: return "rejected";
    case server::ResponseCode::kShutdown: return "shutdown";
    case server::ResponseCode::kTimedOut: return "timed_out";
    case server::ResponseCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// Renders a query response the way the shell prints it, as JSON: the
/// envelope (id, code, status, epoch), the result set, and the profile
/// text when present.
std::string RenderQueryJson(const server::Response& resp) {
  stats::JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.Uint(resp.id);
  w.Key("code");
  w.String(CodeLabel(resp.code));
  w.Key("ok");
  w.Bool(resp.ok());
  w.Key("status");
  w.String(resp.status.ToString());
  w.Key("epoch");
  w.Uint(resp.epoch);
  if (resp.cache_checked) {
    w.Key("cache");
    w.String(resp.cache_hit ? "hit" : "miss");
  }
  w.Key("columns");
  w.BeginArray();
  for (const auto& c : resp.result.columns) w.String(c);
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  for (const auto& row : resp.result.rows) {
    w.BeginArray();
    for (const auto& cell : row) w.String(cell.ToString());
    w.EndArray();
  }
  w.EndArray();
  if (!resp.text.empty()) {
    w.Key("text");
    w.String(resp.text);
  }
  w.EndObject();
  return w.str();
}

std::string RenderSlowLogJson(
    const std::vector<obs::SlowQueryLog::Entry>& entries) {
  stats::JsonWriter w;
  w.BeginArray();
  for (const auto& e : entries) {
    w.BeginObject();
    w.Key("id");
    w.Uint(e.request_id);
    w.Key("trace_id");
    w.String(e.trace_id);
    w.Key("query");
    w.String(e.query);
    w.Key("micros");
    w.Number(e.micros);
    w.Key("queue_micros");
    w.Number(e.queue_micros);
    w.Key("guard_wait_micros");
    w.Number(e.guard_wait_micros);
    w.Key("execute_micros");
    w.Number(e.execute_micros);
    w.Key("profile");
    w.String(e.profile);
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

/// Trace ids travel in headers, URLs and log lines, so the accepted
/// alphabet is deliberately narrow: 1-128 chars of [A-Za-z0-9._:-].
bool ValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

/// Parses the X-Deadline-Micros / X-Priority request headers into the
/// envelope. Returns false (with *error set) on a malformed value — the
/// caller answers 400 rather than silently running without the caller's
/// intended budget.
bool ApplyRequestHeaders(const HttpRequest& http, server::Request* req,
                         std::string* error) {
  if (const std::string* v = http.Header("x-deadline-micros")) {
    if (v->empty() ||
        v->find_first_not_of("0123456789") != std::string::npos) {
      *error = "malformed X-Deadline-Micros (want a relative microsecond "
               "budget)";
      return false;
    }
    // strtoull + an explicit range check: std::stoll would throw
    // out_of_range on a 20-digit header, and an uncaught exception on the
    // handler thread takes the whole server down.
    errno = 0;
    char* end = nullptr;
    const unsigned long long micros = std::strtoull(v->c_str(), &end, 10);
    if (errno == ERANGE ||
        micros > static_cast<unsigned long long>(
                     std::numeric_limits<std::int64_t>::max())) {
      *error = "X-Deadline-Micros out of range";
      return false;
    }
    req->WithTimeout(
        std::chrono::microseconds(static_cast<std::int64_t>(micros)));
  }
  if (const std::string* v = http.Header("x-priority")) {
    if (*v == "low") {
      req->WithPriority(server::Priority::kLow);
    } else if (*v == "normal") {
      req->WithPriority(server::Priority::kNormal);
    } else if (*v == "high") {
      req->WithPriority(server::Priority::kHigh);
    } else {
      *error = "malformed X-Priority (want low|normal|high)";
      return false;
    }
  }
  if (const std::string* v = http.Header("x-trace-id")) {
    if (!ValidTraceId(*v)) {
      *error = "malformed X-Trace-Id (want 1-128 chars of [A-Za-z0-9._:-])";
      return false;
    }
    req->WithTraceId(*v);
  }
  return true;
}

std::string ErrorBody(const std::string& message) {
  stats::JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.String(message);
  w.EndObject();
  return w.str();
}

}  // namespace

HttpFrontEnd::HttpFrontEnd(server::Server* server, Options options)
    : server_(server), options_(std::move(options)) {}

HttpFrontEnd::~HttpFrontEnd() { Stop(); }

Status HttpFrontEnd::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("front-end already running");
  }
  stopping_.store(false, std::memory_order_release);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind(" + options_.bind_address + ":" +
                            std::to_string(options_.port) + "): " + err);
  }
  if (::listen(fd, static_cast<int>(options_.pending_connections)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen(): " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const int threads = options_.handler_threads < 1 ? 1
                                                   : options_.handler_threads;
  handlers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpFrontEnd::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Publish the stop flag under mu_: a handler that evaluated the wait
  // predicate just before the store would otherwise miss the notify and
  // block forever (lost wakeup), hanging the joins below.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  ready_.notify_all();
  // Closing the listener unblocks accept(); shutdown() first covers
  // platforms where close() alone does not wake a blocked accept.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  // Connections still waiting for a handler are closed unserved.
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

HttpFrontEnd::Stats HttpFrontEnd::stats() const {
  Stats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = dropped_.load(std::memory_order_relaxed);
  s.requests_served = served_.load(std::memory_order_relaxed);
  s.bad_requests = bad_.load(std::memory_order_relaxed);
  return s;
}

void HttpFrontEnd::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF / EINVAL after Stop() closed the listener — exit quietly.
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() < options_.pending_connections) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      ready_.notify_one();
    } else {
      // Hand-off queue full: shed at the door instead of buffering an
      // unbounded backlog of idle sockets.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
    }
  }
}

void HttpFrontEnd::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpFrontEnd::ServeConnection(int fd) {
  SetRecvTimeout(fd, kRecvPollMs);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  // One logical session per connection: remote requests flow through the
  // same admission control as in-process clients.
  std::shared_ptr<server::Session> session = server_->Connect();

  std::string buffer;
  char chunk[8192];
  auto last_activity = std::chrono::steady_clock::now();
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    // Drain every complete pipelined request already buffered.
    while (open) {
      HttpRequest req;
      std::size_t consumed = 0;
      std::string error;
      const ParseResult pr =
          ParseHttpRequest(buffer, &consumed, &req, &error, options_.limits);
      if (pr == ParseResult::kIncomplete) break;
      if (pr == ParseResult::kBad || pr == ParseResult::kTooLarge) {
        bad_.fetch_add(1, std::memory_order_relaxed);
        const int code = pr == ParseResult::kBad ? 400 : 413;
        SendAll(fd, SerializeHttpResponse(code, kJsonType, ErrorBody(error),
                                          /*keep_alive=*/false));
        open = false;
        break;
      }
      buffer.erase(0, consumed);
      const bool keep =
          options_.keep_alive && req.KeepAlive() &&
          !stopping_.load(std::memory_order_acquire);
      const std::string out = Handle(req, *session, keep);
      served_.fetch_add(1, std::memory_order_relaxed);
      if (!SendAll(fd, out) || !keep) {
        open = false;
        break;
      }
      last_activity = std::chrono::steady_clock::now();
    }
    if (!open) break;

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) break;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      const auto idle = std::chrono::steady_clock::now() - last_activity;
      if (idle >= std::chrono::milliseconds(options_.idle_timeout_ms)) {
        break;  // idle keep-alive connection: reclaim the handler
      }
      continue;
    }
    break;  // hard socket error
  }

  server_->sessions().Close(session->id());
  ::close(fd);
}

std::string HttpFrontEnd::Handle(const HttpRequest& req,
                                 server::Session& session, bool keep_alive) {
  // Trace context first: an id on *any* request — including the /repl/*
  // fetches the aux handler serves — lands in this server's flight
  // recorder, so one id stitches a request's path across the fleet
  // (follower fetch -> leader serve). Malformed ids are refused up front.
  const std::string* trace_hdr = req.Header("x-trace-id");
  if (trace_hdr != nullptr && !ValidTraceId(*trace_hdr)) {
    bad_.fetch_add(1, std::memory_order_relaxed);
    return SerializeHttpResponse(
        400, kJsonType,
        ErrorBody("malformed X-Trace-Id (want 1-128 chars of "
                  "[A-Za-z0-9._:-])"),
        keep_alive);
  }
  // Records a handler-thread-served (non-worker) request under its trace
  // id: /repl/* fetches and traced telemetry GETs never reach the server
  // core, so the transport writes the recorder entry itself.
  auto record_traced = [this, trace_hdr, &req](const char* type,
                                               double micros) {
    if (trace_hdr == nullptr || !server_->flight_recorder().enabled()) return;
    obs::FlightRecorder::Entry entry;
    entry.trace_id = *trace_hdr;
    entry.type = type;
    entry.code = "ok";
    entry.ok = true;
    entry.executed = true;
    entry.total_micros = micros;
    entry.detail = req.method + " " + req.target;
    server_->flight_recorder().Record(std::move(entry));
  };

  if (options_.aux_handler) {
    std::string out;
    const auto aux_start = std::chrono::steady_clock::now();
    if (options_.aux_handler(req, keep_alive, &out)) {
      record_traced("aux", std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - aux_start)
                               .count());
      return out;
    }
  }
  std::string_view path_view;
  std::string_view query_view;
  SplitTarget(req.target, &path_view, &query_view);
  const std::string path(path_view);

  // Telemetry routes are answered directly on the handler thread — they
  // read only the metrics registry, the health snapshot and the bounded
  // rings, never the database guard, so a scrape succeeds while a writer
  // holds the exclusive lock or the work queue is saturated.
  if (req.method == "GET" || req.method == "HEAD") {
    const auto get_start = std::chrono::steady_clock::now();
    std::string body;
    std::string content_type = kJsonType;
    int status = 200;
    if (path == "/metrics") {
      obs::UpdateProcessUptime();
      obs::MetricsSnapshot snap = obs::Registry().Snapshot();
      body = obs::RenderPrometheusText(snap) +
             "# HELP server_epoch Wall-clock microseconds at server "
             "construction; changes on restart\n"
             "# TYPE server_epoch gauge\n"
             "server_epoch " +
             std::to_string(server_->server_epoch()) + "\n";
      content_type = kPromType;
    } else if (path == "/stats") {
      obs::UpdateProcessUptime();
      body = obs::RenderJson(obs::Registry().Snapshot(),
                             {{"server_epoch", server_->server_epoch()}});
    } else if (path == "/health") {
      const server::Server::Health h = server_->health();
      body = h.ToJson();
      if (h.degraded) status = 503;  // probes alert on the code alone
    } else if (path == "/slowlog") {
      body = RenderSlowLogJson(server_->slow_query_log().entries());
    } else if (path == "/debug/requests") {
      std::vector<obs::FlightRecorder::Entry> entries =
          server_->flight_recorder().Snapshot();
      std::string want_id;
      if (QueryParam(query_view, "id", &want_id)) {
        // Exact-match trace filter: the lookup a distributed trace needs
        // ("show me what request t-123 did on this node").
        std::vector<obs::FlightRecorder::Entry> matched;
        for (auto& e : entries) {
          if (e.trace_id == want_id) matched.push_back(std::move(e));
        }
        entries = std::move(matched);
      }
      // ?limit=N keeps only the N most recent entries. Strictly validated:
      // a malformed or out-of-range value is a client error, not a silent
      // full dump.
      std::string limit_str;
      if (QueryParam(query_view, "limit", &limit_str)) {
        bool valid = !limit_str.empty() && limit_str.size() <= 7;
        if (valid) {
          for (char c : limit_str) {
            if (!std::isdigit(static_cast<unsigned char>(c))) {
              valid = false;
              break;
            }
          }
        }
        const std::uint64_t limit =
            valid ? std::strtoull(limit_str.c_str(), nullptr, 10) : 0;
        if (!valid || limit < 1 || limit > 1000000) {
          return SerializeHttpResponse(
              400, kJsonType,
              ErrorBody("limit must be an integer in [1, 1000000], got '" +
                        limit_str + "'"),
              keep_alive);
        }
        if (entries.size() > limit) {
          entries.erase(entries.begin(),
                        entries.end() - static_cast<std::ptrdiff_t>(limit));
        }
      }
      body = obs::RenderFlightRecorderJson(entries);
    } else if (path == "/debug/contention") {
      // ?window=1 returns only what accumulated since the previous
      // windowed call — the "what is blocking right now" view. The value
      // is validated: a typo'd ?window=yes must not silently fall back to
      // the cumulative view an operator wasn't asking for.
      std::string window;
      bool windowed = false;
      if (QueryParam(query_view, "window", &window)) {
        if (window.empty() || window == "1" || window == "true") {
          windowed = true;
        } else if (window == "0" || window == "false") {
          windowed = false;
        } else {
          return SerializeHttpResponse(
              400, kJsonType,
              ErrorBody("window must be one of 1/0/true/false, got '" +
                        window + "'"),
              keep_alive);
        }
      }
      body = obs::RenderContentionJson(windowed);
    } else if (path == "/query" || path == "/profile") {
      return SerializeHttpResponse(
          405, kJsonType, ErrorBody("use POST with a POOL query body"),
          keep_alive, {{"Allow", "POST"}});
    } else {
      return SerializeHttpResponse(404, kJsonType,
                                   ErrorBody("no route for " + path),
                                   keep_alive);
    }
    if (req.method == "HEAD") body.clear();
    record_traced("http_get", std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - get_start)
                                  .count());
    std::vector<std::pair<std::string, std::string>> extra;
    if (trace_hdr != nullptr) extra.emplace_back("X-Trace-Id", *trace_hdr);
    return SerializeHttpResponse(status, content_type, body, keep_alive,
                                 extra);
  }

  if (req.method == "POST" && (path == "/query" || path == "/profile")) {
    std::string text = req.body;
    if (text.empty()) {
      return SerializeHttpResponse(400, kJsonType,
                                   ErrorBody("empty query body"), keep_alive);
    }
    if (path == "/profile" && !pool::IsProfileQuery(text)) {
      text = "profile " + text;
    }
    server::Request query = server::Request::Query(std::move(text));
    std::string header_error;
    if (!ApplyRequestHeaders(req, &query, &header_error)) {
      return SerializeHttpResponse(400, kJsonType, ErrorBody(header_error),
                                   keep_alive);
    }
    const server::Response resp = session.Call(std::move(query));
    // X-Cache reports the result-cache disposition when the cache was
    // consulted; an uncached server (cache.enabled=false) omits it.
    std::vector<std::pair<std::string, std::string>> extra;
    if (resp.cache_checked) {
      extra.emplace_back("X-Cache", resp.cache_hit ? "hit" : "miss");
    }
    // Echo the trace id (caller-supplied or server-assigned) so a client
    // can follow up with /debug/requests?id=<it> on any node it touched.
    if (!resp.trace_id.empty()) {
      extra.emplace_back("X-Trace-Id", resp.trace_id);
    }
    // Serialization is the last wait state a request passes through; time
    // it like the others so a response-rendering regression shows up in
    // the same breakdown.
    const bool time_serialize = obs::MetricsEnabled();
    const auto ser_start = time_serialize ? std::chrono::steady_clock::now()
                                          : std::chrono::steady_clock::time_point{};
    std::string body = RenderQueryJson(resp);
    if (time_serialize) {
      obs::WaitInstruments::Get().serialize->Observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - ser_start)
              .count());
    }
    return SerializeHttpResponse(HttpStatusFor(resp), kJsonType, body,
                                 keep_alive, extra);
  }

  // Known telemetry path with the wrong verb?
  if (path == "/metrics" || path == "/stats" || path == "/health" ||
      path == "/slowlog" || path == "/debug/requests" ||
      path == "/debug/contention") {
    return SerializeHttpResponse(405, kJsonType,
                                 ErrorBody("use GET for " + path), keep_alive,
                                 {{"Allow", "GET"}});
  }
  return SerializeHttpResponse(404, kJsonType,
                               ErrorBody("no route for " + path), keep_alive);
}

}  // namespace prometheus::net
