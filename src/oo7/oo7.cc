#include "oo7/oo7.h"

#include <algorithm>
#include <cassert>

#include "index/index_manager.h"

namespace prometheus::oo7 {

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

constexpr std::int64_t kDateLo = 1000;
constexpr std::int64_t kDateHi = 3000;

}  // namespace

// ----------------------------------------------------------- Prometheus

PrometheusOo7::PrometheusOo7(const Config& config)
    : config_(config), rng_(config.seed) {
  // Benchmark schema (figure 48): the OO7 design hierarchy expressed with
  // first-class relationships.
  (void)db_.DefineClass("DesignObj",
                        {},
                        {Attr("id", ValueType::kInt),
                         Attr("build_date", ValueType::kInt)},
                        /*is_abstract=*/true);
  (void)db_.DefineClass("AtomicPart", {"DesignObj"},
                        {Attr("x", ValueType::kInt)});
  (void)db_.DefineClass("CompositePart", {"DesignObj"},
                        {Attr("document", ValueType::kString)});
  (void)db_.DefineClass("Assembly", {"DesignObj"}, {}, /*is_abstract=*/true);
  (void)db_.DefineClass("BaseAssembly", {"Assembly"});
  (void)db_.DefineClass("ComplexAssembly", {"Assembly"});
  (void)db_.DefineClass("Module", {"DesignObj"});

  // Typed part connections carry their own data (length) — a weighted
  // graph, the structure plain references cannot express (thesis ch. 3).
  (void)db_.DefineRelationship("connected_to", "AtomicPart", "AtomicPart",
                               {}, {Attr("length", ValueType::kInt)});
  // Composite → atomic: exclusive, lifetime-dependent aggregation.
  RelationshipSemantics part_sem;
  part_sem.kind = RelationshipKind::kAggregation;
  part_sem.exclusive = true;
  part_sem.lifetime_dependent = true;
  (void)db_.DefineRelationship("has_part", "CompositePart", "AtomicPart",
                               part_sem);
  RelationshipSemantics root_sem;
  root_sem.max_out = 1;
  (void)db_.DefineRelationship("root_part", "CompositePart", "AtomicPart",
                               root_sem);
  // Assembly tree: exclusive lifetime-dependent aggregation.
  RelationshipSemantics sub_sem;
  sub_sem.kind = RelationshipKind::kAggregation;
  sub_sem.exclusive = true;
  sub_sem.lifetime_dependent = true;
  (void)db_.DefineRelationship("sub_assembly", "ComplexAssembly", "Assembly",
                               sub_sem);
  // Base assemblies share composite parts from the library.
  (void)db_.DefineRelationship("uses_component", "BaseAssembly",
                               "CompositePart", {});
  RelationshipSemantics design_sem;
  design_sem.max_out = 1;
  (void)db_.DefineRelationship("design_root", "Module", "ComplexAssembly",
                               design_sem);

  // Data: the composite-part library.
  composites_.reserve(static_cast<std::size_t>(config_.composite_parts));
  for (int i = 0; i < config_.composite_parts; ++i) {
    auto r = BuildCompositePart(i);
    assert(r.ok());
    composites_.push_back(r.value());
  }
  // The assembly tree.
  int next_assembly_id = 0;
  Oid root = BuildAssembly(1, &next_assembly_id);
  module_ = db_.CreateObject("Module", {{"id", Value::Int(0)}}).value();
  (void)db_.CreateLink("design_root", module_, root);
}

Result<Oid> PrometheusOo7::BuildCompositePart(int id) {
  std::uniform_int_distribution<std::int64_t> date(kDateLo, kDateHi - 1);
  std::uniform_int_distribution<std::int64_t> xval(0, 99999);
  PROMETHEUS_ASSIGN_OR_RETURN(
      Oid comp,
      db_.CreateObject("CompositePart",
                       {{"id", Value::Int(id)},
                        {"build_date", Value::Int(date(rng_))},
                        {"document", Value::String(
                             "composite part #" + std::to_string(id))}}));
  std::vector<Oid> parts;
  parts.reserve(static_cast<std::size_t>(config_.atomic_per_composite));
  for (int i = 0; i < config_.atomic_per_composite; ++i) {
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid part, db_.CreateObject("AtomicPart",
                                   {{"id", Value::Int(next_part_id_++)},
                                    {"build_date", Value::Int(date(rng_))},
                                    {"x", Value::Int(xval(rng_))}}));
    PROMETHEUS_RETURN_IF_ERROR(
        db_.CreateLink("has_part", comp, part).status());
    parts.push_back(part);
  }
  PROMETHEUS_RETURN_IF_ERROR(
      db_.CreateLink("root_part", comp, parts.front()).status());
  std::uniform_int_distribution<std::size_t> pick(0, parts.size() - 1);
  std::uniform_int_distribution<std::int64_t> length(1, 1000);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (int c = 0; c < config_.connections_per_atomic; ++c) {
      std::size_t to = pick(rng_);
      if (to == i) to = (to + 1) % parts.size();
      PROMETHEUS_RETURN_IF_ERROR(
          db_.CreateLink("connected_to", parts[i], parts[to], kNullOid,
                         {{"length", Value::Int(length(rng_))}})
              .status());
    }
  }
  return comp;
}

Oid PrometheusOo7::BuildAssembly(int level, int* next_id) {
  std::uniform_int_distribution<std::size_t> pick(0, composites_.size() - 1);
  if (level >= config_.assembly_levels) {
    Oid base = db_.CreateObject("BaseAssembly",
                                {{"id", Value::Int((*next_id)++)}})
                   .value();
    for (int i = 0; i < config_.components_per_base; ++i) {
      (void)db_.CreateLink("uses_component", base, composites_[pick(rng_)]);
    }
    bases_.push_back(base);
    return base;
  }
  Oid complex = db_.CreateObject("ComplexAssembly",
                                 {{"id", Value::Int((*next_id)++)}})
                    .value();
  for (int i = 0; i < config_.assembly_fanout; ++i) {
    Oid child = BuildAssembly(level + 1, next_id);
    (void)db_.CreateLink("sub_assembly", complex, child);
  }
  return complex;
}

std::uint64_t PrometheusOo7::TraverseT1() const {
  std::uint64_t visits = 0;
  // DFS over the assembly tree.
  std::vector<Oid> stack;
  for (Oid root : db_.Neighbors(module_, "design_root")) {
    stack.push_back(root);
  }
  while (!stack.empty()) {
    Oid assembly = stack.back();
    stack.pop_back();
    for (Oid sub : db_.Neighbors(assembly, "sub_assembly")) {
      stack.push_back(sub);
    }
    for (Oid comp : db_.Neighbors(assembly, "uses_component")) {
      // DFS over the atomic-part graph from the root part.
      std::vector<Oid> parts = db_.Neighbors(comp, "root_part");
      std::unordered_map<Oid, bool> seen;
      while (!parts.empty()) {
        Oid part = parts.back();
        parts.pop_back();
        if (seen[part]) continue;
        seen[part] = true;
        ++visits;
        for (Oid next : db_.Neighbors(part, "connected_to")) {
          parts.push_back(next);
        }
      }
    }
  }
  return visits;
}

OpCounts PrometheusOo7::TraverseT5(std::int64_t new_value) {
  OpCounts counts;
  (void)db_.Begin();
  std::vector<Oid> stack;
  for (Oid root : db_.Neighbors(module_, "design_root")) {
    stack.push_back(root);
  }
  while (!stack.empty()) {
    Oid assembly = stack.back();
    stack.pop_back();
    for (Oid sub : db_.Neighbors(assembly, "sub_assembly")) {
      stack.push_back(sub);
    }
    for (Oid comp : db_.Neighbors(assembly, "uses_component")) {
      std::vector<Oid> parts = db_.Neighbors(comp, "root_part");
      std::unordered_map<Oid, bool> seen;
      while (!parts.empty()) {
        Oid part = parts.back();
        parts.pop_back();
        if (seen[part]) continue;
        seen[part] = true;
        ++counts.visited;
        (void)db_.SetAttribute(part, "x", Value::Int(new_value));
        ++counts.updated;
        for (Oid next : db_.Neighbors(part, "connected_to")) {
          parts.push_back(next);
        }
      }
    }
  }
  (void)db_.Commit();
  return counts;
}

std::uint64_t PrometheusOo7::LookupQ1(int n, std::uint32_t* checksum) const {
  // Hand-coded exact-match over the extent would be O(N) per probe; the
  // benchmark harness layers an IndexManager for the indexed variant. Here
  // we scan once and probe a local set, mirroring what a POET application
  // would do with its own dictionary.
  std::mt19937 rng(config_.seed + 1);
  std::uniform_int_distribution<int> pick(0, next_part_id_ - 1);
  std::unordered_map<std::int64_t, Oid> by_id;
  for (Oid oid : db_.Extent("AtomicPart")) {
    auto id = db_.GetAttribute(oid, "id");
    if (id.ok() && id.value().type() == ValueType::kInt) {
      by_id[id.value().AsInt()] = oid;
    }
  }
  std::uint64_t found = 0;
  for (int i = 0; i < n; ++i) {
    auto it = by_id.find(pick(rng));
    if (it == by_id.end()) continue;
    ++found;
    auto x = db_.GetAttribute(it->second, "x");
    if (x.ok() && x.value().type() == ValueType::kInt) {
      *checksum += static_cast<std::uint32_t>(x.value().AsInt());
    }
  }
  return found;
}

std::uint64_t PrometheusOo7::RangeQ2(std::int64_t lo, std::int64_t hi) const {
  std::uint64_t matched = 0;
  for (Oid oid : db_.Extent("AtomicPart")) {
    auto date = db_.GetAttribute(oid, "build_date");
    if (!date.ok() || date.value().type() != ValueType::kInt) continue;
    std::int64_t d = date.value().AsInt();
    if (d >= lo && d <= hi) ++matched;
  }
  return matched;
}

std::uint64_t PrometheusOo7::ReverseQ4(int n) const {
  std::mt19937 rng(config_.seed + 2);
  std::vector<Oid> atoms = db_.Extent("AtomicPart");
  if (atoms.empty()) return 0;
  std::uniform_int_distribution<std::size_t> pick(0, atoms.size() - 1);
  std::uint64_t reached = 0;
  for (int i = 0; i < n; ++i) {
    Oid atom = atoms[pick(rng)];
    for (Oid comp : db_.Neighbors(atom, "has_part", Direction::kIn)) {
      for (Oid base :
           db_.Neighbors(comp, "uses_component", Direction::kIn)) {
        (void)base;
        ++reached;
      }
    }
  }
  return reached;
}

Status PrometheusOo7::InsertS1(int k) {
  std::uniform_int_distribution<std::size_t> pick(0, bases_.size() - 1);
  for (int i = 0; i < k; ++i) {
    PROMETHEUS_ASSIGN_OR_RETURN(
        Oid comp, BuildCompositePart(config_.composite_parts + i));
    composites_.push_back(comp);
    PROMETHEUS_RETURN_IF_ERROR(
        db_.CreateLink("uses_component", bases_[pick(rng_)], comp).status());
  }
  return Status::Ok();
}

Status PrometheusOo7::DeleteS2(int k) {
  for (int i = 0; i < k && !composites_.empty(); ++i) {
    std::uniform_int_distribution<std::size_t> pick(0,
                                                    composites_.size() - 1);
    std::size_t victim = pick(rng_);
    Oid comp = composites_[victim];
    composites_[victim] = composites_.back();
    composites_.pop_back();
    PROMETHEUS_RETURN_IF_ERROR(db_.DeleteObject(comp));
  }
  return Status::Ok();
}

// -------------------------------------------------------------- Baseline

BaselineOo7::BaselineOo7(const Config& config)
    : config_(config), rng_(config.seed) {
  for (int i = 0; i < config_.composite_parts; ++i) {
    composites_.push_back(
        std::unique_ptr<CompositePart>(BuildCompositePart(i)));
  }
  int next_assembly_id = 0;
  root_ = BuildAssembly(1, &next_assembly_id);
}

BaselineOo7::CompositePart* BaselineOo7::BuildCompositePart(int id) {
  std::uniform_int_distribution<std::int64_t> date(kDateLo, kDateHi - 1);
  std::uniform_int_distribution<std::int64_t> xval(0, 99999);
  auto* comp = new CompositePart();
  comp->id = id;
  comp->build_date = date(rng_);
  comp->document = "composite part #" + std::to_string(id);
  comp->parts.reserve(static_cast<std::size_t>(config_.atomic_per_composite));
  for (int i = 0; i < config_.atomic_per_composite; ++i) {
    auto part = std::make_unique<AtomicPart>();
    part->id = next_part_id_++;
    part->build_date = date(rng_);
    part->x = xval(rng_);
    part->owner = comp;
    atomic_by_id_[part->id] = part.get();
    comp->parts.push_back(std::move(part));
    ++atomic_count_;
  }
  comp->root = comp->parts.front().get();
  std::uniform_int_distribution<std::size_t> pick(0, comp->parts.size() - 1);
  std::uniform_int_distribution<std::int64_t> length(1, 1000);
  for (std::size_t i = 0; i < comp->parts.size(); ++i) {
    for (int c = 0; c < config_.connections_per_atomic; ++c) {
      std::size_t to = pick(rng_);
      if (to == i) to = (to + 1) % comp->parts.size();
      Connection conn;
      conn.to = comp->parts[to].get();
      conn.length = length(rng_);
      comp->parts[i]->out.push_back(conn);
      comp->parts[to]->in.push_back(comp->parts[i].get());
    }
  }
  return comp;
}

BaselineOo7::Assembly* BaselineOo7::BuildAssembly(int level, int* next_id) {
  std::uniform_int_distribution<std::size_t> pick(0, composites_.size() - 1);
  assemblies_.emplace_back();
  Assembly* assembly = &assemblies_.back();
  assembly->id = (*next_id)++;
  if (level >= config_.assembly_levels) {
    assembly->is_base = true;
    for (int i = 0; i < config_.components_per_base; ++i) {
      CompositePart* comp = composites_[pick(rng_)].get();
      assembly->components.push_back(comp);
      comp->used_by.push_back(assembly);
    }
    bases_.push_back(assembly);
    return assembly;
  }
  for (int i = 0; i < config_.assembly_fanout; ++i) {
    assembly->subs.push_back(BuildAssembly(level + 1, next_id));
  }
  return assembly;
}

std::uint64_t BaselineOo7::TraverseT1() const {
  std::uint64_t visits = 0;
  std::vector<const Assembly*> stack{root_};
  std::vector<const AtomicPart*> parts;
  std::unordered_map<const AtomicPart*, bool> seen;
  while (!stack.empty()) {
    const Assembly* assembly = stack.back();
    stack.pop_back();
    for (const Assembly* sub : assembly->subs) stack.push_back(sub);
    for (const CompositePart* comp : assembly->components) {
      if (!comp->alive) continue;
      parts.clear();
      seen.clear();
      parts.push_back(comp->root);
      while (!parts.empty()) {
        const AtomicPart* part = parts.back();
        parts.pop_back();
        if (seen[part]) continue;
        seen[part] = true;
        ++visits;
        for (const Connection& conn : part->out) parts.push_back(conn.to);
      }
    }
  }
  return visits;
}

OpCounts BaselineOo7::TraverseT5(std::int64_t new_value) {
  OpCounts counts;
  std::vector<Assembly*> stack{root_};
  std::vector<AtomicPart*> parts;
  std::unordered_map<AtomicPart*, bool> seen;
  while (!stack.empty()) {
    Assembly* assembly = stack.back();
    stack.pop_back();
    for (Assembly* sub : assembly->subs) stack.push_back(sub);
    for (CompositePart* comp : assembly->components) {
      if (!comp->alive) continue;
      parts.clear();
      seen.clear();
      parts.push_back(comp->root);
      while (!parts.empty()) {
        AtomicPart* part = parts.back();
        parts.pop_back();
        if (seen[part]) continue;
        seen[part] = true;
        ++counts.visited;
        part->x = new_value;
        ++counts.updated;
        for (const Connection& conn : part->out) parts.push_back(conn.to);
      }
    }
  }
  return counts;
}

std::uint64_t BaselineOo7::LookupQ1(int n, std::uint32_t* checksum) const {
  std::mt19937 rng(config_.seed + 1);
  std::uniform_int_distribution<int> pick(0, next_part_id_ - 1);
  std::uint64_t found = 0;
  for (int i = 0; i < n; ++i) {
    auto it = atomic_by_id_.find(pick(rng));
    if (it == atomic_by_id_.end()) continue;
    ++found;
    *checksum += static_cast<std::uint32_t>(it->second->x);
  }
  return found;
}

std::uint64_t BaselineOo7::RangeQ2(std::int64_t lo, std::int64_t hi) const {
  std::uint64_t matched = 0;
  for (const auto& comp : composites_) {
    if (!comp->alive) continue;
    for (const auto& part : comp->parts) {
      if (part->build_date >= lo && part->build_date <= hi) ++matched;
    }
  }
  return matched;
}

std::uint64_t BaselineOo7::ReverseQ4(int n) const {
  std::mt19937 rng(config_.seed + 2);
  std::vector<const AtomicPart*> atoms;
  atoms.reserve(atomic_by_id_.size());
  for (const auto& [id, part] : atomic_by_id_) {
    (void)id;
    atoms.push_back(part);
  }
  if (atoms.empty()) return 0;
  std::sort(atoms.begin(), atoms.end(),
            [](const AtomicPart* a, const AtomicPart* b) {
              return a->id < b->id;
            });
  std::uniform_int_distribution<std::size_t> pick(0, atoms.size() - 1);
  std::uint64_t reached = 0;
  for (int i = 0; i < n; ++i) {
    const AtomicPart* atom = atoms[pick(rng)];
    if (atom->owner == nullptr) continue;
    reached += atom->owner->used_by.size();
  }
  return reached;
}

Status BaselineOo7::InsertS1(int k) {
  std::uniform_int_distribution<std::size_t> pick(0, bases_.size() - 1);
  for (int i = 0; i < k; ++i) {
    CompositePart* comp = BuildCompositePart(config_.composite_parts + i);
    composites_.push_back(std::unique_ptr<CompositePart>(comp));
    Assembly* base = bases_[pick(rng_)];
    base->components.push_back(comp);
    comp->used_by.push_back(base);
  }
  return Status::Ok();
}

Status BaselineOo7::DeleteS2(int k) {
  for (int i = 0; i < k; ++i) {
    // Find a live composite to delete.
    std::vector<std::size_t> live;
    for (std::size_t j = 0; j < composites_.size(); ++j) {
      if (composites_[j]->alive) live.push_back(j);
    }
    if (live.empty()) break;
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    CompositePart* comp = composites_[live[pick(rng_)]].get();
    // Unhook from assemblies.
    for (Assembly* assembly : comp->used_by) {
      auto& v = assembly->components;
      v.erase(std::remove(v.begin(), v.end(), comp), v.end());
    }
    comp->used_by.clear();
    // Drop parts from the id index, then free them.
    for (const auto& part : comp->parts) atomic_by_id_.erase(part->id);
    atomic_count_ -= comp->parts.size();
    comp->parts.clear();
    comp->root = nullptr;
    comp->alive = false;
  }
  return Status::Ok();
}

}  // namespace prometheus::oo7
