// E15 — instrumentation overhead. The observability hooks stay compiled
// into every hot path (query engine, event bus, journal), so their cost
// must be provably negligible. Three modes over identical work:
//
//   off       runtime kill switch engaged (each hook = one branch)
//   on        metrics recording (counters + histograms, the default)
//   profiled  metrics on + span tracing (PROFILE path; queries only)
//
// Workloads: OO7 T1 (read traversal through the object graph), OO7 T5
// (update traversal — publishes events, exercising the event-bus and rule
// hooks) and a POOL range query (the instrumented parse/plan/execute
// pipeline). Reports median wall time per mode and the on-vs-off overhead
// percentage; writes BENCH_obs.json.
//
// E20 — contention attribution. The same 4-reader/1-writer churn that
// produced `scaling_4v1` in BENCH_server.json, measured twice: readers
// alone (baseline), then readers racing a writer that takes chunky
// exclusive holds. The wall-clock the readers lose to churn should be
// explained by the `guard_wait_micros{mode="shared"}` histogram delta over
// the churn phase — if the attribution ratio is near 1.0, the contention
// profiler accounts for where the lost microseconds went.
//
// E22 — system-catalog overhead. A monitoring poller cycling POOL queries
// over sys.metrics / sys.storage / sys.requests (the dashboards-over-POOL
// workload the catalog exists for) races the same 4-reader fleet issuing
// real queries. Alternating baseline/polled rounds measure what the
// poller costs the readers in throughput; the catalog materializes
// per-query snapshots outside every lock, so the tax must stay <= 5%.
//
// Usage: bench_obs [reps] [e20_requests_per_reader]   (defaults 7, 200)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/wait_profiler.h"
#include "oo7/oo7.h"
#include "query/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::bench::JsonWriter;
using prometheus::bench::MedianMillis;
using prometheus::obs::GuardInstruments;
using prometheus::obs::SetMetricsEnabled;
using prometheus::obs::SnapshotDelta;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;
using prometheus::pool::QueryEngine;
using prometheus::server::Client;
using prometheus::server::Server;

constexpr char kQuery[] =
    "select a.id from AtomicPart a "
    "where a.build_date >= 500 and a.build_date <= 900";

double OverheadPercent(double off_ms, double on_ms) {
  return off_ms <= 0 ? 0 : (on_ms - off_ms) / off_ms * 100.0;
}

void PrintRow(const char* workload, double off_ms, double on_ms,
              double profiled_ms) {
  std::printf("  %-12s %9.3f  %9.3f  %+7.2f%%", workload, off_ms, on_ms,
              OverheadPercent(off_ms, on_ms));
  if (profiled_ms > 0) {
    std::printf("  %9.3f  %+7.2f%%", profiled_ms,
                OverheadPercent(off_ms, profiled_ms));
  }
  std::printf("\n");
}

void EmitWorkload(JsonWriter& json, const char* name, double off_ms,
                  double on_ms, double profiled_ms) {
  json.BeginObject();
  json.Key("workload").String(name);
  json.Key("off_ms").Number(off_ms);
  json.Key("on_ms").Number(on_ms);
  json.Key("overhead_on_pct").Number(OverheadPercent(off_ms, on_ms));
  if (profiled_ms > 0) {
    json.Key("profiled_ms").Number(profiled_ms);
    json.Key("overhead_profiled_pct")
        .Number(OverheadPercent(off_ms, profiled_ms));
  }
  json.EndObject();
}

// ------------------------------------------------------------------- E20

/// Reader-side cost of one churn phase: 4 reader clients each issue
/// `requests_per_reader` queries and sum their client-observed latency.
/// With a writer, a churn thread interleaves chunky Custom mutations
/// (hundreds of attribute writes per exclusive hold) until the readers
/// finish.
struct PhaseResult {
  double reader_busy_ms = 0;       ///< summed client-side reader latency
  std::size_t reader_requests = 0;
  std::uint64_t writer_mutations = 0;
};

constexpr int kE20Readers = 4;
constexpr int kE20WritesPerHold = 400;  ///< attribute writes per exclusive hold

PhaseResult RunChurnPhase(Server& server, const std::vector<Oid>& parts,
                          int requests_per_reader, bool with_writer) {
  using Clock = std::chrono::steady_clock;
  PhaseResult result;
  std::atomic<bool> readers_done{false};
  std::vector<double> reader_micros(kE20Readers, 0);

  std::vector<std::thread> threads;
  threads.reserve(kE20Readers + 1);
  for (int r = 0; r < kE20Readers; ++r) {
    threads.emplace_back([&, r] {
      Client client(&server);
      double sum = 0;
      for (int i = 0; i < requests_per_reader; ++i) {
        const Clock::time_point t0 = Clock::now();
        (void)client.Query(kQuery);
        sum += std::chrono::duration<double, std::micro>(Clock::now() - t0)
                   .count();
      }
      reader_micros[static_cast<std::size_t>(r)] = sum;
    });
  }

  std::thread writer;
  std::uint64_t mutations = 0;
  if (with_writer) {
    writer = std::thread([&] {
      Client client(&server);
      std::size_t cursor = 0;
      std::int64_t stamp = 0;
      while (!readers_done.load(std::memory_order_relaxed)) {
        // One chunky exclusive hold: several hundred attribute writes, so
        // the guard stays held for a writer-scale interval (~ms) the way a
        // bulk import or rule cascade would hold it.
        const std::int64_t s = ++stamp;
        (void)client.Mutate([&parts, &cursor, s](Database& db) {
          for (int i = 0; i < kE20WritesPerHold; ++i) {
            const Oid oid = parts[cursor++ % parts.size()];
            PROMETHEUS_RETURN_IF_ERROR(
                db.SetAttribute(oid, "x", Value::Int(s)));
          }
          return Status::Ok();
        });
        ++mutations;
        // Let a convoy of blocked readers drain before the next hold.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  for (int r = 0; r < kE20Readers; ++r) {
    threads[static_cast<std::size_t>(r)].join();
  }
  readers_done.store(true, std::memory_order_relaxed);
  if (writer.joinable()) writer.join();

  for (double m : reader_micros) result.reader_busy_ms += m / 1000.0;
  result.reader_requests =
      static_cast<std::size_t>(kE20Readers) *
      static_cast<std::size_t>(requests_per_reader);
  result.writer_mutations = mutations;
  return result;
}

// ------------------------------------------------------------------- E22

/// Reader throughput for one phase: the 4-reader fleet issues
/// `requests_per_reader` real queries each; with the poller, a monitoring
/// thread cycles catalog queries at ~1 kHz until the readers finish.
/// Returns requests per second over the phase's wall clock.
double RunCatalogPhase(Server& server, int requests_per_reader,
                       bool with_poller, std::uint64_t* polls_out) {
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> readers_done{false};
  const Clock::time_point t0 = Clock::now();

  std::vector<std::thread> readers;
  readers.reserve(kE20Readers);
  for (int r = 0; r < kE20Readers; ++r) {
    readers.emplace_back([&] {
      Client client(&server);
      for (int i = 0; i < requests_per_reader; ++i) {
        (void)client.Query(kQuery);
      }
    });
  }

  std::thread poller;
  std::uint64_t polls = 0;
  if (with_poller) {
    poller = std::thread([&] {
      Client client(&server);
      const char* catalog_queries[] = {
          "select m.name, m.value from sys.metrics m "
          "where m.kind = 'counter'",
          "select s.class, s.rows, s.scans from sys.storage s",
          "select q.request_id, q.total_micros from sys.requests q",
      };
      while (!readers_done.load(std::memory_order_relaxed)) {
        (void)client.Query(catalog_queries[polls % 3]);
        ++polls;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  for (std::thread& t : readers) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  readers_done.store(true, std::memory_order_relaxed);
  if (poller.joinable()) poller.join();

  if (polls_out != nullptr) *polls_out += polls;
  const double requests = static_cast<double>(kE20Readers) *
                          static_cast<double>(requests_per_reader);
  return wall_s > 0 ? requests / wall_s : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 7;
  const int e20_requests = argc > 2 ? std::atoi(argv[2]) : 200;

  Config config;  // OO7 small
  PrometheusOo7 oo7(config);
  QueryEngine engine(&oo7.db());

  prometheus::bench::PrintTableHeader(
      "E15: instrumentation overhead (median ms; off = kill switch)",
      "  workload       off(ms)     on(ms)  overhead  prof(ms)  overhead");

  // Warm-up: touch every lazily-registered metric so registration cost
  // (a one-time mutex acquisition) doesn't land in a timed region.
  (void)oo7.TraverseT1();
  (void)oo7.TraverseT5(1);
  (void)engine.Execute(kQuery);
  (void)engine.ExecuteProfiled(kQuery);

  // --- T1: read traversal ------------------------------------------------
  SetMetricsEnabled(false);
  const double t1_off = MedianMillis([&] { (void)oo7.TraverseT1(); }, reps);
  SetMetricsEnabled(true);
  const double t1_on = MedianMillis([&] { (void)oo7.TraverseT1(); }, reps);
  PrintRow("oo7_t1", t1_off, t1_on, 0);

  // --- T5: update traversal (events, rules, index maintenance hooks) -----
  std::int64_t stamp = 1;
  SetMetricsEnabled(false);
  const double t5_off =
      MedianMillis([&] { (void)oo7.TraverseT5(stamp++); }, reps);
  SetMetricsEnabled(true);
  const double t5_on =
      MedianMillis([&] { (void)oo7.TraverseT5(stamp++); }, reps);
  PrintRow("oo7_t5", t5_off, t5_on, 0);

  // --- POOL query: parse/plan/execute pipeline ---------------------------
  SetMetricsEnabled(false);
  const double q_off = MedianMillis([&] { (void)engine.Execute(kQuery); }, reps);
  SetMetricsEnabled(true);
  const double q_on = MedianMillis([&] { (void)engine.Execute(kQuery); }, reps);
  const double q_profiled =
      MedianMillis([&] { (void)engine.ExecuteProfiled(kQuery); }, reps);
  PrintRow("pool_query", q_off, q_on, q_profiled);

  const double worst_overhead =
      std::max({OverheadPercent(t1_off, t1_on), OverheadPercent(t5_off, t5_on),
                OverheadPercent(q_off, q_on)});
  std::printf("  worst metrics-on overhead: %+.2f%% (target <= 5%%)\n",
              worst_overhead);

  // --- E20: guard-wait attribution under 4-reader/1-writer churn --------
  prometheus::bench::PrintTableHeader(
      "E20: contention attribution (4 readers, 1 chunky writer)",
      "  phase        reader_busy(ms)  requests  writer_holds");
  SetMetricsEnabled(true);
  PrometheusOo7 churn_oo7(config);
  const std::vector<Oid> parts = churn_oo7.db().Extent("AtomicPart");
  Server::Options churn_options;
  churn_options.worker_threads = 8;   // readers+writer never queue-wait
  churn_options.queue_capacity = 4096;
  churn_options.cache.enabled = false;  // every read takes the shared guard
  Server churn_server(&churn_oo7.db(), churn_options);

  // Warm-up, then alternating baseline/churn rounds. Pairing each churn
  // phase with an adjacent baseline cancels slow drift (allocator warm-up,
  // frequency scaling) that a single before/after comparison would absorb
  // into the "lost" time.
  RunChurnPhase(churn_server, parts, std::max(8, e20_requests / 4),
                /*with_writer=*/false);
  constexpr int kE20Rounds = 3;
  PhaseResult base{};
  PhaseResult churn{};
  double lost_ms_signed = 0;
  double attributed_ms = 0;
  std::uint64_t blocked_acquisitions = 0;
  for (int round = 0; round < kE20Rounds; ++round) {
    const PhaseResult b =
        RunChurnPhase(churn_server, parts, e20_requests, /*with_writer=*/false);
    // Churn phase, bracketed by shared-wait snapshots: the histogram delta
    // is the profiler's claim about where the lost reader time went.
    const auto before = GuardInstruments::Get().shared_wait->snapshot();
    const PhaseResult c =
        RunChurnPhase(churn_server, parts, e20_requests, /*with_writer=*/true);
    const auto delta =
        SnapshotDelta(GuardInstruments::Get().shared_wait->snapshot(), before);
    base.reader_busy_ms += b.reader_busy_ms;
    base.reader_requests += b.reader_requests;
    churn.reader_busy_ms += c.reader_busy_ms;
    churn.reader_requests += c.reader_requests;
    churn.writer_mutations += c.writer_mutations;
    lost_ms_signed += c.reader_busy_ms - b.reader_busy_ms;
    attributed_ms += delta.sum / 1000.0;
    blocked_acquisitions += delta.count;
  }
  // --- E22: catalog-poller tax on real-query throughput -----------------
  // Reuses the churn server (quiescent again after E20's writer stopped):
  // same 4 readers, but the contender is a monitoring poller cycling
  // sys.metrics / sys.storage / sys.requests queries instead of a writer.
  prometheus::bench::PrintTableHeader(
      "E22: system-catalog overhead (4 readers vs 1 catalog poller)",
      "  phase        reader_qps  catalog_polls");
  RunCatalogPhase(churn_server, std::max(8, e20_requests / 4),
                  /*with_poller=*/false, nullptr);  // warm-up
  constexpr int kE22Rounds = 3;
  double base_qps_sum = 0;
  double polled_qps_sum = 0;
  std::uint64_t catalog_polls = 0;
  for (int round = 0; round < kE22Rounds; ++round) {
    base_qps_sum += RunCatalogPhase(churn_server, e20_requests,
                                    /*with_poller=*/false, nullptr);
    polled_qps_sum += RunCatalogPhase(churn_server, e20_requests,
                                      /*with_poller=*/true, &catalog_polls);
  }
  const double base_qps = base_qps_sum / kE22Rounds;
  const double polled_qps = polled_qps_sum / kE22Rounds;
  const double catalog_tax_pct =
      base_qps > 0 ? (base_qps - polled_qps) / base_qps * 100.0 : 0;
  std::printf("  %-12s %10.1f  %13s\n", "baseline", base_qps, "-");
  std::printf("  %-12s %10.1f  %13llu\n", "polled", polled_qps,
              static_cast<unsigned long long>(catalog_polls));
  std::printf("  catalog-poller throughput tax: %+.2f%% (target <= 5%%)\n",
              catalog_tax_pct);

  churn_server.Shutdown();

  const double lost_ms = std::max(0.0, lost_ms_signed);
  const double attribution_ratio = lost_ms > 0 ? attributed_ms / lost_ms : 0;
  std::printf("  %-12s %15.3f  %8zu  %12s\n", "baseline", base.reader_busy_ms,
              base.reader_requests, "-");
  std::printf("  %-12s %15.3f  %8zu  %12llu\n", "churn", churn.reader_busy_ms,
              churn.reader_requests,
              static_cast<unsigned long long>(churn.writer_mutations));
  std::printf(
      "  lost reader wall-clock: %.3f ms; guard shared-wait delta: %.3f ms "
      "(%llu shared acquisitions during churn)\n",
      lost_ms, attributed_ms,
      static_cast<unsigned long long>(blocked_acquisitions));
  std::printf("  attribution ratio: %.2f (target within 20%% of 1.0)",
              attribution_ratio);
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < kE20Readers + 2) {
    // Blocked readers overlap with each other's execution when timesharing
    // one core, so client-observed lost time under-counts guard waits —
    // same host caveat bench_server prints for scaling_4v1.
    std::printf("  (only %u hardware thread%s — attribution is bounded by "
                "the host)",
                cores, cores == 1 ? "" : "s");
  }
  std::printf("\n");

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("obs");
  json.Key("reps").Int(reps);
  json.Key("atomic_parts").Int(config.total_atomic_parts());
  json.Key("workloads").BeginArray();
  EmitWorkload(json, "oo7_t1", t1_off, t1_on, 0);
  EmitWorkload(json, "oo7_t5", t5_off, t5_on, 0);
  EmitWorkload(json, "pool_query", q_off, q_on, q_profiled);
  json.EndArray();
  json.Key("worst_overhead_on_pct").Number(worst_overhead);
  json.Key("target_overhead_pct").Number(5.0);
  json.Key("e20_contention").BeginObject();
  json.Key("hardware_concurrency").Int(cores);
  json.Key("rounds").Int(kE20Rounds);
  json.Key("readers").Int(kE20Readers);
  json.Key("requests_per_reader").Int(e20_requests);
  json.Key("writes_per_hold").Int(kE20WritesPerHold);
  json.Key("writer_holds").Int(static_cast<int>(churn.writer_mutations));
  json.Key("baseline_reader_busy_ms").Number(base.reader_busy_ms);
  json.Key("churn_reader_busy_ms").Number(churn.reader_busy_ms);
  json.Key("lost_reader_ms").Number(lost_ms);
  json.Key("guard_shared_wait_ms").Number(attributed_ms);
  json.Key("blocked_acquisitions").Int(static_cast<int>(blocked_acquisitions));
  json.Key("attribution_ratio").Number(attribution_ratio);
  json.Key("target_ratio_band").Number(0.2);
  // With fewer cores than threads, blocked readers yield the CPU to the
  // remaining readers, so client-observed lost time collapses toward zero
  // while guard waits stay real — the ratio is only meaningful when the
  // reader fleet and the writer can actually run in parallel.
  json.Key("host_bounded").Bool(cores < kE20Readers + 2);
  json.EndObject();
  json.Key("e22_catalog").BeginObject();
  json.Key("rounds").Int(kE22Rounds);
  json.Key("readers").Int(kE20Readers);
  json.Key("requests_per_reader").Int(e20_requests);
  json.Key("baseline_reader_qps").Number(base_qps);
  json.Key("polled_reader_qps").Number(polled_qps);
  json.Key("catalog_polls").Int(static_cast<int>(catalog_polls));
  json.Key("throughput_tax_pct").Number(catalog_tax_pct);
  json.Key("target_tax_pct").Number(5.0);
  json.EndObject();
  json.EndObject();

  const std::string out = "BENCH_obs.json";
  if (!prometheus::bench::WriteTextFile(out, json.str() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
