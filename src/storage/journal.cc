#include "storage/journal.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/wait_profiler.h"
#include "storage/snapshot.h"

namespace prometheus::storage {

namespace {

/// Process-wide journal counters, aggregated across every live journal.
struct JournalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* syncs;
  obs::Counter* errors;
  obs::Histogram* append_micros;
  obs::Histogram* sync_micros;

  static const JournalMetrics& Get() {
    static const JournalMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      JournalMetrics jm;
      jm.appends = reg.GetCounter("journal_appends_total",
                                  "Mutation records appended to journals");
      jm.bytes = reg.GetCounter("journal_bytes_total",
                                "Framed bytes appended to journals");
      jm.syncs = reg.GetCounter("journal_syncs_total",
                                "Explicit journal fsync barriers");
      jm.errors = reg.GetCounter(
          "journal_errors_total",
          "Journal write failures that latched the sticky error");
      // Counts alone cannot show a sync stall; these put a latency
      // distribution behind every append and fsync barrier.
      jm.append_micros = reg.GetHistogram(
          "journal_append_micros", "Latency of framed journal file appends");
      jm.sync_micros = reg.GetHistogram("journal_sync_micros",
                                        "Latency of journal fsync barriers");
      return jm;
    }();
    return m;
  }
};

/// Times one file operation into a journal latency histogram and the
/// calling thread's wait accumulator (per-request attribution: a mutation
/// runs wholly on one worker, so the server reads the accumulator after
/// dispatch). One branch when metrics are off.
class JournalOpTimer {
 public:
  explicit JournalOpTimer(obs::Histogram* hist, double* thread_slot)
      : hist_(obs::MetricsEnabled() ? hist : nullptr),
        thread_slot_(thread_slot) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~JournalOpTimer() {
    if (hist_ == nullptr) return;
    const double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start_)
                              .count();
    hist_->Observe(micros);
    *thread_slot_ += micros;
  }

  JournalOpTimer(const JournalOpTimer&) = delete;
  JournalOpTimer& operator=(const JournalOpTimer&) = delete;

 private:
  obs::Histogram* hist_;
  double* thread_slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

namespace {

constexpr char kJournalMagicV1[] = "PROMETHEUS-JOURNAL-1";
// v2 header lines and marker payloads live on the class (Journal::kHeader*,
// Journal::kMarker*) so the replication layer shares one set of literals;
// short aliases keep this file readable.
constexpr std::string_view kJournalHeaderFull = Journal::kHeaderFull;
constexpr std::string_view kJournalHeaderCont = Journal::kHeaderCont;
constexpr std::string_view kEndOfSchema = Journal::kMarkerEndOfSchema;
constexpr std::string_view kTxnBegin = Journal::kMarkerTxnBegin;
constexpr std::string_view kTxnCommit = Journal::kMarkerTxnCommit;
constexpr std::string_view kEndRecord = Journal::kMarkerEnd;

/// Refuse to believe length fields beyond this; a torn length digit string
/// must not drive a giant allocation.
constexpr std::uint64_t kMaxRecordBytes = 1ull << 30;

std::string FrameRecord(std::string_view payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(payload));
  std::string out;
  out.reserve(payload.size() + 24);
  out += "R ";
  out += crc;
  out += ' ';
  out += std::to_string(payload.size());
  out += ':';
  out += payload;
  out += '\n';
  return out;
}

enum class FrameKind { kRecord, kEof, kCorrupt };

/// Reads one framed record. `*consumed` counts every byte taken from the
/// stream, including the bytes of a frame that turns out to be corrupt.
FrameKind ReadFrame(std::istream& in, std::string* payload,
                    std::uint64_t* consumed) {
  *consumed = 0;
  auto next = [&]() -> int {
    int ch = in.get();
    if (ch != std::char_traits<char>::eof()) ++*consumed;
    return ch;
  };
  int c = next();
  if (c == std::char_traits<char>::eof()) return FrameKind::kEof;
  if (c != 'R' || next() != ' ') return FrameKind::kCorrupt;
  char crc_text[9] = {};
  for (int i = 0; i < 8; ++i) {
    int h = next();
    if (h == std::char_traits<char>::eof() ||
        !std::isxdigit(static_cast<unsigned char>(h))) {
      return FrameKind::kCorrupt;
    }
    crc_text[i] = static_cast<char>(h);
  }
  if (next() != ' ') return FrameKind::kCorrupt;
  std::uint64_t len = 0;
  int digits = 0;
  for (;;) {
    int d = next();
    if (d == ':') break;
    if (d == std::char_traits<char>::eof() || d < '0' || d > '9' ||
        ++digits > 19) {
      return FrameKind::kCorrupt;
    }
    len = len * 10 + static_cast<std::uint64_t>(d - '0');
    if (len > kMaxRecordBytes) return FrameKind::kCorrupt;
  }
  if (digits == 0) return FrameKind::kCorrupt;
  payload->clear();
  // Chunked read: a torn length field must not trigger a giant upfront
  // allocation before we notice the stream is shorter than advertised.
  char buf[4096];
  std::uint64_t remaining = len;
  while (remaining > 0) {
    std::streamsize want = static_cast<std::streamsize>(
        remaining < sizeof(buf) ? remaining : sizeof(buf));
    in.read(buf, want);
    std::streamsize got = in.gcount();
    *consumed += static_cast<std::uint64_t>(got);
    payload->append(buf, static_cast<std::size_t>(got));
    if (got < want) return FrameKind::kCorrupt;
    remaining -= static_cast<std::uint64_t>(got);
  }
  if (next() != '\n') return FrameKind::kCorrupt;
  std::uint32_t expected =
      static_cast<std::uint32_t>(std::strtoul(crc_text, nullptr, 16));
  if (Crc32(*payload) != expected) return FrameKind::kCorrupt;
  return FrameKind::kRecord;
}

/// Counts (and discards) every byte left in the stream.
std::uint64_t Drain(std::istream& in) {
  char buf[4096];
  std::uint64_t total = 0;
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    total += static_cast<std::uint64_t>(in.gcount());
    if (in.eof()) break;
  }
  return total;
}

bool IsSchemaRecord(const std::string& payload) {
  return payload.rfind("CLASS ", 0) == 0 || payload.rfind("TMPL ", 0) == 0 ||
         payload.rfind("REL ", 0) == 0;
}

/// Restores semantic checks even on early returns.
class SemanticsSuspender {
 public:
  explicit SemanticsSuspender(Database* db) : db_(db) {
    db_->set_semantics_enabled(false);
  }
  ~SemanticsSuspender() { db_->set_semantics_enabled(true); }

 private:
  Database* db_;
};

Status ApplyTrusted(Database* db, const std::string& record) {
  bool end = false;
  Status st = ApplyRecord(db, record, &end);
  if (st.ok()) return st;
  if (st.code() == Status::Code::kIoError) return st;
  return Status::IoError("corrupt journal record: " + st.ToString());
}

/// Legacy reader for v1 journals (line-framed, no checksums).
Status ReplayV1(Database* db, std::istream& in,
                Journal::ReplayReport* report) {
  SemanticsSuspender guard(db);
  std::string line;
  bool end = false;
  while (!end && std::getline(in, line)) {
    PROMETHEUS_RETURN_IF_ERROR(ApplyTrusted(db, line));
    if (line == kEndRecord) end = true;
    if (!end && !line.empty()) ++report->applied_records;
  }
  report->clean_end = end;
  // A missing END record means the writer was still live or crashed; all
  // complete records were applied, which is the contract of a WAL.
  return Status::Ok();
}

Status ReplayV2(Database* db, std::istream& in, std::uint64_t header_bytes,
                Journal::ReplayReport* report, bool prologue_expected) {
  SemanticsSuspender guard(db);
  std::uint64_t offset = header_bytes;
  std::uint64_t boundary = offset;  // resume point: end of last applied unit
  bool prologue_done = !prologue_expected;
  bool in_txn = false;
  std::vector<std::string> txbuf;
  std::string payload;
  std::ostringstream detail;
  for (;;) {
    std::uint64_t frame_bytes = 0;
    FrameKind kind = ReadFrame(in, &payload, &frame_bytes);
    if (kind == FrameKind::kEof) break;
    if (kind == FrameKind::kCorrupt) {
      report->torn_tail = true;
      report->dropped_bytes += frame_bytes + Drain(in);
      detail << "torn/corrupt record at offset " << offset << "; ";
      break;
    }
    offset += frame_bytes;
    if (payload == kEndRecord) {
      report->clean_end = true;
      if (in_txn) {  // a writer never does this; salvage what we can
        report->torn_tail = true;
        in_txn = false;
        txbuf.clear();
      } else {
        boundary = offset - frame_bytes;  // resume over the END marker
      }
      std::uint64_t trailing = Drain(in);
      if (trailing > 0) {
        report->torn_tail = true;
        report->dropped_bytes += trailing;
        detail << trailing << " trailing bytes after END; ";
      }
      break;
    }
    if (payload == kEndOfSchema) {
      prologue_done = true;
      boundary = offset;
      continue;
    }
    if (payload == kTxnBegin) {
      in_txn = true;
      txbuf.clear();
      continue;
    }
    if (payload == kTxnCommit) {
      if (!in_txn) {
        report->torn_tail = true;
        report->dropped_bytes += Drain(in);
        detail << "stray TXC at offset " << offset << "; ";
        break;
      }
      for (const std::string& record : txbuf) {
        PROMETHEUS_RETURN_IF_ERROR(ApplyTrusted(db, record));
        ++report->applied_records;
      }
      txbuf.clear();
      in_txn = false;
      boundary = offset;
      continue;
    }
    if (in_txn) {
      txbuf.push_back(payload);
      continue;
    }
    PROMETHEUS_RETURN_IF_ERROR(ApplyTrusted(db, payload));
    if (!IsSchemaRecord(payload)) ++report->applied_records;
    boundary = offset;
  }
  if (in_txn) {
    // The file ends inside a commit flush: the transaction vanishes.
    report->torn_tail = true;
    report->dropped_records += txbuf.size();
    report->dropped_bytes += offset - boundary;
    detail << "uncommitted transaction of " << txbuf.size()
           << " records dropped; ";
  }
  report->resumable = prologue_done;
  report->append_offset = prologue_done ? boundary : 0;
  report->detail += detail.str();
  return Status::Ok();
}

Status ReplayStream(Database* db, std::istream& in,
                    Journal::ReplayReport* report, bool lenient_header) {
  std::string header;
  std::getline(in, header);
  if (header == kJournalMagicV1) {
    return ReplayV1(db, in, report);
  }
  bool cont = header == kJournalHeaderCont;
  if (header == kJournalHeaderFull || cont) {
    return ReplayV2(db, in, header.size() + 1, report,
                    /*prologue_expected=*/!cont);
  }
  if (lenient_header) {
    // The header itself is torn (a crash during journal creation): nothing
    // after it can be trusted, but nothing durable was lost either — the
    // valid prefix is empty. The caller recreates the journal.
    report->torn_tail = true;
    report->resumable = false;
    report->dropped_bytes = header.size() + Drain(in);
    report->detail += "unreadable journal header; ";
    return Status::Ok();
  }
  return Status::IoError("not a Prometheus journal");
}

}  // namespace

Result<std::unique_ptr<Journal>> Journal::Open(Database* db,
                                               const std::string& path,
                                               OpenMode mode, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (mode == OpenMode::kCreate && env->FileExists(path)) {
    Result<std::uint64_t> size = env->FileSize(path);
    if (size.ok() && size.value() > 0) {
      return Status::FailedPrecondition(
          "refusing to clobber existing journal '" + path +
          "'; open with OpenMode::kTruncate to discard it, or recover it "
          "through DurableStore");
    }
  }
  if (mode == OpenMode::kAppend) {
    if (!env->FileExists(path)) {
      return Status::FailedPrecondition("append mode needs an existing journal '" +
                                        path + "'");
    }
    PROMETHEUS_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> file,
        env->NewWritableFile(path, /*truncate=*/false));
    return std::unique_ptr<Journal>(new Journal(db, std::move(file)));
  }
  PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                              env->NewWritableFile(path, /*truncate=*/true));
  PROMETHEUS_RETURN_IF_ERROR(
      file->Append(std::string(kJournalHeaderFull) + "\n"));
  for (const std::string& record : SchemaRecords(*db)) {
    PROMETHEUS_RETURN_IF_ERROR(file->Append(FrameRecord(record)));
  }
  // A `full` journal must replay to the database's state standalone: a
  // brand-new store can already hold bootstrap data that no snapshot
  // covers, so the prologue carries that data too, not just the schema.
  // Same order as SaveSnapshot — objects first (contexts are objects, so
  // link records resolve), then links, then synonym edges.
  for (const ClassDef* cls : db->classes()) {
    for (Oid oid : db->Extent(cls->name(), /*include_subclasses=*/false)) {
      PROMETHEUS_RETURN_IF_ERROR(
          file->Append(FrameRecord(ObjectRecord(*db, oid))));
    }
  }
  for (const RelationshipDef* rel : db->relationships()) {
    for (Oid oid :
         db->LinkExtent(rel->name(), /*include_subrelationships=*/false)) {
      PROMETHEUS_RETURN_IF_ERROR(
          file->Append(FrameRecord(LinkRecord(*db, oid))));
    }
  }
  for (const ClassDef* cls : db->classes()) {
    for (Oid oid : db->Extent(cls->name(), /*include_subclasses=*/false)) {
      const Oid root = db->CanonicalOf(oid);
      if (root != oid) {
        PROMETHEUS_RETURN_IF_ERROR(file->Append(FrameRecord(
            "SYN " + std::to_string(oid) + " " + std::to_string(root))));
      }
    }
  }
  PROMETHEUS_RETURN_IF_ERROR(file->Append(FrameRecord(kEndOfSchema)));
  PROMETHEUS_RETURN_IF_ERROR(file->Flush());
  return std::unique_ptr<Journal>(new Journal(db, std::move(file)));
}

Result<std::unique_ptr<Journal>> Journal::OpenContinuation(
    Database* db, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                              env->NewWritableFile(path, /*truncate=*/true));
  PROMETHEUS_RETURN_IF_ERROR(
      file->Append(std::string(kJournalHeaderCont) + "\n"));
  PROMETHEUS_RETURN_IF_ERROR(file->Flush());
  return std::unique_ptr<Journal>(new Journal(db, std::move(file)));
}

Journal::Journal(Database* db, std::unique_ptr<WritableFile> file)
    : db_(db), file_(std::move(file)) {
  listener_ = db_->bus().Subscribe(
      [this](const Event& e) {
        std::lock_guard<std::mutex> lock(mu_);
        OnEventLocked(e);
        // Surface the sticky write-error state through the event layer:
        // a mutation that cannot be made durable is vetoed/rolled back.
        return sticky_;
      },
      /*priority=*/40);
}

Journal::~Journal() { Close(); }

Status Journal::Close() {
  // Unsubscribe outside `mu_` so no event callback can be in flight (or
  // arrive later) while we append the END record below.
  db_->bus().Unsubscribe(listener_);
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return sticky_;
  if (sticky_.ok()) {
    AppendLocked(kEndRecord);
    if (sticky_.ok()) {
      Status st;
      {
        JournalOpTimer timer(JournalMetrics::Get().sync_micros,
                             &obs::ThreadWait().journal_sync_micros);
        st = file_->Sync();
      }
      if (!st.ok()) {
        sticky_ = st;
        JournalMetrics::Get().errors->Increment();
      } else {
        sync_count_.fetch_add(1, std::memory_order_acq_rel);
        JournalMetrics::Get().syncs->Increment();
      }
    }
  }
  closed_ = true;
  Status close = file_->Close();
  if (sticky_.ok() && !close.ok()) sticky_ = close;
  return sticky_;
}

Status Journal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok() || closed_) return sticky_;
  Status st = file_->Flush();
  if (!st.ok()) sticky_ = st;
  return sticky_;
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok() || closed_) return sticky_;
  Status st;
  {
    JournalOpTimer timer(JournalMetrics::Get().sync_micros,
                         &obs::ThreadWait().journal_sync_micros);
    st = file_->Sync();
  }
  if (!st.ok()) {
    sticky_ = st;
    JournalMetrics::Get().errors->Increment();
  } else {
    sync_count_.fetch_add(1, std::memory_order_acq_rel);
    JournalMetrics::Get().syncs->Increment();
  }
  return sticky_;
}

void Journal::AppendLocked(std::string_view payload) {
  if (!sticky_.ok() || closed_) return;
  std::string frame = FrameRecord(payload);
  Status st;
  {
    JournalOpTimer timer(JournalMetrics::Get().append_micros,
                         &obs::ThreadWait().journal_append_micros);
    st = file_->Append(frame);
  }
  if (!st.ok()) {
    sticky_ = st;
    JournalMetrics::Get().errors->Increment();
    return;
  }
  bytes_written_.fetch_add(frame.size(), std::memory_order_acq_rel);
  JournalMetrics::Get().bytes->Increment(frame.size());
}

void Journal::EmitLocked(std::string record) {
  if (record.empty()) return;
  if (in_transaction_) {
    pending_.push_back(std::move(record));
  } else {
    AppendLocked(record);
    if (sticky_.ok()) {
      record_count_.fetch_add(1, std::memory_order_acq_rel);
      JournalMetrics::Get().appends->Increment();
    }
  }
}

void Journal::OnEventLocked(const Event& event) {
  switch (event.kind) {
    case EventKind::kTransactionBegin:
      in_transaction_ = true;
      pending_.clear();
      break;
    case EventKind::kAfterCommit:
      in_transaction_ = false;
      if (!pending_.empty()) {
        // TXB/TXC bracketing makes the commit atomic on replay: a crash
        // anywhere inside this flush drops the whole transaction.
        AppendLocked(kTxnBegin);
        for (std::string& record : pending_) {
          AppendLocked(record);
          if (sticky_.ok()) {
            record_count_.fetch_add(1, std::memory_order_acq_rel);
            JournalMetrics::Get().appends->Increment();
          }
        }
        AppendLocked(kTxnCommit);
        pending_.clear();
      }
      break;
    case EventKind::kAfterAbort:
      // The transaction never happened; its records (including the
      // compensating ones published during rollback) are dropped.
      in_transaction_ = false;
      pending_.clear();
      break;
    case EventKind::kAfterCreateObject:
      EmitLocked(ObjectRecord(*db_, event.subject));
      break;
    case EventKind::kAfterDeleteObject:
      EmitLocked("DELO " + std::to_string(event.subject));
      break;
    case EventKind::kAfterSetAttribute: {
      std::ostringstream rec;
      rec << "SETA " << event.subject << " "
          << std::to_string(event.attribute.size()) << ":" << event.attribute
          << " " << EncodeValue(event.new_value);
      EmitLocked(rec.str());
      break;
    }
    case EventKind::kAfterCreateLink:
      EmitLocked(LinkRecord(*db_, event.subject));
      break;
    case EventKind::kAfterDeleteLink:
      EmitLocked("DELL " + std::to_string(event.subject));
      break;
    case EventKind::kAfterSetLinkAttribute: {
      std::ostringstream rec;
      rec << "SETL " << event.subject << " "
          << std::to_string(event.attribute.size()) << ":" << event.attribute
          << " " << EncodeValue(event.new_value);
      EmitLocked(rec.str());
      break;
    }
    case EventKind::kAfterDeclareSynonym:
      // `target` is the child root united under `source`.
      EmitLocked("SYN " + std::to_string(event.target) + " " +
           std::to_string(event.source));
      break;
    // Runtime DDL. Appended immediately — never buffered in pending_ —
    // because definitions are not undone by an abort, and data records
    // after the transaction may depend on them. Schema records are
    // excluded from record_count_ on replay and on followers, so they are
    // excluded here too, or replicas would report phantom lag forever.
    case EventKind::kAfterDefineClass: {
      const std::string record = ClassRecord(*db_, event.type_name);
      if (!record.empty()) AppendLocked(record);
      break;
    }
    case EventKind::kAfterDefineTemplate: {
      const std::string record = TemplateRecord(*db_, event.type_name);
      if (!record.empty()) AppendLocked(record);
      break;
    }
    case EventKind::kAfterDefineRelationship: {
      const std::string record = RelationshipRecord(*db_, event.type_name);
      if (!record.empty()) AppendLocked(record);
      break;
    }
    default:
      break;
  }
}

Status Journal::Replay(Database* db, std::istream& in, ReplayReport* report) {
  if (!db->classes().empty() || db->object_count() != 0) {
    return Status::FailedPrecondition(
        "journals replay into an empty database");
  }
  ReplayReport local;
  Status st = ReplayStream(db, in, report != nullptr ? report : &local,
                           /*lenient_header=*/false);
  return st;
}

Status Journal::Replay(Database* db, const std::string& path,
                       ReplayReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return Replay(db, in, report);
}

Status Journal::ReplayTail(Database* db, std::istream& in,
                           ReplayReport* report) {
  ReplayReport local;
  return ReplayStream(db, in, report != nullptr ? report : &local,
                      /*lenient_header=*/true);
}

Status Journal::ReplayTail(Database* db, const std::string& path,
                           ReplayReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ReplayTail(db, in, report);
}

Journal::HeaderParse Journal::ParseHeader(std::string_view in,
                                          std::size_t* consumed) {
  *consumed = 0;
  const std::size_t line_max = kHeaderFull.size();  // both headers same size
  const std::size_t nl = in.find('\n');
  if (nl == std::string_view::npos) {
    if (in.size() > line_max) return HeaderParse::kBad;
    // Only a strict prefix of a known header may still grow into one.
    if (kHeaderFull.substr(0, in.size()) != in &&
        kHeaderCont.substr(0, in.size()) != in) {
      return HeaderParse::kBad;
    }
    return HeaderParse::kNeedMore;
  }
  const std::string_view line = in.substr(0, nl);
  *consumed = nl + 1;
  if (line == kHeaderFull) return HeaderParse::kFull;
  if (line == kHeaderCont) return HeaderParse::kCont;
  return HeaderParse::kBad;
}

Journal::FrameParse Journal::ParseFrame(std::string_view in,
                                        std::string* payload,
                                        std::size_t* consumed) {
  *consumed = 0;
  std::size_t pos = 0;
  if (in.empty()) return FrameParse::kNeedMore;
  if (in[pos] != 'R') return FrameParse::kCorrupt;
  if (++pos >= in.size()) return FrameParse::kNeedMore;
  if (in[pos] != ' ') return FrameParse::kCorrupt;
  ++pos;
  char crc_text[9] = {};
  for (int i = 0; i < 8; ++i, ++pos) {
    if (pos >= in.size()) return FrameParse::kNeedMore;
    if (!std::isxdigit(static_cast<unsigned char>(in[pos]))) {
      return FrameParse::kCorrupt;
    }
    crc_text[i] = in[pos];
  }
  if (pos >= in.size()) return FrameParse::kNeedMore;
  if (in[pos] != ' ') return FrameParse::kCorrupt;
  ++pos;
  std::uint64_t len = 0;
  int digits = 0;
  for (;;) {
    if (pos >= in.size()) return FrameParse::kNeedMore;
    const char d = in[pos];
    if (d == ':') {
      ++pos;
      break;
    }
    if (d < '0' || d > '9' || ++digits > 19) return FrameParse::kCorrupt;
    len = len * 10 + static_cast<std::uint64_t>(d - '0');
    if (len > kMaxRecordBytes) return FrameParse::kCorrupt;
    ++pos;
  }
  if (digits == 0) return FrameParse::kCorrupt;
  if (in.size() - pos < len + 1) return FrameParse::kNeedMore;
  const std::string_view body = in.substr(pos, static_cast<std::size_t>(len));
  pos += static_cast<std::size_t>(len);
  if (in[pos] != '\n') return FrameParse::kCorrupt;
  ++pos;
  const std::uint32_t expected =
      static_cast<std::uint32_t>(std::strtoul(crc_text, nullptr, 16));
  if (Crc32(body) != expected) return FrameParse::kCorrupt;
  payload->assign(body.data(), body.size());
  *consumed = pos;
  return FrameParse::kFrame;
}

}  // namespace prometheus::storage
