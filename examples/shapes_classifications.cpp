// The thesis' multiple-classification scenario (figure 4): four
// taxonomists classify an evolving pool of "shape" specimens in
// overlapping, conflicting ways. The example shows the feature the thesis
// is about — all classifications coexist over the *same* specimens, each
// is queryable in isolation through its context / a view, and synonymy
// between groups is discovered from specimen overlap rather than names.

#include <cstdio>

#include "taxonomy/taxonomy_db.h"
#include "views/view_manager.h"

using namespace prometheus;
using namespace prometheus::taxonomy;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Require(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).value();
}

const char* KindName(SynonymyKind kind) {
  switch (kind) {
    case SynonymyKind::kNone:
      return "not synonyms";
    case SynonymyKind::kProParte:
      return "pro parte synonyms";
    case SynonymyKind::kFull:
      return "full synonyms";
  }
  return "?";
}

}  // namespace

int main() {
  TaxonomyDatabase tdb;

  // The specimen pool.
  Oid square = Require(tdb.AddSpecimen("t1", "E", "white square"), "s");
  Oid rectangle =
      Require(tdb.AddSpecimen("t2", "E", "white rectangle"), "s");
  Oid oval = Require(tdb.AddSpecimen("t1", "E", "black oval"), "s");
  Oid circle = Require(tdb.AddSpecimen("t2", "E", "dark grey circle"), "s");
  Oid triangle =
      Require(tdb.AddSpecimen("t1", "E", "light grey triangle"), "s");

  // ---- Taxonomist 1 (1890): two-level classification by shape.
  Oid c1 = Require(tdb.NewClassification("Shapes, 1st ed.", "Taxonomist 1",
                                         1890),
                   "c1");
  Oid shapes1 = Require(tdb.NewTaxon(c1, Rank::kGenus, "Shapes"), "t");
  Oid squares1 = Require(tdb.NewTaxon(c1, Rank::kSpecies, "Squares"), "t");
  Oid ovals1 = Require(tdb.NewTaxon(c1, Rank::kSpecies, "Ovals"), "t");
  Oid triangles1 =
      Require(tdb.NewTaxon(c1, Rank::kSpecies, "Triangles"), "t");
  Check(tdb.PlaceTaxon(c1, shapes1, squares1, "four equal angles"), "p");
  Check(tdb.PlaceTaxon(c1, shapes1, ovals1, "no angles"), "p");
  Check(tdb.PlaceTaxon(c1, shapes1, triangles1, "three angles"), "p");
  Check(tdb.Circumscribe(c1, squares1, square), "c");
  Check(tdb.Circumscribe(c1, squares1, rectangle), "c");
  Check(tdb.Circumscribe(c1, ovals1, oval), "c");
  Check(tdb.Circumscribe(c1, ovals1, circle), "c");
  Check(tdb.Circumscribe(c1, triangles1, triangle), "c");

  // ---- Taxonomist 3 (1950): reclassifies by brightness.
  Oid c3 = Require(tdb.NewClassification("By brightness", "Taxonomist 3",
                                         1950),
                   "c3");
  Oid shapes3 = Require(tdb.NewTaxon(c3, Rank::kGenus, "Shapes"), "t");
  Oid light3 = Require(tdb.NewTaxon(c3, Rank::kSpecies, "Light"), "t");
  Oid dark3 = Require(tdb.NewTaxon(c3, Rank::kSpecies, "Dark"), "t");
  Check(tdb.PlaceTaxon(c3, shapes3, light3, "high albedo"), "p");
  Check(tdb.PlaceTaxon(c3, shapes3, dark3, "low albedo"), "p");
  Check(tdb.Circumscribe(c3, light3, square), "c");
  Check(tdb.Circumscribe(c3, light3, rectangle), "c");
  Check(tdb.Circumscribe(c3, light3, circle), "c");
  Check(tdb.Circumscribe(c3, dark3, oval), "c");
  Check(tdb.Circumscribe(c3, dark3, triangle), "c");

  // ---- Taxonomist 4 (1990): revision = clone of taxonomist 1 plus the
  //      newly discovered diamond.
  Oid c4 = Require(tdb.classifications().Clone(c1, "Shapes, revised",
                                               "Taxonomist 4", 1990),
                   "clone");
  Oid diamond = Require(tdb.AddSpecimen("t4", "E", "diamond"), "s");
  Check(tdb.Circumscribe(c4, squares1, diamond,
                         "diamonds are rotated squares"),
        "c");

  std::printf("three overlapping classifications over %zu specimens:\n",
              tdb.db().Extent(kSpecimenClass).size());
  for (Oid c : tdb.classifications().All()) {
    auto name = tdb.db().GetAttribute(c, "name");
    auto author = tdb.db().GetAttribute(c, "author");
    std::printf("  %-20s by %-14s  %zu edges\n",
                name.value().AsString().c_str(),
                author.value().AsString().c_str(),
                tdb.classifications().Edges(c).size());
  }

  // Same specimen, different parents per context.
  std::printf("\nthe white square is classified as:\n");
  for (auto [ctx, label] : {std::pair<Oid, const char*>{c1, "1890"},
                            {c3, "1950"},
                            {c4, "1990"}}) {
    for (Oid parent : tdb.classifications().Parents(ctx, square)) {
      auto wn = tdb.db().GetAttribute(parent, "working_name");
      std::printf("  %s: %s\n", label, wn.value().AsString().c_str());
    }
  }

  // Specimen-based synonym discovery across classifications.
  std::printf("\nsynonymy (specimen-based comparison):\n");
  struct Pair {
    const char* label;
    Oid ca, ta, cb, tb;
  };
  for (const Pair& p : {
           Pair{"Squares(1890) vs Light(1950)", c1, squares1, c3, light3},
           Pair{"Shapes(1890)  vs Shapes(1950)", c1, shapes1, c3, shapes3},
           Pair{"Squares(1890) vs Dark(1950)", c1, squares1, c3, dark3},
           Pair{"Squares(1890) vs Squares(1990)", c1, squares1, c4,
                squares1},
       }) {
    OverlapReport rep = tdb.CompareTaxa(p.ca, p.ta, p.cb, p.tb);
    std::printf("  %-32s %-20s (%zu shared specimens)\n", p.label,
                KindName(rep.kind), rep.shared.size());
  }

  // Views: extract one classification from the overlapping store.
  ViewManager views(&tdb.db());
  ViewDef def;
  def.name = "taxonomy_1890";
  def.context = c1;
  Check(views.Define(def), "define view");
  std::printf("\nview 'taxonomy_1890' sees %zu objects, %zu edges\n",
              views.Evaluate("taxonomy_1890").value().size(),
              views.EvaluateEdges("taxonomy_1890").value().size());

  std::printf("shapes_classifications OK\n");
  return 0;
}
