#ifndef PROMETHEUS_COMMON_RESULT_H_
#define PROMETHEUS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace prometheus {

/// A value of type `T` or the `Status` explaining why it could not be
/// produced. The database returns `Result<Oid>`, the query layer
/// `Result<ResultSet>`, and so on.
///
/// Invariant: exactly one of {status not ok, value present} holds.
template <typename T>
class Result {
 public:
  /// Success. Implicit so functions can `return value;`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  /// Failure. Implicit so functions can `return Status::NotFound(...);`.
  /// `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True when a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The contained value, or `fallback` on failure.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace prometheus

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PROMETHEUS_RETURN_IF_ERROR(expr)              \
  do {                                                \
    ::prometheus::Status _st = (expr);                \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result-returning expression, assigns its value to `lhs`, and
/// propagates the status on failure.
#define PROMETHEUS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto PROMETHEUS_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!PROMETHEUS_CONCAT_(_res_, __LINE__).ok())      \
    return PROMETHEUS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PROMETHEUS_CONCAT_(_res_, __LINE__)).value()

#define PROMETHEUS_CONCAT_(a, b) PROMETHEUS_CONCAT_IMPL_(a, b)
#define PROMETHEUS_CONCAT_IMPL_(a, b) a##b

#endif  // PROMETHEUS_COMMON_RESULT_H_
