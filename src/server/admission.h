#ifndef PROMETHEUS_SERVER_ADMISSION_H_
#define PROMETHEUS_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace prometheus::server {

/// Scheduling class of a request. Under pressure the admission controller
/// sheds lower classes first, and the executor dequeues higher classes
/// first — kLow is for bulk / best-effort work (analytics sweeps), kHigh
/// for operator traffic (health probes, the checkpoint that re-arms a
/// degraded store).
enum class Priority : std::uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

inline constexpr int kPriorityLevels = 3;

/// The clock deadlines are expressed in.
using DeadlineClock = std::chrono::steady_clock;

/// Sentinel deadline meaning "no deadline" — requests default to it, and
/// every deadline branch on the hot path is skipped for it.
inline constexpr DeadlineClock::time_point kNoDeadline =
    DeadlineClock::time_point::max();

/// Knobs of the adaptive admission policy.
struct AdmissionOptions {
  /// Queue fill fraction above which kLow submissions are refused. The
  /// thresholds stagger so load sheds lowest-priority-first as the queue
  /// climbs toward capacity.
  double shed_low_above = 0.50;
  /// Queue fill fraction above which kNormal submissions are refused
  /// (kHigh is only ever refused by a full queue).
  double shed_normal_above = 0.85;
  /// Refuse a deadline-bearing request up front when its estimated queue
  /// wait already exceeds the deadline — it would only be shed at dequeue
  /// after wasting queue space.
  bool predict_queue_wait = true;
  /// Smoothing factor of the per-job latency EWMA behind the wait estimate.
  double ewma_alpha = 0.05;
  /// Seed of the latency EWMA in microseconds; 0 disables prediction until
  /// the first completed job calibrates it.
  double initial_estimate_micros = 0;
};

/// Decides, per submission, whether the bounded queue takes the job — the
/// policy half of overload protection (the executor is the mechanism).
///
/// Inputs are the same quantities the observability layer already exports:
/// the instantaneous queue depth (`server_queue_depth`) and the request
/// latency stream (`server_request_micros`), folded into an EWMA so the
/// wait estimate tracks the current workload shape.
///
/// Thread-safe: `Admit` reads and `RecordJobMicros` updates one atomic.
class AdmissionController {
 public:
  enum class Decision : std::uint8_t {
    kAdmit,
    /// Queue fill crossed this priority's shed threshold.
    kShedOverload,
    /// Estimated queue wait exceeds the request's deadline.
    kWouldExpire,
  };

  explicit AdmissionController(const AdmissionOptions& options);

  Decision Admit(std::size_t queue_depth, std::size_t capacity, int threads,
                 Priority priority, DeadlineClock::time_point deadline,
                 DeadlineClock::time_point now) const;

  /// Feeds one completed job's execution time into the latency EWMA.
  void RecordJobMicros(double micros);

  /// Current EWMA of job execution time (microseconds).
  double estimated_job_micros() const {
    return ewma_micros_.load(std::memory_order_relaxed);
  }

  /// Expected time a job submitted now spends queued, given `queue_depth`
  /// jobs ahead of it draining through `threads` workers.
  double EstimatedQueueWaitMicros(std::size_t queue_depth, int threads) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  std::atomic<double> ewma_micros_;
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_ADMISSION_H_
