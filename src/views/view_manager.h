#ifndef PROMETHEUS_VIEWS_VIEW_MANAGER_H_
#define PROMETHEUS_VIEWS_VIEW_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "query/query_engine.h"

namespace prometheus {

/// Declaration of a view (thesis 6.1.3, figure 29): a named, virtual subset
/// of the database. A view selects objects by any combination of
///  - a class (with subclasses),
///  - a POOL predicate over `self`,
///  - a classification context (only objects participating in it),
/// which is exactly how the thesis extracts one classification at a time
/// from the global overlapping store.
struct ViewDef {
  std::string name;
  /// Restrict to instances of this class; empty = any class.
  std::string class_name;
  /// POOL boolean expression over `self`; empty = no predicate.
  std::string predicate;
  /// Restrict to members of this classification; kNullOid = whole database.
  Oid context = kNullOid;
};

/// The views layer: registry and evaluator of views.
///
/// Two flavours (the thesis discusses the trade-off in 3.2.2):
///  - *virtual* views (`Define`) are evaluated on demand against current
///    data — always consistent, no maintenance cost on update;
///  - *materialised* views (`DefineMaterialized`) cache their membership
///    and maintain it incrementally through the event layer — O(1) reads,
///    a per-mutation maintenance cost the feature-cost benchmark can
///    measure. Rollback consistency comes from compensating events.
///
/// Materialised-view limitation: predicates must depend only on the
/// member's own attributes and its participation in the view's context;
/// predicates reading *other* objects (e.g. `count(children(self,...))`)
/// are only refreshed when the member itself is touched.
class ViewManager {
 public:
  /// `db` must outlive the manager.
  explicit ViewManager(Database* db);
  ~ViewManager();

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// Registers a virtual view. The predicate is parsed now; a view must
  /// name a class or a context (or both).
  Status Define(const ViewDef& def);

  /// Registers a materialised view: membership is computed now and kept
  /// up to date through events.
  Status DefineMaterialized(const ViewDef& def);

  /// Removes a view.
  Status Drop(const std::string& name);

  /// True when `name` is defined.
  bool Has(const std::string& name) const;

  /// Names of all defined views.
  std::vector<std::string> names() const;

  /// Evaluates the view: all objects currently satisfying it. For a
  /// materialised view this returns the cache (sorted) without
  /// recomputation.
  Result<std::vector<Oid>> Evaluate(const std::string& name) const;

  /// Number of membership updates applied to materialised views (for the
  /// maintenance-cost ablation).
  std::uint64_t maintenance_updates() const { return maintenance_updates_; }

  /// Evaluates the view and restricts it to links: the edges of the view's
  /// context whose two endpoints satisfy the view (the extracted
  /// sub-classification). Requires the view to have a context.
  Result<std::vector<Oid>> EvaluateEdges(const std::string& name) const;

 private:
  struct CompiledView {
    ViewDef def;
    std::unique_ptr<pool::Expr> predicate;  // null = none
    bool materialized = false;
    std::unordered_set<Oid> members;        // materialised views only
  };

  Status DefineInternal(const ViewDef& def, bool materialized);
  const CompiledView* Find(const std::string& name) const;
  CompiledView* FindMutable(const std::string& name);
  Result<bool> Satisfies(const CompiledView& view, Oid oid) const;
  bool IsMember(const CompiledView& view, Oid oid) const;
  void RefreshMembership(CompiledView* view, Oid oid);
  void OnEvent(const Event& event);
  Result<std::vector<Oid>> Candidates(const CompiledView& view) const;

  Database* db_;
  pool::QueryEngine engine_;
  ListenerId listener_ = 0;
  std::vector<std::unique_ptr<CompiledView>> views_;
  std::uint64_t maintenance_updates_ = 0;
};

}  // namespace prometheus

#endif  // PROMETHEUS_VIEWS_VIEW_MANAGER_H_
