# Empty dependencies file for federated_herbaria.
# This may be replaced when dependencies are built.
