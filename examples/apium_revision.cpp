// The thesis' worked example (figure 3): a revision whose automatic name
// derivation must publish the new combination
// "Heliosciadium repens (Jacq.)Raguenaud".
//
// The example walks exactly through the thesis' narrative: existing
// published names and their taxonomic types are recorded, a taxonomist
// circumscribes two type specimens into a new species group inside a new
// genus group, and the ICBN-driven derivation names both groups — reusing
// Heliosciadium for the genus and minting the new combination for the
// species, typified by the older (1821) repens type.

#include <cstdio>

#include "taxonomy/report.h"
#include "taxonomy/taxonomy_db.h"

using namespace prometheus;
using namespace prometheus::taxonomy;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Require(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).value();
}

}  // namespace

int main() {
  TaxonomyDatabase tdb;
  Check(tdb.InstallIcbnRules(), "install ICBN rules");

  std::printf("--- recording published nomenclature ---\n");
  Oid apium = Require(tdb.PublishName("Apium", Rank::kGenus, "L.", 1753,
                                      "Species Plantarum"),
                      "publish Apium");
  Oid graveolens = Require(
      tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753),
      "publish graveolens");
  Check(tdb.RecordPlacement(graveolens, apium), "place graveolens");
  Oid repens = Require(
      tdb.PublishName("repens", Rank::kSpecies, "(Jacq.)Lag.", 1821),
      "publish repens");
  Check(tdb.RecordPlacement(repens, apium), "place repens");
  Oid helio = Require(tdb.PublishName("Heliosciadium", Rank::kGenus,
                                      "W.D.J.Koch.", 1824,
                                      "Nova Acta Phys.-Med."),
                      "publish Heliosciadium");
  Oid nodiflorum = Require(tdb.PublishName("nodiflorum", Rank::kSpecies,
                                           "(L.)W.D.J.Koch.", 1824),
                           "publish nodiflorum");
  Check(tdb.RecordPlacement(nodiflorum, helio), "place nodiflorum");

  std::printf("--- typification (figure 2) ---\n");
  Oid spec_graveolens = Require(
      tdb.AddSpecimen("C. von Linnaeus", "BM", "Herb.Cliff.107"),
      "specimen graveolens");
  Oid spec_repens =
      Require(tdb.AddSpecimen("Jacquin", "W", "42"), "specimen repens");
  Oid spec_nodiflorum = Require(
      tdb.AddSpecimen("W.D.J.Koch", "B", "Nova Acta 12(1)"),
      "specimen nodiflorum");
  Check(tdb.Typify(graveolens, spec_graveolens, TypeKind::kLectotype),
        "typify graveolens");
  Check(tdb.Typify(repens, spec_repens, TypeKind::kHolotype),
        "typify repens");
  Check(tdb.Typify(nodiflorum, spec_nodiflorum, TypeKind::kHolotype),
        "typify nodiflorum");
  Check(tdb.Typify(apium, graveolens, TypeKind::kHolotype), "typify Apium");
  Check(tdb.Typify(helio, nodiflorum, TypeKind::kHolotype),
        "typify Heliosciadium");

  std::printf("--- the revision: classify, then derive names ---\n");
  Oid revision =
      Require(tdb.NewClassification("Revision of Apium s.l.", "Raguenaud",
                                    2000, "PhD thesis"),
              "new classification");
  Oid taxon1 = Require(tdb.NewTaxon(revision, Rank::kGenus, "Taxon 1"),
                       "taxon 1");
  Oid taxon2 = Require(tdb.NewTaxon(revision, Rank::kSpecies, "Taxon 2"),
                       "taxon 2");
  Check(tdb.PlaceTaxon(revision, taxon1, taxon2,
                       "umbel morphology groups these species"),
        "place taxon2");
  Check(tdb.Circumscribe(revision, taxon2, spec_repens,
                         "matches Jacquin's material"),
        "circumscribe repens type");
  Check(tdb.Circumscribe(revision, taxon2, spec_nodiflorum,
                         "matches Koch's material"),
        "circumscribe nodiflorum type");

  DerivationResult genus = Require(
      tdb.DeriveName(revision, taxon1, "Raguenaud", 2000), "derive genus");
  std::printf("Taxon 1 (Genus)  -> %s%s\n", genus.full_name.c_str(),
              genus.newly_published ? "  [newly published]" : "");

  DerivationResult species = Require(
      tdb.DeriveName(revision, taxon2, "Raguenaud", 2000), "derive species");
  std::printf("Taxon 2 (Species)-> %s%s\n", species.full_name.c_str(),
              species.newly_published ? "  [newly published]" : "");

  // The derivation preserved the epithet's priority: the new combination
  // is typified by the repens (1821) type, not the younger nodiflorum.
  std::vector<Oid> types = tdb.PrimaryTypeSpecimensOf(species.name);
  std::printf("new combination typified by specimen @%llu (Jacquin's "
              "repens type @%llu)\n",
              static_cast<unsigned long long>(types.empty() ? 0 : types[0]),
              static_cast<unsigned long long>(spec_repens));

  // Traceability: the classification records *why*.
  auto why = tdb.query().Execute(
      "select l.motivation from contains l "
      "where l.target.working_name = 'Taxon 2'");
  if (why.ok() && !why.value().rows.empty()) {
    std::printf("placement motivation: %s\n",
                why.value().rows[0][0].ToString().c_str());
  }
  // The finished revision, as a taxonomist would print it.
  auto tree = RenderClassificationTree(tdb, revision);
  if (tree.ok()) std::printf("\n%s", tree.value().c_str());
  auto dossier = RenderNameDossier(tdb, species.name);
  if (dossier.ok()) std::printf("\n%s", dossier.value().c_str());

  std::printf("apium_revision OK\n");
  return 0;
}
