#include <gtest/gtest.h>

#include <algorithm>

#include "taxonomy/taxonomy_db.h"

namespace prometheus::taxonomy {
namespace {

class TaxonomyFixture : public ::testing::Test {
 protected:
  TaxonomyDatabase tdb;
};

TEST_F(TaxonomyFixture, SchemaIsComplete) {
  Database& db = tdb.db();
  EXPECT_NE(db.FindClass(kSpecimenClass), nullptr);
  EXPECT_NE(db.FindClass(kNameClass), nullptr);
  EXPECT_NE(db.FindClass(kTaxonClass), nullptr);
  EXPECT_NE(db.FindRelationship(kTypifiedBySpecimenRel), nullptr);
  EXPECT_NE(db.FindRelationship(kPlacementRel), nullptr);
  EXPECT_NE(db.FindRelationship(kContainsRel), nullptr);
  EXPECT_NE(db.FindRelationship(kCircumscribesRel), nullptr);
  // Placement combinations are published records: constant.
  EXPECT_TRUE(
      db.FindRelationship(kPlacementRel)->semantics().constant);
}

TEST_F(TaxonomyFixture, PublishAndRenderNames) {
  Oid apium = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753,
                              "Species Plantarum")
                  .value();
  Oid graveolens =
      tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).value();
  ASSERT_TRUE(tdb.RecordPlacement(graveolens, apium).ok());
  EXPECT_EQ(tdb.FullName(apium).value(), "Apium L.");
  EXPECT_EQ(tdb.FullName(graveolens).value(), "Apium graveolens L.");
  EXPECT_EQ(tdb.PlacementOf(graveolens), apium);
  EXPECT_EQ(tdb.PlacementOf(apium), kNullOid);
  EXPECT_EQ(tdb.RankOf(apium).value(), Rank::kGenus);
}

TEST_F(TaxonomyFixture, FullNameWithoutPlacementFallsBackToEpithet) {
  Oid epithet =
      tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).value();
  // A multinomial name without a recorded combination renders without the
  // genus part.
  EXPECT_EQ(tdb.FullName(epithet).value(), "graveolens L.");
  EXPECT_EQ(tdb.FullName(424242).status().code(), Status::Code::kNotFound);
}

TEST_F(TaxonomyFixture, PlacementIsConstantAndSingle) {
  Oid genus1 = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  Oid genus2 = tdb.PublishName("Helio", Rank::kGenus, "K.", 1824).value();
  Oid epithet =
      tdb.PublishName("repens", Rank::kSpecies, "J.", 1800).value();
  ASSERT_TRUE(tdb.RecordPlacement(epithet, genus1).ok());
  // A published combination is immutable: a second placement violates the
  // max_out=1 cardinality of the constant relationship.
  EXPECT_EQ(tdb.RecordPlacement(epithet, genus2).code(),
            Status::Code::kConstraintViolation);
}

TEST_F(TaxonomyFixture, TypificationRules) {
  Oid name = tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753)
                 .value();
  Oid s1 = tdb.AddSpecimen("Linnaeus", "BM", "Herb.Cliff.107").value();
  Oid s2 = tdb.AddSpecimen("Linnaeus", "BM", "Herb.Cliff.108").value();
  ASSERT_TRUE(tdb.Typify(name, s1, TypeKind::kHolotype).ok());
  // Only one holotype.
  EXPECT_EQ(tdb.Typify(name, s2, TypeKind::kHolotype).code(),
            Status::Code::kConstraintViolation);
  // Any number of isotypes.
  EXPECT_TRUE(tdb.Typify(name, s2, TypeKind::kIsotype).ok());
  EXPECT_EQ(tdb.TypesOf(name).size(), 2u);
  TypeKind holo = TypeKind::kHolotype;
  EXPECT_EQ(tdb.TypesOf(name, &holo), std::vector<Oid>{s1});
  EXPECT_EQ(tdb.PrimaryTypeSpecimensOf(name), std::vector<Oid>{s1});
  EXPECT_EQ(tdb.NamesTypifiedBy(s1), std::vector<Oid>{name});
  // Names can typify names (genus typified by species).
  Oid genus = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  ASSERT_TRUE(tdb.Typify(genus, name, TypeKind::kHolotype).ok());
  EXPECT_EQ(tdb.TypesOf(genus), std::vector<Oid>{name});
  // Types must be specimens or names.
  Oid cls = tdb.NewClassification("x", "y").value();
  EXPECT_EQ(tdb.Typify(name, cls, TypeKind::kIsotype).code(),
            Status::Code::kInvalidArgument);
}

TEST_F(TaxonomyFixture, IsotypesDoNotDriveDerivation) {
  // Thesis 2.1.2: "Isotypes are not used for naming if they are not
  // selected as lectotypes." A name reachable only through an isotype link
  // is not a derivation candidate; a new name gets published instead.
  Oid specimen = tdb.AddSpecimen("X", "E", "1").value();
  Oid iso_name =
      tdb.PublishName("isonymus", Rank::kGenus, "A.", 1800).value();
  ASSERT_TRUE(tdb.Typify(iso_name, specimen, TypeKind::kIsotype).ok());

  Oid c = tdb.NewClassification("C", "t").value();
  Oid taxon = tdb.NewTaxon(c, Rank::kGenus, "Novum").value();
  ASSERT_TRUE(tdb.Circumscribe(c, taxon, specimen).ok());
  auto r = tdb.DeriveName(c, taxon, "B.", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().name, iso_name);
  EXPECT_TRUE(r.value().newly_published);
  EXPECT_EQ(r.value().full_name, "Novum B.");

  // Electing the specimen as lectotype of the name changes the outcome.
  ASSERT_TRUE(tdb.Typify(iso_name, specimen, TypeKind::kLectotype).ok());
  Oid taxon2 = tdb.NewTaxon(c, Rank::kGenus, "Novum2").value();
  Oid specimen2 = tdb.AddSpecimen("X", "E", "2").value();
  ASSERT_TRUE(tdb.db().DeclareSynonym(specimen, specimen2).ok());
  ASSERT_TRUE(tdb.Circumscribe(c, taxon2, specimen2).ok());
  auto r2 = tdb.DeriveName(c, taxon2, "B.", 2001);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().name, iso_name);  // via the synonym duplicate, too
  EXPECT_FALSE(r2.value().newly_published);
}

TEST_F(TaxonomyFixture, RecursiveSpecimenCollection) {
  Oid c = tdb.NewClassification("C", "t1").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid sp1 = tdb.NewTaxon(c, Rank::kSpecies, "s1").value();
  Oid sp2 = tdb.NewTaxon(c, Rank::kSpecies, "s2").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, sp1).ok());
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, sp2).ok());
  Oid a = tdb.AddSpecimen("x", "E", "1").value();
  Oid b = tdb.AddSpecimen("x", "E", "2").value();
  Oid d = tdb.AddSpecimen("x", "E", "3").value();
  ASSERT_TRUE(tdb.Circumscribe(c, sp1, a).ok());
  ASSERT_TRUE(tdb.Circumscribe(c, sp1, b).ok());
  ASSERT_TRUE(tdb.Circumscribe(c, sp2, d).ok());
  auto under_genus = tdb.SpecimensUnder(c, genus);
  ASSERT_TRUE(under_genus.ok());
  EXPECT_EQ(under_genus.value().size(), 3u);
  auto under_sp1 = tdb.SpecimensUnder(c, sp1);
  EXPECT_EQ(under_sp1.value().size(), 2u);
  // Type specimens: none yet.
  EXPECT_TRUE(tdb.TypeSpecimensUnder(c, genus).value().empty());
  Oid nt = tdb.PublishName("x", Rank::kSpecies, "L.", 1753).value();
  ASSERT_TRUE(tdb.Typify(nt, a, TypeKind::kHolotype).ok());
  EXPECT_EQ(tdb.TypeSpecimensUnder(c, genus).value(), std::vector<Oid>{a});
}

/// Reproduces thesis figure 3: the classification whose derivation creates
/// the new combination Heliosciadium repens (Jacq.)Raguenaud.
class Figure3Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Published nomenclature.
    apium = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
    graveolens =
        tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).value();
    ASSERT_TRUE(tdb.RecordPlacement(graveolens, apium).ok());
    repens =
        tdb.PublishName("repens", Rank::kSpecies, "(Jacq.)Lag.", 1821)
            .value();
    ASSERT_TRUE(tdb.RecordPlacement(repens, apium).ok());
    helio = tdb.PublishName("Heliosciadium", Rank::kGenus, "W.D.J.Koch.",
                            1824)
                .value();
    nodiflorum = tdb.PublishName("nodiflorum", Rank::kSpecies,
                                 "(L.)W.D.J.Koch.", 1824)
                     .value();
    ASSERT_TRUE(tdb.RecordPlacement(nodiflorum, helio).ok());

    // Type hierarchy: specimens typify species; nodiflorum typifies
    // Heliosciadium; graveolens typifies Apium.
    spec_graveolens = tdb.AddSpecimen("Linnaeus", "BM", "Herb.Cliff.107")
                          .value();
    spec_repens = tdb.AddSpecimen("Jacquin", "W", "42").value();
    spec_nodiflorum = tdb.AddSpecimen("Koch", "B", "12").value();
    ASSERT_TRUE(
        tdb.Typify(graveolens, spec_graveolens, TypeKind::kLectotype).ok());
    ASSERT_TRUE(tdb.Typify(repens, spec_repens, TypeKind::kHolotype).ok());
    ASSERT_TRUE(
        tdb.Typify(nodiflorum, spec_nodiflorum, TypeKind::kHolotype).ok());
    ASSERT_TRUE(tdb.Typify(apium, graveolens, TypeKind::kHolotype).ok());
    ASSERT_TRUE(tdb.Typify(helio, nodiflorum, TypeKind::kHolotype).ok());

    // The new classification: Taxon 1 (Genus) contains Taxon 2 (Species);
    // Taxon 2 circumscribes the repens and nodiflorum type specimens.
    revision = tdb.NewClassification("Revision", "Raguenaud", 2000).value();
    taxon1 = tdb.NewTaxon(revision, Rank::kGenus, "Taxon 1").value();
    taxon2 = tdb.NewTaxon(revision, Rank::kSpecies, "Taxon 2").value();
    ASSERT_TRUE(tdb.PlaceTaxon(revision, taxon1, taxon2).ok());
    ASSERT_TRUE(tdb.Circumscribe(revision, taxon2, spec_repens).ok());
    ASSERT_TRUE(tdb.Circumscribe(revision, taxon2, spec_nodiflorum).ok());
  }

  TaxonomyDatabase tdb;
  Oid apium, graveolens, repens, helio, nodiflorum;
  Oid spec_graveolens, spec_repens, spec_nodiflorum;
  Oid revision, taxon1, taxon2;
};

TEST_F(Figure3Fixture, GenusDerivesToHeliosciadium) {
  // Among the type specimens under Taxon 1, only nodiflorum's climbs to a
  // Genus-rank name (Heliosciadium); Taxon 1 therefore becomes
  // Heliosciadium W.D.J.Koch.
  auto r = tdb.DeriveName(revision, taxon1, "Raguenaud", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, helio);
  EXPECT_FALSE(r.value().newly_published);
  EXPECT_EQ(r.value().full_name, "Heliosciadium W.D.J.Koch.");
  EXPECT_EQ(tdb.CalculatedNameOf(taxon1), helio);
}

TEST_F(Figure3Fixture, SpeciesDerivesToNewCombination) {
  ASSERT_TRUE(tdb.DeriveName(revision, taxon1, "Raguenaud", 2000).ok());
  // Both repens (1821) and nodiflorum (1824) name candidates exist at
  // Species rank; repens is older and wins. But repens was placed in
  // Apium, and Taxon 2 now sits inside Heliosciadium: the combination has
  // never been published, so Heliosciadium repens (Jacq.)Raguenaud is
  // created.
  auto r = tdb.DeriveName(revision, taxon2, "Raguenaud", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().newly_published);
  EXPECT_EQ(r.value().full_name, "Heliosciadium repens (Jacq.)Raguenaud");
  // The new combination is placed under Heliosciadium and typified by the
  // repens type specimen.
  Oid combo = r.value().name;
  EXPECT_EQ(tdb.PlacementOf(combo), helio);
  EXPECT_EQ(tdb.PrimaryTypeSpecimensOf(combo),
            std::vector<Oid>{spec_repens});
}

TEST_F(Figure3Fixture, DeriveAllNamesTopDown) {
  ASSERT_TRUE(tdb.DeriveAllNames(revision, "Raguenaud", 2000).ok());
  EXPECT_EQ(tdb.CalculatedNameOf(taxon1), helio);
  Oid sp_name = tdb.CalculatedNameOf(taxon2);
  ASSERT_NE(sp_name, kNullOid);
  EXPECT_EQ(tdb.FullName(sp_name).value(),
            "Heliosciadium repens (Jacq.)Raguenaud");
}

TEST_F(Figure3Fixture, ExistingCombinationIsReusedNotRepublished) {
  // If the combination already exists, derivation reuses it.
  Oid existing = tdb.PublishName("repens", Rank::kSpecies,
                                 "(Jacq.)Koch.", 1830)
                     .value();
  ASSERT_TRUE(tdb.RecordPlacement(existing, helio).ok());
  ASSERT_TRUE(tdb.DeriveName(revision, taxon1, "Raguenaud", 2000).ok());
  auto r = tdb.DeriveName(revision, taxon2, "Raguenaud", 2000);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().newly_published);
  EXPECT_EQ(r.value().name, existing);
}

TEST_F(Figure3Fixture, SameGenusKeepsPublishedBinomial) {
  // A classification where the species taxon contains only graveolens
  // material under an Apium-derived genus keeps Apium graveolens L.
  Oid c = tdb.NewClassification("C2", "t").value();
  Oid g = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid s = tdb.NewTaxon(c, Rank::kSpecies, "S").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, g, s).ok());
  ASSERT_TRUE(tdb.Circumscribe(c, s, spec_graveolens).ok());
  ASSERT_TRUE(tdb.DeriveName(c, g, "X", 2000).ok());
  EXPECT_EQ(tdb.CalculatedNameOf(g), apium);
  auto r = tdb.DeriveName(c, s, "X", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, graveolens);
  EXPECT_FALSE(r.value().newly_published);
  EXPECT_EQ(r.value().full_name, "Apium graveolens L.");
}

TEST_F(Figure3Fixture, DerivationWithoutSpecimensFails) {
  Oid c = tdb.NewClassification("empty", "t").value();
  Oid g = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  // No edges in c involve g yet -> SpecimensUnder can't even find the
  // taxon's subtree; circumscribe nothing and derivation must refuse.
  Oid s = tdb.NewTaxon(c, Rank::kSpecies, "S").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, g, s).ok());
  EXPECT_EQ(tdb.DeriveName(c, g, "X", 2000).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST_F(Figure3Fixture, NewNamePublishedWhenNoCandidates) {
  Oid c = tdb.NewClassification("new", "t").value();
  Oid g = tdb.NewTaxon(c, Rank::kGenus, "Novogenus").value();
  Oid fresh_spec = tdb.AddSpecimen("Someone", "E", "99").value();
  ASSERT_TRUE(tdb.Circumscribe(c, g, fresh_spec).ok());
  auto r = tdb.DeriveName(c, g, "Raguenaud", 2001);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().newly_published);
  EXPECT_EQ(r.value().full_name, "Novogenus Raguenaud");
  // The elected specimen became the holotype.
  EXPECT_EQ(tdb.PrimaryTypeSpecimensOf(r.value().name),
            std::vector<Oid>{fresh_spec});
}

TEST_F(Figure3Fixture, WhatIfScenarioRollsBack) {
  // Thesis 7.1.4: experiment with a re-classification inside a
  // transaction, inspect the derived names, then abort.
  Database& db = tdb.db();
  std::size_t names_before = db.Extent(kNameClass).size();
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(tdb.DeriveAllNames(revision, "Raguenaud", 2000).ok());
  Oid speculative = tdb.CalculatedNameOf(taxon2);
  EXPECT_NE(speculative, kNullOid);
  EXPECT_EQ(tdb.FullName(speculative).value(),
            "Heliosciadium repens (Jacq.)Raguenaud");
  ASSERT_TRUE(db.Abort().ok());
  // The speculative combination is gone; nothing was published.
  EXPECT_EQ(db.Extent(kNameClass).size(), names_before);
  EXPECT_EQ(tdb.CalculatedNameOf(taxon2), kNullOid);
}

/// Reproduces thesis figure 4 (the "shapes" scenario): overlapping
/// classifications by shape and by brightness.
class Figure4Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    square = tdb.AddSpecimen("t1", "E", "square").value();
    rectangle = tdb.AddSpecimen("t2", "E", "rectangle").value();
    oval = tdb.AddSpecimen("t1", "E", "oval").value();
    circle = tdb.AddSpecimen("t2", "E", "circle").value();
    triangle = tdb.AddSpecimen("t1", "E", "triangle").value();

    // Taxonomist 1: by shape.
    by_shape = tdb.NewClassification("by shape", "t1", 1890).value();
    shapes1 = tdb.NewTaxon(by_shape, Rank::kGenus, "Shapes").value();
    squares1 = tdb.NewTaxon(by_shape, Rank::kSpecies, "Squares").value();
    ovals1 = tdb.NewTaxon(by_shape, Rank::kSpecies, "Ovals").value();
    triangles1 =
        tdb.NewTaxon(by_shape, Rank::kSpecies, "Triangles").value();
    Ok(tdb.PlaceTaxon(by_shape, shapes1, squares1));
    Ok(tdb.PlaceTaxon(by_shape, shapes1, ovals1));
    Ok(tdb.PlaceTaxon(by_shape, shapes1, triangles1));
    Ok(tdb.Circumscribe(by_shape, squares1, square));
    Ok(tdb.Circumscribe(by_shape, squares1, rectangle));
    Ok(tdb.Circumscribe(by_shape, ovals1, oval));
    Ok(tdb.Circumscribe(by_shape, ovals1, circle));
    Ok(tdb.Circumscribe(by_shape, triangles1, triangle));

    // Taxonomist 3: by brightness (same specimens, different grouping).
    by_light = tdb.NewClassification("by brightness", "t3", 1950).value();
    shapes3 = tdb.NewTaxon(by_light, Rank::kGenus, "Shapes").value();
    light3 = tdb.NewTaxon(by_light, Rank::kSpecies, "Light").value();
    dark3 = tdb.NewTaxon(by_light, Rank::kSpecies, "Dark").value();
    Ok(tdb.PlaceTaxon(by_light, shapes3, light3));
    Ok(tdb.PlaceTaxon(by_light, shapes3, dark3));
    Ok(tdb.Circumscribe(by_light, light3, square));
    Ok(tdb.Circumscribe(by_light, light3, rectangle));
    Ok(tdb.Circumscribe(by_light, light3, circle));
    Ok(tdb.Circumscribe(by_light, dark3, oval));
    Ok(tdb.Circumscribe(by_light, dark3, triangle));
  }

  void Ok(const Status& st) { ASSERT_TRUE(st.ok()) << st.ToString(); }

  TaxonomyDatabase tdb;
  Oid square, rectangle, oval, circle, triangle;
  Oid by_shape, shapes1, squares1, ovals1, triangles1;
  Oid by_light, shapes3, light3, dark3;
};

TEST_F(Figure4Fixture, ClassificationsOverlapButStayDistinct) {
  // The whole-set taxa are full synonyms across classifications.
  EXPECT_EQ(tdb.CompareTaxa(by_shape, shapes1, by_light, shapes3).kind,
            SynonymyKind::kFull);
  // Squares vs Light: {square, rectangle} vs {square, rectangle, circle}.
  OverlapReport rep = tdb.CompareTaxa(by_shape, squares1, by_light, light3);
  EXPECT_EQ(rep.kind, SynonymyKind::kProParte);
  EXPECT_EQ(rep.shared.size(), 2u);
  EXPECT_EQ(rep.only_b, std::vector<Oid>{circle});
  // Squares vs Dark: disjoint.
  EXPECT_EQ(tdb.CompareTaxa(by_shape, squares1, by_light, dark3).kind,
            SynonymyKind::kNone);
}

TEST_F(Figure4Fixture, HomotypicVersusHeterotypicSynonyms) {
  // Typify: squares1 and light3 derive names sharing the square holotype
  // -> homotypic. ovals1 and dark3 get different types -> heterotypic.
  Oid sq_name =
      tdb.PublishName("squarius", Rank::kSpecies, "A.", 1800).value();
  ASSERT_TRUE(tdb.Typify(sq_name, square, TypeKind::kHolotype).ok());
  Oid light_name =
      tdb.PublishName("lucidus", Rank::kSpecies, "B.", 1900).value();
  ASSERT_TRUE(tdb.Typify(light_name, square, TypeKind::kLectotype).ok());
  ASSERT_TRUE(tdb.AscribeName(squares1, sq_name).ok());
  ASSERT_TRUE(tdb.AscribeName(light3, light_name).ok());
  EXPECT_EQ(tdb.TypeSynonymyOf(by_shape, squares1, by_light, light3),
            TypeSynonymy::kHomotypic);

  Oid oval_name =
      tdb.PublishName("ovalis", Rank::kSpecies, "A.", 1800).value();
  ASSERT_TRUE(tdb.Typify(oval_name, oval, TypeKind::kHolotype).ok());
  Oid dark_name =
      tdb.PublishName("obscurus", Rank::kSpecies, "B.", 1900).value();
  ASSERT_TRUE(tdb.Typify(dark_name, triangle, TypeKind::kHolotype).ok());
  ASSERT_TRUE(tdb.AscribeName(ovals1, oval_name).ok());
  ASSERT_TRUE(tdb.AscribeName(dark3, dark_name).ok());
  EXPECT_EQ(tdb.TypeSynonymyOf(by_shape, ovals1, by_light, dark3),
            TypeSynonymy::kHeterotypic);
  // Disjoint groups are not synonyms at all.
  EXPECT_EQ(tdb.TypeSynonymyOf(by_shape, squares1, by_light, dark3),
            TypeSynonymy::kNotSynonyms);
}

TEST_F(Figure4Fixture, RevisionByCloneAndModify) {
  // Taxonomist 4 starts from taxonomist 1's classification.
  auto clone =
      tdb.classifications().Clone(by_shape, "revision", "t4", 1990);
  ASSERT_TRUE(clone.ok());
  Oid c4 = clone.value();
  // Add the newly discovered diamond specimen.
  Oid diamond = tdb.AddSpecimen("t4", "E", "diamond").value();
  ASSERT_TRUE(tdb.Circumscribe(c4, squares1, diamond).ok());
  // The original classification is untouched.
  EXPECT_EQ(tdb.SpecimensUnder(by_shape, squares1).value().size(), 2u);
  EXPECT_EQ(tdb.SpecimensUnder(c4, squares1).value().size(), 3u);
  EXPECT_EQ(tdb.CompareTaxa(by_shape, squares1, c4, squares1).kind,
            SynonymyKind::kProParte);
}

/// Inferring the HICLAS operation vocabulary (thesis 2.2) from specimen
/// overlap.
TEST_F(TaxonomyFixture, InferRevisionOperations) {
  // Original: G1{s1,s2}, G2{s3,s4}, G3{s5} (Genus), G4{s6} (Genus).
  Oid s1 = tdb.AddSpecimen("x", "E", "1").value();
  Oid s2 = tdb.AddSpecimen("x", "E", "2").value();
  Oid s3 = tdb.AddSpecimen("x", "E", "3").value();
  Oid s4 = tdb.AddSpecimen("x", "E", "4").value();
  Oid s5 = tdb.AddSpecimen("x", "E", "5").value();
  Oid s6 = tdb.AddSpecimen("x", "E", "6").value();
  Oid a = tdb.NewClassification("original", "t1").value();
  Oid g1 = tdb.NewTaxon(a, Rank::kGenus, "G1").value();
  Oid g2 = tdb.NewTaxon(a, Rank::kGenus, "G2").value();
  Oid g3 = tdb.NewTaxon(a, Rank::kGenus, "G3").value();
  Oid g4 = tdb.NewTaxon(a, Rank::kGenus, "G4").value();
  ASSERT_TRUE(tdb.Circumscribe(a, g1, s1).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g1, s2).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g2, s3).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g2, s4).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g3, s5).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g4, s6).ok());

  // Revision: G1 split into R1{s1}, R2{s2} (partition); G2 kept intact at
  // Subgenus rank (demotion); G3 merged with part of... G3's {s5} plus
  // G4's {s6} both land in R3 (merge); nothing keeps s-free taxa.
  Oid b = tdb.NewClassification("revision", "t2").value();
  Oid r1 = tdb.NewTaxon(b, Rank::kGenus, "R1").value();
  Oid r2 = tdb.NewTaxon(b, Rank::kGenus, "R2").value();
  Oid r3 = tdb.NewTaxon(b, Rank::kGenus, "R3").value();
  Oid r4 = tdb.NewTaxon(b, Rank::kSubgenus, "R4").value();
  ASSERT_TRUE(tdb.Circumscribe(b, r1, s1).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r2, s2).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r4, s3).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r4, s4).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r3, s5).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r3, s6).ok());

  auto ops = tdb.InferRevisionOperations(a, b);
  ASSERT_EQ(ops.size(), 4u);
  for (const auto& op : ops) {
    if (op.taxon_a == g1) {
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kPartition);
      EXPECT_EQ(op.taxa_b.size(), 2u);
    } else if (op.taxon_a == g2) {
      // Same circumscription, lower rank: demotion.
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kDemotion);
      EXPECT_EQ(op.taxa_b, std::vector<Oid>{r4});
    } else {
      // g3 and g4 both feed r3: merge.
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kMerge);
      EXPECT_EQ(op.taxa_b, std::vector<Oid>{r3});
    }
  }
}

TEST_F(TaxonomyFixture, InferRecognitionMoveAndDissolution) {
  Oid s1 = tdb.AddSpecimen("x", "E", "1").value();
  Oid s2 = tdb.AddSpecimen("x", "E", "2").value();
  Oid s3 = tdb.AddSpecimen("x", "E", "3").value();
  Oid a = tdb.NewClassification("original", "t1").value();
  Oid g1 = tdb.NewTaxon(a, Rank::kGenus, "G1").value();
  Oid g2 = tdb.NewTaxon(a, Rank::kGenus, "G2").value();
  Oid g3 = tdb.NewTaxon(a, Rank::kGenus, "G3").value();
  ASSERT_TRUE(tdb.Circumscribe(a, g1, s1).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g2, s2).ok());
  ASSERT_TRUE(tdb.Circumscribe(a, g3, s3).ok());
  Oid b = tdb.NewClassification("revision", "t2").value();
  Oid r1 = tdb.NewTaxon(b, Rank::kGenus, "R1").value();  // = G1
  Oid r2 = tdb.NewTaxon(b, Rank::kGenus, "R2").value();  // G2 + extra
  Oid extra = tdb.AddSpecimen("x", "E", "9").value();
  ASSERT_TRUE(tdb.Circumscribe(b, r1, s1).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r2, s2).ok());
  ASSERT_TRUE(tdb.Circumscribe(b, r2, extra).ok());
  // s3 is dropped entirely.

  auto ops = tdb.InferRevisionOperations(a, b);
  ASSERT_EQ(ops.size(), 3u);
  for (const auto& op : ops) {
    if (op.taxon_a == g1) {
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kRecognition);
    } else if (op.taxon_a == g2) {
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kMove);
    } else {
      EXPECT_EQ(op.kind, TaxonomyDatabase::RevisionOpKind::kDissolution);
      EXPECT_TRUE(op.taxa_b.empty());
    }
  }
}

// ----------------------------------------------------------- ICBN rules

class IcbnFixture : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(tdb.InstallIcbnRules().ok()); }
  TaxonomyDatabase tdb;
};

TEST_F(IcbnFixture, FamilyNameEnding) {
  EXPECT_TRUE(tdb.PublishName("Apiaceae", Rank::kFamilia, "L.", 1753).ok());
  EXPECT_EQ(tdb.PublishName("Apium", Rank::kFamilia, "L.", 1753)
                .status()
                .code(),
            Status::Code::kConstraintViolation);
  // The eight sanctioned exceptions pass.
  EXPECT_TRUE(
      tdb.PublishName("Umbelliferae", Rank::kFamilia, "L.", 1753).ok());
  EXPECT_TRUE(tdb.PublishName("Palmae", Rank::kFamilia, "L.", 1753).ok());
}

TEST_F(IcbnFixture, GenusCapitalisation) {
  EXPECT_TRUE(tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).ok());
  EXPECT_EQ(
      tdb.PublishName("apium", Rank::kGenus, "L.", 1753).status().code(),
      Status::Code::kConstraintViolation);
}

TEST_F(IcbnFixture, SpeciesEpithetLowercase) {
  EXPECT_TRUE(
      tdb.PublishName("graveolens", Rank::kSpecies, "L.", 1753).ok());
  EXPECT_EQ(tdb.PublishName("Graveolens", Rank::kSpecies, "L.", 1753)
                .status()
                .code(),
            Status::Code::kConstraintViolation);
}

TEST_F(IcbnFixture, TypeExistenceWarns) {
  tdb.rules().clear_warnings();
  ASSERT_TRUE(tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).ok());
  // Publishing without a type warns but does not block.
  bool warned = false;
  for (const RuleViolation& v : tdb.rules().warnings()) {
    if (v.rule_name == "icbn_type_existence") warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST_F(IcbnFixture, SpeciesPlacementRule) {
  Oid c = tdb.NewClassification("C", "t").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid family = tdb.NewTaxon(c, Rank::kFamilia, "F").value();
  Oid species = tdb.NewTaxon(c, Rank::kSpecies, "s").value();
  // Species directly under Familia violates figure 38.
  EXPECT_EQ(tdb.PlaceTaxon(c, family, species).code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(tdb.PlaceTaxon(c, genus, species).ok());
}

TEST_F(IcbnFixture, SeriesPlacementRule) {
  Oid c = tdb.NewClassification("C", "t").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid sectio = tdb.NewTaxon(c, Rank::kSectio, "S").value();
  Oid series = tdb.NewTaxon(c, Rank::kSeries, "Ser").value();
  EXPECT_EQ(tdb.PlaceTaxon(c, genus, series).code(),
            Status::Code::kConstraintViolation);
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, sectio).ok());
  EXPECT_TRUE(tdb.PlaceTaxon(c, sectio, series).ok());
}

TEST_F(IcbnFixture, LaterHomonymWarns) {
  ASSERT_TRUE(tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).ok());
  tdb.rules().clear_warnings();
  // Same element at a different rank: no homonym warning.
  ASSERT_TRUE(tdb.PublishName("Apium", Rank::kSubgenus, "X.", 1800).ok());
  bool warned = false;
  for (const RuleViolation& v : tdb.rules().warnings()) {
    if (v.rule_name == "icbn_later_homonym") warned = true;
  }
  EXPECT_FALSE(warned);
  // Same element at the same rank: the later homonym warns but succeeds.
  auto homonym = tdb.PublishName("Apium", Rank::kGenus, "Other.", 1820);
  ASSERT_TRUE(homonym.ok());
  for (const RuleViolation& v : tdb.rules().warnings()) {
    if (v.rule_name == "icbn_later_homonym") warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST_F(IcbnFixture, SubRankPlacementRules) {
  Oid c = tdb.NewClassification("C", "t").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid species = tdb.NewTaxon(c, Rank::kSpecies, "s").value();
  Oid subspecies = tdb.NewTaxon(c, Rank::kSubspecies, "ssp").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, species).ok());
  // A subspecies cannot hang directly off a genus...
  EXPECT_EQ(tdb.PlaceTaxon(c, genus, subspecies).code(),
            Status::Code::kConstraintViolation);
  // ...only off a species.
  EXPECT_TRUE(tdb.PlaceTaxon(c, species, subspecies).ok());
  // Same for subgenus below genus.
  Oid subgenus = tdb.NewTaxon(c, Rank::kSubgenus, "sg").value();
  Oid family = tdb.NewTaxon(c, Rank::kFamilia, "Apiaceae").value();
  EXPECT_EQ(tdb.PlaceTaxon(c, family, subgenus).code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(tdb.PlaceTaxon(c, genus, subgenus).ok());
}

TEST_F(IcbnFixture, GeneralRankOrderRule) {
  Oid c = tdb.NewClassification("C", "t").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid family = tdb.NewTaxon(c, Rank::kFamilia, "Apiaceae").value();
  // A genus cannot contain a family.
  EXPECT_EQ(tdb.PlaceTaxon(c, genus, family).code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(tdb.PlaceTaxon(c, family, genus).ok());
}

// ----------------------------------------------------- extension features

TEST_F(TaxonomyFixture, DeterminationsCarryNoClassificationValue) {
  Oid specimen = tdb.AddSpecimen("Watson", "E", "w1").value();
  Oid name = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  auto det = tdb.AddDetermination(specimen, name, "Newman", 1998);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  std::vector<Oid> dets = tdb.DeterminationsOf(specimen);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_TRUE(tdb.db()
                  .GetLinkAttribute(dets[0], "determiner")
                  .value()
                  .Equals(Value::String("Newman")));
  // Determinations are context-free: they never appear in classifications.
  EXPECT_EQ(tdb.db().GetLink(dets[0])->context, kNullOid);
}

TEST_F(TaxonomyFixture, NameStatusLifecycle) {
  Oid name = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  EXPECT_EQ(tdb.NameStatusOf(name).value(), NameStatus::kPublished);
  ASSERT_TRUE(tdb.SetNameStatus(name, NameStatus::kConserved).ok());
  EXPECT_EQ(tdb.NameStatusOf(name).value(), NameStatus::kConserved);
  ASSERT_TRUE(tdb.SetNameStatus(name, NameStatus::kRejected).ok());
  EXPECT_EQ(tdb.NameStatusOf(name).value(), NameStatus::kRejected);
  EXPECT_EQ(tdb.SetNameStatus(999999, NameStatus::kInvalid).code(),
            Status::Code::kNotFound);
}

TEST_F(TaxonomyFixture, FindHomonyms) {
  Oid a1 = tdb.PublishName("Apium", Rank::kGenus, "L.", 1753).value();
  Oid a2 = tdb.PublishName("Apium", Rank::kGenus, "Other.", 1800).value();
  tdb.PublishName("Apium", Rank::kSubgenus, "X.", 1810).value();
  tdb.PublishName("Helio", Rank::kGenus, "K.", 1824).value();
  auto homonyms = tdb.FindHomonyms();
  ASSERT_EQ(homonyms.size(), 1u);
  EXPECT_EQ(homonyms[0], (std::vector<Oid>{a1, a2}));
}

TEST_F(TaxonomyFixture, ValidateClassificationDetectsProblems) {
  Oid c = tdb.NewClassification("C", "t").value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "G").value();
  Oid species = tdb.NewTaxon(c, Rank::kSpecies, "s").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, species).ok());
  EXPECT_TRUE(tdb.ValidateClassification(c).ok());
  // Rank inversion (no ICBN rules installed, so the edge is accepted but
  // validation catches it).
  Oid family = tdb.NewTaxon(c, Rank::kFamilia, "F").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, species, family).ok());
  EXPECT_EQ(tdb.ValidateClassification(c).code(),
            Status::Code::kConstraintViolation);
}

class ConservationFixture : public Figure3Fixture {};

TEST_F(ConservationFixture, RejectedNamesAreSkipped) {
  // Reject repens: derivation for Taxon 2 must fall back to nodiflorum,
  // which is already combined under Heliosciadium.
  ASSERT_TRUE(tdb.SetNameStatus(repens, NameStatus::kRejected).ok());
  ASSERT_TRUE(tdb.DeriveName(revision, taxon1, "Raguenaud", 2000).ok());
  auto r = tdb.DeriveName(revision, taxon2, "Raguenaud", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, nodiflorum);
  EXPECT_EQ(r.value().full_name, "Heliosciadium nodiflorum (L.)W.D.J.Koch.");
}

TEST_F(ConservationFixture, ConservedNamesOverridePriority) {
  // nodiflorum (1824) is younger than repens (1821) but conserved: it wins.
  ASSERT_TRUE(tdb.SetNameStatus(nodiflorum, NameStatus::kConserved).ok());
  ASSERT_TRUE(tdb.DeriveName(revision, taxon1, "Raguenaud", 2000).ok());
  auto r = tdb.DeriveName(revision, taxon2, "Raguenaud", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, nodiflorum);
  EXPECT_FALSE(r.value().newly_published);
}

// ------------------------------------------------------- POOL integration

TEST_F(TaxonomyFixture, TypicalTaxonomicQueries) {
  // Thesis 7.1.3.1: the query suite taxonomists actually run.
  Oid c = tdb.NewClassification("Flora", "t1", 1999).value();
  Oid genus = tdb.NewTaxon(c, Rank::kGenus, "Apium").value();
  Oid sp = tdb.NewTaxon(c, Rank::kSpecies, "graveolens").value();
  ASSERT_TRUE(tdb.PlaceTaxon(c, genus, sp, "leaf morphology").ok());
  Oid s1 = tdb.AddSpecimen("Watson", "E", "w1", 1995).value();
  Oid s2 = tdb.AddSpecimen("Pullan", "E", "p1", 1997).value();
  ASSERT_TRUE(tdb.Circumscribe(c, sp, s1).ok());
  ASSERT_TRUE(tdb.Circumscribe(c, sp, s2).ok());

  // Q: taxa at a given rank.
  auto q1 = tdb.query().Execute(
      "select t from CircumscriptionTaxon t where t.rank = 'Species'");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1.value().rows.size(), 1u);

  // Q: specimens under a taxon, recursively, in context.
  pool::Environment env{{"g", Value::Ref(genus)}, {"c", Value::Ref(c)}};
  auto q2 = tdb.query().Eval(
      "count(traverse(g, 'contains', 1, 0, 'out', c))", env);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2.value().Equals(Value::Int(1)));

  // Q: collectors of specimens of a taxon (path through collection).
  auto q3 = tdb.query().Eval("children(sp, 'circumscribes', c).collector",
                             {{"sp", Value::Ref(sp)}, {"c", Value::Ref(c)}});
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3.value().AsList().size(), 2u);

  // Q: traceability — why was the species placed there?
  auto q4 = tdb.query().Execute(
      "select l.motivation from contains l where l.target.working_name = "
      "'graveolens'");
  ASSERT_TRUE(q4.ok());
  ASSERT_EQ(q4.value().rows.size(), 1u);
  EXPECT_TRUE(
      q4.value().rows[0][0].Equals(Value::String("leaf morphology")));
}

}  // namespace
}  // namespace prometheus::taxonomy
