#ifndef PROMETHEUS_STORAGE_JOURNAL_H_
#define PROMETHEUS_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "storage/fault.h"

namespace prometheus::storage {

/// Append-only operation journal: the incremental persistence mechanism
/// complementing snapshots (together they play the role of the thesis'
/// underlying storage system).
///
/// Format v2 — every record is an individually checksummed frame:
///
///   PROMETHEUS-JOURNAL-2 full|cont\n          (header line)
///   R <crc32:8-hex> <len>:<payload>\n         (one frame per record)
///
/// A `full` journal starts with the schema records of the database at open
/// time followed by an `EOS` (end-of-schema) marker; a `cont` journal (a
/// continuation opened after a checkpoint by `DurableStore`) holds mutation
/// records only. Committed transactions are bracketed by `TXB`/`TXC`
/// markers so replay applies them atomically: a crash that tears the tail
/// of a commit makes the whole transaction vanish. `END` marks a clean
/// close. Length framing (rather than line splitting) means payloads may
/// contain any byte, including newlines.
///
/// Record capture through the event layer:
///  - mutations outside a transaction are appended immediately;
///  - mutations inside a transaction are buffered and flushed at commit —
///    an aborted transaction leaves no trace (its compensating events are
///    buffered and discarded too);
///  - schema changes after opening are not journalled (define classes
///    before opening, as the thesis' prototype fixes its schema at start).
///
/// Error discipline: the journal carries a *sticky* error status. The first
/// failed write latches it; from then on every event the journal observes is
/// vetoed with that status, so mutations that can no longer be made durable
/// are rolled back by the database instead of silently diverging from the
/// log. `Flush()`, `Sync()` and `status()` surface the sticky state.
///
/// Thread-safety: the append path is internally serialised — the event
/// callback, `Flush`, `Sync`, `Close`, `status()` and `record_count()` may
/// be called from any thread and frames are never torn or interleaved.
/// (Mutations themselves are already serialised by the database's epoch
/// guard; the journal's own mutex additionally lets a background thread
/// flush/fsync while a writer appends.)
class Journal {
 public:
  /// How `Open` treats an existing file at the journal path.
  enum class OpenMode {
    /// Refuse to clobber a non-empty existing journal (the default).
    kCreate,
    /// Explicitly truncate whatever is there.
    kTruncate,
    /// Append to an existing v2 journal whose tail was already replayed and
    /// truncated to a record boundary (used by `DurableStore`). No header
    /// or schema prologue is written.
    kAppend,
  };

  /// Opens `path`, writes the header (and, except in kAppend mode, the
  /// schema prologue) and subscribes to `db`'s event bus. `db` must outlive
  /// the journal. Files are written through `env` (default:
  /// `Env::Default()`), which is how fault-injection tests reach the
  /// journal's writes.
  static Result<std::unique_ptr<Journal>> Open(Database* db,
                                               const std::string& path,
                                               OpenMode mode = OpenMode::kCreate,
                                               Env* env = nullptr);

  /// Opens a continuation journal: v2 header with the `cont` tag and no
  /// schema prologue. Replayable only on top of the checkpoint state it
  /// continues (see `DurableStore`).
  static Result<std::unique_ptr<Journal>> OpenContinuation(
      Database* db, const std::string& path, Env* env = nullptr);

  /// Closes (best effort) if `Close()` was not called.
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Unsubscribes, appends the END record and fsyncs. Returns the sticky
  /// status (a failed END/sync latches it). Idempotent.
  Status Close();

  /// Forces buffered committed records to the OS; returns the sticky status.
  Status Flush();

  /// Flush + fsync; returns the sticky status.
  Status Sync();

  /// The sticky error state: Ok until a write has failed.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sticky_;
  }

  /// Number of mutation records written so far (excluding the schema
  /// prologue and the TXB/TXC/END markers).
  std::uint64_t record_count() const {
    return record_count_.load(std::memory_order_acquire);
  }

  /// Framed bytes appended since this journal was opened — every frame,
  /// including markers, but not the header/schema prologue written by
  /// `Open`. Together with `sync_count` this quantifies the journal's I/O
  /// (surfaced through `DurableStore::Stats` and the metrics registry).
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_acquire);
  }

  /// Explicit fsync barriers taken (`Sync` and the one in `Close`).
  std::uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_acquire);
  }

  /// What `Replay` found. Torn or corrupt tails are *recovered from*, not
  /// fatal: the valid prefix is applied and the dropped remainder reported.
  struct ReplayReport {
    /// Mutation records applied.
    std::uint64_t applied_records = 0;
    /// Intact records discarded because their transaction never committed.
    std::uint64_t dropped_records = 0;
    /// Bytes of torn/corrupt tail discarded.
    std::uint64_t dropped_bytes = 0;
    /// File offset at which a writer may resume appending (after truncating
    /// the file to this size). 0 when the journal is not resumable.
    std::uint64_t append_offset = 0;
    /// END record seen: the journal was closed cleanly.
    bool clean_end = false;
    /// The tail was torn, corrupt, or an uncommitted transaction.
    bool torn_tail = false;
    /// Header and schema prologue are intact; appending at `append_offset`
    /// yields a well-formed journal.
    bool resumable = false;
    /// Human-readable account of anything dropped.
    std::string detail;
  };

  /// Rebuilds a database from a journal file. `db` must be empty. A v2
  /// journal with a damaged tail replays its valid prefix and reports the
  /// damage in `report` (pass nullptr to ignore); v1 journals replay with
  /// the legacy line-based reader.
  static Status Replay(Database* db, const std::string& path,
                       ReplayReport* report = nullptr);
  static Status Replay(Database* db, std::istream& in,
                       ReplayReport* report = nullptr);

  /// Replays a journal into a database that may already hold state (the
  /// checkpoint a `cont` journal continues from). Also accepts a journal
  /// with an unreadable header, treating it as an empty valid prefix
  /// (resumable=false) — recovery then recreates the journal.
  static Status ReplayTail(Database* db, const std::string& path,
                           ReplayReport* report = nullptr);
  static Status ReplayTail(Database* db, std::istream& in,
                           ReplayReport* report = nullptr);

  // ------------------------------------------------------ wire-level access
  //
  // The physical v2 format, exposed so the replication layer can consume a
  // journal as a byte stream shipped over the network and re-verify every
  // CRC on receipt. These are pure functions over buffers: incremental
  // (partial input reports kNeedMore, never a false kCorrupt) and
  // allocation-bounded (a torn length field cannot drive a giant
  // allocation).

  /// Header lines (without the trailing newline).
  static constexpr std::string_view kHeaderFull = "PROMETHEUS-JOURNAL-2 full";
  static constexpr std::string_view kHeaderCont = "PROMETHEUS-JOURNAL-2 cont";
  /// Marker payloads (never valid record tags).
  static constexpr std::string_view kMarkerEndOfSchema = "EOS";
  static constexpr std::string_view kMarkerTxnBegin = "TXB";
  static constexpr std::string_view kMarkerTxnCommit = "TXC";
  static constexpr std::string_view kMarkerEnd = "END";

  enum class HeaderParse {
    kNeedMore,  ///< a prefix of a valid header; feed more bytes
    kFull,      ///< v2 `full` header; `*consumed` covers it and its newline
    kCont,      ///< v2 `cont` header, same contract
    kBad,       ///< cannot be a v2 header
  };
  /// Incremental parse of the header line at the start of `in`.
  static HeaderParse ParseHeader(std::string_view in, std::size_t* consumed);

  enum class FrameParse {
    kNeedMore,  ///< a prefix of a well-formed frame; feed more bytes
    kFrame,     ///< one intact frame: `*payload` set, `*consumed` bytes used
    kCorrupt,   ///< the bytes cannot be (or fail the CRC of) a frame
  };
  /// Incremental parse of one `R <crc> <len>:<payload>\n` frame at the
  /// start of `in`. On kFrame the payload's CRC has been verified.
  static FrameParse ParseFrame(std::string_view in, std::string* payload,
                               std::size_t* consumed);

 private:
  Journal(Database* db, std::unique_ptr<WritableFile> file);

  /// The Locked* helpers assume `mu_` is held by the caller.
  void OnEventLocked(const Event& event);
  void EmitLocked(std::string record);
  /// Frames `payload` and appends it; latches the sticky status on failure.
  void AppendLocked(std::string_view payload);

  Database* db_;
  std::unique_ptr<WritableFile> file_;
  ListenerId listener_ = 0;

  /// Serialises the append path (event callback, Flush/Sync/Close) so
  /// frames are atomic with respect to concurrent flushers.
  mutable std::mutex mu_;
  bool in_transaction_ = false;
  bool closed_ = false;
  std::vector<std::string> pending_;  ///< records of the open transaction
  std::atomic<std::uint64_t> record_count_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> sync_count_{0};
  Status sticky_;
};

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_JOURNAL_H_
