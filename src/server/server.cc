#include "server/server.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prometheus::server {

namespace {

/// Per-request-type latency histograms plus the executed/error counters
/// the kStats snapshot surfaces; registered once, pointers cached.
struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Histogram* ping_micros;
  obs::Histogram* query_micros;
  obs::Histogram* mutation_micros;
  obs::Histogram* stats_micros;

  obs::Histogram* ForKind(RequestKind kind) const {
    switch (kind) {
      case RequestKind::kPing:
        return ping_micros;
      case RequestKind::kQuery:
        return query_micros;
      case RequestKind::kMutation:
        return mutation_micros;
      case RequestKind::kStats:
        return stats_micros;
    }
    return ping_micros;
  }

  static const ServerMetrics& Get() {
    static const ServerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      const char* help = "Request latency on the worker (microseconds)";
      ServerMetrics sm;
      sm.requests = reg.GetCounter("server_requests_total",
                                   "Requests executed by the server");
      sm.errors = reg.GetCounter(
          "server_request_errors_total",
          "Requests that executed with a non-OK status");
      sm.ping_micros =
          reg.GetHistogram("server_request_micros{type=\"ping\"}", help);
      sm.query_micros =
          reg.GetHistogram("server_request_micros{type=\"query\"}", help);
      sm.mutation_micros =
          reg.GetHistogram("server_request_micros{type=\"mutation\"}", help);
      sm.stats_micros =
          reg.GetHistogram("server_request_micros{type=\"stats\"}", help);
      return sm;
    }();
    return m;
  }
};

/// Flattens a span tree into the {stage, micros, rows, detail} table a
/// PROFILE response carries: one row per node, nesting shown by indenting
/// the stage name.
void FlattenTrace(const obs::TraceNode& node, int depth,
                  pool::ResultSet* out) {
  std::vector<Value> row;
  row.push_back(
      Value::String(std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                    node.name));
  row.push_back(Value::Double(node.micros));
  row.push_back(node.rows >= 0 ? Value::Int(node.rows) : Value::Null());
  row.push_back(Value::String(node.detail));
  out->rows.push_back(std::move(row));
  for (const obs::TraceNode& child : node.children) {
    FlattenTrace(child, depth + 1, out);
  }
}

pool::ResultSet ProfileTable(const obs::TraceNode& trace) {
  pool::ResultSet table;
  table.columns = {"stage", "micros", "rows", "detail"};
  FlattenTrace(trace, 0, &table);
  return table;
}

}  // namespace

Server::Server(Database* db, Options options)
    : db_(db),
      engine_(db, options.indexes),
      slow_log_(options.slow_query_micros, options.slow_query_capacity),
      executor_(ThreadPoolExecutor::Options{options.worker_threads,
                                            options.queue_capacity}),
      sessions_(this) {}

Server::~Server() { Shutdown(/*drain=*/true); }

void Server::Shutdown(bool drain) {
  // Stop admission first so sessions racing Shutdown resolve as kShutdown
  // or kRejected, never hang.
  stopped_.store(true, std::memory_order_release);
  sessions_.CloseAll();
  executor_.Shutdown(drain);
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = executor_.rejected();
  s.queries = queries_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::future<Response> Server::Enqueue(Request req) {
  const RequestId id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  auto respond_unrun = [promise, id](ResponseCode code, Status status) {
    Response resp;
    resp.id = id;
    resp.code = code;
    resp.status = std::move(status);
    promise->set_value(std::move(resp));
  };

  if (stopped_.load(std::memory_order_acquire)) {
    respond_unrun(ResponseCode::kShutdown,
                  Status::FailedPrecondition("server is shut down"));
    return future;
  }

  // The request moves into the job via shared_ptr: std::function requires
  // copyable targets, and a Request (its closure, its inits) should not be
  // deep-copied per hop.
  auto boxed = std::make_shared<Request>(std::move(req));
  ThreadPoolExecutor::Job job = [this, id, promise, boxed](bool run) {
    if (!run) {
      Response resp;
      resp.id = id;
      resp.code = ResponseCode::kShutdown;
      resp.status =
          Status::FailedPrecondition("server shut down before execution");
      promise->set_value(std::move(resp));
      return;
    }
    promise->set_value(Execute(id, *boxed));
  };

  if (!executor_.Submit(std::move(job))) {
    respond_unrun(
        ResponseCode::kRejected,
        Status::FailedPrecondition("work queue full (backpressure)"));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

Response Server::Execute(RequestId id, const Request& req) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.ForKind(req.kind));
  Response resp;
  switch (req.kind) {
    case RequestKind::kPing:
      resp.id = id;
      resp.epoch = db_->epoch();
      break;
    case RequestKind::kQuery:
      resp = ExecuteQuery(id, req);
      queries_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kMutation:
      resp = ExecuteMutation(id, req);
      mutations_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kStats:
      resp = ExecuteStats(id, req);
      break;
  }
  if (!resp.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
  }
  return resp;
}

Response Server::ExecuteQuery(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  // Shared lock: concurrent with other queries, excluded from mutations.
  // The guard pins the epoch, so the whole evaluation sees one snapshot.
  Database::ReadGuard guard(*db_);
  resp.epoch = guard.epoch();

  if (pool::IsProfileQuery(req.query)) {
    Result<pool::QueryProfile> result = engine_.ExecuteProfiled(req.query);
    if (!result.ok()) {
      resp.status = result.status();
      return resp;
    }
    pool::QueryProfile& profile = result.value();
    resp.result = ProfileTable(profile.trace);
    resp.text = obs::RenderTree(profile.trace);
    if (slow_log_.ShouldRecord(profile.trace.micros)) {
      slow_log_.Record({id, pool::StripProfileKeyword(req.query),
                        profile.trace.micros, resp.text});
    }
    return resp;
  }

  // The clock is only read when the slow-query log wants it.
  std::chrono::steady_clock::time_point start;
  if (slow_log_.enabled()) start = std::chrono::steady_clock::now();
  Result<pool::ResultSet> result = engine_.Execute(req.query);
  if (result.ok()) {
    resp.result = std::move(result).value();
  } else {
    resp.status = result.status();
  }
  if (slow_log_.enabled()) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (slow_log_.ShouldRecord(micros)) {
      // Re-plan for the log entry: the slow path has already paid far more
      // than an Explain costs, and the plan is the diagnostic that matters.
      Result<std::string> plan = engine_.Explain(req.query);
      slow_log_.Record(
          {id, req.query, micros,
           plan.ok() ? std::move(plan).value() : plan.status().ToString()});
    }
  }
  return resp;
}

Response Server::ExecuteStats(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  resp.epoch = db_->epoch();
  // The registry synchronises itself; no database lock is needed, so a
  // stats probe never queues behind a long mutation's write guard.
  obs::MetricsSnapshot snap = obs::Registry().Snapshot();
  resp.text = req.stats_format == StatsFormat::kPrometheusText
                  ? obs::RenderPrometheusText(snap)
                  : obs::RenderJson(snap);
  return resp;
}

Response Server::ExecuteMutation(RequestId id, const Request& req) {
  Response resp;
  resp.id = id;
  Database::WriteGuard guard(*db_);
  resp.epoch = db_->epoch();
  const MutationOp& op = req.mutation;
  switch (op.kind) {
    case MutationOp::Kind::kCreateObject: {
      Result<Oid> r = db_->CreateObject(op.type_name, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetAttribute:
      resp.status = db_->SetAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteObject:
      resp.status = db_->DeleteObject(op.target);
      break;
    case MutationOp::Kind::kCreateLink: {
      Result<Oid> r = db_->CreateLink(op.type_name, op.source, op.dest,
                                      op.context, op.inits);
      if (r.ok()) {
        resp.oid = r.value();
      } else {
        resp.status = r.status();
      }
      break;
    }
    case MutationOp::Kind::kSetLinkAttribute:
      resp.status = db_->SetLinkAttribute(op.target, op.attribute, op.value);
      break;
    case MutationOp::Kind::kDeleteLink:
      resp.status = db_->DeleteLink(op.target);
      break;
    case MutationOp::Kind::kCustom:
      if (op.custom == nullptr) {
        resp.status =
            Status::InvalidArgument("custom mutation without a body");
      } else {
        resp.status = op.custom(*db_);
        // A transaction must not outlive its request: the write guard is
        // released when this response is produced, and a dangling open
        // transaction would poison every later writer.
        if (db_->in_transaction()) {
          (void)db_->Abort();
          if (resp.status.ok()) {
            resp.status = Status::FailedPrecondition(
                "custom mutation left a transaction open (rolled back)");
          }
        }
      }
      break;
  }
  return resp;
}

}  // namespace prometheus::server
