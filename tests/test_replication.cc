// Journal-shipping replication (src/replication/): the stream applier's
// unit atomicity under byte-level truncation and corruption, the leader
// endpoint's pruning pins, and end-to-end leader/follower drills over real
// sockets — convergence to byte-identical query results, restart-resume
// from the implicit cursor, torn-frame streams, 410-driven rebootstrap and
// follower promotion.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "replication/applier.h"
#include "replication/follower.h"
#include "replication/source.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault.h"
#include "storage/journal.h"
#include "storage/recovery.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::net::HttpConnection;
using prometheus::net::HttpFetch;
using prometheus::net::HttpFrontEnd;
using prometheus::net::HttpRequest;
using prometheus::net::HttpResponse;
using prometheus::net::ParseHttpResponse;
using prometheus::net::ParseResult;
using prometheus::net::SerializeHttpResponse;
using prometheus::replication::Follower;
using prometheus::replication::JournalStreamApplier;
using prometheus::replication::ReplicationSource;
using prometheus::server::Client;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::Server;
using prometheus::storage::DurableStore;
using prometheus::storage::Journal;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Status BootstrapSchema(Database* db) {
  return db
      ->DefineClass("Sp", {},
                    {Attr("name", ValueType::kString),
                     Attr("rank", ValueType::kInt)})
      .status();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Order-sensitive digest of the replicated state: every Sp row rendered.
std::string StateDigest(Client* client) {
  auto rs = client->Query("select s.name, s.rank from Sp s");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  std::string digest;
  for (const auto& row : rs.value().rows) {
    for (const auto& v : row) digest += v.ToString() + "|";
    digest += "\n";
  }
  return digest;
}

/// A full writable leader: durable store + server + replication endpoint
/// mounted on an HTTP front end. `wrap`, when set, interposes on the
/// replication aux handler (fault injection).
struct Leader {
  using Wrap = std::function<bool(
      const std::function<bool(const HttpRequest&, bool, std::string*)>&,
      const HttpRequest&, bool, std::string*)>;

  std::unique_ptr<DurableStore> store;
  std::unique_ptr<Server> server;
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<HttpFrontEnd> front;

  static std::unique_ptr<Leader> Start(const std::string& dir,
                                       ReplicationSource::Options src_options =
                                           ReplicationSource::Options{},
                                       Wrap wrap = nullptr) {
    auto leader = std::make_unique<Leader>();
    DurableStore::Options store_options;
    store_options.bootstrap = [](Database* db) {
      return BootstrapSchema(db);
    };
    auto store = DurableStore::Open(dir, store_options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return nullptr;
    leader->store = std::move(store).value();

    Server::Options server_options;
    server_options.worker_threads = 2;
    server_options.store = leader->store.get();
    leader->server = std::make_unique<Server>(&leader->store->db(),
                                              server_options);
    leader->source = std::make_unique<ReplicationSource>(leader->store.get(),
                                                         src_options);

    HttpFrontEnd::Options front_options;
    // Each polling follower parks on one handler thread; leave headroom
    // for a scraper besides the two followers the tests run.
    front_options.handler_threads = 4;
    auto inner = leader->source->AuxHandler();
    if (wrap) {
      front_options.aux_handler = [inner, wrap](const HttpRequest& req,
                                                bool keep_alive,
                                                std::string* out) {
        return wrap(inner, req, keep_alive, out);
      };
    } else {
      front_options.aux_handler = inner;
    }
    leader->front = std::make_unique<HttpFrontEnd>(leader->server.get(),
                                                   front_options);
    EXPECT_TRUE(leader->front->Start().ok());
    return leader;
  }

  int port() const { return front->port(); }

  void Stop() {
    front->Stop();
    server->Shutdown();
    source.reset();  // uninstalls the prune-floor hook before the store dies
  }

  ~Leader() {
    if (front) Stop();
  }
};

Follower::Options FollowerOptions(const std::string& dir, int leader_port,
                                  const std::string& id) {
  Follower::Options o;
  o.dir = dir;
  o.leader_port = leader_port;
  o.follower_id = id;
  o.poll_interval_ms = 5;
  return o;
}

// ------------------------------------------------------------ applier unit

/// Writes a small but representative history through a DurableStore —
/// standalone mutations, a committed transaction, attribute updates — and
/// returns the raw bytes of its first (full-header) journal.
std::string LeaderJournalBytes(const std::string& dir, Database** db_out,
                               std::unique_ptr<DurableStore>* store_out) {
  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) { return BootstrapSchema(db); };
  auto store = DurableStore::Open(dir, store_options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  Database& db = store.value()->db();
  for (int i = 0; i < 4; ++i) {
    auto oid = db.CreateObject(
        "Sp", {{"name", Value::String("sp" + std::to_string(i))},
               {"rank", Value::Int(i)}});
    EXPECT_TRUE(oid.ok());
  }
  EXPECT_TRUE(db.Begin().ok());
  auto txa = db.CreateObject("Sp", {{"name", Value::String("tx-a")},
                                    {"rank", Value::Int(100)}});
  auto txb = db.CreateObject("Sp", {{"name", Value::String("tx-b")},
                                    {"rank", Value::Int(200)}});
  EXPECT_TRUE(txa.ok() && txb.ok());
  EXPECT_TRUE(db.SetAttribute(txa.value(), "rank", Value::Int(101)).ok());
  EXPECT_TRUE(db.Commit().ok());
  auto last = db.CreateObject("Sp", {{"name", Value::String("after")},
                                     {"rank", Value::Int(7)}});
  EXPECT_TRUE(last.ok());

  const std::string bytes =
      ReadFile(dir + "/" + prometheus::storage::JournalFileName(1));
  *db_out = &db;
  *store_out = std::move(store).value();
  return bytes;
}

/// Digest of a bare database (no server): count plus every row.
std::string DbDigest(const Database& db) {
  std::string digest = std::to_string(db.object_count()) + ";";
  for (Oid oid : db.Extent("Sp")) {
    auto name = db.GetAttribute(oid, "name");
    auto rank = db.GetAttribute(oid, "rank");
    EXPECT_TRUE(name.ok() && rank.ok());
    digest += name.value().ToString() + "=" + rank.value().ToString() + "|";
  }
  return digest;
}

TEST(ApplierTest, EveryTruncationPointIsAtomicAndMirrorsExact) {
  const std::string dir = FreshDir("repl_applier_trunc");
  Database* leader_db = nullptr;
  std::unique_ptr<DurableStore> store;
  const std::string bytes = LeaderJournalBytes(dir, &leader_db, &store);
  ASSERT_GT(bytes.size(), 100u);

  // Reference states: for every committed boundary B, the digest obtained
  // by replaying the first B bytes through the recovery path.
  const std::string tmp = dir + "/prefix.log";
  auto replay_digest = [&](const std::string& prefix) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
    out.close();
    Database db;
    Journal::ReplayReport report;
    EXPECT_TRUE(Journal::ReplayTail(&db, tmp, &report).ok());
    return DbDigest(db);
  };

  // Feed the stream cut at every byte position. The applier must (a) never
  // error, (b) keep its mirror byte-identical to the prefix it committed,
  // and (c) hold exactly the state the recovery path computes for that
  // mirror — i.e. no torn record, no half-applied transaction, ever.
  for (std::size_t cut = 0; cut <= bytes.size(); cut += 1) {
    Database replica;
    std::string mirror;
    JournalStreamApplier applier(
        &replica, [&mirror](std::string_view b) -> Status {
          mirror.append(b.data(), b.size());
          return Status::Ok();
        });
    applier.StartJournal(/*expect_full=*/true);
    ASSERT_TRUE(applier.Feed(std::string_view(bytes).substr(0, cut)).ok());
    ASSERT_NE(applier.state(), JournalStreamApplier::State::kCorrupt)
        << "cut=" << cut;
    ASSERT_EQ(mirror, bytes.substr(0, applier.boundary())) << "cut=" << cut;
    ASSERT_EQ(DbDigest(replica), replay_digest(mirror)) << "cut=" << cut;

    // Feeding the remainder must always converge to the leader's state.
    ASSERT_TRUE(applier.Feed(std::string_view(bytes).substr(cut)).ok());
    ASSERT_EQ(applier.boundary(), bytes.size());
    ASSERT_EQ(DbDigest(replica), DbDigest(*leader_db));
  }
}

TEST(ApplierTest, CorruptFrameParksWithoutApplyingAndRewindRecovers) {
  const std::string dir = FreshDir("repl_applier_corrupt");
  Database* leader_db = nullptr;
  std::unique_ptr<DurableStore> store;
  const std::string bytes = LeaderJournalBytes(dir, &leader_db, &store);

  // Flip one byte in the middle of the stream (inside some frame body).
  std::string corrupted = bytes;
  const std::size_t victim = bytes.size() / 2;
  corrupted[victim] = static_cast<char>(corrupted[victim] ^ 0x5a);

  Database replica;
  std::string mirror;
  JournalStreamApplier applier(&replica,
                               [&mirror](std::string_view b) -> Status {
                                 mirror.append(b.data(), b.size());
                                 return Status::Ok();
                               });
  applier.StartJournal(/*expect_full=*/true);
  ASSERT_TRUE(applier.Feed(corrupted).ok());
  ASSERT_EQ(applier.state(), JournalStreamApplier::State::kCorrupt);
  // Nothing past the last good boundary leaked into the mirror or the db.
  ASSERT_LE(applier.boundary(), victim);
  ASSERT_EQ(mirror, bytes.substr(0, applier.boundary()));

  // Parked: further bytes are refused until Rewind().
  ASSERT_FALSE(applier.Feed("x").ok());

  // A rewind plus a clean re-fetch from the boundary converges.
  applier.Rewind();
  ASSERT_EQ(applier.fetch_offset(), applier.boundary());
  ASSERT_TRUE(
      applier.Feed(std::string_view(bytes).substr(applier.boundary())).ok());
  ASSERT_EQ(applier.boundary(), bytes.size());
  ASSERT_EQ(DbDigest(replica), DbDigest(*leader_db));
}

// ----------------------------------------------------------- leader source

TEST(ReplicationSourceTest, FollowerPinsStallCheckpointPruning) {
  const std::string dir = FreshDir("repl_source_pin");
  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) { return BootstrapSchema(db); };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());
  Database& db = store.value()->db();

  ReplicationSource::Options src_options;
  src_options.follower_expiry_ms = 200;
  ReplicationSource source(store.value().get(), src_options);
  auto handler = source.AuxHandler();

  // A follower reading journal 1 pins everything >= 1.
  HttpRequest req;
  req.method = "GET";
  req.target = "/repl/journal?seq=1&offset=0&follower=f1";
  std::string out;
  ASSERT_TRUE(handler(req, true, &out));
  ASSERT_NE(out.find("200"), std::string::npos);
  ASSERT_EQ(source.PruneFloor(), 1u);
  ASSERT_EQ(source.active_followers(), 1u);

  ASSERT_TRUE(
      db.CreateObject("Sp", {{"name", Value::String("x")},
                             {"rank", Value::Int(1)}})
          .ok());
  ASSERT_TRUE(store.value()->Checkpoint().ok());
  // Pinned: the pre-checkpoint journal survives.
  EXPECT_TRUE(fs::exists(dir + "/" +
                         prometheus::storage::JournalFileName(1)));

  // Once the pin expires, the next checkpoint prunes it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(source.PruneFloor(), ~0ull);
  ASSERT_EQ(source.active_followers(), 0u);
  ASSERT_TRUE(
      db.CreateObject("Sp", {{"name", Value::String("y")},
                             {"rank", Value::Int(2)}})
          .ok());
  ASSERT_TRUE(store.value()->Checkpoint().ok());
  EXPECT_FALSE(fs::exists(dir + "/" +
                          prometheus::storage::JournalFileName(1)));
}

TEST(ReplicationSourceTest, AnswersGoneAndRangeNotSatisfiable) {
  const std::string dir = FreshDir("repl_source_codes");
  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) { return BootstrapSchema(db); };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok());
  ReplicationSource source(store.value().get());
  auto handler = source.AuxHandler();

  HttpRequest req;
  req.method = "GET";
  std::string out;
  req.target = "/repl/journal?seq=99&offset=0&follower=f1";
  ASSERT_TRUE(handler(req, true, &out));
  EXPECT_NE(out.find("410"), std::string::npos);
  req.target = "/repl/journal?seq=1&offset=99999999&follower=f1";
  ASSERT_TRUE(handler(req, true, &out));
  EXPECT_NE(out.find("416"), std::string::npos);
  req.target = "/repl/snapshot?gen=42&offset=0&follower=f1";
  ASSERT_TRUE(handler(req, true, &out));
  EXPECT_NE(out.find("410"), std::string::npos);
  // Non-replication targets fall through to the normal front-end routes.
  req.target = "/metrics";
  EXPECT_FALSE(handler(req, true, &out));
}

// ------------------------------------------------------------- end to end

TEST(ReplicationE2ETest, FollowerConvergesServesReadsRefusesWrites) {
  const std::string leader_dir = FreshDir("repl_e2e_leader");
  const std::string follower_dir = FreshDir("repl_e2e_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);

  Client writer(leader->server.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "sp" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }
  // A multi-step transaction must arrive atomically.
  ASSERT_TRUE(writer
                  .Mutate([](Database& db) {
                    auto a = db.CreateObject(
                        "Sp", {{"name", Value::String("tx-1")},
                               {"rank", Value::Int(1000)}});
                    PROMETHEUS_RETURN_IF_ERROR(a.status());
                    return db.SetAttribute(a.value(), "rank",
                                           Value::Int(1001));
                  })
                  .ok());

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "e2e"));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  // Byte-identical query results through both read planes.
  Client reader(&follower.value()->server());
  EXPECT_EQ(StateDigest(&writer), StateDigest(&reader));
  EXPECT_NE(StateDigest(&reader).find("tx-1"), std::string::npos);

  // Mutations on the replica answer kUnavailable without executing.
  auto denied = reader.CreateObject(
      "Sp", {{"name", Value::String("nope")}, {"rank", Value::Int(0)}});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), Status::Code::kUnavailable);

  // The replica's own telemetry plane: /health embeds replication state,
  // /metrics exports the lag gauges.
  const int fport = follower.value()->http_port();
  ASSERT_GT(fport, 0);
  auto health = HttpFetch("127.0.0.1", fport, "GET", "/health");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.value().body.find("\"read_only\":true"),
            std::string::npos)
      << health.value().body;
  EXPECT_NE(health.value().body.find("replication"), std::string::npos);
  auto metrics = HttpFetch("127.0.0.1", fport, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("replication_lag_records"),
            std::string::npos);

  // The leader tracks the follower's cursor in its own exposition.
  auto leader_metrics = HttpFetch("127.0.0.1", leader->port(), "GET",
                                  "/metrics");
  ASSERT_TRUE(leader_metrics.ok());
  EXPECT_NE(
      leader_metrics.value().body.find(
          "replication_follower_cursor_seq{follower=\"e2e\"}"),
      std::string::npos);

  // Progress is coherent: caught up on the live journal with zero lag.
  const Follower::Progress p = follower.value()->progress();
  EXPECT_TRUE(p.connected);
  EXPECT_TRUE(p.caught_up);
  EXPECT_EQ(p.lag_records, 0u);

  // sys.replication is the same Progress snapshot as POOL rows: querying
  // the replica's own catalog reports exactly what /health embeds. The
  // stream is quiescent (writer stopped, caught up), so every field but
  // the poll counter is stable across the two reads.
  auto repl = reader.Query(
      "select r.role, r.connected, r.caught_up, r.generation, "
      "r.journal_seq, r.offset, r.records_applied, r.lag_records, "
      "r.lag_bytes from sys.replication r");
  ASSERT_TRUE(repl.ok()) << repl.status().ToString();
  ASSERT_EQ(repl.value().rows.size(), 1u);
  const auto& row = repl.value().rows[0];
  EXPECT_EQ(row[0].AsString(), "follower");
  EXPECT_TRUE(row[1].AsBool());
  EXPECT_TRUE(row[2].AsBool());
  EXPECT_EQ(row[3].AsInt(), static_cast<std::int64_t>(p.generation));
  EXPECT_EQ(row[4].AsInt(), static_cast<std::int64_t>(p.journal_seq));
  EXPECT_EQ(row[5].AsInt(), static_cast<std::int64_t>(p.offset));
  EXPECT_EQ(row[6].AsInt(),
            static_cast<std::int64_t>(p.records_applied));
  EXPECT_EQ(row[7].AsInt(), 0);
  EXPECT_EQ(row[8].AsInt(), 0);
  // Field for field against the health gauges the probe renders.
  EXPECT_NE(health.value().body.find("\"lag_records\":0"),
            std::string::npos)
      << health.value().body;
  EXPECT_NE(health.value().body.find(
                "\"offset\":" + std::to_string(p.offset)),
            std::string::npos)
      << health.value().body;
  // The leader, which replicates to nobody, reports an empty extent.
  auto leader_rows = writer.Query("select r from sys.replication r");
  ASSERT_TRUE(leader_rows.ok()) << leader_rows.status().ToString();
  EXPECT_TRUE(leader_rows.value().rows.empty());
}

// Fleet-wide trace stitching: every leader fetch carries an
// X-Trace-Id ("repl-<follower-id>-<n>"); the follower records its side in
// its own flight recorder and the leader's HTTP plane records the served
// /repl/* request under the same id — so one id resolves on both nodes.
TEST(ReplicationE2ETest, FetchTraceIdsAppearOnBothLeaderAndFollower) {
  const std::string leader_dir = FreshDir("repl_trace_leader");
  const std::string follower_dir = FreshDir("repl_trace_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);

  Client writer(leader->server.get());
  ASSERT_TRUE(writer
                  .CreateObject("Sp", {{"name", Value::String("traced")},
                                       {"rank", Value::Int(1)}})
                  .ok());

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "tracer"));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
  // Stop polling before snapshotting: after catch-up the follower's empty
  // polls keep writing new trace ids into the leader's bounded ring, and
  // enough of them would evict the fetches the follower recorded.
  follower.value()->Stop();

  std::vector<std::string> follower_ids;
  for (const auto& e : follower.value()->server().flight_recorder()
                           .Snapshot()) {
    if (e.type != "repl_fetch") continue;
    EXPECT_EQ(e.trace_id.rfind("repl-tracer-", 0), 0u) << e.trace_id;
    EXPECT_TRUE(e.executed);
    follower_ids.push_back(e.trace_id);
  }
  ASSERT_FALSE(follower_ids.empty());

  // At least one of those ids resolves on the leader too, recorded by the
  // HTTP plane as an aux (/repl/*) request.
  int stitched = 0;
  for (const auto& e : leader->server->flight_recorder().Snapshot()) {
    if (e.type != "aux") continue;
    EXPECT_EQ(e.trace_id.rfind("repl-tracer-", 0), 0u) << e.trace_id;
    for (const auto& id : follower_ids) {
      if (e.trace_id == id) {
        ++stitched;
        EXPECT_NE(e.detail.find("/repl/"), std::string::npos) << e.detail;
        break;
      }
    }
  }
  EXPECT_GT(stitched, 0);
}

// The follower's read-only server caches results like any other; journal
// application under the write guard bumps the replica's epoch, so a
// replicated write invalidates the follower's cached entries without any
// explicit wiring. Cached reads must converge to the leader's new value
// and never serve the old one after it has been observed once.
TEST(ReplicationE2ETest, FollowerCacheServesHitsAndInvalidatesOnApply) {
  const std::string leader_dir = FreshDir("repl_cache_leader");
  const std::string follower_dir = FreshDir("repl_cache_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);

  Client writer(leader->server.get());
  auto oid = writer.CreateObject(
      "Sp", {{"name", Value::String("hot")}, {"rank", Value::Int(1)}});
  ASSERT_TRUE(oid.ok());

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "cache"));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  Client reader(&follower.value()->server());
  const std::string q = "select s.rank from Sp s where s.name = 'hot'";

  // The replica's server caches: warm then hit, with the pre-write value.
  Response warm = reader.Call(prometheus::server::Request::Query(q));
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.result.rows.size(), 1u);
  EXPECT_EQ(warm.result.rows[0][0].AsInt(), 1);
  Response hit = reader.Call(prometheus::server::Request::Query(q));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.result.rows[0][0].AsInt(), 1);

  // Leader commits a new value; the applier's epoch bump must retire the
  // follower's cached entry. Poll until the new value shows (propagation
  // delay is legal; serving 1 again meanwhile is a valid cached read).
  ASSERT_TRUE(writer.SetAttribute(oid.value(), "rank", Value::Int(2)).ok());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool converged = false;
  while (std::chrono::steady_clock::now() < give_up) {
    Response r = reader.Call(prometheus::server::Request::Query(q));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.result.rows.size(), 1u);
    if (r.result.rows[0][0].AsInt() == 2) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(converged) << "follower never served the replicated write";

  // Once the new value has been observed, it can never regress: the next
  // reads — cached or not — must keep answering 2.
  for (int i = 0; i < 10; ++i) {
    Response r = reader.Call(prometheus::server::Request::Query(q));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.result.rows[0][0].AsInt(), 2);
  }
  // And the hot entry is servable again at the new epoch.
  EXPECT_TRUE(reader.Call(prometheus::server::Request::Query(q)).cache_hit);
  EXPECT_GE(follower.value()
                ->server()
                .query_cache()
                .results()
                .stats()
                .hits,
            1u);
}

// MVCC on the replica: the applier commits each replicated transaction
// under the follower database's write guard, and replica reads execute
// against pinned snapshots — so a journal frame landing mid-read must
// never tear it. The leader updates a pair of rows transactionally in
// lockstep; follower readers, running flat out while frames stream in,
// must always see the pair equal (a consistent cut), never one row from
// before the apply and one from after.
TEST(ReplicationE2ETest, JournalApplyNeverTearsInFlightReplicaReads) {
  const std::string leader_dir = FreshDir("repl_mvcc_leader");
  const std::string follower_dir = FreshDir("repl_mvcc_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);

  Client writer(leader->server.get());
  auto pa = writer.CreateObject(
      "Sp", {{"name", Value::String("pa")}, {"rank", Value::Int(0)}});
  auto pb = writer.CreateObject(
      "Sp", {{"name", Value::String("pb")}, {"rank", Value::Int(0)}});
  ASSERT_TRUE(pa.ok() && pb.ok());

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "mvcc"));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> pair_reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Client reader(&follower.value()->server());
      while (!stop.load(std::memory_order_acquire)) {
        auto rs = reader.Query("select s.name, s.rank from Sp s");
        if (!rs.ok()) continue;  // overload shedding is legal
        std::int64_t ra = -1, rb = -1;
        for (const auto& row : rs.value().rows) {
          if (row[0].ToString().find("pa") != std::string::npos) {
            ra = row[1].AsInt();
          } else if (row[0].ToString().find("pb") != std::string::npos) {
            rb = row[1].AsInt();
          }
        }
        if (ra >= 0 && rb >= 0) {
          pair_reads.fetch_add(1);
          if (ra != rb) torn.fetch_add(1);
        }
      }
    });
  }

  // The leader advances the pair transactionally while frames stream to
  // the follower (poll interval 5 ms, so applies interleave the reads).
  constexpr std::int64_t kRounds = 150;
  for (std::int64_t v = 1; v <= kRounds; ++v) {
    ASSERT_TRUE(writer
                    .Mutate([&, v](Database& db) {
                      PROMETHEUS_RETURN_IF_ERROR(db.Begin());
                      Status st = db.SetAttribute(pa.value(), "rank",
                                                  Value::Int(v));
                      if (st.ok()) {
                        st = db.SetAttribute(pb.value(), "rank",
                                             Value::Int(v));
                      }
                      if (!st.ok()) {
                        (void)db.Abort();
                        return st;
                      }
                      return db.Commit();
                    })
                    .ok());
  }

  // Let the follower catch up to the final round before stopping the
  // readers, so the apply path ran under live read load the whole way.
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(pair_reads.load(), 0u);
  Client reader(&follower.value()->server());
  auto final_rs =
      reader.Query("select s.rank from Sp s where s.name = 'pa'");
  ASSERT_TRUE(final_rs.ok());
  ASSERT_EQ(final_rs.value().rows.size(), 1u);
  EXPECT_EQ(final_rs.value().rows[0][0].AsInt(), kRounds);
}

// Schema defined on the live leader — not in its bootstrap — must ship to
// followers like any mutation: a follower that joined before the DDL
// applies the new class and the objects created in it.
TEST(ReplicationE2ETest, RuntimeDdlShipsToFollowers) {
  const std::string leader_dir = FreshDir("repl_ddl_leader");
  const std::string follower_dir = FreshDir("repl_ddl_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "ddl"));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  Client writer(leader->server.get());
  ASSERT_TRUE(writer
                  .Mutate([](Database& db) {
                    auto cls = db.DefineClass(
                        "Genus", {}, {Attr("name", ValueType::kString)});
                    PROMETHEUS_RETURN_IF_ERROR(cls.status());
                    PROMETHEUS_RETURN_IF_ERROR(
                        db.DefineRelationship("contains", "Genus", "Sp",
                                              prometheus::
                                                  RelationshipSemantics{})
                            .status());
                    auto g = db.CreateObject(
                        "Genus", {{"name", Value::String("Apium")}});
                    PROMETHEUS_RETURN_IF_ERROR(g.status());
                    auto s = db.CreateObject(
                        "Sp", {{"name", Value::String("graveolens")},
                               {"rank", Value::Int(7)}});
                    PROMETHEUS_RETURN_IF_ERROR(s.status());
                    return db
                        .CreateLink("contains", g.value(), s.value(),
                                    prometheus::kNullOid, {})
                        .status();
                  })
                  .ok());
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  Client reader(&follower.value()->server());
  auto rs = reader.Query("select g.name from Genus g");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].ToString(), "\"Apium\"");
  auto links = reader.Query("select c from contains c");
  ASSERT_TRUE(links.ok()) << links.status().ToString();
  EXPECT_EQ(links.value().rows.size(), 1u);
  EXPECT_EQ(follower.value()->progress().lag_records, 0u);
}

TEST(ReplicationE2ETest, RestartResumesFromDurableCursor) {
  const std::string leader_dir = FreshDir("repl_resume_leader");
  const std::string follower_dir = FreshDir("repl_resume_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);
  Client writer(leader->server.get());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "a" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }

  std::uint64_t resumed_offset = 0;
  {
    auto follower = Follower::Start(
        FollowerOptions(follower_dir, leader->port(), "resume"));
    ASSERT_TRUE(follower.ok());
    ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
    resumed_offset = follower.value()->progress().offset;
  }  // destroyed: simulates a crash/restart mid-deployment

  // More history lands while the follower is down.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "b" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "resume"));
  ASSERT_TRUE(follower.ok());
  // Local recovery must land exactly on the mirror's committed boundary —
  // the implicit durable cursor — before any fetch happens.
  EXPECT_EQ(follower.value()->progress().offset, resumed_offset);
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
  EXPECT_EQ(follower.value()->progress().rebootstraps, 0u);

  Client reader(&follower.value()->server());
  EXPECT_EQ(StateDigest(&writer), StateDigest(&reader));
}

TEST(ReplicationE2ETest, TornMidFrameStreamNeverAppliesNorDiverges) {
  const std::string leader_dir = FreshDir("repl_torn_leader");
  const std::string follower_dir = FreshDir("repl_torn_follower");

  // Fault plan: the first journal response with a meaty body is cut in the
  // middle of a frame; the next journal fetch fails outright (socket-level
  // fault stand-in), forcing a reconnect with the torn tail buffered.
  struct TornState {
    std::mutex mu;
    int phase = 0;  // 0 = waiting to cut, 1 = fail next, 2 = passthrough
  };
  auto state = std::make_shared<TornState>();
  Leader::Wrap wrap = [state](const auto& inner, const HttpRequest& req,
                              bool keep_alive, std::string* out) {
    if (!inner(req, keep_alive, out)) return false;
    if (req.target.rfind("/repl/journal", 0) != 0) return true;
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->phase == 0) {
      HttpResponse resp;
      std::size_t consumed = 0;
      std::string error;
      if (ParseHttpResponse(*out, &consumed, &resp, &error) ==
              ParseResult::kComplete &&
          resp.status_code == 200 && resp.body.size() > 64) {
        std::vector<std::pair<std::string, std::string>> repl_headers;
        for (const auto& [name, value] : resp.headers) {
          if (name.rfind("x-repl-", 0) == 0) {
            repl_headers.emplace_back(name, value);
          }
        }
        resp.body.resize(resp.body.size() / 2);  // mid-frame cut
        *out = SerializeHttpResponse(200, "application/octet-stream",
                                     resp.body, keep_alive, repl_headers);
        state->phase = 1;
      }
    } else if (state->phase == 1) {
      *out = SerializeHttpResponse(500, "text/plain", "injected fault\n",
                                   keep_alive);
      state->phase = 2;
    }
    return true;
  };
  auto leader = Leader::Start(leader_dir, ReplicationSource::Options{},
                              wrap);
  ASSERT_NE(leader, nullptr);

  Client writer(leader->server.get());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "t" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "torn"));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  // The fault fired, forced a reconnect, and the replica still converged
  // to the leader's exact state: the torn record was re-fetched, applied
  // once, and nothing diverged.
  {
    std::lock_guard<std::mutex> lock(state->mu);
    EXPECT_EQ(state->phase, 2);
  }
  EXPECT_GE(follower.value()->progress().reconnects, 1u);
  Client reader(&follower.value()->server());
  EXPECT_EQ(StateDigest(&writer), StateDigest(&reader));

  // The mirror is a byte-identical prefix (here: the whole journal).
  const std::string leader_journal =
      ReadFile(leader_dir + "/" + prometheus::storage::JournalFileName(1));
  const std::string mirror_journal = ReadFile(
      follower_dir + "/" + prometheus::storage::JournalFileName(1));
  EXPECT_EQ(mirror_journal, leader_journal);
}

TEST(ReplicationE2ETest, PrunedHistoryForcesRebootstrapFromSnapshot) {
  const std::string leader_dir = FreshDir("repl_prune_leader");
  const std::string follower_dir = FreshDir("repl_prune_follower");
  ReplicationSource::Options src_options;
  src_options.follower_expiry_ms = 100;  // pins die fast in this test
  auto leader = Leader::Start(leader_dir, src_options);
  ASSERT_NE(leader, nullptr);
  Client writer(leader->server.get());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "a" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }

  {
    auto follower = Follower::Start(
        FollowerOptions(follower_dir, leader->port(), "prune"));
    ASSERT_TRUE(follower.ok());
    ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
  }

  // While the follower is away its pin expires and the leader checkpoints
  // twice: the journal the follower was tailing is pruned.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(writer.Checkpoint().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "b" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }
  ASSERT_TRUE(writer.Checkpoint().ok());
  ASSERT_FALSE(
      fs::exists(leader_dir + "/" +
                 prometheus::storage::JournalFileName(1)));

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "prune"));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));
  EXPECT_GE(follower.value()->progress().rebootstraps, 1u);
  EXPECT_GE(follower.value()->progress().generation, 1u);
  Client reader(&follower.value()->server());
  EXPECT_EQ(StateDigest(&writer), StateDigest(&reader));
}

TEST(ReplicationE2ETest, PromoteTurnsTheMirrorIntoAWritableLeader) {
  const std::string leader_dir = FreshDir("repl_promote_leader");
  const std::string follower_dir = FreshDir("repl_promote_follower");
  auto leader = Leader::Start(leader_dir);
  ASSERT_NE(leader, nullptr);
  Client writer(leader->server.get());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(writer
                    .CreateObject("Sp",
                                  {{"name", Value::String(
                                                "p" + std::to_string(i))},
                                   {"rank", Value::Int(i)}})
                    .ok());
  }
  const std::string want = StateDigest(&writer);

  auto follower = Follower::Start(
      FollowerOptions(follower_dir, leader->port(), "promote"));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower.value()->WaitCaughtUp(10000));

  // Leader dies; the follower becomes the new leader.
  leader->Stop();
  auto promoted = follower.value()->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  // No committed transaction was lost, and the store is writable: a new
  // server takes mutations and a checkpoint round-trips.
  Server::Options server_options;
  server_options.store = promoted.value().get();
  Server new_leader(&promoted.value()->db(), server_options);
  Client new_writer(&new_leader);
  EXPECT_EQ(StateDigest(&new_writer), want);
  ASSERT_TRUE(new_writer
                  .CreateObject("Sp", {{"name", Value::String("post")},
                                       {"rank", Value::Int(1)}})
                  .ok());
  ASSERT_TRUE(new_writer.Checkpoint().ok());
  new_leader.Shutdown();
}

}  // namespace
