# Empty dependencies file for prometheus_taxonomy.
# This may be replaced when dependencies are built.
