file(REMOVE_RECURSE
  "CMakeFiles/prometheus_query.dir/parser.cc.o"
  "CMakeFiles/prometheus_query.dir/parser.cc.o.d"
  "CMakeFiles/prometheus_query.dir/query_engine.cc.o"
  "CMakeFiles/prometheus_query.dir/query_engine.cc.o.d"
  "CMakeFiles/prometheus_query.dir/token.cc.o"
  "CMakeFiles/prometheus_query.dir/token.cc.o.d"
  "libprometheus_query.a"
  "libprometheus_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
