file(REMOVE_RECURSE
  "CMakeFiles/bench_oo7_s1.dir/bench_oo7_s1.cc.o"
  "CMakeFiles/bench_oo7_s1.dir/bench_oo7_s1.cc.o.d"
  "bench_oo7_s1"
  "bench_oo7_s1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oo7_s1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
