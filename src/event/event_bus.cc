#include "event/event_bus.h"

#include <algorithm>

namespace prometheus {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBeforeCreateObject:
      return "BeforeCreateObject";
    case EventKind::kAfterCreateObject:
      return "AfterCreateObject";
    case EventKind::kBeforeDeleteObject:
      return "BeforeDeleteObject";
    case EventKind::kAfterDeleteObject:
      return "AfterDeleteObject";
    case EventKind::kBeforeSetAttribute:
      return "BeforeSetAttribute";
    case EventKind::kAfterSetAttribute:
      return "AfterSetAttribute";
    case EventKind::kBeforeCreateLink:
      return "BeforeCreateLink";
    case EventKind::kAfterCreateLink:
      return "AfterCreateLink";
    case EventKind::kBeforeDeleteLink:
      return "BeforeDeleteLink";
    case EventKind::kAfterDeleteLink:
      return "AfterDeleteLink";
    case EventKind::kBeforeSetLinkAttribute:
      return "BeforeSetLinkAttribute";
    case EventKind::kAfterSetLinkAttribute:
      return "AfterSetLinkAttribute";
    case EventKind::kTransactionBegin:
      return "TransactionBegin";
    case EventKind::kBeforeCommit:
      return "BeforeCommit";
    case EventKind::kAfterCommit:
      return "AfterCommit";
    case EventKind::kAfterAbort:
      return "AfterAbort";
    case EventKind::kAfterDeclareSynonym:
      return "AfterDeclareSynonym";
  }
  return "Unknown";
}

bool IsBeforeEvent(EventKind kind) {
  switch (kind) {
    case EventKind::kBeforeCreateObject:
    case EventKind::kBeforeDeleteObject:
    case EventKind::kBeforeSetAttribute:
    case EventKind::kBeforeCreateLink:
    case EventKind::kBeforeDeleteLink:
    case EventKind::kBeforeSetLinkAttribute:
    case EventKind::kBeforeCommit:
      return true;
    default:
      return false;
  }
}

ListenerId EventBus::Subscribe(Listener listener, int priority) {
  ListenerId id = next_id_++;
  Entry entry{id, priority, std::move(listener)};
  auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [priority](const Entry& e) { return e.priority < priority; });
  entries_.insert(pos, std::move(entry));
  return id;
}

void EventBus::Unsubscribe(ListenerId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

Status EventBus::Publish(const Event& event) {
  ++published_count_;
  const bool vetoable = IsBeforeEvent(event.kind);
  // Listeners may subscribe/unsubscribe while handling an event (the rule
  // engine does when rules create rules), so iterate over a snapshot of ids.
  std::vector<ListenerId> ids;
  ids.reserve(entries_.size());
  for (const Entry& e : entries_) ids.push_back(e.id);
  Status first_violation;
  for (ListenerId id : ids) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [id](const Entry& e) { return e.id == id; });
    if (it == entries_.end()) continue;  // removed mid-delivery
    Status st = it->listener(event);
    if (!st.ok()) {
      if (vetoable) return st;  // before events short-circuit
      if (first_violation.ok()) first_violation = st;
    }
  }
  // After events deliver to every listener; the first violation is still
  // surfaced so invariant rules can trigger an undo or a commit failure.
  return first_violation;
}

}  // namespace prometheus
