#ifndef PROMETHEUS_SERVER_SESSION_H_
#define PROMETHEUS_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "server/request.h"

namespace prometheus::server {

class Server;

/// A logical client connection admitted by the `SessionManager` — the role
/// the thesis' omitted service front-end (§6.1.7) gave each HTTP user.
/// Sessions are cheap: no dedicated thread, no database state; submitted
/// requests run on the server's shared worker pool. A session is
/// thread-safe — several client threads may share one (they appear as one
/// logical client to the stats).
class Session {
 public:
  SessionId id() const { return id_; }

  /// Submits a request. The returned future *always* resolves with exactly
  /// one Response: executed, rejected (backpressure) or shutdown.
  std::future<Response> Submit(Request req);

  /// Blocking convenience: Submit + wait.
  Response Call(Request req);

  /// Requests submitted through this session (accepted or not).
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// True once the session was closed; further submissions are refused
  /// with `ResponseCode::kShutdown`.
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class SessionManager;

  Session(Server* server, SessionId id) : server_(server), id_(id) {}

  Server* server_;
  const SessionId id_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<bool> closed_{false};
};

/// Registry of live sessions. Owns them jointly with the connected clients
/// (shared_ptr), so closing a session never invalidates a response another
/// thread is still waiting on.
class SessionManager {
 public:
  explicit SessionManager(Server* server) : server_(server) {}

  /// Admits a new logical client.
  std::shared_ptr<Session> Open();

  /// Closes a session: it refuses further submissions and leaves the
  /// registry. In-flight requests complete normally. Unknown ids are
  /// ignored (closing twice is fine).
  void Close(SessionId id);

  /// Marks every session closed (server shutdown).
  void CloseAll();

  std::size_t active() const;
  std::uint64_t opened_total() const {
    return opened_.load(std::memory_order_relaxed);
  }

 private:
  Server* server_;
  mutable std::mutex mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  std::atomic<std::uint64_t> opened_{0};
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_SESSION_H_
