#ifndef PROMETHEUS_STORAGE_RECOVERY_H_
#define PROMETHEUS_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "storage/fault.h"
#include "storage/journal.h"

namespace prometheus::storage {

/// Store-directory file naming, shared with the replication layer (which
/// mirrors a leader's directory file-by-file): `snapshot-%06llu.pdb` and
/// `journal-%06llu.log`.
std::string SnapshotFileName(std::uint64_t seq);
std::string JournalFileName(std::uint64_t seq);
bool ParseSnapshotFileName(const std::string& name, std::uint64_t* seq);
bool ParseJournalFileName(const std::string& name, std::uint64_t* seq);

/// Crash-safe persistence manager: owns a database directory holding
/// generation-numbered snapshots and journals,
///
///   snapshot-000002.pdb   full state as of generation 2
///   journal-000003.log    mutations since snapshot 2 (v2, checksummed)
///
/// and maintains the invariant that at every instant — including halfway
/// through any write — the directory recovers to a consistent prefix of the
/// committed history:
///
///  - `Open(dir)` loads the newest snapshot that validates, replays every
///    journal after it (recovering torn tails), truncates the live journal
///    to its last intact record and reopens it in append mode;
///  - `Checkpoint()` writes the next snapshot atomically (temp + fsync +
///    rename + directory fsync), rotates to a fresh continuation journal
///    and prunes generations that are no longer needed. A crash anywhere in
///    the protocol leaves the previous snapshot/journal pair authoritative.
///
/// Thread model: one store per directory. The journal *append path* is
/// thread-safe — mutations serialised by the database's epoch guard
/// (`Database::WriteGuard`) append safely while any thread calls `Flush`,
/// `Sync` or `status()` (the journal locks internally, so frames are never
/// torn). `Checkpoint` still requires exclusive access to the *database*
/// (take the write guard, or quiesce the server), but the store's own
/// bookkeeping — the live journal pointer, sequence numbers, the sticky
/// status — is guarded by an internal mutex, so `Flush`/`Sync`/`status`/
/// `stats`/`generation`/`journal_seq` from any thread (e.g. a replication
/// endpoint answering a fetch) never race the checkpoint's journal swap.
class DurableStore {
 public:
  struct Options {
    /// Filesystem to write through (default `Env::Default()`); tests pass a
    /// `FaultInjectionEnv` to crash the store at chosen byte counts.
    Env* env = nullptr;
    /// Run once on a brand-new (empty-directory) store, before the first
    /// journal is created: define the schema here so the journal's schema
    /// prologue captures it. Not run when recovering existing state.
    std::function<Status(Database*)> bootstrap;
  };

  /// How `Open` reassembled the state — for logging and tests.
  struct RecoveryInfo {
    /// Snapshot file the state was loaded from (empty when none existed).
    std::string snapshot_file;
    /// Snapshot files that failed to validate and were skipped.
    std::vector<std::string> skipped;
    /// Journal files replayed, in order.
    std::vector<std::string> replayed;
    /// Mutation records applied across all replayed journals.
    std::uint64_t replayed_records = 0;
    /// Records/bytes dropped from torn or uncommitted journal tails.
    std::uint64_t dropped_records = 0;
    std::uint64_t dropped_bytes = 0;
    /// True when any replayed journal had a torn tail.
    bool torn_tail = false;
  };

  /// Opens (creating if necessary) the store at `dir` and recovers its
  /// state. Never partial: on any error the directory is left untouched
  /// apart from deleted `*.tmp` staging files.
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir,
                                                    Options options);
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir);

  /// Closes the journal cleanly (best effort).
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// The recovered database. Mutations are journalled automatically.
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }

  const RecoveryInfo& recovery_info() const { return info_; }

  /// Current snapshot generation (0 until the first checkpoint).
  std::uint64_t generation() const;

  /// Sequence number of the live journal.
  std::uint64_t journal_seq() const;

  /// The directory this store owns and the filesystem it writes through —
  /// the replication endpoint reads journal/snapshot bytes from here.
  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }

  /// Installs a prune-floor hook consulted by `Checkpoint()`: files with
  /// sequence numbers >= the returned floor are never pruned. The
  /// replication endpoint returns the smallest generation an active
  /// follower still needs (or ~0 when none), so a checkpoint cannot yank a
  /// generation mid-download. Pass nullptr to uninstall.
  void SetPruneFloor(std::function<std::uint64_t()> floor);

  /// Point-in-time durability counters: the live journal's I/O totals plus
  /// this store's checkpoint/recovery history. Safe to call from any thread
  /// that may also be appending (journal counters are atomics).
  struct Stats {
    std::uint64_t journal_records = 0;  ///< live journal's mutation records
    std::uint64_t journal_bytes = 0;    ///< live journal's framed bytes
    std::uint64_t journal_syncs = 0;    ///< live journal's fsync barriers
    std::uint64_t generation = 0;       ///< loaded snapshot generation
    std::uint64_t journal_seq = 0;      ///< live journal sequence number
    std::uint64_t checkpoints = 0;      ///< successful Checkpoint() calls
    std::uint64_t replayed_records = 0; ///< records replayed by Open()
    std::uint64_t dropped_records = 0;  ///< records lost to torn tails
    bool torn_tail = false;             ///< recovery saw a torn tail
  };
  Stats stats() const;

  /// Writes an atomic snapshot of the current state, rotates the journal
  /// and prunes superseded generations. On failure the previous
  /// snapshot/journal pair remains authoritative and is reported intact by
  /// the next `Open`. On success any latched durability failure is cleared
  /// (`status()` returns Ok again): the snapshot supersedes whatever the
  /// broken journal failed to record — this is the operator's re-arm path
  /// out of the server's degraded read-only mode.
  Status Checkpoint();

  /// Journal flush / fsync; both return the sticky durability status.
  Status Flush();
  Status Sync();

  /// Sticky durability status: Ok while every mutation reached the journal.
  Status status() const;

 private:
  DurableStore(std::string dir, Env* env);

  Status OpenJournalFresh();

  std::string dir_;
  Env* env_;
  std::unique_ptr<Database> db_;
  /// Guards the fields a checkpoint swaps against concurrent observers
  /// (`journal_`, the sequence numbers, `checkpoints_`, `sticky_`,
  /// `prune_floor_`).
  mutable std::mutex mu_;
  std::unique_ptr<Journal> journal_;
  std::uint64_t snapshot_seq_ = 0;  ///< generation of the loaded snapshot
  std::uint64_t journal_seq_ = 0;   ///< generation of the live journal
  std::uint64_t checkpoints_ = 0;   ///< successful Checkpoint() calls
  std::function<std::uint64_t()> prune_floor_;
  RecoveryInfo info_;
  Status sticky_;  ///< store-level failures (e.g. journal rotation failed)
};

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_RECOVERY_H_
