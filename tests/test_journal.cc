#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "storage/fault.h"

#include "storage/journal.h"
#include "storage/snapshot.h"

namespace prometheus::storage {
namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

class JournalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path = ::testing::TempDir() + "/prometheus_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".log";
    std::remove(path.c_str());  // kCreate refuses to clobber leftovers
    ASSERT_TRUE(db.DefineClass("Taxon", {},
                               {Attr("name", ValueType::kString),
                                Attr("year", ValueType::kInt)})
                    .ok());
    RelationshipSemantics sem;
    sem.lifetime_dependent = true;
    ASSERT_TRUE(db.DefineRelationship("owns", "Taxon", "Taxon", sem,
                                      {Attr("note", ValueType::kString)})
                    .ok());
    RelationshipSemantics constant;
    constant.constant = true;
    ASSERT_TRUE(
        db.DefineRelationship("published", "Taxon", "Taxon", constant).ok());
  }

  /// Replays the journal and verifies the replica matches `db` in counts
  /// and in every attribute of every live object.
  void ExpectReplicaMatches() {
    Database replica;
    ASSERT_TRUE(Journal::Replay(&replica, path).ok());
    EXPECT_EQ(replica.object_count(), db.object_count());
    EXPECT_EQ(replica.link_count(), db.link_count());
    for (Oid oid : db.Extent("Taxon")) {
      const Object* original = db.GetObject(oid);
      const Object* copy = replica.GetObject(oid);
      ASSERT_NE(copy, nullptr) << "missing object @" << oid;
      for (const auto& [name, value] : original->attrs) {
        EXPECT_TRUE(copy->attrs.at(name).Equals(value))
            << "@" << oid << "." << name;
      }
      EXPECT_EQ(copy->out_links.size(), original->out_links.size());
    }
  }

  Database db;
  std::string path;
};

TEST_F(JournalFixture, RecordsBasicMutations) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  Oid a = db.CreateObject("Taxon", {{"name", Value::String("A")}}).value();
  Oid b = db.CreateObject("Taxon", {{"name", Value::String("B")}}).value();
  ASSERT_TRUE(db.SetAttribute(a, "year", Value::Int(1753)).ok());
  Oid l = db.CreateLink("owns", a, b, kNullOid,
                        {{"note", Value::String("x")}})
              .value();
  ASSERT_TRUE(db.SetLinkAttribute(l, "note", Value::String("y")).ok());
  EXPECT_GE(journal.value()->record_count(), 5u);
  journal.value().reset();  // close
  ExpectReplicaMatches();
}

TEST_F(JournalFixture, ReplaysDeletionsAndCascades) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  Oid a = db.CreateObject("Taxon").value();
  Oid b = db.CreateObject("Taxon").value();
  Oid c = db.CreateObject("Taxon").value();
  ASSERT_TRUE(db.CreateLink("owns", a, b).ok());
  ASSERT_TRUE(db.CreateLink("published", a, c).ok());  // constant link
  // Deleting a cascades b (lifetime dependency) and removes the constant
  // link through participant death.
  ASSERT_TRUE(db.DeleteObject(a).ok());
  EXPECT_EQ(db.object_count(), 1u);
  journal.value().reset();
  ExpectReplicaMatches();
}

TEST_F(JournalFixture, CommittedTransactionsAreFlushed) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(db.Begin().ok());
  Oid a = db.CreateObject("Taxon", {{"name", Value::String("kept")}}).value();
  EXPECT_EQ(journal.value()->record_count(), 0u);  // still buffered
  ASSERT_TRUE(db.Commit().ok());
  EXPECT_EQ(journal.value()->record_count(), 1u);
  journal.value().reset();
  ExpectReplicaMatches();
  (void)a;
}

TEST_F(JournalFixture, AbortedTransactionsLeaveNoTrace) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  Oid keep =
      db.CreateObject("Taxon", {{"name", Value::String("keep")}}).value();
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.CreateObject("Taxon").ok());
  ASSERT_TRUE(db.SetAttribute(keep, "year", Value::Int(1)).ok());
  ASSERT_TRUE(db.Abort().ok());
  EXPECT_EQ(journal.value()->record_count(), 1u);  // only `keep`'s creation
  journal.value().reset();
  ExpectReplicaMatches();
}

TEST_F(JournalFixture, MicroUndoIsCompensatedInTheLog) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  Oid a =
      db.CreateObject("Taxon", {{"year", Value::Int(1753)}}).value();
  // An invariant-style veto outside a transaction: the operation is logged
  // and then compensated; replay nets out to the original value.
  db.bus().Subscribe([](const Event& e) {
    if (e.kind == EventKind::kAfterSetAttribute && e.attribute == "year" &&
        !e.compensating && e.new_value.type() == ValueType::kInt &&
        e.new_value.AsInt() < 0) {
      return Status::ConstraintViolation("no negative years");
    }
    return Status::Ok();
  });
  EXPECT_FALSE(db.SetAttribute(a, "year", Value::Int(-1)).ok());
  EXPECT_TRUE(db.GetAttribute(a, "year").value().Equals(Value::Int(1753)));
  journal.value().reset();
  ExpectReplicaMatches();
}

TEST_F(JournalFixture, SynonymsSurvive) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  Oid a = db.CreateObject("Taxon").value();
  Oid b = db.CreateObject("Taxon").value();
  ASSERT_TRUE(db.DeclareSynonym(a, b).ok());
  journal.value().reset();
  Database replica;
  ASSERT_TRUE(Journal::Replay(&replica, path).ok());
  EXPECT_TRUE(replica.AreSynonyms(a, b));
}

TEST_F(JournalFixture, TruncatedJournalRecoversPrefix) {
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  Oid a = db.CreateObject("Taxon", {{"name", Value::String("A")}}).value();
  ASSERT_TRUE(journal.value()->Flush().ok());
  // Simulate a crash: no END record, journal object leaked (not closed).
  // Read the current file contents as-is.
  {
    Database replica;
    ASSERT_TRUE(Journal::Replay(&replica, path).ok());
    EXPECT_EQ(replica.object_count(), 1u);
    EXPECT_NE(replica.GetObject(a), nullptr);
  }
  journal.value().reset();
}

TEST_F(JournalFixture, OpenRefusesToClobberExistingJournal) {
  {
    auto journal = Journal::Open(&db, path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(db.CreateObject("Taxon").ok());
  }
  // The default mode never silently discards a journal holding records.
  auto again = Journal::Open(&db, path);
  EXPECT_EQ(again.status().code(), Status::Code::kFailedPrecondition);
  auto truncated = Journal::Open(&db, path, Journal::OpenMode::kTruncate);
  EXPECT_TRUE(truncated.ok()) << truncated.status().ToString();
}

TEST_F(JournalFixture, WriteFailureVetoesTheMutation) {
  FaultInjectionEnv fenv;
  auto journal = Journal::Open(&db, path, Journal::OpenMode::kTruncate, &fenv);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  Oid a =
      db.CreateObject("Taxon", {{"name", Value::String("durable")}}).value();

  FaultPolicy policy;
  policy.fail_after_appends = 1;
  policy.torn_writes = false;
  fenv.SetPolicy(policy);

  // The record for this creation cannot reach the disk: the journal vetoes
  // the after-event and the database rolls the object back.
  EXPECT_FALSE(db.CreateObject("Taxon").ok());
  EXPECT_EQ(db.object_count(), 1u);

  // The failure is sticky: it surfaces from Flush()/status() and keeps
  // vetoing mutations instead of letting state diverge from the log.
  EXPECT_FALSE(journal.value()->Flush().ok());
  EXPECT_FALSE(journal.value()->status().ok());
  EXPECT_FALSE(db.SetAttribute(a, "year", Value::Int(1)).ok());
  journal.value().reset();

  Database replica;
  ASSERT_TRUE(Journal::Replay(&replica, path).ok());
  EXPECT_EQ(replica.object_count(), 1u);  // exactly the durable prefix
}

TEST_F(JournalFixture, TornTailIsReportedAndDropped) {
  auto journal = Journal::Open(&db, path, Journal::OpenMode::kTruncate);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(db.CreateObject("Taxon").ok());
  ASSERT_TRUE(db.CreateObject("Taxon").ok());
  ASSERT_TRUE(journal.value()->Flush().ok());

  // Copy the live file with its final record torn mid-frame.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::string torn = path + ".torn";
  std::ofstream(torn, std::ios::binary)
      << bytes.substr(0, bytes.size() - 5);

  Database replica;
  Journal::ReplayReport report;
  ASSERT_TRUE(Journal::Replay(&replica, torn, &report).ok());
  EXPECT_EQ(replica.object_count(), 1u);  // valid prefix only
  EXPECT_EQ(report.applied_records, 1u);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_GT(report.dropped_bytes, 0u);
  EXPECT_FALSE(report.clean_end);
  EXPECT_TRUE(report.resumable);
  EXPECT_GT(report.append_offset, 0u);
  journal.value().reset();
}

TEST_F(JournalFixture, TornCommitFlushDropsTheWholeTransaction) {
  FaultInjectionEnv fenv;
  auto journal = Journal::Open(&db, path, Journal::OpenMode::kTruncate, &fenv);
  ASSERT_TRUE(journal.ok());
  Oid keep = db.CreateObject("Taxon").value();

  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.CreateObject("Taxon").ok());
  ASSERT_TRUE(db.CreateObject("Taxon").ok());

  FaultPolicy policy;
  policy.fail_after_appends = 2;  // dies inside the TXB...TXC commit flush
  fenv.SetPolicy(policy);
  ASSERT_TRUE(db.Commit().ok());  // in-memory commit; the journal crashed
  EXPECT_FALSE(journal.value()->status().ok());
  journal.value().reset();

  Database replica;
  Journal::ReplayReport report;
  ASSERT_TRUE(Journal::Replay(&replica, path, &report).ok());
  // The half-flushed transaction vanishes atomically on replay.
  EXPECT_EQ(replica.object_count(), 1u);
  EXPECT_NE(replica.GetObject(keep), nullptr);
  EXPECT_TRUE(report.torn_tail);
}

TEST_F(JournalFixture, ReplaysLegacyV1Journals) {
  std::ofstream out(path, std::ios::trunc);
  out << "PROMETHEUS-JOURNAL-1\n";
  for (const std::string& record : SchemaRecords(db)) out << record << "\n";
  out << "END\n";
  out.close();
  Database replica;
  Journal::ReplayReport report;
  ASSERT_TRUE(Journal::Replay(&replica, path, &report).ok());
  EXPECT_TRUE(report.clean_end);
  EXPECT_EQ(replica.classes().size(), db.classes().size());
}

TEST_F(JournalFixture, ReplayRejectsBadInput) {
  Database replica;
  EXPECT_EQ(Journal::Replay(&replica, "/no/such/file.log").code(),
            Status::Code::kIoError);
  std::string bogus = ::testing::TempDir() + "/bogus_journal.log";
  std::ofstream(bogus) << "NOT-A-JOURNAL\n";
  EXPECT_EQ(Journal::Replay(&replica, bogus).code(), Status::Code::kIoError);
  // Replay needs an empty database.
  ASSERT_TRUE(replica.DefineClass("X").ok());
  auto journal = Journal::Open(&db, path);
  ASSERT_TRUE(journal.ok());
  journal.value().reset();
  EXPECT_EQ(Journal::Replay(&replica, path).code(),
            Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace prometheus::storage
