#include "replication/source.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <vector>

#include "obs/metrics.h"

namespace prometheus::replication {

namespace {

struct SourceMetrics {
  obs::Counter* manifest_requests;
  obs::Counter* snapshot_requests;
  obs::Counter* journal_requests;
  obs::Counter* bytes_shipped;
  obs::Counter* gone;

  static const SourceMetrics& Get() {
    static const SourceMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      SourceMetrics sm;
      sm.manifest_requests =
          reg.GetCounter("replication_manifest_requests_total",
                         "Manifest fetches served to followers");
      sm.snapshot_requests =
          reg.GetCounter("replication_snapshot_requests_total",
                         "Snapshot chunk fetches served to followers");
      sm.journal_requests =
          reg.GetCounter("replication_journal_requests_total",
                         "Journal chunk fetches served to followers");
      sm.bytes_shipped = reg.GetCounter(
          "replication_bytes_shipped_total",
          "Snapshot and journal bytes shipped to followers");
      sm.gone = reg.GetCounter(
          "replication_gone_total",
          "Fetches answered 410 because the file was pruned");
      return sm;
    }();
    return m;
  }
};

bool ParseU64(const std::string& text, std::uint64_t* value) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

std::string ErrorResponse(int code, const std::string& message,
                          bool keep_alive) {
  return net::SerializeHttpResponse(code, "text/plain", message + "\n",
                                    keep_alive);
}

/// Reads `[offset, offset+limit)` of `path`. Returns false when the file
/// cannot be opened; `*total` is its size. An offset at or past the end
/// yields an empty chunk (total still reported) — the caller distinguishes
/// caught-up (== size) from divergence (> size).
bool ReadChunk(const std::string& path, std::uint64_t offset,
               std::uint64_t limit, std::string* chunk,
               std::uint64_t* total) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  *total = size;
  chunk->clear();
  if (offset >= size || limit == 0) return true;
  const std::uint64_t want = std::min<std::uint64_t>(limit, size - offset);
  chunk->resize(static_cast<std::size_t>(want));
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(chunk->data(), static_cast<std::streamsize>(want));
  chunk->resize(static_cast<std::size_t>(in.gcount()));
  return true;
}

}  // namespace

ReplicationSource::ReplicationSource(storage::DurableStore* store,
                                     Options options)
    : store_(store), options_(options) {
  store_->SetPruneFloor([this] { return PruneFloor(); });
}

ReplicationSource::~ReplicationSource() { store_->SetPruneFloor(nullptr); }

std::function<bool(const net::HttpRequest&, bool, std::string*)>
ReplicationSource::AuxHandler() {
  return [this](const net::HttpRequest& req, bool keep_alive,
                std::string* out) { return Handle(req, keep_alive, out); };
}

std::uint64_t ReplicationSource::PruneFloor() const {
  const auto now = std::chrono::steady_clock::now();
  const auto expiry = std::chrono::milliseconds(options_.follower_expiry_ms);
  std::uint64_t floor = ~0ull;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : followers_) {
    if (now - state.last_seen > expiry) continue;
    floor = std::min(floor, state.pin_seq);
  }
  return floor;
}

std::size_t ReplicationSource::active_followers() const {
  const auto now = std::chrono::steady_clock::now();
  const auto expiry = std::chrono::milliseconds(options_.follower_expiry_ms);
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : followers_) {
    if (now - state.last_seen <= expiry) ++n;
  }
  return n;
}

void ReplicationSource::NoteFollower(const std::string& id,
                                     std::uint64_t pin_seq,
                                     std::uint64_t journal_seq,
                                     std::uint64_t offset) {
  if (id.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FollowerState& state = followers_[id];
    state.last_seen = std::chrono::steady_clock::now();
    state.pin_seq = pin_seq;
    if (journal_seq != 0) {
      state.journal_seq = journal_seq;
      state.offset = offset;
    }
  }
  if (journal_seq != 0) {
    const std::string label = "{follower=\"" + obs::EscapeLabelValue(id) +
                              "\"}";
    obs::MetricsRegistry& reg = obs::Registry();
    reg.GetGauge("replication_follower_cursor_seq" + label,
                 "Journal sequence a follower is tailing")
        ->Set(static_cast<std::int64_t>(journal_seq));
    reg.GetGauge("replication_follower_cursor_offset" + label,
                 "Byte offset a follower last fetched from")
        ->Set(static_cast<std::int64_t>(offset));
  }
}

bool ReplicationSource::Handle(const net::HttpRequest& req, bool keep_alive,
                               std::string* out) {
  std::string_view path, query;
  net::SplitTarget(req.target, &path, &query);
  if (path.rfind("/repl/", 0) != 0) return false;
  if (req.method != "GET") {
    *out = ErrorResponse(405, "replication routes are GET-only", keep_alive);
    return true;
  }
  if (path == "/repl/manifest") {
    *out = HandleManifest(keep_alive);
  } else if (path == "/repl/snapshot") {
    *out = HandleSnapshot(query, keep_alive);
  } else if (path == "/repl/journal") {
    *out = HandleJournal(query, keep_alive);
  } else {
    *out = ErrorResponse(404, "unknown replication route", keep_alive);
  }
  return true;
}

std::string ReplicationSource::HandleManifest(bool keep_alive) {
  SourceMetrics::Get().manifest_requests->Increment();
  // Seqs first (one consistent read under the store's lock), then the
  // directory listing: a checkpoint between the two at worst lists a file
  // newer than `live_seq`, which the follower ignores until the next
  // manifest.
  const storage::DurableStore::Stats stats = store_->stats();
  storage::Env* env = store_->env();
  auto entries = env->ListDir(store_->dir());
  if (!entries.ok()) {
    return ErrorResponse(500, "cannot list store directory", keep_alive);
  }
  std::map<std::uint64_t, std::uint64_t> snapshots;  // seq -> size
  std::map<std::uint64_t, std::uint64_t> journals;
  for (const std::string& name : entries.value()) {
    std::uint64_t seq = 0;
    const std::string full = store_->dir() + "/" + name;
    if (storage::ParseSnapshotFileName(name, &seq)) {
      auto size = env->FileSize(full);
      if (size.ok()) snapshots[seq] = size.value();
    } else if (storage::ParseJournalFileName(name, &seq)) {
      auto size = env->FileSize(full);
      if (size.ok()) journals[seq] = size.value();
    }
  }
  std::string body;
  body += "generation " + std::to_string(stats.generation) + "\n";
  body += "live_seq " + std::to_string(stats.journal_seq) + "\n";
  body += "live_records " + std::to_string(stats.journal_records) + "\n";
  for (const auto& [seq, size] : snapshots) {
    body += "snapshot " + std::to_string(seq) + " " + std::to_string(size) +
            "\n";
  }
  for (const auto& [seq, size] : journals) {
    body += "journal " + std::to_string(seq) + " " + std::to_string(size) +
            "\n";
  }
  return net::SerializeHttpResponse(200, "text/plain", body, keep_alive);
}

std::string ReplicationSource::HandleSnapshot(std::string_view query,
                                              bool keep_alive) {
  SourceMetrics::Get().snapshot_requests->Increment();
  std::string gen_text, offset_text, limit_text, follower;
  std::uint64_t gen = 0, offset = 0;
  std::uint64_t limit = options_.max_chunk_bytes;
  if (!net::QueryParam(query, "gen", &gen_text) || !ParseU64(gen_text, &gen)) {
    return ErrorResponse(400, "missing or bad 'gen'", keep_alive);
  }
  if (net::QueryParam(query, "offset", &offset_text) &&
      !ParseU64(offset_text, &offset)) {
    return ErrorResponse(400, "bad 'offset'", keep_alive);
  }
  if (net::QueryParam(query, "limit", &limit_text)) {
    std::uint64_t asked = 0;
    if (!ParseU64(limit_text, &asked)) {
      return ErrorResponse(400, "bad 'limit'", keep_alive);
    }
    limit = std::min<std::uint64_t>(asked, options_.max_chunk_bytes);
  }
  (void)net::QueryParam(query, "follower", &follower);
  // Pin before reading: a checkpoint that fires between the pin and the
  // read keeps the file alive.
  NoteFollower(follower, gen, 0, 0);

  const std::string path =
      store_->dir() + "/" + storage::SnapshotFileName(gen);
  std::string chunk;
  std::uint64_t total = 0;
  if (!store_->env()->FileExists(path) ||
      !ReadChunk(path, offset, limit, &chunk, &total)) {
    SourceMetrics::Get().gone->Increment();
    return ErrorResponse(410, "snapshot generation pruned", keep_alive);
  }
  SourceMetrics::Get().bytes_shipped->Increment(chunk.size());
  return net::SerializeHttpResponse(
      200, "application/octet-stream", chunk, keep_alive,
      {{"X-Repl-Total-Size", std::to_string(total)}});
}

std::string ReplicationSource::HandleJournal(std::string_view query,
                                             bool keep_alive) {
  SourceMetrics::Get().journal_requests->Increment();
  std::string seq_text, offset_text, limit_text, follower;
  std::uint64_t seq = 0, offset = 0;
  std::uint64_t limit = options_.max_chunk_bytes;
  if (!net::QueryParam(query, "seq", &seq_text) || !ParseU64(seq_text, &seq)) {
    return ErrorResponse(400, "missing or bad 'seq'", keep_alive);
  }
  if (net::QueryParam(query, "offset", &offset_text) &&
      !ParseU64(offset_text, &offset)) {
    return ErrorResponse(400, "bad 'offset'", keep_alive);
  }
  if (net::QueryParam(query, "limit", &limit_text)) {
    std::uint64_t asked = 0;
    if (!ParseU64(limit_text, &asked)) {
      return ErrorResponse(400, "bad 'limit'", keep_alive);
    }
    limit = std::min<std::uint64_t>(asked, options_.max_chunk_bytes);
  }
  (void)net::QueryParam(query, "follower", &follower);
  NoteFollower(follower, seq, seq, offset);

  const std::string path = store_->dir() + "/" + storage::JournalFileName(seq);
  std::string chunk;
  std::uint64_t total = 0;
  if (!store_->env()->FileExists(path) ||
      !ReadChunk(path, offset, limit, &chunk, &total)) {
    SourceMetrics::Get().gone->Increment();
    return ErrorResponse(410, "journal pruned", keep_alive);
  }
  if (offset > total) {
    // The follower believes this journal is longer than it is: its mirror
    // diverged from this leader's history (e.g. it replicated a different
    // leader). It must rebootstrap.
    return ErrorResponse(416, "offset past end of journal", keep_alive);
  }
  const storage::DurableStore::Stats stats = store_->stats();
  SourceMetrics::Get().bytes_shipped->Increment(chunk.size());
  return net::SerializeHttpResponse(
      200, "application/octet-stream", chunk, keep_alive,
      {{"X-Repl-Size", std::to_string(total)},
       {"X-Repl-Generation", std::to_string(stats.generation)},
       {"X-Repl-Live-Seq", std::to_string(stats.journal_seq)},
       {"X-Repl-Live-Records", std::to_string(stats.journal_records)}});
}

}  // namespace prometheus::replication
